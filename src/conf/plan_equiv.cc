#include "src/conf/plan_equiv.h"

#include <algorithm>

#include "src/conf/conf_agent.h"

namespace zebra {

namespace {

// Joiner between trace elements. '\x1e' (record separator) cannot appear in
// entity names, parameter names, or schema values, so joining is injective.
constexpr char kTraceJoin = '\x1e';

std::string FormatObservation(const char* prefix, const std::string& entity,
                              int node_index, std::string_view param,
                              const std::string* assigned) {
  std::string element = prefix;
  element += entity;
  element += '#';
  element += std::to_string(node_index);
  element += ':';
  element += param;
  if (assigned != nullptr) {
    element += '=';
    element += *assigned;
  } else {
    element += '!';
  }
  return element;
}

}  // namespace

std::string TraceReadElement(const std::string& entity, int node_index,
                             std::string_view param, const std::string* assigned) {
  return FormatObservation("", entity, node_index, param, assigned);
}

std::string TraceHasElement(const std::string& entity, int node_index,
                            std::string_view param, const std::string* assigned) {
  return FormatObservation("@h:", entity, node_index, param, assigned);
}

std::string TraceUncertainElement(std::string_view param) {
  std::string element = "@u:";
  element += param;
  return element;
}

namespace {

// Shared element parser (inverse of FormatObservation). Entity names never
// contain '#', the node index is digits, and parameter names never contain
// '=' — so the first '#', the first ':' after it, and the first '=' after
// that are unambiguous separators even when the served value contains any of
// those characters.
struct ParsedElement {
  enum class Kind { kRead, kHas, kUncertain } kind = Kind::kRead;
  std::string_view entity;
  int node_index = 0;
  std::string_view param;
};

bool ParseTraceElement(std::string_view element, ParsedElement* parsed) {
  if (element.rfind("@u:", 0) == 0) {
    parsed->kind = ParsedElement::Kind::kUncertain;
    parsed->param = element.substr(3);
    return true;
  }
  if (element.rfind("@h:", 0) == 0) {
    parsed->kind = ParsedElement::Kind::kHas;
    element.remove_prefix(3);
  } else {
    parsed->kind = ParsedElement::Kind::kRead;
  }
  size_t hash = element.find('#');
  if (hash == std::string_view::npos) {
    return false;
  }
  size_t colon = element.find(':', hash);
  if (colon == std::string_view::npos) {
    return false;
  }
  parsed->entity = element.substr(0, hash);
  parsed->node_index =
      std::atoi(std::string(element.substr(hash + 1, colon - hash - 1)).c_str());
  std::string_view rest = element.substr(colon + 1);
  size_t eq = rest.find('=');
  if (eq != std::string_view::npos) {
    parsed->param = rest.substr(0, eq);
  } else {
    if (rest.empty() || rest.back() != '!') {
      return false;
    }
    parsed->param = rest.substr(0, rest.size() - 1);
  }
  return true;
}

}  // namespace

bool PlanMatchesElement(const TestPlan& plan, std::string_view element) {
  ParsedElement parsed;
  if (!ParseTraceElement(element, &parsed)) {
    return false;  // unparseable = unknown observation; never collapse
  }
  if (parsed.kind == ParsedElement::Kind::kUncertain) {
    return true;  // uncertain confs never receive overrides: plan-invariant
  }
  const std::string entity(parsed.entity);
  std::optional<std::string> assigned =
      plan.Lookup(parsed.param, entity, parsed.node_index);
  std::string expected =
      parsed.kind == ParsedElement::Kind::kHas
          ? TraceHasElement(entity, parsed.node_index, parsed.param,
                            assigned.has_value() ? &*assigned : nullptr)
          : TraceReadElement(entity, parsed.node_index, parsed.param,
                             assigned.has_value() ? &*assigned : nullptr);
  return expected == element;
}

bool PlanMatchesTrace(const TestPlan& plan, const std::set<std::string>& elements) {
  for (const std::string& element : elements) {
    if (!PlanMatchesElement(plan, element)) {
      return false;
    }
  }
  return true;
}

bool PlanReproducesObservedTrace(const TestPlan& plan,
                                 std::string_view observed_trace,
                                 std::string_view predicted_trace) {
  // Both traces are sorted element lists, so a single merge scan finds each
  // observed element's verbatim twin in the promise when it has one.
  size_t predicted_pos = 0;
  size_t observed_pos = 0;
  while (observed_pos < observed_trace.size()) {
    size_t observed_end = observed_trace.find(kTraceJoin, observed_pos);
    if (observed_end == std::string_view::npos) {
      observed_end = observed_trace.size();
    }
    std::string_view element =
        observed_trace.substr(observed_pos, observed_end - observed_pos);
    bool found = false;
    while (predicted_pos < predicted_trace.size()) {
      size_t predicted_end = predicted_trace.find(kTraceJoin, predicted_pos);
      if (predicted_end == std::string_view::npos) {
        predicted_end = predicted_trace.size();
      }
      std::string_view candidate =
          predicted_trace.substr(predicted_pos, predicted_end - predicted_pos);
      if (candidate < element) {
        predicted_pos = predicted_end + 1;
        continue;
      }
      if (candidate == element) {
        found = true;
        predicted_pos = predicted_end + 1;
      }
      break;
    }
    if (!found && !PlanMatchesElement(plan, element)) {
      return false;
    }
    observed_pos = observed_end + 1;
  }
  return true;
}

std::string ObservedTraceText(const SessionReport& report) {
  std::string text;
  for (const std::string& element : report.trace_elements) {
    if (!text.empty()) {
      text += kTraceJoin;
    }
    text += element;
  }
  return text;
}

// ---------------------------------------------------------------------------
// ReadSurface
// ---------------------------------------------------------------------------

ReadSurface::ReadSurface(const SessionReport& prerun) {
  for (const std::string& element : prerun.trace_elements) {
    ParsedElement parsed;
    if (!ParseTraceElement(element, &parsed)) {
      continue;  // malformed element; ignore (surface stays conservative)
    }
    Observation obs;
    obs.entity = std::string(parsed.entity);
    obs.node_index = parsed.node_index;
    obs.param = std::string(parsed.param);
    switch (parsed.kind) {
      case ParsedElement::Kind::kUncertain:
        obs.kind = Observation::Kind::kUncertain;
        break;
      case ParsedElement::Kind::kHas:
        obs.kind = Observation::Kind::kHas;
        presence_params_.insert(obs.param);
        break;
      case ParsedElement::Kind::kRead:
        obs.kind = Observation::Kind::kRead;
        break;
    }
    observed_params_.insert(obs.param);
    observations_.push_back(std::move(obs));
  }
  usable_ = !observations_.empty();
}

CanonicalPlan ReadSurface::Canonicalize(const TestPlan& plan) const {
  CanonicalPlan canonical;
  std::vector<ParamPlan> kept;
  for (const ParamPlan& entry : plan.params()) {
    ParamPlan filtered = entry;
    filtered.extra_overrides.clear();
    for (const auto& override_pair : entry.extra_overrides) {
      if (ParamObserved(override_pair.first)) {
        filtered.extra_overrides.push_back(override_pair);
      } else {
        ++canonical.dropped_overrides;
      }
    }
    // An entry survives if any targeted conf observes its parameter — or any
    // surviving dependency override still needs a carrier.
    if (ParamObserved(entry.param) || !filtered.extra_overrides.empty()) {
      kept.push_back(std::move(filtered));
    } else {
      ++canonical.dropped_entries;
    }
  }
  // Canonical order: plans differing only in entry order collapse. The sort
  // compares precomputed fingerprints — ParamPlan::Fingerprint() renders
  // through an ostringstream, and letting the comparator recompute it turns
  // every comparison into two allocations (O(n log n) renders per sort).
  std::vector<std::string> sort_keys;
  sort_keys.reserve(kept.size());
  for (const ParamPlan& entry : kept) {
    sort_keys.push_back(entry.Fingerprint());
  }
  std::vector<size_t> order(kept.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (kept[a].param != kept[b].param) {
      return kept[a].param < kept[b].param;
    }
    return sort_keys[a] < sort_keys[b];
  });
  TestPlan canonical_plan;
  for (size_t index : order) {
    canonical_plan.Add(std::move(kept[index]));
  }
  canonical.fingerprint = canonical_plan.Fingerprint();
  canonical.changed = canonical.fingerprint != plan.Fingerprint();
  return canonical;
}

bool ReadSurface::PredictTrace(const TestPlan& plan, std::string* trace) const {
  // Sort + unique reproduces exactly the ordering + dedup the recorder's
  // SessionReport::trace_elements set applies, without per-element tree nodes
  // (this runs on every cache miss past the exact keys).
  std::vector<std::string> elements;
  elements.reserve(observations_.size());
  for (const Observation& obs : observations_) {
    switch (obs.kind) {
      case Observation::Kind::kUncertain:
        // Unmappable confs never receive overrides: plan-invariant marker.
        elements.push_back(TraceUncertainElement(obs.param));
        break;
      case Observation::Kind::kRead: {
        std::optional<std::string> assigned =
            plan.Lookup(obs.param, obs.entity, obs.node_index);
        elements.push_back(TraceReadElement(obs.entity, obs.node_index, obs.param,
                                            assigned ? &*assigned : nullptr));
        break;
      }
      case Observation::Kind::kHas: {
        // Has() ignores overrides, but the trace is poisoned with the plan's
        // assignment so a plan targeting a presence-checked parameter never
        // aliases one that assigns it differently (conservative by design).
        std::optional<std::string> assigned =
            plan.Lookup(obs.param, obs.entity, obs.node_index);
        elements.push_back(TraceHasElement(obs.entity, obs.node_index, obs.param,
                                           assigned ? &*assigned : nullptr));
        break;
      }
    }
  }
  std::sort(elements.begin(), elements.end());
  elements.erase(std::unique(elements.begin(), elements.end()), elements.end());
  std::string text;
  for (const std::string& element : elements) {
    if (!text.empty()) {
      text += kTraceJoin;
    }
    text += element;
  }
  *trace = std::move(text);
  return true;
}

// ---------------------------------------------------------------------------
// Scoped global surface
// ---------------------------------------------------------------------------

namespace {
thread_local const ReadSurface* g_read_surface = nullptr;
}  // namespace

void SetGlobalReadSurface(const ReadSurface* surface) { g_read_surface = surface; }

const ReadSurface* GlobalReadSurface() { return g_read_surface; }

}  // namespace zebra
