// Test-plan types: how TestGenerator tells ConfAgent which configuration value
// each node should observe for each parameter under test (paper §4).
//
// A plan assigns a value to every (node type, node index, parameter) triple.
// The unit test itself is treated as a client node (type kClientEntity), as in
// the paper. A plan may carry several ParamPlans at once — that is pooled
// testing.

#ifndef SRC_CONF_TEST_PLAN_H_
#define SRC_CONF_TEST_PLAN_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace zebra {

// Entity name used for configuration objects owned by the unit test body.
inline constexpr char kClientEntity[] = "Client";

// The representative value-assignment strategies from §4.
enum class AssignStrategy {
  // Every entity sees the same value (used for the homogeneous control runs).
  kHomogeneous,
  // All nodes in the target type group get `group_value`; every other entity
  // (other node types and the unit-test client) gets `other_value`.
  kUniformGroup,
  // Within the target group values alternate by node index starting with
  // `group_value`; every other entity gets `other_value`.
  kRoundRobinGroup,
};

const char* AssignStrategyName(AssignStrategy strategy);

// Assigns one parameter's value per entity.
struct ValueAssigner {
  AssignStrategy strategy = AssignStrategy::kHomogeneous;
  std::string group_type;   // target node-type group (unused for homogeneous)
  std::string group_value;  // value for the group (or the whole system)
  std::string other_value;  // value for everyone else

  std::string ValueFor(const std::string& node_type, int node_index) const;

  // The distinct values this assigner can hand out; the TestRunner runs one
  // homogeneous control per distinct value (Definition 3.1).
  std::vector<std::string> DistinctValues() const;

  static ValueAssigner Homogeneous(std::string value);
  static ValueAssigner UniformGroup(std::string group_type, std::string group_value,
                                    std::string other_value);
  static ValueAssigner RoundRobinGroup(std::string group_type, std::string group_value,
                                       std::string other_value);
};

// One parameter under test plus any dependency overrides (§4: "when testing
// parameter p1 with value v1, we should set p2's value to v2"). Overrides are
// applied homogeneously.
struct ParamPlan {
  std::string param;
  ValueAssigner assigner;
  std::vector<std::pair<std::string, std::string>> extra_overrides;

  // Static prior (zebralint): wire-tainted parameters carry 2.0, node-local
  // 1.0, statically pruned 0.0. The campaign tests higher priorities first;
  // 1.0 (the default) reproduces the prior-less behavior.
  double static_priority = 1.0;

  // Execution-relevant identity of this entry: parameter, assigner, and every
  // dependency override — but not static_priority, which is scheduling
  // metadata no execution can observe.
  std::string Fingerprint() const;
};

// A full plan for one unit-test execution. Multiple entries = pooled testing.
//
// Fingerprint() and DescribeSeed() are memoized on the plan: both walk every
// entry and (for Fingerprint) render it through an ostringstream, and the hot
// path asks for the same plan's identity several times per run — cache probe,
// equivalence canonicalization, session seeding. Mutation goes through Add()
// or mutable_params(), which drop the memo. The memo fields are `mutable` and
// unsynchronized: a plan is owned by exactly one worker at a time (campaign
// engines copy plans into per-worker units), so concurrent const access to a
// shared TestPlan is not part of the contract.
class TestPlan {
 public:
  TestPlan() = default;
  explicit TestPlan(std::vector<ParamPlan> params) : params_(std::move(params)) {}

  TestPlan(const TestPlan& other);
  TestPlan(TestPlan&& other) noexcept;
  TestPlan& operator=(const TestPlan& other);
  TestPlan& operator=(TestPlan&& other) noexcept;

  const std::vector<ParamPlan>& params() const { return params_; }

  // Mutation invalidates the memoized identities.
  void Add(ParamPlan plan);
  std::vector<ParamPlan>& mutable_params();

  // Value the given entity should observe for `param`, if the plan covers it.
  std::optional<std::string> Lookup(std::string_view param,
                                    const std::string& node_type, int node_index) const;

  bool empty() const { return params_.empty(); }
  std::string Describe() const;

  // Cache-key identity. Unlike Describe() — which deliberately stays stable
  // because RunUnitTest folds it into the per-trial RNG seed — this includes
  // extra_overrides, so plans differing only in dependency overrides never
  // alias in the run cache. Memoized; the reference stays valid until the
  // next mutation of this plan.
  const std::string& Fingerprint() const;

  // Fnv1a64(Describe()), bit-for-bit — the value RunUnitTest folds into the
  // per-trial RNG seed. Memoized so steady-state executions skip rebuilding
  // the describe string entirely.
  uint64_t DescribeSeed() const;

 private:
  void InvalidateMemo() {
    fingerprint_valid_ = false;
    describe_seed_valid_ = false;
  }

  std::vector<ParamPlan> params_;
  mutable std::string fingerprint_;
  mutable uint64_t describe_seed_ = 0;
  mutable bool fingerprint_valid_ = false;
  mutable bool describe_seed_valid_ = false;
};

}  // namespace zebra

#endif  // SRC_CONF_TEST_PLAN_H_
