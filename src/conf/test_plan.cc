#include "src/conf/test_plan.h"

#include <sstream>

namespace zebra {

const char* AssignStrategyName(AssignStrategy strategy) {
  switch (strategy) {
    case AssignStrategy::kHomogeneous:
      return "homogeneous";
    case AssignStrategy::kUniformGroup:
      return "uniform-group";
    case AssignStrategy::kRoundRobinGroup:
      return "round-robin-group";
  }
  return "unknown";
}

std::string ValueAssigner::ValueFor(const std::string& node_type, int node_index) const {
  switch (strategy) {
    case AssignStrategy::kHomogeneous:
      return group_value;
    case AssignStrategy::kUniformGroup:
      return node_type == group_type ? group_value : other_value;
    case AssignStrategy::kRoundRobinGroup:
      if (node_type != group_type) {
        return other_value;
      }
      return node_index % 2 == 0 ? group_value : other_value;
  }
  return group_value;
}

std::vector<std::string> ValueAssigner::DistinctValues() const {
  if (strategy == AssignStrategy::kHomogeneous || group_value == other_value) {
    return {group_value};
  }
  return {group_value, other_value};
}

ValueAssigner ValueAssigner::Homogeneous(std::string value) {
  ValueAssigner assigner;
  assigner.strategy = AssignStrategy::kHomogeneous;
  assigner.group_value = std::move(value);
  return assigner;
}

ValueAssigner ValueAssigner::UniformGroup(std::string group_type, std::string group_value,
                                          std::string other_value) {
  ValueAssigner assigner;
  assigner.strategy = AssignStrategy::kUniformGroup;
  assigner.group_type = std::move(group_type);
  assigner.group_value = std::move(group_value);
  assigner.other_value = std::move(other_value);
  return assigner;
}

ValueAssigner ValueAssigner::RoundRobinGroup(std::string group_type,
                                             std::string group_value,
                                             std::string other_value) {
  ValueAssigner assigner;
  assigner.strategy = AssignStrategy::kRoundRobinGroup;
  assigner.group_type = std::move(group_type);
  assigner.group_value = std::move(group_value);
  assigner.other_value = std::move(other_value);
  return assigner;
}

std::optional<std::string> TestPlan::Lookup(std::string_view param,
                                            const std::string& node_type,
                                            int node_index) const {
  for (const ParamPlan& plan : params) {
    if (plan.param == param) {
      return plan.assigner.ValueFor(node_type, node_index);
    }
    for (const auto& [extra_param, extra_value] : plan.extra_overrides) {
      if (extra_param == param) {
        return extra_value;
      }
    }
  }
  return std::nullopt;
}

std::string ParamPlan::Fingerprint() const {
  std::ostringstream out;
  out << param << "{" << AssignStrategyName(assigner.strategy);
  if (assigner.strategy == AssignStrategy::kHomogeneous) {
    out << " " << assigner.group_value;
  } else {
    out << " " << assigner.group_type << "=" << assigner.group_value
        << " others=" << assigner.other_value;
  }
  out << "}";
  if (!extra_overrides.empty()) {
    out << "[";
    for (size_t i = 0; i < extra_overrides.size(); ++i) {
      if (i > 0) {
        out << ",";
      }
      out << extra_overrides[i].first << "=" << extra_overrides[i].second;
    }
    out << "]";
  }
  return out.str();
}

std::string TestPlan::Fingerprint() const {
  std::string text;
  for (size_t i = 0; i < params.size(); ++i) {
    if (i > 0) {
      text += ", ";
    }
    text += params[i].Fingerprint();
  }
  return text;
}

std::string TestPlan::Describe() const {
  std::ostringstream out;
  for (size_t i = 0; i < params.size(); ++i) {
    const ParamPlan& plan = params[i];
    if (i > 0) {
      out << ", ";
    }
    out << plan.param << "{" << AssignStrategyName(plan.assigner.strategy);
    if (plan.assigner.strategy == AssignStrategy::kHomogeneous) {
      out << " " << plan.assigner.group_value;
    } else {
      out << " " << plan.assigner.group_type << "=" << plan.assigner.group_value
          << " others=" << plan.assigner.other_value;
    }
    out << "}";
  }
  return out.str();
}

}  // namespace zebra
