#include "src/conf/test_plan.h"

#include <sstream>

#include "src/common/rng.h"

namespace zebra {

const char* AssignStrategyName(AssignStrategy strategy) {
  switch (strategy) {
    case AssignStrategy::kHomogeneous:
      return "homogeneous";
    case AssignStrategy::kUniformGroup:
      return "uniform-group";
    case AssignStrategy::kRoundRobinGroup:
      return "round-robin-group";
  }
  return "unknown";
}

std::string ValueAssigner::ValueFor(const std::string& node_type, int node_index) const {
  switch (strategy) {
    case AssignStrategy::kHomogeneous:
      return group_value;
    case AssignStrategy::kUniformGroup:
      return node_type == group_type ? group_value : other_value;
    case AssignStrategy::kRoundRobinGroup:
      if (node_type != group_type) {
        return other_value;
      }
      return node_index % 2 == 0 ? group_value : other_value;
  }
  return group_value;
}

std::vector<std::string> ValueAssigner::DistinctValues() const {
  if (strategy == AssignStrategy::kHomogeneous || group_value == other_value) {
    return {group_value};
  }
  return {group_value, other_value};
}

ValueAssigner ValueAssigner::Homogeneous(std::string value) {
  ValueAssigner assigner;
  assigner.strategy = AssignStrategy::kHomogeneous;
  assigner.group_value = std::move(value);
  return assigner;
}

ValueAssigner ValueAssigner::UniformGroup(std::string group_type, std::string group_value,
                                          std::string other_value) {
  ValueAssigner assigner;
  assigner.strategy = AssignStrategy::kUniformGroup;
  assigner.group_type = std::move(group_type);
  assigner.group_value = std::move(group_value);
  assigner.other_value = std::move(other_value);
  return assigner;
}

ValueAssigner ValueAssigner::RoundRobinGroup(std::string group_type,
                                             std::string group_value,
                                             std::string other_value) {
  ValueAssigner assigner;
  assigner.strategy = AssignStrategy::kRoundRobinGroup;
  assigner.group_type = std::move(group_type);
  assigner.group_value = std::move(group_value);
  assigner.other_value = std::move(other_value);
  return assigner;
}

TestPlan::TestPlan(const TestPlan& other)
    : params_(other.params_),
      fingerprint_(other.fingerprint_),
      describe_seed_(other.describe_seed_),
      fingerprint_valid_(other.fingerprint_valid_),
      describe_seed_valid_(other.describe_seed_valid_) {}

TestPlan::TestPlan(TestPlan&& other) noexcept
    : params_(std::move(other.params_)),
      fingerprint_(std::move(other.fingerprint_)),
      describe_seed_(other.describe_seed_),
      fingerprint_valid_(other.fingerprint_valid_),
      describe_seed_valid_(other.describe_seed_valid_) {
  // The moved-from plan is an empty plan; a stale "valid" flag over a
  // moved-out string must not survive.
  other.InvalidateMemo();
}

TestPlan& TestPlan::operator=(const TestPlan& other) {
  if (this != &other) {
    params_ = other.params_;
    fingerprint_ = other.fingerprint_;
    describe_seed_ = other.describe_seed_;
    fingerprint_valid_ = other.fingerprint_valid_;
    describe_seed_valid_ = other.describe_seed_valid_;
  }
  return *this;
}

TestPlan& TestPlan::operator=(TestPlan&& other) noexcept {
  if (this != &other) {
    params_ = std::move(other.params_);
    fingerprint_ = std::move(other.fingerprint_);
    describe_seed_ = other.describe_seed_;
    fingerprint_valid_ = other.fingerprint_valid_;
    describe_seed_valid_ = other.describe_seed_valid_;
    other.InvalidateMemo();
  }
  return *this;
}

void TestPlan::Add(ParamPlan plan) {
  InvalidateMemo();
  params_.push_back(std::move(plan));
}

std::vector<ParamPlan>& TestPlan::mutable_params() {
  InvalidateMemo();
  return params_;
}

std::optional<std::string> TestPlan::Lookup(std::string_view param,
                                            const std::string& node_type,
                                            int node_index) const {
  for (const ParamPlan& plan : params_) {
    if (plan.param == param) {
      return plan.assigner.ValueFor(node_type, node_index);
    }
    for (const auto& [extra_param, extra_value] : plan.extra_overrides) {
      if (extra_param == param) {
        return extra_value;
      }
    }
  }
  return std::nullopt;
}

std::string ParamPlan::Fingerprint() const {
  std::ostringstream out;
  out << param << "{" << AssignStrategyName(assigner.strategy);
  if (assigner.strategy == AssignStrategy::kHomogeneous) {
    out << " " << assigner.group_value;
  } else {
    out << " " << assigner.group_type << "=" << assigner.group_value
        << " others=" << assigner.other_value;
  }
  out << "}";
  if (!extra_overrides.empty()) {
    out << "[";
    for (size_t i = 0; i < extra_overrides.size(); ++i) {
      if (i > 0) {
        out << ",";
      }
      out << extra_overrides[i].first << "=" << extra_overrides[i].second;
    }
    out << "]";
  }
  return out.str();
}

const std::string& TestPlan::Fingerprint() const {
  if (!fingerprint_valid_) {
    std::string text;
    for (size_t i = 0; i < params_.size(); ++i) {
      if (i > 0) {
        text += ", ";
      }
      text += params_[i].Fingerprint();
    }
    fingerprint_ = std::move(text);
    fingerprint_valid_ = true;
  }
  return fingerprint_;
}

uint64_t TestPlan::DescribeSeed() const {
  if (!describe_seed_valid_) {
    describe_seed_ = Fnv1a64(Describe());
    describe_seed_valid_ = true;
  }
  return describe_seed_;
}

std::string TestPlan::Describe() const {
  std::ostringstream out;
  for (size_t i = 0; i < params_.size(); ++i) {
    const ParamPlan& plan = params_[i];
    if (i > 0) {
      out << ", ";
    }
    out << plan.param << "{" << AssignStrategyName(plan.assigner.strategy);
    if (plan.assigner.strategy == AssignStrategy::kHomogeneous) {
      out << " " << plan.assigner.group_value;
    } else {
      out << " " << plan.assigner.group_type << "=" << plan.assigner.group_value
          << " others=" << plan.assigner.other_value;
    }
    out << "}";
  }
  return out.str();
}

}  // namespace zebra
