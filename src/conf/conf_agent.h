// ConfAgent — the bottom layer of ZebraConf (paper §6).
//
// ConfAgent runs a given unit test with a given (possibly heterogeneous)
// configuration. Its task is to map every Configuration object created during
// the test to the entity that owns it — a node, the unit test itself, or
// "uncertain" — and to intercept get/set so that different nodes observe
// different values for the parameters under test.
//
// The implementation follows §6.2/§6.3 exactly:
//
//   Rule 1.1  A configuration object created on a thread that is currently
//             executing a node initialization function belongs to that node.
//   Rule 1.2  A configuration object created before any node has initialized
//             belongs to the unit test.
//   Rule 2    refToCloneConf: the clone belongs to the node whose init
//             function is executing; the original belongs to the unit test.
//   Rule 3    A clone belongs to the same entity as its original.
//
// Data structures mirror the paper: nodeTable, unitTestConfIDs,
// uncertainConfIDs, parentToChild, threadContext.
//
// Agent routing. The Configuration constructors must reach an agent without
// being handed one, so resolution is ambient: ConfAgent::Current() returns
// the agent installed on the calling thread (ScopedThreadConfAgent), falling
// back to the process-wide singleton. The forked schedulers inherit the
// singleton per process; the in-process thread-pool scheduler installs one
// agent per worker thread, giving every worker the same isolation a fork
// used to provide — sessions on different workers never share tables.
// Outside an active session every hook is a no-op, so the mini-applications
// remain usable as ordinary libraries.
//
// Hot path. InterceptGet is called for every configuration read a unit test
// makes — millions per campaign. The agent keeps an arena-backed intern
// table (common/intern_arena.h) shared across all sessions it runs, and a
// per-session memo keyed by (conf object, parameter-name bytes): the first
// read of a (conf, param) pair interns the name, resolves ownership, records
// the read and its trace element, and caches the plan decision; every
// subsequent read hashes the name bytes once and probes the memo — no intern
// lookup, no tree walk. Ownership-mutating events (new confs, clones,
// promotions) are rare and simply clear the memo.

#ifndef SRC_CONF_CONF_AGENT_H_
#define SRC_CONF_CONF_AGENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/common/intern_arena.h"
#include "src/common/rng.h"
#include "src/conf/test_plan.h"

namespace zebra {

class Configuration;

// What one ConfAgent session observed. TestGenerator's pre-run consumes this
// to decide which (test, parameter, node type) combinations are effective.
struct SessionReport {
  // Node type -> number of node instances that ran startInit.
  std::map<std::string, int> node_counts;

  // Entity key ("DataNode", "Client", ...) -> parameters read through
  // configuration objects belonging to that entity.
  std::map<std::string, std::set<std::string>> reads;

  // Parameters read through configuration objects that could not be mapped to
  // any entity. Test instances combining this unit test with these parameters
  // must be excluded (Observation 3).
  std::set<std::string> uncertain_params;

  int conf_objects_created = 0;
  int clones = 0;
  int ref_to_clones = 0;
  int uncertain_conf_count = 0;

  // A unit-test-owned configuration object was handed to at least one node
  // initialization function (the paper's "configuration object sharing").
  bool conf_sharing_detected = false;

  // Any parameter read happened at all ("tests that involve configuration
  // usage" in §6.1).
  bool any_conf_usage = false;

  // How many interceptGet calls returned a plan-assigned value.
  int override_hits = 0;

  // Canonical encoding of every observation this session made (see
  // plan_equiv.h for the element grammar). Sorted + deduplicated by the set;
  // ObservedTraceText() joins them into the cross-plan cache key. Purely
  // additive: nothing in test generation or verification reads these.
  std::set<std::string> trace_elements;

  bool StartedAnyNode() const { return !node_counts.empty(); }
  int TotalNodes() const;
  std::set<std::string> ParamsReadBy(const std::string& entity) const;
  std::set<std::string> AllParamsRead() const;
};

class ConfAgent {
 public:
  // The process-wide default agent (what Current() resolves to on threads
  // with no scoped agent installed).
  static ConfAgent& Instance();

  // The agent ambient on this thread: the ScopedThreadConfAgent installed
  // here, else Instance(). All Configuration hooks route through this.
  static ConfAgent& Current();

  // Instantiable for per-worker isolation (see ScopedThreadConfAgent). Most
  // code should use Current()/Instance() rather than constructing agents.
  ConfAgent() = default;

  ConfAgent(const ConfAgent&) = delete;
  ConfAgent& operator=(const ConfAgent&) = delete;

  // ---- Session control (harness side) --------------------------------------

  // Starts a session. `plan` may be empty (pre-run / record-only). Only one
  // session may be active at a time; test executions are serialized.
  void BeginSession(TestPlan plan);

  // Starts a session that *borrows* `plan` — the caller keeps ownership and
  // must keep the plan alive (and unmutated) until EndSession. This is the
  // hot-path entry: RunUnitTest already holds the plan for the whole
  // execution, so copying it into the session only to read Lookup() from it
  // was pure allocation traffic.
  void BeginSessionBorrowed(const TestPlan* plan);

  // Ends the session and returns everything it observed.
  SessionReport EndSession();

  bool InSession() const { return in_session_.load(std::memory_order_acquire); }

  // ---- Annotation API (application side, paper §6.3) ------------------------

  // Brackets a node initialization function. `node_ptr` identifies the node
  // object (its address), `node_type` is e.g. "DataNode".
  void StartInit(uint64_t node_ptr, const std::string& node_type);
  void StopInit();

  // Configuration-class hooks.
  void NewConf(uint64_t conf_id);
  void CloneConf(uint64_t orig_id, uint64_t clone_id);
  // Returns the node id the clone was attached to (0 if none).
  void RefToCloneConf(uint64_t orig_id, uint64_t clone_id);

  // Interception of Configuration::Get: may replace `current` with the value
  // the plan assigns to the conf's owning entity. Takes a string_view so the
  // caller never materializes a std::string for the name; the session keeps a
  // single interned copy per parameter for its recording structures.
  std::string InterceptGet(uint64_t conf_id, std::string_view name,
                           std::string current);

  // Interception of Configuration::Has: records the presence check in the
  // session trace (a plan override never changes what Has() returns, but the
  // equivalence layer must still see that the parameter was observed).
  // Deliberately does not touch `reads`/`uncertain_params`/`any_conf_usage`,
  // so test generation is unchanged by presence checks.
  void InterceptHas(uint64_t conf_id, std::string_view name);

  // Interception of Configuration::Set: propagates the write to the parent
  // configuration object when the conf belongs to a node that was initialized
  // from a unit-test conf (paper: interceptSet parent write-back).
  void InterceptSet(uint64_t conf_id, const std::string& name, const std::string& value);

  // ---- Configuration-object registry ----------------------------------------

  // Configuration registers/unregisters itself so interceptSet can write back
  // into parent objects. Safe to call outside a session.
  void RegisterConfObject(uint64_t conf_id, Configuration* conf);
  void UnregisterConfObject(uint64_t conf_id);

  // Allocates a process-unique configuration-object id. Process-wide (not
  // per-agent) so ids never collide across worker agents, whichever agent a
  // conf object later reaches.
  static uint64_t NextConfId();

  // ---- Introspection (used by tests and the reporting layer) ----------------

  // Entity key the conf currently maps to: node type, kClientEntity,
  // "@uncertain", or nullopt if unknown. Only valid during a session.
  std::optional<std::string> EntityOf(uint64_t conf_id) const;

  // Node index of the node owning this conf (-1 if not node-owned).
  int NodeIndexOf(uint64_t conf_id) const;

 private:
  struct NodeInfo {
    uint64_t node_id = 0;  // hashCode analog: the node object's address
    std::string node_type;
    int node_index = 0;  // i-th node of this type in this session
    std::vector<uint64_t> conf_ids;
    uint64_t parent_conf_id = 0;  // conf passed into the init function, if any
  };

  // Memoized outcome of one (conf object, parameter) read: the entity
  // resolution, the plan decision, and whether the trace/report bookkeeping
  // already happened. Valid until the next ownership-mutating event.
  struct ReadMemo {
    bool uncertain = false;      // unmapped or @uncertain: never overridden
    bool has_override = false;   // the plan assigns a value for this read
    std::string override_value;  // valid when has_override
  };

  // Memo key: (conf id, parameter-name bytes). The stored view points into
  // the agent-lifetime intern arena; lookups may pass a view into the
  // caller's own buffer — equality compares bytes, so the steady-state read
  // path never touches the intern table at all.
  struct ReadKey {
    uint64_t conf_id = 0;
    std::string_view name;

    bool operator==(const ReadKey& other) const {
      return conf_id == other.conf_id && name == other.name;
    }
  };

  struct ReadKeyHash {
    size_t operator()(const ReadKey& key) const {
      return static_cast<size_t>(HashCombine(key.conf_id, Fnv1a64(key.name)));
    }
  };

  struct Session {
    // The plan in force: `plan` points at either a caller-owned plan
    // (BeginSessionBorrowed) or `owned_plan` (BeginSession). Never null while
    // the session is active.
    TestPlan owned_plan;
    const TestPlan* plan = nullptr;
    std::map<uint64_t, NodeInfo> node_table;           // node_id -> info
    std::map<uint64_t, uint64_t> conf_to_node;         // conf_id -> node_id
    std::set<uint64_t> unit_test_conf_ids;
    std::set<uint64_t> uncertain_conf_ids;
    std::map<uint64_t, uint64_t> child_to_parent;      // clone -> original
    std::map<std::thread::id, std::vector<uint64_t>> thread_context;
    std::map<std::string, int> type_counts;            // node_type -> next index

    // Hot-path memo. Cleared on every ownership mutation
    // (NewConf/CloneConf/RefToCloneConf), which are a handful of events per
    // run against millions of reads. Hash maps, not trees: a steady-state
    // read is one hash of the name bytes plus one bucket probe, instead of
    // an intern-arena probe followed by O(log n) pair comparisons.
    std::unordered_map<ReadKey, ReadMemo, ReadKeyHash> get_memo;
    std::unordered_set<ReadKey, ReadKeyHash> has_memo;

    SessionReport report;
  };

  // Interns `name` in the agent-lifetime arena (no per-session re-interning;
  // the vocabulary is shared by every session this agent runs). Caller holds
  // mutex.
  std::string_view InternLocked(std::string_view name);

  // Resolves a conf id to its entity key; records nothing. Caller holds mutex.
  std::optional<std::string> ResolveEntityLocked(uint64_t conf_id, int* node_index) const;

  // Moves `conf_id` and its transitive parents from uncertain to unit-test
  // ownership (used by Rule 2 + Rule 3 back-propagation). Caller holds mutex.
  void PromoteToUnitTestLocked(uint64_t conf_id);

  mutable std::mutex mutex_;
  std::unique_ptr<Session> session_;
  std::atomic<bool> in_session_{false};
  InternArena intern_;  // agent-lifetime; views outlive every session
  std::map<uint64_t, Configuration*> conf_registry_;
};

// RAII session guard used by the harness. Binds to the thread-current agent
// at construction so Begin and End always address the same agent, even if
// the body migrates work across threads.
class ConfAgentSession {
 public:
  explicit ConfAgentSession(TestPlan plan) : agent_(&ConfAgent::Current()) {
    agent_->BeginSession(std::move(plan));
  }
  // Borrowing form: `plan` must outlive the session (RunUnitTest owns the
  // plan for the whole execution, so the session need not copy it).
  explicit ConfAgentSession(const TestPlan* plan) : agent_(&ConfAgent::Current()) {
    agent_->BeginSessionBorrowed(plan);
  }
  ~ConfAgentSession() {
    if (!ended_) {
      agent_->EndSession();
    }
  }
  ConfAgentSession(const ConfAgentSession&) = delete;
  ConfAgentSession& operator=(const ConfAgentSession&) = delete;

  SessionReport End() {
    ended_ = true;
    return agent_->EndSession();
  }

 private:
  ConfAgent* agent_;
  bool ended_ = false;
};

// Installs a fresh agent as this thread's Current() for the scope — the
// thread-pool scheduler's per-worker isolation (the in-process analog of the
// address-space copy a forked worker used to get). Nesting restores the
// previous agent on destruction. The agent must outlive every Configuration
// object registered with it; worker threads guarantee this by construction
// (all conf objects are created and destroyed inside unit-test bodies that
// run within the scope).
class ScopedThreadConfAgent {
 public:
  ScopedThreadConfAgent();
  ~ScopedThreadConfAgent();
  ScopedThreadConfAgent(const ScopedThreadConfAgent&) = delete;
  ScopedThreadConfAgent& operator=(const ScopedThreadConfAgent&) = delete;

  ConfAgent& agent() { return agent_; }

 private:
  ConfAgent agent_;
  ConfAgent* previous_;
};

}  // namespace zebra

#endif  // SRC_CONF_CONF_AGENT_H_
