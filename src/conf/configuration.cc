#include "src/conf/configuration.h"

#include "src/common/strings.h"
#include "src/conf/annotations.h"
#include "src/conf/conf_agent.h"

namespace zebra {

namespace {
constexpr char kConfApp[] = "configuration";
}  // namespace

Configuration::Configuration()
    : id_(ConfAgent::NextConfId()), agent_(&ConfAgent::Current()) {
  ZC_ANNOTATION_SITE(kConfApp, AnnotationKind::kConfHook);
  agent_->NewConf(id_);
  agent_->RegisterConfObject(id_, this);
}

Configuration::Configuration(const Configuration& other)
    : id_(ConfAgent::NextConfId()), agent_(&ConfAgent::Current()) {
  ZC_ANNOTATION_SITE(kConfApp, AnnotationKind::kConfHook);
  agent_->CloneConf(other.id_, id_);
  {
    std::lock_guard<std::mutex> lock(other.mutex_);
    properties_ = other.properties_;
  }
  agent_->RegisterConfObject(id_, this);
}

Configuration::Configuration(RefCloneTag, const Configuration& source)
    : id_(ConfAgent::NextConfId()), agent_(&ConfAgent::Current()) {
  {
    std::lock_guard<std::mutex> lock(source.mutex_);
    properties_ = source.properties_;
  }
  agent_->RefToCloneConf(source.id_, id_);
  agent_->RegisterConfObject(id_, this);
}

Configuration::~Configuration() { agent_->UnregisterConfObject(id_); }

Configuration Configuration::RefToClone(const Configuration& source) {
  return Configuration(RefCloneTag{}, source);
}

std::string Configuration::GetStored(std::string_view name,
                                     std::string_view default_value) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = properties_.find(name);
  if (it == properties_.end()) {
    return std::string(default_value);
  }
  return it->second;
}

std::string Configuration::Get(std::string_view name,
                               std::string_view default_value) const {
  ZC_ANNOTATION_SITE(kConfApp, AnnotationKind::kConfHook);
  return ConfAgent::Current().InterceptGet(id_, name, GetStored(name, default_value));
}

bool Configuration::GetBool(std::string_view name, bool default_value) const {
  bool parsed = default_value;
  std::string value = Get(name, BoolToString(default_value));
  if (!ParseBool(value, &parsed)) {
    return default_value;
  }
  return parsed;
}

int64_t Configuration::GetInt(std::string_view name, int64_t default_value) const {
  int64_t parsed = default_value;
  std::string value = Get(name, Int64ToString(default_value));
  if (!ParseInt64(value, &parsed)) {
    return default_value;
  }
  return parsed;
}

double Configuration::GetDouble(std::string_view name, double default_value) const {
  double parsed = default_value;
  std::string value = Get(name, DoubleToString(default_value));
  if (!ParseDouble(value, &parsed)) {
    return default_value;
  }
  return parsed;
}

bool Configuration::Has(std::string_view name) const {
  // No ZC_ANNOTATION_SITE here: Has is not a get/set hook in the paper's
  // annotation census. The equivalence layer still needs to see the
  // observation, so the presence check is traced (and nothing else).
  bool present;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    present = properties_.find(name) != properties_.end();
  }
  ConfAgent::Current().InterceptHas(id_, name);
  return present;
}

void Configuration::Set(std::string_view name, std::string_view value) {
  ZC_ANNOTATION_SITE(kConfApp, AnnotationKind::kConfHook);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    properties_[std::string(name)] = std::string(value);
  }
  ConfAgent::Current().InterceptSet(id_, std::string(name), std::string(value));
}

void Configuration::SetBool(std::string_view name, bool value) {
  Set(name, BoolToString(value));
}

void Configuration::SetInt(std::string_view name, int64_t value) {
  Set(name, Int64ToString(value));
}

void Configuration::SetDouble(std::string_view name, double value) {
  Set(name, DoubleToString(value));
}

void Configuration::SetRaw(std::string_view name, std::string_view value) {
  std::lock_guard<std::mutex> lock(mutex_);
  properties_[std::string(name)] = std::string(value);
}

std::map<std::string, std::string> Configuration::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return {properties_.begin(), properties_.end()};
}

}  // namespace zebra
