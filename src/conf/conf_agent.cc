#include "src/conf/conf_agent.h"

#include "src/common/error.h"
#include "src/common/logging.h"
#include "src/conf/configuration.h"
#include "src/conf/plan_equiv.h"

namespace zebra {

namespace {
constexpr char kUncertainEntity[] = "@uncertain";

// Conf ids are allocated process-wide so they never collide across worker
// agents (a conf created under one agent may be observed — as uncertain
// usage — under another).
std::atomic<uint64_t> g_next_conf_id{0};

// The agent installed on this thread by ScopedThreadConfAgent, if any.
thread_local ConfAgent* t_current_agent = nullptr;
}  // namespace

int SessionReport::TotalNodes() const {
  int total = 0;
  for (const auto& [type, count] : node_counts) {
    total += count;
  }
  return total;
}

std::set<std::string> SessionReport::ParamsReadBy(const std::string& entity) const {
  auto it = reads.find(entity);
  if (it == reads.end()) {
    return {};
  }
  return it->second;
}

std::set<std::string> SessionReport::AllParamsRead() const {
  std::set<std::string> all;
  for (const auto& [entity, params] : reads) {
    all.insert(params.begin(), params.end());
  }
  all.insert(uncertain_params.begin(), uncertain_params.end());
  return all;
}

ConfAgent& ConfAgent::Instance() {
  static ConfAgent* agent = new ConfAgent();
  return *agent;
}

ConfAgent& ConfAgent::Current() {
  return t_current_agent != nullptr ? *t_current_agent : Instance();
}

uint64_t ConfAgent::NextConfId() { return g_next_conf_id.fetch_add(1) + 1; }

ScopedThreadConfAgent::ScopedThreadConfAgent() : previous_(t_current_agent) {
  t_current_agent = &agent_;
}

ScopedThreadConfAgent::~ScopedThreadConfAgent() { t_current_agent = previous_; }

void ConfAgent::BeginSession(TestPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_ != nullptr) {
    throw InternalError("ConfAgent session already active; sessions must be serialized");
  }
  session_ = std::make_unique<Session>();
  session_->owned_plan = std::move(plan);
  session_->plan = &session_->owned_plan;
  in_session_.store(true, std::memory_order_release);
}

void ConfAgent::BeginSessionBorrowed(const TestPlan* plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_ != nullptr) {
    throw InternalError("ConfAgent session already active; sessions must be serialized");
  }
  session_ = std::make_unique<Session>();
  session_->plan = plan != nullptr ? plan : &session_->owned_plan;
  in_session_.store(true, std::memory_order_release);
}

SessionReport ConfAgent::EndSession() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_ == nullptr) {
    throw InternalError("ConfAgent::EndSession without an active session");
  }
  SessionReport report = std::move(session_->report);
  report.uncertain_conf_count = static_cast<int>(session_->uncertain_conf_ids.size());
  for (const auto& [type, count] : session_->type_counts) {
    report.node_counts[type] = count;
  }
  session_.reset();
  in_session_.store(false, std::memory_order_release);
  return report;
}

void ConfAgent::StartInit(uint64_t node_ptr, const std::string& node_type) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_ == nullptr) {
    return;
  }
  NodeInfo info;
  info.node_id = node_ptr;
  info.node_type = node_type;
  info.node_index = session_->type_counts[node_type]++;
  session_->node_table[node_ptr] = info;
  session_->thread_context[std::this_thread::get_id()].push_back(node_ptr);
}

void ConfAgent::StopInit() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_ == nullptr) {
    return;
  }
  auto it = session_->thread_context.find(std::this_thread::get_id());
  if (it == session_->thread_context.end() || it->second.empty()) {
    ZLOG_WARN << "ConfAgent::StopInit without a matching StartInit on this thread";
    return;
  }
  it->second.pop_back();
  if (it->second.empty()) {
    session_->thread_context.erase(it);
  }
}

void ConfAgent::NewConf(uint64_t conf_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_ == nullptr) {
    return;
  }
  ++session_->report.conf_objects_created;
  // Rule 1.1: created while a node's init function is executing on this thread.
  auto ctx = session_->thread_context.find(std::this_thread::get_id());
  if (ctx != session_->thread_context.end() && !ctx->second.empty()) {
    uint64_t node_id = ctx->second.back();
    session_->conf_to_node[conf_id] = node_id;
    session_->node_table[node_id].conf_ids.push_back(conf_id);
    return;
  }
  // Rule 1.2: created before any node has initialized.
  if (session_->node_table.empty()) {
    session_->unit_test_conf_ids.insert(conf_id);
    return;
  }
  // Otherwise we cannot map it.
  session_->uncertain_conf_ids.insert(conf_id);
}

void ConfAgent::CloneConf(uint64_t orig_id, uint64_t clone_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_ == nullptr) {
    return;
  }
  ++session_->report.conf_objects_created;
  ++session_->report.clones;
  session_->child_to_parent[clone_id] = orig_id;
  // Rule 3: the clone belongs to the same entity as the original.
  auto node_it = session_->conf_to_node.find(orig_id);
  if (node_it != session_->conf_to_node.end()) {
    session_->conf_to_node[clone_id] = node_it->second;
    session_->node_table[node_it->second].conf_ids.push_back(clone_id);
    return;
  }
  if (session_->unit_test_conf_ids.count(orig_id) > 0) {
    session_->unit_test_conf_ids.insert(clone_id);
    return;
  }
  // Neither side is known: both are uncertain (the original may have been
  // created outside the session or is itself unmapped).
  session_->uncertain_conf_ids.insert(orig_id);
  session_->uncertain_conf_ids.insert(clone_id);
}

void ConfAgent::PromoteToUnitTestLocked(uint64_t conf_id) {
  // Promotion changes the resolution of already-read confs: their memoized
  // decisions (and recorded-presence markers) are stale. Promotions are a
  // handful per run; dropping both memos wholesale is cheap and obviously
  // correct.
  session_->get_memo.clear();
  session_->has_memo.clear();
  uint64_t current = conf_id;
  // Walk the clone chain upward, promoting any uncertain ancestor.
  for (int depth = 0; depth < 64; ++depth) {
    if (session_->conf_to_node.count(current) == 0) {
      session_->uncertain_conf_ids.erase(current);
      session_->unit_test_conf_ids.insert(current);
    }
    auto parent_it = session_->child_to_parent.find(current);
    if (parent_it == session_->child_to_parent.end()) {
      break;
    }
    current = parent_it->second;
  }
}

void ConfAgent::RefToCloneConf(uint64_t orig_id, uint64_t clone_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_ == nullptr) {
    return;
  }
  ++session_->report.conf_objects_created;
  ++session_->report.ref_to_clones;
  session_->child_to_parent[clone_id] = orig_id;

  // Rule 2: the clone belongs to the node whose init function is executing.
  auto ctx = session_->thread_context.find(std::this_thread::get_id());
  if (ctx == session_->thread_context.end() || ctx->second.empty()) {
    ZLOG_WARN << "refToCloneConf called outside a node initialization function";
    session_->uncertain_conf_ids.insert(clone_id);
  } else {
    uint64_t node_id = ctx->second.back();
    session_->conf_to_node[clone_id] = node_id;
    NodeInfo& node = session_->node_table[node_id];
    node.conf_ids.push_back(clone_id);
    node.parent_conf_id = orig_id;
  }

  // Rule 2 + Rule 3 back-propagation: the original (and its uncertain
  // ancestors) belong to the unit test.
  if (session_->conf_to_node.count(orig_id) == 0) {
    PromoteToUnitTestLocked(orig_id);
    session_->report.conf_sharing_detected = true;
  } else {
    ZLOG_WARN << "refToCloneConf original already belongs to a node; leaving mapping";
  }
}

std::optional<std::string> ConfAgent::ResolveEntityLocked(uint64_t conf_id,
                                                          int* node_index) const {
  if (node_index != nullptr) {
    *node_index = -1;
  }
  auto node_it = session_->conf_to_node.find(conf_id);
  if (node_it != session_->conf_to_node.end()) {
    const NodeInfo& node = session_->node_table.at(node_it->second);
    if (node_index != nullptr) {
      *node_index = node.node_index;
    }
    return node.node_type;
  }
  if (session_->unit_test_conf_ids.count(conf_id) > 0) {
    return std::string(kClientEntity);
  }
  if (session_->uncertain_conf_ids.count(conf_id) > 0) {
    return std::string(kUncertainEntity);
  }
  return std::nullopt;
}

std::string_view ConfAgent::InternLocked(std::string_view name) {
  return intern_.Intern(name);
}

std::string ConfAgent::InterceptGet(uint64_t conf_id, std::string_view name,
                                    std::string current) {
  if (!InSession()) {
    return current;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_ == nullptr) {
    return current;
  }
  session_->report.any_conf_usage = true;

  // Steady state: every read after the first of a (conf, param) pair is one
  // hash of the name bytes plus one memo probe — no intern-table lookup, no
  // entity resolution, no plan lookup, no trace-element construction (set
  // inserts are idempotent; only per-call counters remain). The probe key
  // views the caller's buffer; equality compares bytes against the interned
  // copy stored at first read.
  auto memo_it = session_->get_memo.find(ReadKey{conf_id, name});
  if (memo_it != session_->get_memo.end()) {
    const ReadMemo& memo = memo_it->second;
    if (memo.has_override) {
      ++session_->report.override_hits;
      return memo.override_value;
    }
    return current;
  }

  ReadMemo memo;
  std::string_view interned = InternLocked(name);
  const std::string interned_str(interned);
  int node_index = -1;
  std::optional<std::string> entity = ResolveEntityLocked(conf_id, &node_index);
  if (!entity.has_value() || *entity == kUncertainEntity) {
    // Either a conf created outside the session (e.g. a process-global
    // default) or one we could not map — both are uncertain usage. Uncertain
    // confs never receive overrides, so the trace marker is plan-invariant
    // and the memoized decision is stable.
    session_->report.uncertain_params.insert(interned_str);
    session_->report.trace_elements.insert(TraceUncertainElement(interned_str));
    memo.uncertain = true;
    session_->get_memo.emplace(ReadKey{conf_id, interned}, std::move(memo));
    return current;
  }
  session_->report.reads[*entity].insert(interned_str);

  // Only node-owned and unit-test-owned confs receive plan values.
  int index = (*entity == kClientEntity) ? 0 : node_index;
  std::optional<std::string> assigned =
      session_->plan->Lookup(interned_str, *entity, index);
  session_->report.trace_elements.insert(TraceReadElement(
      *entity, index, interned_str, assigned.has_value() ? &*assigned : nullptr));
  memo.has_override = assigned.has_value();
  if (assigned.has_value()) {
    memo.override_value = *assigned;
  }
  session_->get_memo.emplace(ReadKey{conf_id, interned}, std::move(memo));
  if (assigned.has_value()) {
    ++session_->report.override_hits;
    return *assigned;
  }
  return current;
}

void ConfAgent::InterceptHas(uint64_t conf_id, std::string_view name) {
  if (!InSession()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_ == nullptr) {
    return;
  }
  // A presence check is pure recording; once the trace element for this
  // (conf, param) pair exists, repeats are no-ops. Probe with the caller's
  // buffer first (steady state skips interning); intern only when recording.
  if (session_->has_memo.count(ReadKey{conf_id, name}) > 0) {
    return;
  }
  std::string_view interned = InternLocked(name);
  session_->has_memo.insert(ReadKey{conf_id, interned});
  const std::string interned_str(interned);
  int node_index = -1;
  std::optional<std::string> entity = ResolveEntityLocked(conf_id, &node_index);
  if (!entity.has_value() || *entity == kUncertainEntity) {
    session_->report.trace_elements.insert(TraceUncertainElement(interned_str));
    return;
  }
  int index = (*entity == kClientEntity) ? 0 : node_index;
  std::optional<std::string> assigned =
      session_->plan->Lookup(interned_str, *entity, index);
  session_->report.trace_elements.insert(TraceHasElement(
      *entity, index, interned_str, assigned.has_value() ? &*assigned : nullptr));
}

void ConfAgent::InterceptSet(uint64_t conf_id, const std::string& name,
                             const std::string& value) {
  if (!InSession()) {
    return;
  }
  Configuration* parent = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (session_ == nullptr) {
      return;
    }
    auto node_it = session_->conf_to_node.find(conf_id);
    if (node_it == session_->conf_to_node.end()) {
      return;
    }
    const NodeInfo& node = session_->node_table.at(node_it->second);
    if (node.parent_conf_id == 0) {
      return;
    }
    auto registry_it = conf_registry_.find(node.parent_conf_id);
    if (registry_it == conf_registry_.end()) {
      return;
    }
    parent = registry_it->second;
  }
  // Write back into the parent so that unit-test code which expects the node
  // to fill values into the shared conf still observes them (paper §6.3).
  // SetRaw bypasses interception to avoid recursion.
  parent->SetRaw(name, value);
}

void ConfAgent::RegisterConfObject(uint64_t conf_id, Configuration* conf) {
  std::lock_guard<std::mutex> lock(mutex_);
  conf_registry_[conf_id] = conf;
}

void ConfAgent::UnregisterConfObject(uint64_t conf_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  conf_registry_.erase(conf_id);
}

std::optional<std::string> ConfAgent::EntityOf(uint64_t conf_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_ == nullptr) {
    return std::nullopt;
  }
  return ResolveEntityLocked(conf_id, nullptr);
}

int ConfAgent::NodeIndexOf(uint64_t conf_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_ == nullptr) {
    return -1;
  }
  int index = -1;
  ResolveEntityLocked(conf_id, &index);
  return index;
}

}  // namespace zebra
