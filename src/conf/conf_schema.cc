#include "src/conf/conf_schema.h"

#include <algorithm>
#include <set>

#include "src/common/error.h"

namespace zebra {

const char* ParamTypeName(ParamType type) {
  switch (type) {
    case ParamType::kBool:
      return "bool";
    case ParamType::kInt:
      return "int";
    case ParamType::kDouble:
      return "double";
    case ParamType::kEnum:
      return "enum";
    case ParamType::kString:
      return "string";
  }
  return "unknown";
}

void ConfSchema::AddParam(ParamSpec spec) {
  if (index_by_name_.count(spec.name) > 0) {
    throw InternalError("duplicate parameter registered: " + spec.name);
  }
  if (spec.test_values.empty()) {
    throw InternalError("parameter has no test values: " + spec.name);
  }
  index_by_name_[spec.name] = params_.size();
  params_.push_back(std::move(spec));
}

void ConfSchema::AddDependencyRule(const std::string& param, const std::string& value,
                                   const std::string& dep_param,
                                   const std::string& dep_value) {
  dependency_rules_[{param, value}].emplace_back(dep_param, dep_value);
}

const ParamSpec* ConfSchema::Find(const std::string& name) const {
  auto it = index_by_name_.find(name);
  if (it == index_by_name_.end()) {
    return nullptr;
  }
  return &params_[it->second];
}

std::vector<const ParamSpec*> ConfSchema::ParamsForApp(const std::string& app) const {
  std::vector<const ParamSpec*> result;
  for (const ParamSpec& spec : params_) {
    if (spec.app == app || spec.app == kSharedApp) {
      result.push_back(&spec);
    }
  }
  return result;
}

std::vector<const ParamSpec*> ConfSchema::ParamsOwnedBy(const std::string& app) const {
  std::vector<const ParamSpec*> result;
  for (const ParamSpec& spec : params_) {
    if (spec.app == app) {
      result.push_back(&spec);
    }
  }
  return result;
}

std::vector<std::pair<std::string, std::string>> ConfSchema::DependencyOverrides(
    const std::string& param, const std::string& value) const {
  std::vector<std::pair<std::string, std::string>> overrides;
  auto exact = dependency_rules_.find({param, value});
  if (exact != dependency_rules_.end()) {
    overrides.insert(overrides.end(), exact->second.begin(), exact->second.end());
  }
  auto wildcard = dependency_rules_.find({param, "*"});
  if (wildcard != dependency_rules_.end()) {
    overrides.insert(overrides.end(), wildcard->second.begin(), wildcard->second.end());
  }
  return overrides;
}

std::vector<std::string> ConfSchema::Apps() const {
  std::set<std::string> apps;
  for (const ParamSpec& spec : params_) {
    apps.insert(spec.app);
  }
  return std::vector<std::string>(apps.begin(), apps.end());
}

}  // namespace zebra
