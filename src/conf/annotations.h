// Annotation-site registry.
//
// The paper's Table 4 reports how many lines each target application had to
// change to support ZebraConf (node-class changes vs configuration-class
// changes). We reproduce that measurement for real: every place our
// mini-applications call a ConfAgent API registers itself here (file:line,
// once per site), and the Table 4 bench reads the registry back out.

#ifndef SRC_CONF_ANNOTATIONS_H_
#define SRC_CONF_ANNOTATIONS_H_

#include <map>
#include <string>
#include <vector>

namespace zebra {

enum class AnnotationKind {
  kNodeInit,    // startInit/stopInit bracket in a node initialization function
  kRefToClone,  // a reference-store replaced with refToCloneConf
  kConfHook,    // newConf/cloneConf/interceptGet/interceptSet in the conf class
};

struct AnnotationSite {
  std::string app;
  AnnotationKind kind;
  std::string file;
  int line = 0;
};

// Registers a site once (idempotent per file:line). Returns true so it can be
// used to initialize a function-local static.
bool RegisterAnnotationSiteOnce(const std::string& app, AnnotationKind kind,
                                const char* file, int line);

// All sites registered so far (only sites whose code actually executed).
std::vector<AnnotationSite> GetAnnotationSites();

struct AnnotationCounts {
  int node_init_sites = 0;
  int ref_to_clone_sites = 0;
  int conf_hook_sites = 0;

  // The paper counts "modified lines": a startInit/stopInit bracket is two
  // lines, a refToCloneConf replacement is two (comment out + add), a conf
  // hook is one line each.
  int node_class_lines() const { return node_init_sites * 2 + ref_to_clone_sites * 2; }
  int conf_class_lines() const { return conf_hook_sites; }
};

// Aggregated counts for one application.
AnnotationCounts GetAnnotationCounts(const std::string& app);

// Applications with at least one registered site.
std::vector<std::string> GetAnnotatedApps();

}  // namespace zebra

// Registers the enclosing call site under `app`. Cheap after first execution.
#define ZC_ANNOTATION_SITE(app, kind)                                              \
  do {                                                                             \
    static const bool zc_annotation_registered =                                   \
        ::zebra::RegisterAnnotationSiteOnce((app), (kind), __FILE__, __LINE__);    \
    (void)zc_annotation_registered;                                                \
  } while (0)

#endif  // SRC_CONF_ANNOTATIONS_H_
