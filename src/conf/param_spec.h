// Parameter metadata: the per-application configuration inventory that
// TestGenerator enumerates (paper Table 1 / §4 "Select parameter values to
// test").

#ifndef SRC_CONF_PARAM_SPEC_H_
#define SRC_CONF_PARAM_SPEC_H_

#include <string>
#include <vector>

namespace zebra {

enum class ParamType {
  kBool,
  kInt,
  kDouble,
  kEnum,
  kString,
};

const char* ParamTypeName(ParamType type);

struct ParamSpec {
  std::string name;
  std::string app;  // owning application ("appcommon" params are shared by all)
  ParamType type = ParamType::kString;
  std::string default_value;

  // Candidate values selected per §4: booleans get {true,false}; numerics get
  // the default plus a much larger and a much smaller value plus any special
  // sentinel; enums/strings get the documented values.
  std::vector<std::string> test_values;

  std::string description;
};

}  // namespace zebra

#endif  // SRC_CONF_PARAM_SPEC_H_
