// Hadoop-style Configuration class shared by the mini-applications.
//
// Mirrors the structure in Figure 2a of the paper: a dedicated key/value
// class with a blank constructor, a clone constructor, and get/set methods —
// each instrumented with a ConfAgent hook. Nodes receive a Configuration from
// whoever creates them (a real main() in production, the unit test body in a
// whole-system unit test) and store a *clone* via RefToClone, the developer
// modification Rule 2 requires.

#ifndef SRC_CONF_CONFIGURATION_H_
#define SRC_CONF_CONFIGURATION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace zebra {

class ConfAgent;

class Configuration {
 public:
  // Blank constructor (fires ConfAgent::NewConf).
  Configuration();

  // Clone constructor (fires ConfAgent::CloneConf).
  Configuration(const Configuration& other);

  Configuration& operator=(const Configuration&) = delete;
  Configuration(Configuration&&) = delete;
  Configuration& operator=(Configuration&&) = delete;

  ~Configuration();

  // Replaces "store the caller's reference" inside a node initialization
  // function: returns a clone and fires ConfAgent::RefToCloneConf, which maps
  // the clone to the initializing node and the source to the unit test
  // (paper Rule 2, Figure 2b lines 16-17).
  static Configuration RefToClone(const Configuration& source);

  // ---- Getters (all funnel through ConfAgent::InterceptGet) -----------------

  // Returns the stored value, or `default_value` if the key is absent; either
  // may be overridden by the active test plan.
  std::string Get(std::string_view name, std::string_view default_value = "") const;

  // Typed getters parse the (possibly overridden) string value; malformed
  // values fall back to the default, like Hadoop's Configuration.
  bool GetBool(std::string_view name, bool default_value) const;
  int64_t GetInt(std::string_view name, int64_t default_value) const;
  double GetDouble(std::string_view name, double default_value) const;

  // True if the key is present in this object (ignores plan overrides).
  bool Has(std::string_view name) const;

  // ---- Setters (funnel through ConfAgent::InterceptSet) ---------------------

  void Set(std::string_view name, std::string_view value);
  void SetBool(std::string_view name, bool value);
  void SetInt(std::string_view name, int64_t value);
  void SetDouble(std::string_view name, double value);

  // Writes without interception. Used by ConfAgent's parent write-back; not
  // for application code.
  void SetRaw(std::string_view name, std::string_view value);

  // Stable process-unique identity (the "hashCode" the paper keys its tables
  // by — an address would be unsafe under allocator reuse).
  uint64_t id() const { return id_; }

  // Copy of the raw stored properties (no interception).
  std::map<std::string, std::string> Snapshot() const;

 private:
  struct RefCloneTag {};
  Configuration(RefCloneTag, const Configuration& source);

  std::string GetStored(std::string_view name, std::string_view default_value) const;

  uint64_t id_ = 0;
  // The agent this object registered with at construction (the creating
  // thread's Current()); the destructor unregisters from the same agent even
  // if destruction happens on another thread. Get/Set/Has hooks still route
  // through the *calling* thread's Current(), so a conf created outside a
  // worker's session is correctly observed there as uncertain usage.
  ConfAgent* agent_ = nullptr;
  mutable std::mutex mutex_;
  // Transparent comparator: lookups take the caller's string_view directly,
  // no temporary std::string per Get/Has.
  std::map<std::string, std::string, std::less<>> properties_;
};

}  // namespace zebra

#endif  // SRC_CONF_CONFIGURATION_H_
