#include "src/conf/annotations.h"

#include <mutex>
#include <set>

namespace zebra {

namespace {

struct Registry {
  std::mutex mutex;
  std::vector<AnnotationSite> sites;
  std::set<std::pair<std::string, int>> seen;  // (file, line)
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

}  // namespace

bool RegisterAnnotationSiteOnce(const std::string& app, AnnotationKind kind,
                                const char* file, int line) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  auto key = std::make_pair(std::string(file), line);
  if (registry.seen.insert(key).second) {
    registry.sites.push_back(AnnotationSite{app, kind, file, line});
  }
  return true;
}

std::vector<AnnotationSite> GetAnnotationSites() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mutex);
  return registry.sites;
}

AnnotationCounts GetAnnotationCounts(const std::string& app) {
  AnnotationCounts counts;
  for (const AnnotationSite& site : GetAnnotationSites()) {
    if (site.app != app) {
      continue;
    }
    switch (site.kind) {
      case AnnotationKind::kNodeInit:
        ++counts.node_init_sites;
        break;
      case AnnotationKind::kRefToClone:
        ++counts.ref_to_clone_sites;
        break;
      case AnnotationKind::kConfHook:
        ++counts.conf_hook_sites;
        break;
    }
  }
  return counts;
}

std::vector<std::string> GetAnnotatedApps() {
  std::set<std::string> apps;
  for (const AnnotationSite& site : GetAnnotationSites()) {
    apps.insert(site.app);
  }
  return std::vector<std::string>(apps.begin(), apps.end());
}

}  // namespace zebra
