// Configuration-file I/O: the F / HomoConf(F) / HeteroConf(F1..Fn) notation
// of Definition 3.1, as loadable artifacts.
//
// Files use the Java-properties style Hadoop admins actually diff:
//
//   # comment
//   dfs.heartbeat.interval = 3
//   dfs.checksum.type = CRC32C
//
// A ConfFileSet holds one file per node and can answer the Definition 3.2
// question structurally: which parameters differ across nodes?

#ifndef SRC_CONF_CONF_FILE_H_
#define SRC_CONF_CONF_FILE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/conf/configuration.h"

namespace zebra {

// Parses properties text into key/value pairs. Throws Error on malformed
// lines (a line without '=' that is not blank/comment).
std::map<std::string, std::string> ParseProperties(const std::string& text);

// Renders pairs back to properties text (sorted, stable).
std::string RenderProperties(const std::map<std::string, std::string>& properties);

// Hadoop *-site.xml subset:
//   <configuration>
//     <property><name>k</name><value>v</value></property>
//   </configuration>
// Supports <!-- comments --> and <final>/<description> children (ignored).
// Throws Error on malformed documents or duplicate names.
std::map<std::string, std::string> ParseHadoopXml(const std::string& text);
std::string RenderHadoopXml(const std::map<std::string, std::string>& properties);

// Dispatches on content: documents starting with '<' parse as Hadoop XML,
// anything else as properties.
std::map<std::string, std::string> ParseConfFile(const std::string& text);

// Loads properties into a Configuration object (Set per pair, so ConfAgent
// sessions observe the values normally).
void ApplyProperties(const std::map<std::string, std::string>& properties,
                     Configuration& conf);

// A named per-node configuration file set: HeteroConf(F1, ..., Fn).
class ConfFileSet {
 public:
  // Adds node `node_name`'s file from properties or Hadoop-XML text (the
  // format is auto-detected).
  void AddFile(const std::string& node_name, const std::string& properties_text);

  int size() const { return static_cast<int>(files_.size()); }
  std::vector<std::string> node_names() const;
  const std::map<std::string, std::string>& FileFor(const std::string& node) const;

  // Parameters that appear with at least two distinct values across files
  // (including "absent" as a distinct state when `absent_is_distinct`).
  std::set<std::string> HeterogeneousParams(bool absent_is_distinct = false) const;

  // True if every file agrees on every parameter (HomoConf).
  bool IsHomogeneous() const { return HeterogeneousParams().empty(); }

  // The distinct values (by node) of one parameter; absent files omitted.
  std::map<std::string, std::string> ValuesOf(const std::string& param) const;

 private:
  std::map<std::string, std::map<std::string, std::string>> files_;
};

}  // namespace zebra

#endif  // SRC_CONF_CONF_FILE_H_
