// ConfSchema: the registry of configuration parameters per application, plus
// the developer-supplied dependency rules of §4 ("when testing parameter p1
// with value v1, set p2's value to v2").
//
// The schema itself is application-agnostic; each mini-application populates
// it via a Register<App>Schema() function, and the testkit aggregates all of
// them (mirroring how the paper's TestGenerator is configured per target).

#ifndef SRC_CONF_CONF_SCHEMA_H_
#define SRC_CONF_CONF_SCHEMA_H_

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/conf/param_spec.h"

namespace zebra {

// Name of the shared-library pseudo-application whose parameters every real
// application also uses (the Hadoop Common analog).
inline constexpr char kSharedApp[] = "appcommon";

class ConfSchema {
 public:
  ConfSchema() = default;

  void AddParam(ParamSpec spec);

  // Dependency rule: whenever `param`=`value` is under test, also set
  // `dep_param`=`dep_value` homogeneously.
  void AddDependencyRule(const std::string& param, const std::string& value,
                         const std::string& dep_param, const std::string& dep_value);

  const std::vector<ParamSpec>& params() const { return params_; }

  const ParamSpec* Find(const std::string& name) const;

  // Parameters testable for `app`: the app's own plus the shared-library
  // parameters (Table 1: "All other applications ... share the Hadoop Common
  // library").
  std::vector<const ParamSpec*> ParamsForApp(const std::string& app) const;

  // Parameters owned by exactly `app`.
  std::vector<const ParamSpec*> ParamsOwnedBy(const std::string& app) const;

  std::vector<std::pair<std::string, std::string>> DependencyOverrides(
      const std::string& param, const std::string& value) const;

  // Distinct applications owning at least one parameter.
  std::vector<std::string> Apps() const;

 private:
  std::vector<ParamSpec> params_;
  std::map<std::string, size_t> index_by_name_;
  // (param, value) -> overrides. Value "*" matches any tested value.
  std::map<std::pair<std::string, std::string>,
           std::vector<std::pair<std::string, std::string>>>
      dependency_rules_;
};

}  // namespace zebra

#endif  // SRC_CONF_CONF_SCHEMA_H_
