// Observational-equivalence layer over test plans (run-dedup beyond exact
// matching; the run-reduction spirit of the paper's Table 5 carried one level
// deeper than the exact-match run cache).
//
// A unit-test execution observes a plan *only* through ConfAgent::InterceptGet:
// the plan's sole effect is the override value (or lack of one) served at each
// configuration read. Two plans whose served values agree at every read the
// test performs are therefore observationally identical — they provably
// produce the same TestResult. The pre-run (empty plan) records exactly which
// (entity, node index, parameter) triples the test reads, so most
// heterogeneous plans that differ only in override entries for parameters the
// targeted confs never read collapse into one equivalence class.
//
// Three pieces implement this:
//
//  * Trace elements: a canonical one-line encoding of each observation a
//    session makes ("E#i:p=v" for an overridden read, "E#i:p!" for a read
//    served the stored value, "@h:E#i:p…" for a Has() presence check, "@u:p"
//    for a read through an unmappable conf). ConfAgent records them into
//    SessionReport::trace_elements; the formatting helpers live here so the
//    recorder and the predictor cannot drift.
//  * ReadSurface: built from the pre-run's trace elements. Canonicalize()
//    rewrites a plan to its canonical fingerprint (sorted entries, override
//    entries no targeted conf ever reads dropped — a plan whose flipped
//    parameter is never read collapses to the homogeneous baseline).
//    PredictTrace() computes the exact trace a plan would produce *if* the
//    test reads what the pre-run promised.
//  * Validation contract (enforced by RunCache callers): a predicted trace is
//    never trusted on its own. A cached result is served only when its
//    *actually observed* trace is byte-identical to the prediction — which
//    proves by induction over the read sequence that the cached execution is
//    the one this plan would have produced. Mispredictions (the promise was
//    broken: a value-gated read appeared, a read vanished) fall back to real
//    execution and are counted, never served.
//
// Soundness boundaries, all conservative:
//  * Trial-sensitive executions (the body drew from the per-trial RNG or read
//    trial()) are never collapsed: the RNG seed folds in the plan text, so
//    different descriptions legitimately diverge.
//  * Presence checks (Has()) observe the configuration without going through
//    value interception. A plan that targets a presence-checked parameter is
//    declared unpredictable rather than collapsed.
//  * Reads through unmappable ("uncertain") confs never receive overrides, so
//    they are plan-invariant and appear in traces as bare markers.

#ifndef SRC_CONF_PLAN_EQUIV_H_
#define SRC_CONF_PLAN_EQUIV_H_

#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/conf/test_plan.h"

namespace zebra {

struct SessionReport;

// ---- Trace-element formatting (shared by ConfAgent and ReadSurface) --------

// An intercepted value read: "E#i:p=v" when the plan served `assigned`,
// "E#i:p!" when the stored value was served.
std::string TraceReadElement(const std::string& entity, int node_index,
                             std::string_view param, const std::string* assigned);

// A Has() presence check, same shape under the "@h:" prefix. Recorded with
// the value the active plan assigns so plans that target a presence-checked
// parameter never alias plans that assign it differently.
std::string TraceHasElement(const std::string& entity, int node_index,
                            std::string_view param, const std::string* assigned);

// A read through an unmappable conf: "@u:p" (never overridden, plan-invariant).
std::string TraceUncertainElement(std::string_view param);

// True when `plan` would produce exactly `element` for the observation it
// encodes (re-derives the element under this plan's assignments and compares
// byte-identically). Unparseable elements never match.
bool PlanMatchesElement(const TestPlan& plan, std::string_view element);

// True when `plan` would reproduce the execution that observed `elements`:
// every observed element re-derives byte-identically under this plan's
// assignments. This is the core soundness check, and it is sufficient even
// for executions that stopped early (a failing run observes a prefix of its
// promise): by induction over the read sequence, an execution that agrees on
// every value actually served follows the stored one step for step — through
// the same failure, if there was one. Only valid against trial-insensitive
// executions (the stored run must not have consumed the per-trial RNG); note
// that RNG consumption is itself path-dependent, so a plan reproducing a
// trial-insensitive execution is provably trial-insensitive too.
bool PlanMatchesTrace(const TestPlan& plan, const std::set<std::string>& elements);

// Allocation-light form of the same check against joined traces (both
// '\x1e'-joined sorted element lists, the run cache's stored encoding).
// Elements of `observed_trace` found verbatim in `predicted_trace` — the
// plan's own full promise — are accepted by a linear merge scan; only
// elements outside the promise (value-gated reads another plan provoked)
// fall back to per-element re-derivation.
bool PlanReproducesObservedTrace(const TestPlan& plan,
                                 std::string_view observed_trace,
                                 std::string_view predicted_trace);

// The full observed trace of a finished session: its trace elements joined
// with '\x1e' (already sorted and deduplicated by the set). This is the
// cross-plan cache key a real execution is indexed under.
std::string ObservedTraceText(const SessionReport& report);

// ---- Canonicalization + prediction -----------------------------------------

struct CanonicalPlan {
  // Canonical cache fingerprint: param plans sorted by name, entries and
  // override pairs no targeted conf ever reads dropped. Empty when every
  // entry dropped — the homogeneous-baseline (empty-plan) fingerprint.
  std::string fingerprint;
  bool changed = false;        // differs from the plan's own fingerprint
  int dropped_entries = 0;     // whole ParamPlans removed
  int dropped_overrides = 0;   // extra_override pairs removed
};

class ReadSurface {
 public:
  // Builds the surface from a pre-run session report (empty-plan baseline).
  explicit ReadSurface(const SessionReport& prerun);

  // True when the pre-run observed at least one read (an all-blind surface
  // collapses everything to the baseline, which is still sound, but a test
  // that reads nothing is not worth indexing).
  bool usable() const { return usable_; }

  CanonicalPlan Canonicalize(const TestPlan& plan) const;

  // Fills `*trace` with the trace this plan produces if the test reads
  // exactly what the pre-run promised. Returns false when no sound
  // prediction exists (the plan targets a presence-checked parameter).
  bool PredictTrace(const TestPlan& plan, std::string* trace) const;

 private:
  struct Observation {
    enum class Kind { kRead, kHas, kUncertain } kind = Kind::kRead;
    std::string entity;
    int node_index = 0;
    std::string param;
  };

  bool ParamObserved(const std::string& param) const {
    return observed_params_.count(param) > 0;
  }

  std::vector<Observation> observations_;   // in trace-element sort order
  std::set<std::string> observed_params_;   // params any observation touches
  std::set<std::string> presence_params_;   // params observed via Has()
  bool usable_ = false;
};

// ---- Scoped per-unit installation (consulted by RunUnitTest) ---------------

// The surface outlives the installation window; the installer retains
// ownership. nullptr (the default) disables the equivalence layer. Like the
// run cache and the duration collector, this is process-global state: unit
// executions are serialized, and each forked scheduler worker owns its copy.
void SetGlobalReadSurface(const ReadSurface* surface);
const ReadSurface* GlobalReadSurface();

class ScopedReadSurface {
 public:
  explicit ScopedReadSurface(const ReadSurface* surface)
      : previous_(GlobalReadSurface()) {
    SetGlobalReadSurface(surface);
  }
  ~ScopedReadSurface() { SetGlobalReadSurface(previous_); }
  ScopedReadSurface(const ScopedReadSurface&) = delete;
  ScopedReadSurface& operator=(const ScopedReadSurface&) = delete;

 private:
  const ReadSurface* previous_;
};

}  // namespace zebra

#endif  // SRC_CONF_PLAN_EQUIV_H_
