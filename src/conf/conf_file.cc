#include "src/conf/conf_file.h"

#include "src/common/error.h"
#include "src/common/strings.h"

namespace zebra {

std::map<std::string, std::string> ParseProperties(const std::string& text) {
  std::map<std::string, std::string> properties;
  int line_number = 0;
  for (const std::string& raw_line : StrSplit(text, '\n')) {
    ++line_number;
    std::string line = StrTrim(raw_line);
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw Error("malformed properties line " + std::to_string(line_number) + ": '" +
                  line + "' (expected key = value)");
    }
    std::string key = StrTrim(line.substr(0, eq));
    std::string value = StrTrim(line.substr(eq + 1));
    if (key.empty()) {
      throw Error("empty key on properties line " + std::to_string(line_number));
    }
    properties[key] = value;
  }
  return properties;
}

std::string RenderProperties(const std::map<std::string, std::string>& properties) {
  std::string text;
  for (const auto& [key, value] : properties) {
    text += key + " = " + value + "\n";
  }
  return text;
}

namespace {

// Minimal tag scanner for the Hadoop XML subset. Returns the content between
// <tag> and </tag> starting the search at *pos; advances *pos past the close
// tag. Returns false when no further <tag> exists.
bool NextTag(const std::string& text, const std::string& tag, size_t* pos,
             std::string* content) {
  std::string open = "<" + tag + ">";
  std::string close = "</" + tag + ">";
  size_t begin = text.find(open, *pos);
  if (begin == std::string::npos) {
    return false;
  }
  size_t content_begin = begin + open.size();
  size_t end = text.find(close, content_begin);
  if (end == std::string::npos) {
    throw Error("hadoop xml: unterminated <" + tag + ">");
  }
  *content = text.substr(content_begin, end - content_begin);
  *pos = end + close.size();
  return true;
}

std::string StripXmlComments(const std::string& text) {
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t begin = text.find("<!--", pos);
    if (begin == std::string::npos) {
      out.append(text, pos, std::string::npos);
      break;
    }
    out.append(text, pos, begin - pos);
    size_t end = text.find("-->", begin);
    if (end == std::string::npos) {
      throw Error("hadoop xml: unterminated comment");
    }
    pos = end + 3;
  }
  return out;
}

std::string XmlEscape(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string XmlUnescape(const std::string& text) {
  std::string out;
  size_t pos = 0;
  while (pos < text.size()) {
    if (text.compare(pos, 5, "&amp;") == 0) {
      out += '&';
      pos += 5;
    } else if (text.compare(pos, 4, "&lt;") == 0) {
      out += '<';
      pos += 4;
    } else if (text.compare(pos, 4, "&gt;") == 0) {
      out += '>';
      pos += 4;
    } else {
      out += text[pos++];
    }
  }
  return out;
}

}  // namespace

std::map<std::string, std::string> ParseHadoopXml(const std::string& text) {
  std::string body = StripXmlComments(text);
  size_t pos = 0;
  std::string configuration;
  if (!NextTag(body, "configuration", &pos, &configuration)) {
    throw Error("hadoop xml: missing <configuration> root");
  }

  std::map<std::string, std::string> properties;
  pos = 0;
  std::string property;
  while (NextTag(configuration, "property", &pos, &property)) {
    size_t inner = 0;
    std::string name;
    if (!NextTag(property, "name", &inner, &name)) {
      throw Error("hadoop xml: <property> without <name>");
    }
    inner = 0;
    std::string value;
    if (!NextTag(property, "value", &inner, &value)) {
      throw Error("hadoop xml: <property> without <value>");
    }
    name = StrTrim(XmlUnescape(name));
    if (name.empty()) {
      throw Error("hadoop xml: empty property name");
    }
    if (!properties.emplace(name, XmlUnescape(value)).second) {
      throw Error("hadoop xml: duplicate property " + name);
    }
  }
  return properties;
}

std::string RenderHadoopXml(const std::map<std::string, std::string>& properties) {
  std::string out = "<configuration>\n";
  for (const auto& [name, value] : properties) {
    out += "  <property>\n    <name>" + XmlEscape(name) + "</name>\n    <value>" +
           XmlEscape(value) + "</value>\n  </property>\n";
  }
  out += "</configuration>\n";
  return out;
}

std::map<std::string, std::string> ParseConfFile(const std::string& text) {
  std::string trimmed = StrTrim(text);
  if (!trimmed.empty() && trimmed[0] == '<') {
    return ParseHadoopXml(text);
  }
  return ParseProperties(text);
}

void ApplyProperties(const std::map<std::string, std::string>& properties,
                     Configuration& conf) {
  for (const auto& [key, value] : properties) {
    conf.Set(key, value);
  }
}

void ConfFileSet::AddFile(const std::string& node_name,
                          const std::string& properties_text) {
  if (files_.count(node_name) > 0) {
    throw Error("duplicate node in configuration file set: " + node_name);
  }
  files_[node_name] = ParseConfFile(properties_text);
}

std::vector<std::string> ConfFileSet::node_names() const {
  std::vector<std::string> names;
  for (const auto& [name, file] : files_) {
    names.push_back(name);
  }
  return names;
}

const std::map<std::string, std::string>& ConfFileSet::FileFor(
    const std::string& node) const {
  auto it = files_.find(node);
  if (it == files_.end()) {
    throw Error("no configuration file for node " + node);
  }
  return it->second;
}

std::set<std::string> ConfFileSet::HeterogeneousParams(bool absent_is_distinct) const {
  std::set<std::string> all_params;
  for (const auto& [node, file] : files_) {
    for (const auto& [key, value] : file) {
      all_params.insert(key);
    }
  }

  std::set<std::string> heterogeneous;
  for (const std::string& param : all_params) {
    std::set<std::string> values;
    bool absent_somewhere = false;
    for (const auto& [node, file] : files_) {
      auto it = file.find(param);
      if (it == file.end()) {
        absent_somewhere = true;
      } else {
        values.insert(it->second);
      }
    }
    if (values.size() > 1 || (absent_is_distinct && absent_somewhere && !values.empty())) {
      heterogeneous.insert(param);
    }
  }
  return heterogeneous;
}

std::map<std::string, std::string> ConfFileSet::ValuesOf(
    const std::string& param) const {
  std::map<std::string, std::string> values;
  for (const auto& [node, file] : files_) {
    auto it = file.find(param);
    if (it != file.end()) {
      values[node] = it->second;
    }
  }
  return values;
}

}  // namespace zebra
