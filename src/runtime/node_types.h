// Node-type inventory per application (the paper's Table 2).

#ifndef SRC_RUNTIME_NODE_TYPES_H_
#define SRC_RUNTIME_NODE_TYPES_H_

#include <map>
#include <string>
#include <vector>

namespace zebra {

// Returns app -> node types, mirroring Table 2 for the mini-applications.
const std::map<std::string, std::vector<std::string>>& NodeTypesByApp();

// Node types for one application (empty vector if unknown).
std::vector<std::string> NodeTypesForApp(const std::string& app);

}  // namespace zebra

#endif  // SRC_RUNTIME_NODE_TYPES_H_
