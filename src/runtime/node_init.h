// NodeInitScope and the annotated RefToClone helper: the two developer-facing
// modifications the paper requires in node classes (Table 4's "lines related
// to modifying the node classes").
//
// Usage inside a node class:
//
//   class DataNode {
//    public:
//     DataNode(Cluster* cluster, const Configuration& conf)
//         : init_scope_(kDfsApp, this, "DataNode", __FILE__, __LINE__),
//           conf_(AnnotatedRefToClone(kDfsApp, conf, __FILE__, __LINE__)) {
//       ... initialization body; blank Configurations created here map to
//           this node via Rule 1.1 ...
//       init_scope_.Finish();  // stopInit at the end of the init function
//     }
//    private:
//     NodeInitScope init_scope_;  // must be the first member
//     Configuration conf_;
//   };
//
// Flink-style unit tests that inline node-initialization code instead of
// calling the node's init function construct a NodeInitScope locally around
// the inlined block (see the ministream corpus), which is why Flink needed
// the most annotation lines in the paper.

#ifndef SRC_RUNTIME_NODE_INIT_H_
#define SRC_RUNTIME_NODE_INIT_H_

#include <cstdint>
#include <string>

#include "src/conf/annotations.h"
#include "src/conf/conf_agent.h"
#include "src/conf/configuration.h"

namespace zebra {

class NodeInitScope {
 public:
  NodeInitScope(const char* app, const void* node, const char* node_type,
                const char* file, int line)
      : finished_(false) {
    RegisterAnnotationSiteOnce(app, AnnotationKind::kNodeInit, file, line);
    ConfAgent::Current().StartInit(reinterpret_cast<uint64_t>(node), node_type);
  }

  NodeInitScope(const NodeInitScope&) = delete;
  NodeInitScope& operator=(const NodeInitScope&) = delete;

  ~NodeInitScope() { Finish(); }

  // Marks the end of the initialization function (stopInit). Idempotent; the
  // destructor calls it as a safety net when the init body throws.
  void Finish() {
    if (!finished_) {
      finished_ = true;
      ConfAgent::Current().StopInit();
    }
  }

 private:
  bool finished_;
};

// The refToCloneConf developer modification: replaces "this->conf = conf"
// with a clone, registering the annotation site for Table 4.
inline Configuration AnnotatedRefToClone(const char* app, const Configuration& source,
                                         const char* file, int line) {
  RegisterAnnotationSiteOnce(app, AnnotationKind::kRefToClone, file, line);
  return Configuration::RefToClone(source);
}

}  // namespace zebra

#endif  // SRC_RUNTIME_NODE_INIT_H_
