#include "src/runtime/node_types.h"

namespace zebra {

const std::map<std::string, std::vector<std::string>>& NodeTypesByApp() {
  static const auto* kTypes = new std::map<std::string, std::vector<std::string>>{
      {"ministream", {"JobManager", "TaskManager"}},
      {"minikv", {"HMaster", "HRegionServer", "ThriftServer", "RESTServer"}},
      {"minidfs",
       {"NameNode", "DataNode", "SecondaryNameNode", "JournalNode", "Balancer", "Mover"}},
      {"minimr", {"MapTask", "ReduceTask", "JobHistoryServer"}},
      {"miniyarn", {"ResourceManager", "NodeManager", "ApplicationHistoryServer"}},
      {"appcommon", {}},  // shared library: no node types of its own
      // Tools (Hadoop-Tools analog) have no parameters of their own and run
      // against MiniDFS clusters, so a user planning by hand would assume the
      // MiniDFS node types.
      {"apptools",
       {"NameNode", "DataNode", "SecondaryNameNode", "JournalNode", "Balancer", "Mover"}},
  };
  return *kTypes;
}

std::vector<std::string> NodeTypesForApp(const std::string& app) {
  const auto& table = NodeTypesByApp();
  auto it = table.find(app);
  if (it == table.end()) {
    return {};
  }
  return it->second;
}

}  // namespace zebra
