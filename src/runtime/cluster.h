// Cluster: the per-test execution environment shared by all nodes of a
// whole-system unit test (the MiniDFSCluster / MiniCluster analog).
//
// Owns the virtual clock and a facility registry through which nodes obtain
// shared per-cluster singletons (e.g. the Hadoop-Common IPC component). Each
// unit-test execution creates a fresh Cluster, so no state leaks between
// test runs.

#ifndef SRC_RUNTIME_CLUSTER_H_
#define SRC_RUNTIME_CLUSTER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/sim/sim_clock.h"

namespace zebra {

class Cluster {
 public:
  Cluster() = default;
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  SimClock& clock() { return clock_; }
  int64_t NowMs() const { return clock_.NowMs(); }

  // Pumps virtual time; due heartbeats/reports/checks fire in order.
  void AdvanceTime(int64_t delta_ms) { clock_.AdvanceBy(delta_ms); }

  // Returns the facility registered under `key`, creating it with `factory`
  // on first use. Shared facilities are how the corpus reproduces the
  // paper's "different nodes share the IPC component" false-positive source.
  template <typename T>
  T& GetFacility(const std::string& key, std::function<std::unique_ptr<T>()> factory) {
    auto it = facilities_.find(key);
    if (it == facilities_.end()) {
      std::shared_ptr<T> created = std::shared_ptr<T>(factory().release());
      it = facilities_.emplace(key, std::static_pointer_cast<void>(created)).first;
    }
    return *std::static_pointer_cast<T>(it->second);
  }

  // Global knobs individual corpus tests can flip (e.g. disabling IPC
  // sharing, the paper's one-line Hadoop fix).
  void SetFlag(const std::string& name, bool value) { flags_[name] = value; }
  bool GetFlag(const std::string& name) const {
    auto it = flags_.find(name);
    return it != flags_.end() && it->second;
  }

 private:
  SimClock clock_;
  std::map<std::string, std::shared_ptr<void>> facilities_;
  std::map<std::string, bool> flags_;
};

}  // namespace zebra

#endif  // SRC_RUNTIME_CLUSTER_H_
