#include "src/sim/wire.h"

#include <algorithm>
#include <array>
#include <cctype>

#include "src/common/error.h"
#include "src/common/rng.h"

namespace zebra {

namespace {

constexpr uint32_t kFrameMagic = 0x5EB7AC0Fu;

// Generates a CRC lookup table for the given reflected polynomial.
constexpr std::array<uint32_t, 256> MakeCrcTable(uint32_t polynomial) {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ polynomial : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

// CRC-32 (IEEE 802.3) and CRC-32C (Castagnoli) reflected polynomials.
constexpr std::array<uint32_t, 256> kCrc32Table = MakeCrcTable(0xEDB88320u);
constexpr std::array<uint32_t, 256> kCrc32cTable = MakeCrcTable(0x82F63B78u);

uint32_t CrcWithTable(const std::array<uint32_t, 256>& table, const uint8_t* data,
                      size_t size) {
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

constexpr char kRleHeader0 = 'R';
constexpr char kRleHeader1 = 'L';
constexpr char kXorHeader0 = 'X';
constexpr char kXorHeader1 = '8';
constexpr uint8_t kXor8Mask = 0x55;

Bytes RleCompress(const Bytes& payload) {
  Bytes out;
  out.push_back(static_cast<uint8_t>(kRleHeader0));
  out.push_back(static_cast<uint8_t>(kRleHeader1));
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  size_t i = 0;
  while (i < payload.size()) {
    uint8_t value = payload[i];
    size_t run = 1;
    while (i + run < payload.size() && payload[i + run] == value && run < 255) {
      ++run;
    }
    out.push_back(value);
    out.push_back(static_cast<uint8_t>(run));
    i += run;
  }
  return out;
}

Bytes RleDecompress(const Bytes& payload) {
  if (payload.size() < 6 || payload[0] != kRleHeader0 || payload[1] != kRleHeader1) {
    throw DecodeError("rle: missing stream header");
  }
  size_t offset = 2;
  uint32_t original_size = ReadU32(payload, &offset);
  Bytes out;
  out.reserve(original_size);
  while (offset < payload.size()) {
    if (offset + 2 > payload.size()) {
      throw DecodeError("rle: truncated run");
    }
    uint8_t value = payload[offset];
    uint8_t run = payload[offset + 1];
    offset += 2;
    if (run == 0) {
      throw DecodeError("rle: zero-length run");
    }
    out.insert(out.end(), run, value);
  }
  if (out.size() != original_size) {
    throw DecodeError("rle: size mismatch after decompression");
  }
  return out;
}

Bytes Xor8Transform(const Bytes& payload) {
  Bytes out;
  out.reserve(payload.size());
  for (uint8_t byte : payload) {
    out.push_back(byte ^ kXor8Mask);
  }
  return out;
}

Bytes Xor8Compress(const Bytes& payload) {
  Bytes out;
  out.push_back(static_cast<uint8_t>(kXorHeader0));
  out.push_back(static_cast<uint8_t>(kXorHeader1));
  Bytes body = Xor8Transform(payload);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

Bytes Xor8Decompress(const Bytes& payload) {
  if (payload.size() < 2 || payload[0] != kXorHeader0 || payload[1] != kXorHeader1) {
    throw DecodeError("xor8: missing stream header");
  }
  Bytes body(payload.begin() + 2, payload.end());
  return Xor8Transform(body);
}

}  // namespace

ChecksumType ParseChecksumType(std::string_view text) {
  std::string upper(text);
  std::transform(upper.begin(), upper.end(), upper.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  if (upper == "NONE") {
    return ChecksumType::kNone;
  }
  if (upper == "CRC32C") {
    return ChecksumType::kCrc32c;
  }
  return ChecksumType::kCrc32;
}

const char* ChecksumTypeName(ChecksumType type) {
  switch (type) {
    case ChecksumType::kNone:
      return "NONE";
    case ChecksumType::kCrc32:
      return "CRC32";
    case ChecksumType::kCrc32c:
      return "CRC32C";
  }
  return "CRC32";
}

uint32_t Crc32(const uint8_t* data, size_t size) {
  return CrcWithTable(kCrc32Table, data, size);
}

uint32_t Crc32c(const uint8_t* data, size_t size) {
  return CrcWithTable(kCrc32cTable, data, size);
}

uint32_t ComputeChecksum(ChecksumType type, const uint8_t* data, size_t size) {
  switch (type) {
    case ChecksumType::kNone:
      return 0;
    case ChecksumType::kCrc32:
      return Crc32(data, size);
    case ChecksumType::kCrc32c:
      return Crc32c(data, size);
  }
  return 0;
}

Bytes CompressPayload(std::string_view codec, const Bytes& payload) {
  if (codec == "none" || codec.empty()) {
    return payload;
  }
  if (codec == "rle") {
    return RleCompress(payload);
  }
  if (codec == "xor8") {
    return Xor8Compress(payload);
  }
  throw InternalError("unknown compression codec: " + std::string(codec));
}

Bytes DecompressPayload(std::string_view codec, const Bytes& payload) {
  if (codec == "none" || codec.empty()) {
    return payload;
  }
  if (codec == "rle") {
    return RleDecompress(payload);
  }
  if (codec == "xor8") {
    return Xor8Decompress(payload);
  }
  throw InternalError("unknown compression codec: " + std::string(codec));
}

Bytes EncryptPayload(const Bytes& payload, uint64_t key) {
  Rng keystream(key);
  Bytes out;
  out.reserve(payload.size());
  for (uint8_t byte : payload) {
    out.push_back(byte ^ static_cast<uint8_t>(keystream.NextU64()));
  }
  return out;
}

Bytes DecryptPayload(const Bytes& payload, uint64_t key) {
  // XOR keystream is symmetric.
  return EncryptPayload(payload, key);
}

Bytes EncodeFrame(const WireConfig& config, const Bytes& payload) {
  // Stage 1: canary envelope.
  Bytes body;
  AppendU32(&body, kFrameMagic);
  AppendLengthPrefixed(&body, payload);

  // Stage 2: per-chunk checksums + chunk count (appended so the receiver can
  // locate them only if it agrees on chunking).
  const size_t chunk = config.bytes_per_checksum > 0
                           ? static_cast<size_t>(config.bytes_per_checksum)
                           : body.size();
  uint32_t num_chunks = 0;
  Bytes checksummed = body;
  for (size_t offset = 0; offset < body.size(); offset += chunk) {
    size_t this_chunk = std::min(chunk, body.size() - offset);
    AppendU32(&checksummed,
              ComputeChecksum(config.checksum, body.data() + offset, this_chunk));
    ++num_chunks;
  }
  AppendU32(&checksummed, num_chunks);

  // Stage 3 + 4: compress, then encrypt.
  Bytes compressed = CompressPayload(config.compression, checksummed);
  if (config.encrypt) {
    return EncryptPayload(compressed, config.encrypt_key);
  }
  return compressed;
}

Bytes DecodeFrame(const WireConfig& config, const Bytes& frame) {
  Bytes compressed = config.encrypt ? DecryptPayload(frame, config.encrypt_key) : frame;
  Bytes checksummed = DecompressPayload(config.compression, compressed);

  if (checksummed.size() < 4) {
    throw DecodeError("frame too short for chunk count");
  }
  size_t tail = checksummed.size() - 4;
  uint32_t num_chunks = ReadU32(checksummed, &tail);

  const size_t chunk = config.bytes_per_checksum > 0
                           ? static_cast<size_t>(config.bytes_per_checksum)
                           : 0;
  // Body length implied by the receiver's chunking parameters.
  if (checksummed.size() < 4 + static_cast<size_t>(num_chunks) * 4) {
    throw ChecksumError("chunk count exceeds frame size");
  }
  size_t body_size = checksummed.size() - 4 - static_cast<size_t>(num_chunks) * 4;
  size_t expected_chunks =
      chunk == 0 ? (body_size > 0 ? 1 : 0) : (body_size + chunk - 1) / chunk;
  if (expected_chunks != num_chunks) {
    throw ChecksumError("chunk count mismatch: frame has " + std::to_string(num_chunks) +
                        ", receiver expects " + std::to_string(expected_chunks));
  }

  Bytes body(checksummed.begin(), checksummed.begin() + static_cast<long>(body_size));
  size_t checksum_offset = body_size;
  const size_t effective_chunk = chunk == 0 ? (body_size > 0 ? body_size : 1) : chunk;
  for (size_t offset = 0; offset < body.size(); offset += effective_chunk) {
    size_t this_chunk = std::min(effective_chunk, body.size() - offset);
    uint32_t stored = ReadU32(checksummed, &checksum_offset);
    uint32_t computed =
        ComputeChecksum(config.checksum, body.data() + offset, this_chunk);
    if (config.checksum != ChecksumType::kNone && stored != computed) {
      throw ChecksumError("checksum mismatch in chunk at offset " +
                          std::to_string(offset));
    }
  }

  size_t offset = 0;
  uint32_t magic = ReadU32(body, &offset);
  if (magic != kFrameMagic) {
    throw DecodeError("bad frame magic (wire configuration mismatch)");
  }
  return ReadLengthPrefixed(body, &offset);
}

std::string WireToken(std::string_view value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(Fnv1a64(value)));
  return buffer;
}

void RequireMatchingTokens(std::string_view channel, std::string_view initiator_token,
                           std::string_view acceptor_token) {
  if (initiator_token != acceptor_token) {
    throw HandshakeError(std::string(channel) + ": endpoints negotiated different " +
                         "transport parameters");
  }
}

void SimulatePacedWait(std::string_view operation, int64_t total_ms,
                       int64_t client_timeout_ms, int64_t server_pace_ms) {
  if (client_timeout_ms <= 0 || total_ms <= client_timeout_ms) {
    return;  // no timeout configured, or the operation finishes in time
  }
  if (server_pace_ms > client_timeout_ms) {
    throw TimeoutError(std::string(operation) + ": no response within " +
                       std::to_string(client_timeout_ms) + " ms (server progress " +
                       "interval " + std::to_string(server_pace_ms) + " ms)");
  }
}

}  // namespace zebra
