#include "src/sim/sim_network.h"

#include <algorithm>

#include "src/common/error.h"

namespace zebra {

InboundQueue::InboundQueue(int64_t rate_bytes_per_sec)
    : rate_bytes_per_sec_(rate_bytes_per_sec) {
  if (rate_bytes_per_sec_ <= 0) {
    throw InternalError("InboundQueue requires a positive drain rate");
  }
}

uint64_t InboundQueue::Enqueue(int64_t bytes, int64_t now_ms) {
  if (bytes < 0) {
    throw InternalError("InboundQueue::Enqueue with negative size");
  }
  int64_t start_ms = std::max(now_ms, busy_until_ms_);
  int64_t drain_ms = (bytes * 1000 + rate_bytes_per_sec_ - 1) / rate_bytes_per_sec_;
  busy_until_ms_ = start_ms + drain_ms;

  MessageRecord record;
  record.enqueue_ms = now_ms;
  record.delivery_ms = busy_until_ms_;
  uint64_t id = next_message_id_++;
  messages_[id] = record;
  return id;
}

int64_t InboundQueue::DeliveryTimeMs(uint64_t message_id) const {
  auto it = messages_.find(message_id);
  if (it == messages_.end()) {
    throw InternalError("unknown message id in InboundQueue");
  }
  return it->second.delivery_ms;
}

int64_t InboundQueue::DeliveryDelayMs(uint64_t message_id) const {
  auto it = messages_.find(message_id);
  if (it == messages_.end()) {
    throw InternalError("unknown message id in InboundQueue");
  }
  return it->second.delivery_ms - it->second.enqueue_ms;
}

int64_t InboundQueue::BacklogBytes(int64_t now_ms) const {
  if (busy_until_ms_ <= now_ms) {
    return 0;
  }
  return (busy_until_ms_ - now_ms) * rate_bytes_per_sec_ / 1000;
}

void InboundQueue::ForgetDelivered(int64_t now_ms) {
  for (auto it = messages_.begin(); it != messages_.end();) {
    if (it->second.delivery_ms <= now_ms) {
      it = messages_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace zebra
