// Token-bucket bandwidth model used by DataNode balancing transfers
// (dfs.datanode.balance.bandwidthPerSec).

#ifndef SRC_SIM_TOKEN_BUCKET_H_
#define SRC_SIM_TOKEN_BUCKET_H_

#include <cstdint>

namespace zebra {

// Accumulates `rate_bytes_per_sec` tokens per virtual second up to one second
// of burst. Callers pass the current SimClock time.
class TokenBucket {
 public:
  explicit TokenBucket(int64_t rate_bytes_per_sec)
      : rate_(rate_bytes_per_sec), tokens_(rate_bytes_per_sec) {}

  int64_t rate() const { return rate_; }

  // Refill according to elapsed virtual time, then try to take `bytes`.
  bool TryConsume(int64_t bytes, int64_t now_ms) {
    Refill(now_ms);
    if (tokens_ >= bytes) {
      tokens_ -= bytes;
      return true;
    }
    return false;
  }

  // Consume unconditionally; the deficit delays future sends. Returns the
  // virtual time when the bucket becomes non-negative again.
  int64_t ForceConsume(int64_t bytes, int64_t now_ms) {
    Refill(now_ms);
    tokens_ -= bytes;
    if (tokens_ >= 0 || rate_ <= 0) {
      return now_ms;
    }
    return now_ms + (-tokens_ * 1000 + rate_ - 1) / rate_;
  }

  // Milliseconds until `bytes` tokens are available (0 if available now).
  int64_t MsUntilAvailable(int64_t bytes, int64_t now_ms) {
    Refill(now_ms);
    if (tokens_ >= bytes) {
      return 0;
    }
    if (rate_ <= 0) {
      return -1;  // never
    }
    int64_t deficit = bytes - tokens_;
    return (deficit * 1000 + rate_ - 1) / rate_;
  }

  int64_t AvailableTokens(int64_t now_ms) {
    Refill(now_ms);
    return tokens_;
  }

 private:
  void Refill(int64_t now_ms) {
    if (now_ms <= last_refill_ms_) {
      return;
    }
    int64_t earned = (now_ms - last_refill_ms_) * rate_ / 1000;
    tokens_ = tokens_ + earned;
    if (tokens_ > rate_) {
      tokens_ = rate_;  // at most one second of burst
    }
    last_refill_ms_ = now_ms;
  }

  int64_t rate_;
  int64_t tokens_;
  int64_t last_refill_ms_ = 0;
};

}  // namespace zebra

#endif  // SRC_SIM_TOKEN_BUCKET_H_
