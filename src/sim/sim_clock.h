// SimClock: deterministic virtual time.
//
// All time-dependent behaviour in the mini-applications (heartbeats, dead-node
// detection, delayed block reports, balancer congestion backoff, throttling)
// runs against a SimClock owned by the cluster. Unit tests pump the clock
// explicitly (cluster.AdvanceTime(ms)), which fires due timers in timestamp
// order on the pumping thread. This keeps hour-scale timeout scenarios both
// fast and reproducible.

#ifndef SRC_SIM_SIM_CLOCK_H_
#define SRC_SIM_SIM_CLOCK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>

namespace zebra {

class SimClock {
 public:
  using TaskId = uint64_t;

  SimClock() = default;
  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  int64_t NowMs() const;

  // Runs every task due in (now, now + delta_ms], advancing `now` to each
  // task's due time in order, then sets now = old now + delta_ms. Tasks may
  // schedule further tasks (including at already-passed times; those run
  // before the advance returns). Recursive advancing is an error.
  void AdvanceBy(int64_t delta_ms);
  void AdvanceTo(int64_t time_ms);

  // One-shot task at an absolute / relative time.
  TaskId ScheduleAt(int64_t time_ms, std::function<void()> fn);
  TaskId ScheduleAfter(int64_t delay_ms, std::function<void()> fn);

  // Periodic task: first fires at now + initial_delay_ms, then every
  // period_ms. period_ms must be > 0.
  TaskId SchedulePeriodic(int64_t initial_delay_ms, int64_t period_ms,
                          std::function<void()> fn);

  // Cancels a pending task. Safe to call for already-fired one-shot tasks.
  void Cancel(TaskId id);

  // Number of pending (scheduled, uncancelled) tasks.
  size_t PendingTasks() const;

 private:
  struct Task {
    TaskId id = 0;
    int64_t period_ms = 0;  // 0 = one-shot
    std::function<void()> fn;
  };

  mutable std::mutex mutex_;
  int64_t now_ms_ = 0;
  uint64_t next_task_id_ = 1;
  uint64_t next_seq_ = 1;
  bool advancing_ = false;
  // Ordered by (due time, insertion sequence) for deterministic FIFO ties.
  std::map<std::pair<int64_t, uint64_t>, Task> queue_;
  std::set<TaskId> cancelled_;
};

}  // namespace zebra

#endif  // SRC_SIM_SIM_CLOCK_H_
