// SimNetwork: rate-limited inbound queues.
//
// Each node's inbound link drains at a configured rate against virtual time;
// messages are delivered FIFO, so a small control message (heartbeat,
// progress report) queued behind a data backlog is delayed by exactly the
// time the backlog takes to drain — the mechanism behind the paper's
// dfs.datanode.balance.bandwidthPerSec finding.

#ifndef SRC_SIM_SIM_NETWORK_H_
#define SRC_SIM_SIM_NETWORK_H_

#include <cstdint>
#include <map>

namespace zebra {

// FIFO inbound queue draining at a fixed rate.
class InboundQueue {
 public:
  explicit InboundQueue(int64_t rate_bytes_per_sec);

  int64_t rate_bytes_per_sec() const { return rate_bytes_per_sec_; }

  // Enqueues a message at virtual time `now_ms`; returns its id.
  uint64_t Enqueue(int64_t bytes, int64_t now_ms);

  // The virtual time at which the message finishes draining (is delivered).
  int64_t DeliveryTimeMs(uint64_t message_id) const;

  // Convenience: delivery delay relative to the enqueue time.
  int64_t DeliveryDelayMs(uint64_t message_id) const;

  // Bytes still queued (not yet drained) at `now_ms`.
  int64_t BacklogBytes(int64_t now_ms) const;

  // Drops bookkeeping for messages already delivered by `now_ms`.
  void ForgetDelivered(int64_t now_ms);

 private:
  struct MessageRecord {
    int64_t enqueue_ms = 0;
    int64_t delivery_ms = 0;
  };

  int64_t rate_bytes_per_sec_;
  int64_t busy_until_ms_ = 0;  // when the last queued byte drains
  uint64_t next_message_id_ = 1;
  std::map<uint64_t, MessageRecord> messages_;
};

}  // namespace zebra

#endif  // SRC_SIM_SIM_NETWORK_H_
