// Wire formats: checksums, compression, encryption, framing.
//
// Deliberately, frames carry no self-describing metadata: the sender encodes
// according to *its* configuration and the receiver decodes according to
// *its own*. This is exactly the property that makes compression-, encryption-
// and checksum-related parameters heterogeneous-unsafe in the paper's targets
// (Table 3), and the mismatches fail here for the same mechanical reasons —
// garbage headers, failed checksum verification, truncated buffers.

#ifndef SRC_SIM_WIRE_H_
#define SRC_SIM_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"

namespace zebra {

// ---- Checksums --------------------------------------------------------------

enum class ChecksumType {
  kNone,
  kCrc32,
  kCrc32c,
};

// Parses "NONE" / "CRC32" / "CRC32C" (the HDFS dfs.checksum.type values).
// Unknown strings map to kCrc32 (the HDFS fallback behaviour).
ChecksumType ParseChecksumType(std::string_view text);
const char* ChecksumTypeName(ChecksumType type);

uint32_t Crc32(const uint8_t* data, size_t size);
uint32_t Crc32c(const uint8_t* data, size_t size);
uint32_t ComputeChecksum(ChecksumType type, const uint8_t* data, size_t size);

// ---- Compression codecs ------------------------------------------------------

// Supported codec names: "none", "rle", "xor8".
Bytes CompressPayload(std::string_view codec, const Bytes& payload);
// Throws DecodeError if the bytes are not a valid stream for `codec`.
Bytes DecompressPayload(std::string_view codec, const Bytes& payload);

// ---- Encryption ---------------------------------------------------------------

// XOR keystream derived from a shared secret; symmetric.
Bytes EncryptPayload(const Bytes& payload, uint64_t key);
Bytes DecryptPayload(const Bytes& payload, uint64_t key);

// Default data-transfer key shared by all nodes of a cluster (key agreement is
// out of scope; mismatched *enablement* is what we test).
inline constexpr uint64_t kClusterDataKey = 0x5EB7A0DECAFBEEFULL;

// ---- Framing ------------------------------------------------------------------

struct WireConfig {
  bool encrypt = false;
  uint64_t encrypt_key = kClusterDataKey;
  std::string compression = "none";
  ChecksumType checksum = ChecksumType::kCrc32;
  int64_t bytes_per_checksum = 512;
};

// Encode pipeline: payload -> [magic|len|payload] -> append per-chunk
// checksums + chunk count -> compress -> encrypt.
Bytes EncodeFrame(const WireConfig& config, const Bytes& payload);

// Decode pipeline (receiver-side config): decrypt -> decompress -> verify
// chunk count and per-chunk checksums -> check magic and length -> payload.
// Throws DecodeError / ChecksumError on any mismatch.
Bytes DecodeFrame(const WireConfig& config, const Bytes& frame);

// ---- Handshakes -----------------------------------------------------------------

// Opaque token derived from a parameter value. Two endpoints can only
// establish a connection if their tokens match — modeling SASL/SSL/protocol
// negotiation failures without leaking the value itself into the protocol.
std::string WireToken(std::string_view value);

// Throws HandshakeError mentioning `channel` if tokens differ.
void RequireMatchingTokens(std::string_view channel, std::string_view initiator_token,
                           std::string_view acceptor_token);

// ---- Timeout pacing ---------------------------------------------------------------

// Models a long-running server-side operation of `total_ms` virtual
// milliseconds observed by a client that aborts after `client_timeout_ms` of
// silence. The server emits progress/keepalive messages every
// `server_pace_ms` (servers derive this from their *own* timeout parameter).
// Throws TimeoutError when the client's silence window elapses first.
void SimulatePacedWait(std::string_view operation, int64_t total_ms,
                       int64_t client_timeout_ms, int64_t server_pace_ms);

}  // namespace zebra

#endif  // SRC_SIM_WIRE_H_
