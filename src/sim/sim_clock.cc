#include "src/sim/sim_clock.h"

#include "src/common/error.h"

namespace zebra {

int64_t SimClock::NowMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return now_ms_;
}

void SimClock::AdvanceBy(int64_t delta_ms) {
  int64_t target = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    target = now_ms_ + delta_ms;
  }
  AdvanceTo(target);
}

void SimClock::AdvanceTo(int64_t time_ms) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (advancing_) {
      throw InternalError("SimClock::AdvanceTo called from within a timer callback");
    }
    advancing_ = true;
  }

  while (true) {
    Task task;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = queue_.begin();
      if (it == queue_.end() || it->first.first > time_ms) {
        now_ms_ = std::max(now_ms_, time_ms);
        advancing_ = false;
        return;
      }
      int64_t due = it->first.first;
      task = std::move(it->second);
      queue_.erase(it);
      if (cancelled_.count(task.id) > 0) {
        cancelled_.erase(task.id);
        continue;
      }
      now_ms_ = std::max(now_ms_, due);
      if (task.period_ms > 0) {
        // Re-arm before running so the callback can Cancel() itself.
        queue_[{now_ms_ + task.period_ms, next_seq_++}] =
            Task{task.id, task.period_ms, task.fn};
      }
    }
    task.fn();
  }
}

SimClock::TaskId SimClock::ScheduleAt(int64_t time_ms, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  TaskId id = next_task_id_++;
  queue_[{time_ms, next_seq_++}] = Task{id, 0, std::move(fn)};
  return id;
}

SimClock::TaskId SimClock::ScheduleAfter(int64_t delay_ms, std::function<void()> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  TaskId id = next_task_id_++;
  queue_[{now_ms_ + delay_ms, next_seq_++}] = Task{id, 0, std::move(fn)};
  return id;
}

SimClock::TaskId SimClock::SchedulePeriodic(int64_t initial_delay_ms, int64_t period_ms,
                                            std::function<void()> fn) {
  if (period_ms <= 0) {
    throw InternalError("SimClock::SchedulePeriodic requires period > 0");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  TaskId id = next_task_id_++;
  queue_[{now_ms_ + initial_delay_ms, next_seq_++}] = Task{id, period_ms, std::move(fn)};
  return id;
}

void SimClock::Cancel(TaskId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->second.id == id) {
      queue_.erase(it);
      return;
    }
  }
  // Might be mid-flight (periodic re-arm raced with a running callback); mark
  // cancelled so the next firing is suppressed.
  cancelled_.insert(id);
}

size_t SimClock::PendingTasks() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

}  // namespace zebra
