// MiniMR (MapReduce analog) parameter names and defaults. The eight
// heterogeneous-unsafe parameters of Table 3 are implemented with the same
// failure mechanisms.

#ifndef SRC_APPS_MINIMR_MR_PARAMS_H_
#define SRC_APPS_MINIMR_MR_PARAMS_H_

#include <cstdint>

namespace zebra {

inline constexpr char kMrApp[] = "minimr";

// ---- Table 3 heterogeneous-unsafe parameters ---------------------------------

// "Different Mapper/Reducer output commit dirs cause Hadoop Archive error."
inline constexpr char kMrCommitterVersion[] =
    "mapreduce.fileoutputcommitter.algorithm.version";
inline constexpr int64_t kMrCommitterVersionDefault = 2;

// "Reducer fails during shuffling due to checksum error."
inline constexpr char kMrEncryptedIntermediate[] =
    "mapreduce.job.encrypted-intermediate-data";
inline constexpr bool kMrEncryptedIntermediateDefault = false;

// "Reducer fails when copying Mapper output."
inline constexpr char kMrJobMaps[] = "mapreduce.job.maps";
inline constexpr int64_t kMrJobMapsDefault = 2;

// "Reducer fails when copying Mapper output."
inline constexpr char kMrJobReduces[] = "mapreduce.job.reduces";
inline constexpr int64_t kMrJobReducesDefault = 1;

// "Reducer fails during shuffling due to incorrect header."
inline constexpr char kMrMapOutputCompress[] = "mapreduce.map.output.compress";
inline constexpr bool kMrMapOutputCompressDefault = false;

// "Reducer fails during shuffling due to incorrect header."
inline constexpr char kMrMapOutputCodec[] = "mapreduce.map.output.compress.codec";
inline constexpr char kMrMapOutputCodecDefault[] = "rle";

// "End users may observe inconsistent names of output files."
inline constexpr char kMrOutputCompress[] =
    "mapreduce.output.fileoutputformat.compress";
inline constexpr bool kMrOutputCompressDefault = false;

// "NodeManager's Pluggable Shuffle fails to decode messages."
inline constexpr char kMrShuffleSsl[] = "mapreduce.shuffle.ssl.enabled";
inline constexpr bool kMrShuffleSslDefault = false;

// ---- Heterogeneous-safe parameters -------------------------------------------

inline constexpr char kMrIoSortMb[] = "mapreduce.task.io.sort.mb";
inline constexpr int64_t kMrIoSortMbDefault = 100;

inline constexpr char kMrMapMemoryMb[] = "mapreduce.map.memory.mb";
inline constexpr int64_t kMrMapMemoryMbDefault = 1024;

inline constexpr char kMrReduceMemoryMb[] = "mapreduce.reduce.memory.mb";
inline constexpr int64_t kMrReduceMemoryMbDefault = 1024;

inline constexpr char kMrTaskTimeout[] = "mapreduce.task.timeout";
inline constexpr int64_t kMrTaskTimeoutDefault = 600000;

inline constexpr char kMrJobName[] = "mapreduce.job.name";
inline constexpr char kMrJobNameDefault[] = "job";

inline constexpr char kMrSortSpillPercent[] = "mapreduce.map.sort.spill.percent";
inline constexpr double kMrSortSpillPercentDefault = 0.8;

inline constexpr char kMrShuffleParallelCopies[] =
    "mapreduce.reduce.shuffle.parallelcopies";
inline constexpr int64_t kMrShuffleParallelCopiesDefault = 5;

inline constexpr char kMrHistoryMaxAgeMs[] = "mapreduce.jobhistory.max-age-ms";
inline constexpr int64_t kMrHistoryMaxAgeMsDefault = 604800000;

inline constexpr char kMrMapSpeculative[] = "mapreduce.map.speculative";
inline constexpr bool kMrMapSpeculativeDefault = false;

inline constexpr char kMrProgressPollInterval[] =
    "mapreduce.client.progressmonitor.pollinterval";
inline constexpr int64_t kMrProgressPollIntervalDefault = 1000;

}  // namespace zebra

#endif  // SRC_APPS_MINIMR_MR_PARAMS_H_
