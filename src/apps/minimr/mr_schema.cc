#include "src/apps/minimr/mr_schema.h"

#include "src/apps/minimr/mr_params.h"

namespace zebra {

void RegisterMiniMrSchema(ConfSchema& schema) {
  const char* app = kMrApp;

  schema.AddParam({kMrCommitterVersion, app, ParamType::kEnum, "2",
                   {"1", "2"}, "File output committer algorithm version"});
  schema.AddParam({kMrEncryptedIntermediate, app, ParamType::kBool, "false",
                   {"true", "false"}, "Encrypt intermediate map output"});
  schema.AddParam({kMrJobMaps, app, ParamType::kInt, "2",
                   {"1", "2", "4"}, "Number of map tasks"});
  schema.AddParam({kMrJobReduces, app, ParamType::kInt, "1",
                   {"1", "2", "4"}, "Number of reduce tasks"});
  schema.AddParam({kMrMapOutputCompress, app, ParamType::kBool, "false",
                   {"true", "false"}, "Compress map output"});
  schema.AddParam({kMrMapOutputCodec, app, ParamType::kEnum, "rle",
                   {"rle", "xor8"}, "Codec for compressed map output"});
  schema.AddParam({kMrOutputCompress, app, ParamType::kBool, "false",
                   {"true", "false"}, "Compress final job output"});
  schema.AddParam({kMrShuffleSsl, app, ParamType::kBool, "false",
                   {"true", "false"}, "SSL for the shuffle transport"});

  schema.AddParam({kMrIoSortMb, app, ParamType::kInt, "100",
                   {"10", "100", "1000"}, "Sort buffer megabytes (task-local)"});
  schema.AddParam({kMrMapMemoryMb, app, ParamType::kInt, "1024",
                   {"512", "1024", "4096"}, "Map container memory (task-local)"});
  schema.AddParam({kMrReduceMemoryMb, app, ParamType::kInt, "1024",
                   {"512", "1024", "4096"}, "Reduce container memory (task-local)"});
  schema.AddParam({kMrTaskTimeout, app, ParamType::kInt, "600000",
                   {"60000", "600000"}, "Task liveness timeout (task-local)"});
  schema.AddParam({kMrJobName, app, ParamType::kString, "job",
                   {"job", "wordcount"}, "Job display name"});
  schema.AddParam({kMrSortSpillPercent, app, ParamType::kDouble, "0.8",
                   {"0.5", "0.8"}, "Spill threshold fraction (task-local)"});
  schema.AddParam({kMrShuffleParallelCopies, app, ParamType::kInt, "5",
                   {"1", "5", "20"}, "Parallel shuffle fetchers (reducer-local)"});
  schema.AddParam({kMrHistoryMaxAgeMs, app, ParamType::kInt, "604800000",
                   {"86400000", "604800000"}, "History retention (server-local)"});
  schema.AddParam({kMrMapSpeculative, app, ParamType::kBool, "false",
                   {"true", "false"}, "Speculative map execution"});
  schema.AddParam({kMrProgressPollInterval, app, ParamType::kInt, "1000",
                   {"100", "1000"}, "Client progress poll interval (client-local)"});
}

}  // namespace zebra
