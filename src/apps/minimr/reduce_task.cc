#include "src/apps/minimr/reduce_task.h"

#include <cstdio>

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/minimr/map_task.h"
#include "src/apps/minimr/mr_params.h"
#include "src/common/bytes.h"
#include "src/common/error.h"
#include "src/sim/wire.h"

namespace zebra {

ReduceTask::ReduceTask(Cluster* cluster, const Configuration& conf, int task_index)
    : init_scope_(kMrApp, this, "ReduceTask", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kMrApp, conf, __FILE__, __LINE__)),
      task_index_(task_index) {
  conf_.GetInt(kMrReduceMemoryMb, kMrReduceMemoryMbDefault);
  conf_.GetInt(kMrShuffleParallelCopies, kMrShuffleParallelCopiesDefault);
  conf_.GetInt(kMrTaskTimeout, kMrTaskTimeoutDefault);
  GetIpc(*cluster, this);
  init_scope_.Finish();
}

void ReduceTask::Run(const std::vector<MapTask*>& mappers, MrOutputStore* store) {
  // Copy phase: this reducer believes there are job.maps mappers.
  int expected_maps = static_cast<int>(conf_.GetInt(kMrJobMaps, kMrJobMapsDefault));
  WireConfig wire = MrIntermediateWireConfig(conf_);
  for (int m = 0; m < expected_maps; ++m) {
    if (m >= static_cast<int>(mappers.size())) {
      throw RpcError("reducer " + std::to_string(task_index_) +
                     " cannot copy output of mapper " + std::to_string(m) +
                     ": no such mapper (job ran " + std::to_string(mappers.size()) +
                     ")");
    }
    Bytes frame = mappers[m]->FetchShuffle(task_index_, conf_);
    Bytes payload = DecodeFrame(wire, frame);  // decoded with *this* side's config
    size_t offset = 0;
    uint32_t entries = ReadU32(payload, &offset);
    for (uint32_t i = 0; i < entries; ++i) {
      std::string word = ReadLengthPrefixedString(payload, &offset);
      uint32_t count = ReadU32(payload, &offset);
      counts_[word] += static_cast<int>(count);
    }
  }

  // Write phase: render the merged counts.
  std::string contents;
  for (const auto& [word, count] : counts_) {
    contents += word + "\t" + std::to_string(count) + "\n";
  }
  bool compress_output = conf_.GetBool(kMrOutputCompress, kMrOutputCompressDefault);
  char name[64];
  std::snprintf(name, sizeof(name), "part-r-%05d", task_index_);
  output_file_ = std::string(name) + (compress_output ? ".rle" : "");
  if (compress_output) {
    contents = StringFromBytes(CompressPayload("rle", BytesFromString(contents)));
  }

  // Task commit per this reducer's committer algorithm version: v1 stages in
  // the temporary attempt directory (the job commit must relocate it); v2
  // writes directly into the final output directory.
  int64_t version = conf_.GetInt(kMrCommitterVersion, kMrCommitterVersionDefault);
  if (version == 1) {
    store->temporary["_temporary/attempt_r_" + std::to_string(task_index_) + "/" +
                     output_file_] = contents;
  } else {
    store->final_dir[output_file_] = contents;
  }
}

}  // namespace zebra
