// MiniMR MapTask: tokenizes input records into (word, 1) pairs, partitions by
// its own mapreduce.job.reduces, and serves shuffle fetches with intermediate
// data framed per its own compression/encryption settings.

#ifndef SRC_APPS_MINIMR_MAP_TASK_H_
#define SRC_APPS_MINIMR_MAP_TASK_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"
#include "src/sim/wire.h"

namespace zebra {

// Wire configuration for intermediate (map output / shuffle) data.
WireConfig MrIntermediateWireConfig(const Configuration& conf);

class MapTask {
 public:
  MapTask(Cluster* cluster, const Configuration& conf, int task_index);

  MapTask(const MapTask&) = delete;
  MapTask& operator=(const MapTask&) = delete;

  int task_index() const { return task_index_; }
  const Configuration& conf() const { return conf_; }

  // Runs the map phase over `records`, producing one framed partition per
  // reducer (count from *this* task's mapreduce.job.reduces).
  void Run(const std::vector<std::string>& records);

  int NumPartitions() const { return static_cast<int>(partitions_.size()); }

  // Shuffle fetch: validates the shuffle SSL handshake against the fetching
  // reducer's configuration, then returns the framed partition.
  Bytes FetchShuffle(int partition, const Configuration& reducer_conf) const;

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  int task_index_;
  std::map<int, Bytes> partitions_;  // partition index -> encoded frame
};

}  // namespace zebra

#endif  // SRC_APPS_MINIMR_MAP_TASK_H_
