// Schema registration for MiniMR parameters.

#ifndef SRC_APPS_MINIMR_MR_SCHEMA_H_
#define SRC_APPS_MINIMR_MR_SCHEMA_H_

#include "src/conf/conf_schema.h"

namespace zebra {

void RegisterMiniMrSchema(ConfSchema& schema);

}  // namespace zebra

#endif  // SRC_APPS_MINIMR_MR_SCHEMA_H_
