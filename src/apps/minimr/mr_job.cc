#include "src/apps/minimr/mr_job.h"

#include <cstdio>
#include <memory>

#include "src/apps/minimr/map_task.h"
#include "src/apps/minimr/mr_params.h"
#include "src/common/error.h"
#include "src/common/strings.h"

namespace zebra {

WordCountResult RunWordCountJob(Cluster& cluster, const Configuration& driver_conf,
                                const std::vector<std::string>& records) {
  WordCountResult result;

  int num_maps = static_cast<int>(driver_conf.GetInt(kMrJobMaps, kMrJobMapsDefault));
  int num_reduces =
      static_cast<int>(driver_conf.GetInt(kMrJobReduces, kMrJobReducesDefault));
  driver_conf.Get(kMrJobName, kMrJobNameDefault);
  driver_conf.GetInt(kMrProgressPollInterval, kMrProgressPollIntervalDefault);
  if (num_maps < 1 || num_reduces < 1) {
    throw Error("job requires at least one map and one reduce task");
  }

  // Launch map tasks and split the input round-robin among them.
  std::vector<std::unique_ptr<MapTask>> maps;
  std::vector<std::vector<std::string>> splits(static_cast<size_t>(num_maps));
  for (size_t i = 0; i < records.size(); ++i) {
    splits[i % static_cast<size_t>(num_maps)].push_back(records[i]);
  }
  for (int m = 0; m < num_maps; ++m) {
    maps.push_back(std::make_unique<MapTask>(&cluster, driver_conf, m));
    maps.back()->Run(splits[static_cast<size_t>(m)]);
  }
  std::vector<MapTask*> map_ptrs;
  for (auto& map : maps) {
    map_ptrs.push_back(map.get());
  }

  // Launch reduce tasks; each shuffles, merges and task-commits.
  std::vector<std::unique_ptr<ReduceTask>> reducers;
  for (int r = 0; r < num_reduces; ++r) {
    reducers.push_back(std::make_unique<ReduceTask>(&cluster, driver_conf, r));
    reducers.back()->Run(map_ptrs, &result.store);
  }

  // Job commit: with committer v1 the *driver* relocates staged task output
  // into the final directory; with v2 there is nothing to relocate.
  int64_t driver_version =
      driver_conf.GetInt(kMrCommitterVersion, kMrCommitterVersionDefault);
  if (driver_version == 1) {
    for (const auto& [path, contents] : result.store.temporary) {
      // _temporary/attempt_r_<i>/<file> -> <file>
      auto pos = path.find_last_of('/');
      result.store.final_dir[path.substr(pos + 1)] = contents;
    }
    result.store.temporary.clear();
  }

  // "Hadoop Archive" validation over the final directory: every reducer's
  // part file must exist exactly once and nothing may remain staged.
  if (!result.store.temporary.empty()) {
    throw Error("archive failed: " + std::to_string(result.store.temporary.size()) +
                " task outputs remained in _temporary after job commit");
  }
  for (int r = 0; r < num_reduces; ++r) {
    char prefix[64];
    std::snprintf(prefix, sizeof(prefix), "part-r-%05d", r);
    bool found = false;
    for (const auto& [name, contents] : result.store.final_dir) {
      if (StartsWith(name, prefix)) {
        found = true;
        break;
      }
    }
    if (!found) {
      throw Error("archive failed: missing output file " + std::string(prefix) +
                  " in the job output directory");
    }
  }

  for (const auto& [name, contents] : result.store.final_dir) {
    result.output_files.push_back(name);
  }
  for (const auto& reducer : reducers) {
    for (const auto& [word, count] : reducer->counts()) {
      result.counts[word] += count;
    }
  }
  return result;
}

}  // namespace zebra
