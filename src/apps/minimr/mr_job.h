// MiniMR job driver: the client-side orchestration of a word-count job
// (task creation, shuffle, job commit, archive validation).
//
// The driver runs on the unit test's configuration object — it is the
// "client" entity — while every MapTask/ReduceTask clones its own
// configuration at initialization.

#ifndef SRC_APPS_MINIMR_MR_JOB_H_
#define SRC_APPS_MINIMR_MR_JOB_H_

#include <map>
#include <string>
#include <vector>

#include "src/apps/minimr/reduce_task.h"
#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"

namespace zebra {

struct WordCountResult {
  std::map<std::string, int> counts;            // merged across reducers
  std::vector<std::string> output_files;        // names in the final directory
  MrOutputStore store;                          // raw output areas
};

// Runs a full word-count job: the driver's configuration decides how many
// MapTasks and ReduceTasks are launched and how the job commit relocates
// staged output; each task follows its own configuration for partitioning,
// shuffle wire formats and task commit.
//
// After job commit, the "Hadoop Archive" step validates that every expected
// part file reached the final directory and that no staged output remains;
// violations raise Error (the paper's archive failure).
WordCountResult RunWordCountJob(Cluster& cluster, const Configuration& driver_conf,
                                const std::vector<std::string>& records);

}  // namespace zebra

#endif  // SRC_APPS_MINIMR_MR_JOB_H_
