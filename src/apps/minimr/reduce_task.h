// MiniMR ReduceTask: fetches one shuffle partition from every mapper (count
// from its own mapreduce.job.maps), merges the counts, and commits output
// through the file output committer algorithm its own configuration selects.

#ifndef SRC_APPS_MINIMR_REDUCE_TASK_H_
#define SRC_APPS_MINIMR_REDUCE_TASK_H_

#include <map>
#include <string>
#include <vector>

#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

class MapTask;

// The job's output "filesystem": temporary (v1 staging) and final areas.
struct MrOutputStore {
  std::map<std::string, std::string> temporary;  // task-attempt staging (v1)
  std::map<std::string, std::string> final_dir;  // job output directory
};

class ReduceTask {
 public:
  ReduceTask(Cluster* cluster, const Configuration& conf, int task_index);

  ReduceTask(const ReduceTask&) = delete;
  ReduceTask& operator=(const ReduceTask&) = delete;

  int task_index() const { return task_index_; }
  const Configuration& conf() const { return conf_; }

  // Shuffle + reduce + write + task-commit.
  void Run(const std::vector<MapTask*>& mappers, MrOutputStore* store);

  const std::map<std::string, int>& counts() const { return counts_; }

  // The output file name this reducer produced (suffix depends on its own
  // fileoutputformat.compress).
  const std::string& output_file() const { return output_file_; }

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  int task_index_;
  std::map<std::string, int> counts_;
  std::string output_file_;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIMR_REDUCE_TASK_H_
