#include "src/apps/minimr/job_history_server.h"

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/appcommon/rpc_gate.h"
#include "src/apps/minimr/mr_params.h"

namespace zebra {

JobHistoryServer::JobHistoryServer(Cluster* cluster, const Configuration& conf)
    : init_scope_(kMrApp, this, "JobHistoryServer", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kMrApp, conf, __FILE__, __LINE__)),
      cluster_(cluster) {
  conf_.GetInt(kMrHistoryMaxAgeMs, kMrHistoryMaxAgeMsDefault);
  GetIpc(*cluster_, this);
  init_scope_.Finish();
}

void JobHistoryServer::RecordJob(const std::string& job_name) {
  jobs_.push_back(job_name);
}

int JobHistoryServer::NumJobs(const Configuration& client_conf) {
  RpcGate(*cluster_, this, client_conf, conf_, "HSClientProtocol.getJobReport");
  return static_cast<int>(jobs_.size());
}

}  // namespace zebra
