// MiniMR JobHistoryServer: records completed jobs and serves queries.

#ifndef SRC_APPS_MINIMR_JOB_HISTORY_SERVER_H_
#define SRC_APPS_MINIMR_JOB_HISTORY_SERVER_H_

#include <string>
#include <vector>

#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

class JobHistoryServer {
 public:
  JobHistoryServer(Cluster* cluster, const Configuration& conf);

  JobHistoryServer(const JobHistoryServer&) = delete;
  JobHistoryServer& operator=(const JobHistoryServer&) = delete;

  const Configuration& conf() const { return conf_; }

  void RecordJob(const std::string& job_name);

  // Client query over the shared RPC layer.
  int NumJobs(const Configuration& client_conf);

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;
  std::vector<std::string> jobs_;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIMR_JOB_HISTORY_SERVER_H_
