#include "src/apps/minimr/map_task.h"

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/minimr/mr_params.h"
#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/common/strings.h"

namespace zebra {

WireConfig MrIntermediateWireConfig(const Configuration& conf) {
  WireConfig wire;
  wire.encrypt = conf.GetBool(kMrEncryptedIntermediate, kMrEncryptedIntermediateDefault);
  bool compress = conf.GetBool(kMrMapOutputCompress, kMrMapOutputCompressDefault);
  wire.compression =
      compress ? conf.Get(kMrMapOutputCodec, kMrMapOutputCodecDefault) : "none";
  // MapReduce checksums its IFile spills with a fixed CRC.
  wire.checksum = ChecksumType::kCrc32;
  wire.bytes_per_checksum = 512;
  return wire;
}

MapTask::MapTask(Cluster* cluster, const Configuration& conf, int task_index)
    : init_scope_(kMrApp, this, "MapTask", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kMrApp, conf, __FILE__, __LINE__)),
      task_index_(task_index) {
  conf_.GetInt(kMrIoSortMb, kMrIoSortMbDefault);
  conf_.GetInt(kMrMapMemoryMb, kMrMapMemoryMbDefault);
  conf_.GetDouble(kMrSortSpillPercent, kMrSortSpillPercentDefault);
  conf_.GetBool(kMrMapSpeculative, kMrMapSpeculativeDefault);
  GetIpc(*cluster, this);
  init_scope_.Finish();
}

void MapTask::Run(const std::vector<std::string>& records) {
  int num_reduces =
      static_cast<int>(conf_.GetInt(kMrJobReduces, kMrJobReducesDefault));
  if (num_reduces < 1) {
    num_reduces = 1;
  }

  // Tokenize into (word, 1) pairs and bucket by hash(word) % R.
  std::map<int, std::map<std::string, int>> buckets;
  for (const std::string& record : records) {
    for (const std::string& word : StrSplit(record, ' ')) {
      if (word.empty()) {
        continue;
      }
      int partition = static_cast<int>(Fnv1a64(word) % static_cast<uint64_t>(num_reduces));
      buckets[partition][word] += 1;
    }
  }

  // Serialize and frame every partition (empty ones included so reducers can
  // always fetch their index).
  WireConfig wire = MrIntermediateWireConfig(conf_);
  for (int partition = 0; partition < num_reduces; ++partition) {
    Bytes payload;
    const auto& counts = buckets[partition];
    AppendU32(&payload, static_cast<uint32_t>(counts.size()));
    for (const auto& [word, count] : counts) {
      AppendLengthPrefixedString(&payload, word);
      AppendU32(&payload, static_cast<uint32_t>(count));
    }
    partitions_[partition] = EncodeFrame(wire, payload);
  }
}

Bytes MapTask::FetchShuffle(int partition, const Configuration& reducer_conf) const {
  // Pluggable shuffle transport: both ends must agree on SSL.
  RequireMatchingTokens(
      "mapreduce-shuffle",
      WireToken(reducer_conf.Get(kMrShuffleSsl, "false")),
      WireToken(conf_.Get(kMrShuffleSsl, "false")));
  auto it = partitions_.find(partition);
  if (it == partitions_.end()) {
    throw RpcError("map " + std::to_string(task_index_) + " has no partition " +
                   std::to_string(partition) +
                   " (produced " + std::to_string(partitions_.size()) + ")");
  }
  return it->second;
}

}  // namespace zebra
