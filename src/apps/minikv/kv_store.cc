#include "src/apps/minikv/kv_store.h"

#include <algorithm>

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/appcommon/rpc_gate.h"
#include "src/apps/minikv/kv_params.h"
#include "src/common/error.h"
#include "src/common/rng.h"

namespace zebra {

HMaster::HMaster(Cluster* cluster, const Configuration& conf)
    : init_scope_(kKvApp, this, "HMaster", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kKvApp, conf, __FILE__, __LINE__)),
      cluster_(cluster) {
  conf_.GetInt(kKvMasterInfoPort, kKvMasterInfoPortDefault);
  conf_.GetInt(kKvBalancerPeriod, kKvBalancerPeriodDefault);
  conf_.Get(kKvZkQuorum, kKvZkQuorumDefault);
  GetIpc(*cluster_, this);
  init_scope_.Finish();
}

void HMaster::RegisterRegionServer(HRegionServer* rs) { region_servers_.push_back(rs); }

void HMaster::CreateTable(const std::string& table) {
  if (region_servers_.empty()) {
    throw RpcError("cannot create table: no RegionServers registered");
  }
  if (TableExists(table)) {
    throw RpcError("table already exists: " + table);
  }
  tables_.push_back(table);
}

bool HMaster::TableExists(const std::string& table) const {
  return std::find(tables_.begin(), tables_.end(), table) != tables_.end();
}

std::vector<std::string> HMaster::ListTables() const { return tables_; }

HRegionServer* HMaster::Locate(const std::string& table, const std::string& row) const {
  if (!TableExists(table)) {
    throw RpcError("table does not exist: " + table);
  }
  uint64_t hash = Fnv1a64(table + "/" + row);
  return region_servers_[hash % region_servers_.size()];
}

HRegionServer::HRegionServer(Cluster* cluster, HMaster* master,
                             const Configuration& conf)
    : init_scope_(kKvApp, this, "HRegionServer", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kKvApp, conf, __FILE__, __LINE__)),
      cluster_(cluster) {
  conf_.GetInt(kKvHandlerCount, kKvHandlerCountDefault);
  conf_.GetInt(kKvRegionMaxFilesize, kKvRegionMaxFilesizeDefault);
  GetIpc(*cluster_, this);
  master->RegisterRegionServer(this);
  init_scope_.Finish();
}

void HRegionServer::Put(const std::string& table, const std::string& row,
                        const std::string& value) {
  rows_[table + "/" + row] = value;
  // Model store-file growth: each cell contributes its value size scaled up
  // to the HFile block granularity, so the candidate max.filesize values
  // (1 GiB / 10 GiB) correspond to single-digit / tens of rows.
  constexpr int64_t kBytesPerCell = 256LL << 20;  // 256 MiB per flushed cell
  region_bytes_[table] += kBytesPerCell + static_cast<int64_t>(value.size());
  MaybeSplit(table);
}

void HRegionServer::MaybeSplit(const std::string& table) {
  int64_t max_filesize = conf_.GetInt(kKvRegionMaxFilesize, kKvRegionMaxFilesizeDefault);
  if (region_bytes_[table] >= max_filesize) {
    // Split: the hot region divides in half; both halves stay local.
    region_bytes_[table] /= 2;
    regions_[table] = NumRegions(table) + 1;
    ++total_splits_;
  }
}

int HRegionServer::NumRegions(const std::string& table) const {
  auto it = regions_.find(table);
  return it == regions_.end() ? 1 : it->second;
}

std::string HRegionServer::Get(const std::string& table, const std::string& row) const {
  auto it = rows_.find(table + "/" + row);
  if (it == rows_.end()) {
    throw RpcError("row not found: " + table + "/" + row);
  }
  return it->second;
}

int HRegionServer::NumRows() const { return static_cast<int>(rows_.size()); }

RESTServer::RESTServer(Cluster* cluster, HMaster* master, const Configuration& conf)
    : init_scope_(kKvApp, this, "RESTServer", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kKvApp, conf, __FILE__, __LINE__)),
      master_(master) {
  conf_.GetInt(kKvRestPort, kKvRestPortDefault);
  GetIpc(*cluster, this);
  init_scope_.Finish();
}

std::string RESTServer::Status() const {
  return "rest-ok tables=" + std::to_string(master_->ListTables().size());
}

KvClient::KvClient(Cluster* cluster, HMaster* master, const Configuration& conf)
    : cluster_(cluster), master_(master), conf_(conf) {}

void KvClient::Put(const std::string& table, const std::string& row,
                   const std::string& value) {
  conf_.GetInt(kKvClientRetries, kKvClientRetriesDefault);
  conf_.GetInt(kKvClientPause, kKvClientPauseDefault);
  HRegionServer* rs = master_->Locate(table, row);
  RpcGate(*cluster_, rs, conf_, rs->conf(), "ClientService.mutate");
  rs->Put(table, row, value);
}

std::string KvClient::Get(const std::string& table, const std::string& row) {
  HRegionServer* rs = master_->Locate(table, row);
  RpcGate(*cluster_, rs, conf_, rs->conf(), "ClientService.get");
  return rs->Get(table, row);
}

void KvClient::CreateTable(const std::string& table) {
  RpcGate(*cluster_, master_, conf_, master_->conf(), "MasterService.createTable");
  master_->CreateTable(table);
}

}  // namespace zebra
