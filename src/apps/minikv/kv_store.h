// MiniKV core nodes: HMaster (table/region management), HRegionServer
// (row storage), RESTServer, and the KvClient the unit tests drive.

#ifndef SRC_APPS_MINIKV_KV_STORE_H_
#define SRC_APPS_MINIKV_KV_STORE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

class HRegionServer;

class HMaster {
 public:
  HMaster(Cluster* cluster, const Configuration& conf);

  HMaster(const HMaster&) = delete;
  HMaster& operator=(const HMaster&) = delete;

  const Configuration& conf() const { return conf_; }
  Cluster& cluster() { return *cluster_; }

  void RegisterRegionServer(HRegionServer* rs);
  int NumRegionServers() const { return static_cast<int>(region_servers_.size()); }

  // Creates a table with one region per registered RegionServer.
  void CreateTable(const std::string& table);
  bool TableExists(const std::string& table) const;
  std::vector<std::string> ListTables() const;

  // The RegionServer responsible for (table, row).
  HRegionServer* Locate(const std::string& table, const std::string& row) const;

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;
  std::vector<HRegionServer*> region_servers_;
  std::vector<std::string> tables_;
};

class HRegionServer {
 public:
  HRegionServer(Cluster* cluster, HMaster* master, const Configuration& conf);

  HRegionServer(const HRegionServer&) = delete;
  HRegionServer& operator=(const HRegionServer&) = delete;

  const Configuration& conf() const { return conf_; }

  void Put(const std::string& table, const std::string& row, const std::string& value);
  std::string Get(const std::string& table, const std::string& row) const;
  int NumRows() const;

  // Region splits are a RegionServer-local decision: when a region's
  // accumulated size passes this server's hbase.hregion.max.filesize, the
  // region splits in two (both halves stay on this server in the mini model).
  int NumRegions(const std::string& table) const;
  int TotalSplits() const { return total_splits_; }

 private:
  void MaybeSplit(const std::string& table);

  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;
  std::map<std::string, std::string> rows_;       // "table/row" -> value
  std::map<std::string, int64_t> region_bytes_;   // table -> bytes in hot region
  std::map<std::string, int> regions_;            // table -> region count
  int total_splits_ = 0;
};

class RESTServer {
 public:
  RESTServer(Cluster* cluster, HMaster* master, const Configuration& conf);

  RESTServer(const RESTServer&) = delete;
  RESTServer& operator=(const RESTServer&) = delete;

  const Configuration& conf() const { return conf_; }

  // Version/status document served over HTTP.
  std::string Status() const;

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  HMaster* master_;
};

// Client-side API used by unit tests (runs on the test's configuration).
class KvClient {
 public:
  KvClient(Cluster* cluster, HMaster* master, const Configuration& conf);

  void Put(const std::string& table, const std::string& row, const std::string& value);
  std::string Get(const std::string& table, const std::string& row);
  void CreateTable(const std::string& table);

 private:
  Cluster* cluster_;
  HMaster* master_;
  const Configuration& conf_;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIKV_KV_STORE_H_
