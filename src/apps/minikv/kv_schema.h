// Schema registration for MiniKV parameters.

#ifndef SRC_APPS_MINIKV_KV_SCHEMA_H_
#define SRC_APPS_MINIKV_KV_SCHEMA_H_

#include "src/conf/conf_schema.h"

namespace zebra {

void RegisterMiniKvSchema(ConfSchema& schema);

}  // namespace zebra

#endif  // SRC_APPS_MINIKV_KV_SCHEMA_H_
