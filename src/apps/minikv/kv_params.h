// MiniKV (HBase analog) parameter names and defaults.

#ifndef SRC_APPS_MINIKV_KV_PARAMS_H_
#define SRC_APPS_MINIKV_KV_PARAMS_H_

#include <cstdint>

namespace zebra {

inline constexpr char kKvApp[] = "minikv";

// ---- Table 3 heterogeneous-unsafe parameters ---------------------------------

// "Thrift Admin fails to communicate with Thrift Server."
inline constexpr char kKvThriftCompact[] = "hbase.regionserver.thrift.compact";
inline constexpr bool kKvThriftCompactDefault = false;

// "Thrift Admin fails to communicate with Thrift Server."
inline constexpr char kKvThriftFramed[] = "hbase.regionserver.thrift.framed";
inline constexpr bool kKvThriftFramedDefault = false;

// ---- Heterogeneous-safe parameters -------------------------------------------

inline constexpr char kKvClientRetries[] = "hbase.client.retries.number";
inline constexpr int64_t kKvClientRetriesDefault = 35;

inline constexpr char kKvHandlerCount[] = "hbase.regionserver.handler.count";
inline constexpr int64_t kKvHandlerCountDefault = 30;

inline constexpr char kKvRegionMaxFilesize[] = "hbase.hregion.max.filesize";
inline constexpr int64_t kKvRegionMaxFilesizeDefault = 10737418240;

inline constexpr char kKvMasterInfoPort[] = "hbase.master.info.port";
inline constexpr int64_t kKvMasterInfoPortDefault = 16010;

inline constexpr char kKvClientPause[] = "hbase.client.pause";
inline constexpr int64_t kKvClientPauseDefault = 100;

inline constexpr char kKvBalancerPeriod[] = "hbase.balancer.period";
inline constexpr int64_t kKvBalancerPeriodDefault = 300000;

inline constexpr char kKvZkQuorum[] = "hbase.zookeeper.quorum";
inline constexpr char kKvZkQuorumDefault[] = "localhost";

inline constexpr char kKvRestPort[] = "hbase.rest.port";
inline constexpr int64_t kKvRestPortDefault = 8080;

}  // namespace zebra

#endif  // SRC_APPS_MINIKV_KV_PARAMS_H_
