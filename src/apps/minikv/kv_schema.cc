#include "src/apps/minikv/kv_schema.h"

#include "src/apps/minikv/kv_params.h"

namespace zebra {

void RegisterMiniKvSchema(ConfSchema& schema) {
  const char* app = kKvApp;

  schema.AddParam({kKvThriftCompact, app, ParamType::kBool, "false",
                   {"true", "false"}, "Thrift compact protocol"});
  schema.AddParam({kKvThriftFramed, app, ParamType::kBool, "false",
                   {"true", "false"}, "Thrift framed transport"});

  schema.AddParam({kKvClientRetries, app, ParamType::kInt, "35",
                   {"1", "10", "35"}, "Client retry budget (client-local)"});
  schema.AddParam({kKvHandlerCount, app, ParamType::kInt, "30",
                   {"10", "30"}, "RegionServer handler threads (node-local)"});
  schema.AddParam({kKvRegionMaxFilesize, app, ParamType::kInt, "10737418240",
                   {"1073741824", "10737418240"},
                   "Region split size threshold (RS-local)"});
  schema.AddParam({kKvMasterInfoPort, app, ParamType::kInt, "16010",
                   {"16010", "26010"}, "Master info port"});
  schema.AddParam({kKvClientPause, app, ParamType::kInt, "100",
                   {"100", "1000"}, "Client retry pause (client-local)"});
  schema.AddParam({kKvBalancerPeriod, app, ParamType::kInt, "300000",
                   {"300000", "600000"}, "Region balancer period (master-local)"});
  schema.AddParam({kKvZkQuorum, app, ParamType::kString, "localhost",
                   {"localhost", "zk1,zk2,zk3"}, "ZooKeeper quorum"});
  schema.AddParam({kKvRestPort, app, ParamType::kInt, "8080",
                   {"8080", "18080"}, "REST server port"});
}

}  // namespace zebra
