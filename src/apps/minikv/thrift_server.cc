#include "src/apps/minikv/thrift_server.h"

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/minikv/kv_params.h"
#include "src/apps/minikv/kv_store.h"
#include "src/common/error.h"
#include "src/common/strings.h"

namespace zebra {

namespace {

// Protocol headers (mirroring thrift's protocol-id bytes).
constexpr uint8_t kCompactProtocolId = 0x82;
constexpr uint8_t kBinaryProtocolId = 0x80;
constexpr uint8_t kFrameMarker = 0x0F;

Bytes EncodeProtocol(const std::string& message, bool compact) {
  Bytes out;
  if (compact) {
    out.push_back(kCompactProtocolId);
    // Compact protocol: varint-style length (1 byte per 7 bits).
    size_t length = message.size();
    while (length >= 0x80) {
      out.push_back(static_cast<uint8_t>((length & 0x7F) | 0x80));
      length >>= 7;
    }
    out.push_back(static_cast<uint8_t>(length));
  } else {
    out.push_back(kBinaryProtocolId);
    AppendU32(&out, static_cast<uint32_t>(message.size()));
  }
  out.insert(out.end(), message.begin(), message.end());
  return out;
}

std::string DecodeProtocol(const Bytes& bytes, size_t offset, bool compact) {
  if (offset >= bytes.size()) {
    throw DecodeError("thrift: empty protocol payload");
  }
  uint8_t protocol_id = bytes[offset++];
  size_t length = 0;
  if (compact) {
    if (protocol_id != kCompactProtocolId) {
      throw DecodeError("thrift: expected compact protocol id, got 0x" +
                        std::to_string(protocol_id));
    }
    int shift = 0;
    while (true) {
      if (offset >= bytes.size()) {
        throw DecodeError("thrift: truncated varint length");
      }
      uint8_t byte = bytes[offset++];
      length |= static_cast<size_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) {
        break;
      }
      shift += 7;
    }
  } else {
    if (protocol_id != kBinaryProtocolId) {
      throw DecodeError("thrift: expected binary protocol id, got 0x" +
                        std::to_string(protocol_id));
    }
    size_t pos = offset;
    length = ReadU32(bytes, &pos);
    offset = pos;
  }
  if (offset + length > bytes.size()) {
    throw DecodeError("thrift: message length exceeds buffer");
  }
  return std::string(bytes.begin() + static_cast<long>(offset),
                     bytes.begin() + static_cast<long>(offset + length));
}

}  // namespace

Bytes ThriftEncode(const std::string& message, bool compact, bool framed) {
  Bytes body = EncodeProtocol(message, compact);
  if (!framed) {
    return body;
  }
  Bytes out;
  out.push_back(kFrameMarker);
  AppendLengthPrefixed(&out, body);
  return out;
}

std::string ThriftDecode(const Bytes& bytes, bool compact, bool framed) {
  if (framed) {
    if (bytes.empty() || bytes[0] != kFrameMarker) {
      throw DecodeError("thrift: expected framed transport, frame marker missing");
    }
    size_t offset = 1;
    Bytes body = ReadLengthPrefixed(bytes, &offset);
    return DecodeProtocol(body, 0, compact);
  }
  if (!bytes.empty() && bytes[0] == kFrameMarker) {
    throw DecodeError("thrift: unframed transport received a framed message");
  }
  return DecodeProtocol(bytes, 0, compact);
}

ThriftServer::ThriftServer(Cluster* cluster, HMaster* master, const Configuration& conf)
    : init_scope_(kKvApp, this, "ThriftServer", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kKvApp, conf, __FILE__, __LINE__)),
      cluster_(cluster),
      master_(master) {
  GetIpc(*cluster_, this);
  init_scope_.Finish();
}

Bytes ThriftServer::Handle(const Bytes& request) {
  bool compact = conf_.GetBool(kKvThriftCompact, kKvThriftCompactDefault);
  bool framed = conf_.GetBool(kKvThriftFramed, kKvThriftFramedDefault);
  std::string command = ThriftDecode(request, compact, framed);

  std::string reply;
  std::vector<std::string> words = StrSplit(command, ' ');
  if (words.size() == 2 && words[0] == "createTable") {
    master_->CreateTable(words[1]);
    reply = "ok";
  } else if (words.size() == 1 && words[0] == "listTables") {
    reply = std::to_string(master_->ListTables().size());
  } else {
    throw RpcError("thrift: unknown command " + command);
  }
  return ThriftEncode(reply, compact, framed);
}

ThriftAdmin::ThriftAdmin(ThriftServer* server, const Configuration& conf)
    : server_(server), conf_(conf) {}

std::string ThriftAdmin::Call(const std::string& command) {
  bool compact = conf_.GetBool(kKvThriftCompact, kKvThriftCompactDefault);
  bool framed = conf_.GetBool(kKvThriftFramed, kKvThriftFramedDefault);
  Bytes reply = server_->Handle(ThriftEncode(command, compact, framed));
  return ThriftDecode(reply, compact, framed);
}

void ThriftAdmin::CreateTable(const std::string& table) {
  std::string reply = Call("createTable " + table);
  if (reply != "ok") {
    throw RpcError("thrift createTable failed: " + reply);
  }
}

int ThriftAdmin::NumTables() {
  int64_t count = 0;
  if (!ParseInt64(Call("listTables"), &count)) {
    throw DecodeError("thrift listTables returned a non-numeric reply");
  }
  return static_cast<int>(count);
}

}  // namespace zebra
