// MiniKV ThriftServer and ThriftAdmin.
//
// The thrift transport/protocol options mirror HBase's: the server speaks
// framed-or-unframed transport and compact-or-binary protocol according to
// *its* configuration; the admin client encodes according to *its own*.
// Neither wire form is self-describing for our purposes (matching real thrift,
// where a protocol mismatch surfaces as a parse error, not a negotiation).

#ifndef SRC_APPS_MINIKV_THRIFT_SERVER_H_
#define SRC_APPS_MINIKV_THRIFT_SERVER_H_

#include <string>

#include "src/common/bytes.h"
#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

class HMaster;

// Encodes/decodes one thrift message (a command string) under the given
// transport/protocol flags. Decode throws DecodeError on mismatch.
Bytes ThriftEncode(const std::string& message, bool compact, bool framed);
std::string ThriftDecode(const Bytes& bytes, bool compact, bool framed);

class ThriftServer {
 public:
  ThriftServer(Cluster* cluster, HMaster* master, const Configuration& conf);

  ThriftServer(const ThriftServer&) = delete;
  ThriftServer& operator=(const ThriftServer&) = delete;

  const Configuration& conf() const { return conf_; }

  // Decodes the request under the server's flags, executes it against the
  // master, and returns the reply encoded under the server's flags.
  // Supported commands: "createTable <name>", "listTables".
  Bytes Handle(const Bytes& request);

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;
  HMaster* master_;
};

// Client-side thrift admin (runs on the unit test's configuration).
class ThriftAdmin {
 public:
  ThriftAdmin(ThriftServer* server, const Configuration& conf);

  void CreateTable(const std::string& table);
  int NumTables();

 private:
  std::string Call(const std::string& command);

  ThriftServer* server_;
  const Configuration& conf_;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIKV_THRIFT_SERVER_H_
