#include "src/apps/appcommon/ipc_component.h"

#include <memory>
#include <string>

#include "src/apps/appcommon/common_params.h"
#include "src/common/error.h"

namespace zebra {

void IpcComponent::Ping(const Configuration& caller_conf) {
  ++ping_count_;
  int64_t own_interval = own_conf_.GetInt(kIpcPingInterval, kIpcPingIntervalDefault);
  int64_t caller_interval =
      caller_conf.GetInt(kIpcPingInterval, kIpcPingIntervalDefault);
  int64_t own_retries =
      own_conf_.GetInt(kIpcConnectMaxRetries, kIpcConnectMaxRetriesDefault);
  int64_t caller_retries =
      caller_conf.GetInt(kIpcConnectMaxRetries, kIpcConnectMaxRetriesDefault);
  if (own_interval != caller_interval) {
    throw RpcError("ipc keepalive negotiation failed: component expects ping every " +
                   std::to_string(own_interval) + " ms, connection configured for " +
                   std::to_string(caller_interval) + " ms");
  }
  if (own_retries != caller_retries) {
    throw RpcError("ipc retry policy disagreement between component and connection");
  }
}

IpcComponent& GetIpc(Cluster& cluster, const void* node) {
  std::string key = "ipc";
  if (cluster.GetFlag(kFlagIpcSharingDisabled)) {
    key += ":" + std::to_string(reinterpret_cast<uintptr_t>(node));
  }
  return cluster.GetFacility<IpcComponent>(
      key, [] { return std::make_unique<IpcComponent>(); });
}

}  // namespace zebra
