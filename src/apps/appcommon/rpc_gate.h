// RPC gate: the connection-level checks every cross-node call in the
// mini-applications goes through.
//
// Validates the shared-library transport parameters between the caller's and
// the callee's own configuration objects — so heterogeneous assignments of
// hadoop.rpc.protection fail at connection time, and long-running operations
// time out under mismatched ipc.client.rpc-timeout.ms, just as in the paper's
// Hadoop Common findings.

#ifndef SRC_APPS_APPCOMMON_RPC_GATE_H_
#define SRC_APPS_APPCOMMON_RPC_GATE_H_

#include <cstdint>
#include <string_view>

#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"

namespace zebra {

// Connection establishment. Throws HandshakeError on a SASL protection-level
// mismatch and RpcError when the shared IPC component's keepalive negotiation
// fails (the false-positive mechanism; see ipc_component.h).
void RpcGate(Cluster& cluster, const void* callee_node, const Configuration& caller_conf,
             const Configuration& callee_conf, std::string_view service);

// A server-side operation taking `duration_ms` virtual milliseconds, watched
// by the caller under its rpc timeout while the server paces progress
// messages from its own timeout value. Advances the cluster clock by the
// operation's duration. Throws TimeoutError.
void RpcLongOperation(Cluster& cluster, std::string_view operation,
                      const Configuration& caller_conf, const Configuration& callee_conf,
                      int64_t duration_ms);

}  // namespace zebra

#endif  // SRC_APPS_APPCOMMON_RPC_GATE_H_
