// Schema registration for the shared-library parameters.

#ifndef SRC_APPS_APPCOMMON_COMMON_SCHEMA_H_
#define SRC_APPS_APPCOMMON_COMMON_SCHEMA_H_

#include "src/conf/conf_schema.h"

namespace zebra {

void RegisterCommonSchema(ConfSchema& schema);

}  // namespace zebra

#endif  // SRC_APPS_APPCOMMON_COMMON_SCHEMA_H_
