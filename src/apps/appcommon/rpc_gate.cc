#include "src/apps/appcommon/rpc_gate.h"

#include "src/apps/appcommon/common_params.h"
#include "src/apps/appcommon/ipc_component.h"
#include "src/sim/wire.h"

namespace zebra {

void RpcGate(Cluster& cluster, const void* callee_node, const Configuration& caller_conf,
             const Configuration& callee_conf, std::string_view service) {
  // SASL protection negotiation: both sides derive an opaque token from their
  // configured protection level; a mismatch aborts the connection.
  RequireMatchingTokens(
      service,
      WireToken(caller_conf.Get(kRpcProtection, kRpcProtectionDefault)),
      WireToken(callee_conf.Get(kRpcProtection, kRpcProtectionDefault)));

  // Keepalive negotiation through the server's IPC component. Nodes create
  // their IPC component during initialization; with sharing enabled (the
  // default) every node receives the same instance, whose own configuration
  // object belongs to whichever node initialized first — the false-positive
  // mechanism of §7.1.
  IpcComponent& ipc = GetIpc(cluster, callee_node);
  ipc.Ping(callee_conf);
}

void RpcLongOperation(Cluster& cluster, std::string_view operation,
                      const Configuration& caller_conf, const Configuration& callee_conf,
                      int64_t duration_ms) {
  int64_t client_timeout = caller_conf.GetInt(kRpcTimeoutMs, kRpcTimeoutMsDefault);
  // Servers send a progress/keepalive message every half of *their* timeout
  // value — the Hadoop convention that turns a timeout disagreement into a
  // one-sided connection abort.
  int64_t server_pace =
      callee_conf.GetInt(kRpcTimeoutMs, kRpcTimeoutMsDefault) / 2;
  SimulatePacedWait(operation, duration_ms, client_timeout, server_pace);
  cluster.AdvanceTime(duration_ms);
}

}  // namespace zebra
