#include "src/apps/appcommon/common_schema.h"

#include "src/apps/appcommon/common_params.h"

namespace zebra {

void RegisterCommonSchema(ConfSchema& schema) {
  schema.AddParam({kRpcProtection,
                   kCommonApp,
                   ParamType::kEnum,
                   kRpcProtectionDefault,
                   {"authentication", "integrity", "privacy"},
                   "SASL protection level for RPC connections"});
  schema.AddParam({kRpcTimeoutMs,
                   kCommonApp,
                   ParamType::kInt,
                   "60000",
                   {"1000", "60000", "300000"},
                   "RPC timeout; 0 disables the timeout"});
  schema.AddParam({kIpcPingInterval,
                   kCommonApp,
                   ParamType::kInt,
                   "60000",
                   {"10000", "60000"},
                   "Keepalive ping interval for idle IPC connections"});
  schema.AddParam({kIpcConnectMaxRetries,
                   kCommonApp,
                   ParamType::kInt,
                   "10",
                   {"1", "10", "50"},
                   "Connection-establishment retry budget"});
  schema.AddParam({kIoFileBufferSize,
                   kCommonApp,
                   ParamType::kInt,
                   "4096",
                   {"512", "4096", "65536"},
                   "Buffer size used in sequence files and stream copies"});
  schema.AddParam({kIpcListenQueueSize,
                   kCommonApp,
                   ParamType::kInt,
                   "128",
                   {"16", "128", "1024"},
                   "Server accept-queue length"});
  schema.AddParam({kHadoopTmpDir,
                   kCommonApp,
                   ParamType::kString,
                   kHadoopTmpDirDefault,
                   {"/tmp/hadoop", "/var/tmp/hadoop"},
                   "Base directory for temporary files"});
  schema.AddParam({kCallerContextEnabled,
                   kCommonApp,
                   ParamType::kBool,
                   "false",
                   {"true", "false"},
                   "Whether to propagate caller context in audit logs"});
}

}  // namespace zebra
