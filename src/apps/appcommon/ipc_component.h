// The shared InterProcess Communication component (Hadoop Common analog).
//
// Reproduces the false-positive mechanism of §7.1: "different nodes share the
// IPC component, which has its own configuration object. However, the IPC
// component sometimes reads configuration values from external configuration
// objects as well" — so under a heterogeneous assignment the component reads
// *different* values for the same parameter and errors out, something that
// cannot happen across real processes.
//
// By default one IpcComponent per cluster is shared by all nodes. Setting the
// cluster flag kFlagIpcSharingDisabled gives each node a private instance,
// mirroring the one-line Hadoop change that eliminated these false alarms.

#ifndef SRC_APPS_APPCOMMON_IPC_COMPONENT_H_
#define SRC_APPS_APPCOMMON_IPC_COMPONENT_H_

#include <cstdint>

#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"

namespace zebra {

class IpcComponent {
 public:
  // Creates the component's own configuration object. When constructed from
  // inside a node's initialization function, that conf maps to the node
  // (Rule 1.1) — which is exactly why sharing it is unsound.
  IpcComponent() = default;

  // Simulates the connection-keepalive negotiation: the component uses its own
  // conf for the ping schedule while honoring the caller's conf for the
  // connection parameters; a disagreement corrupts the keepalive protocol.
  void Ping(const Configuration& caller_conf);

  int64_t ping_count() const { return ping_count_; }

 private:
  Configuration own_conf_;
  int64_t ping_count_ = 0;
};

// Returns the IPC component for `node`: the cluster-shared instance, or a
// per-node instance when sharing is disabled.
IpcComponent& GetIpc(Cluster& cluster, const void* node);

}  // namespace zebra

#endif  // SRC_APPS_APPCOMMON_IPC_COMPONENT_H_
