// Shared-library (Hadoop Common analog) parameter names and defaults.
//
// Every mini-application links against appcommon, so these parameters are
// testable for all of them (paper Table 1: all applications share the Hadoop
// Common library's 336 parameters).

#ifndef SRC_APPS_APPCOMMON_COMMON_PARAMS_H_
#define SRC_APPS_APPCOMMON_COMMON_PARAMS_H_

#include <cstdint>

namespace zebra {

inline constexpr char kCommonApp[] = "appcommon";

// ---- Heterogeneous-unsafe in the paper (Table 3, Hadoop Common) -------------

// RPC SASL protection level; endpoints must agree ("RPC client fails to
// connect to RPC servers").
inline constexpr char kRpcProtection[] = "hadoop.rpc.protection";
inline constexpr char kRpcProtectionDefault[] = "authentication";

// Client-side RPC timeout; servers also derive their progress pacing from it
// ("Socket connection timeouts").
inline constexpr char kRpcTimeoutMs[] = "ipc.client.rpc-timeout.ms";
inline constexpr int64_t kRpcTimeoutMsDefault = 60000;

// ---- Safe parameters (some are seeded false-positive sources) ---------------

// Read both by the shared IPC component's own conf and by callers' confs —
// the combination the paper reports as the cause of IPC-related false alarms.
inline constexpr char kIpcPingInterval[] = "ipc.ping.interval";
inline constexpr int64_t kIpcPingIntervalDefault = 60000;

inline constexpr char kIpcConnectMaxRetries[] = "ipc.client.connect.max.retries";
inline constexpr int64_t kIpcConnectMaxRetriesDefault = 10;

inline constexpr char kIoFileBufferSize[] = "io.file.buffer.size";
inline constexpr int64_t kIoFileBufferSizeDefault = 4096;

inline constexpr char kIpcListenQueueSize[] = "ipc.server.listen.queue.size";
inline constexpr int64_t kIpcListenQueueSizeDefault = 128;

inline constexpr char kHadoopTmpDir[] = "hadoop.tmp.dir";
inline constexpr char kHadoopTmpDirDefault[] = "/tmp/hadoop";

inline constexpr char kCallerContextEnabled[] = "hadoop.caller.context.enabled";
inline constexpr bool kCallerContextEnabledDefault = false;

// Cluster flag name used to disable IPC-component sharing (the paper's
// one-line Hadoop fix that removed the IPC false alarms).
inline constexpr char kFlagIpcSharingDisabled[] = "ipc.sharing.disabled";

}  // namespace zebra

#endif  // SRC_APPS_APPCOMMON_COMMON_PARAMS_H_
