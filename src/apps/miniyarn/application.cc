#include "src/apps/miniyarn/application.h"

#include <algorithm>

#include "src/apps/miniyarn/app_history_server.h"
#include "src/apps/miniyarn/yarn_client.h"
#include "src/apps/miniyarn/yarn_params.h"
#include "src/common/error.h"

namespace zebra {

AppManager::AppManager(Cluster* cluster, ResourceManager* rm)
    : cluster_(cluster), rm_(rm) {}

uint64_t AppManager::SubmitApplication(const std::string& name, int num_containers,
                                       int64_t memory_mb, int64_t vcores) {
  ApplicationRecord record;
  record.app_id = next_app_id_++;
  record.name = name;
  record.state = AppState::kRunning;
  for (int i = 0; i < num_containers; ++i) {
    record.containers.push_back(rm_->AllocateContainer(memory_mb, vcores));
  }
  applications_.push_back(std::move(record));
  return applications_.back().app_id;
}

void AppManager::CompleteApplication(uint64_t app_id) {
  for (ApplicationRecord& record : applications_) {
    if (record.app_id == app_id) {
      if (record.state != AppState::kRunning) {
        throw RpcError("application " + std::to_string(app_id) + " is not running");
      }
      record.state = AppState::kCompleted;
      EvictCompletedBeyondRetention();
      return;
    }
  }
  throw RpcError("unknown application " + std::to_string(app_id));
}

void AppManager::EvictCompletedBeyondRetention() {
  int64_t retention =
      rm_->conf().GetInt(kYarnMaxCompletedApps, kYarnMaxCompletedAppsDefault);
  // Evict the oldest completed applications beyond the retention bound.
  int64_t completed = 0;
  for (const ApplicationRecord& record : applications_) {
    if (record.state == AppState::kCompleted) {
      ++completed;
    }
  }
  for (auto it = applications_.begin();
       completed > retention && it != applications_.end();) {
    if (it->state == AppState::kCompleted) {
      it = applications_.erase(it);
      --completed;
    } else {
      ++it;
    }
  }
}

bool AppManager::PublishHistory(uint64_t app_id, AppHistoryServer* ahs,
                                const Configuration& client_conf) {
  const ApplicationRecord* record = Find(app_id);
  if (record == nullptr) {
    throw RpcError("unknown application " + std::to_string(app_id));
  }
  YarnClient client(cluster_, rm_, client_conf);
  bool sent = client.PublishTimelineEvent(ahs, record->name + ":submitted");
  if (sent) {
    client.PublishTimelineEvent(
        ahs, record->name + (record->state == AppState::kCompleted ? ":completed"
                                                                   : ":running"));
  }
  return sent;
}

const ApplicationRecord* AppManager::Find(uint64_t app_id) const {
  for (const ApplicationRecord& record : applications_) {
    if (record.app_id == app_id) {
      return &record;
    }
  }
  return nullptr;
}

int AppManager::NumRunning() const {
  return static_cast<int>(
      std::count_if(applications_.begin(), applications_.end(),
                    [](const ApplicationRecord& record) {
                      return record.state == AppState::kRunning;
                    }));
}

int AppManager::NumCompletedRetained() const {
  return static_cast<int>(
      std::count_if(applications_.begin(), applications_.end(),
                    [](const ApplicationRecord& record) {
                      return record.state == AppState::kCompleted;
                    }));
}

}  // namespace zebra
