// MiniYARN ApplicationHistoryServer: hosts the timeline service (when
// enabled) and its web endpoint.

#ifndef SRC_APPS_MINIYARN_APP_HISTORY_SERVER_H_
#define SRC_APPS_MINIYARN_APP_HISTORY_SERVER_H_

#include <string>
#include <vector>

#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

class AppHistoryServer {
 public:
  AppHistoryServer(Cluster* cluster, const Configuration& conf);

  AppHistoryServer(const AppHistoryServer&) = delete;
  AppHistoryServer& operator=(const AppHistoryServer&) = delete;

  const Configuration& conf() const { return conf_; }

  // Whether the timeline service actually started on this server.
  bool timeline_serving() const { return timeline_serving_; }

  // Accepts a timeline event; refused when the service never started
  // ("Client fails to connect to Timeline Server").
  void PutTimelineEvent(const std::string& event);

  int NumTimelineEvents() const { return static_cast<int>(events_.size()); }

  // Web endpoint scheme from this server's yarn.http.policy.
  std::string WebScheme() const;

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;
  bool timeline_serving_ = false;
  std::vector<std::string> events_;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIYARN_APP_HISTORY_SERVER_H_
