// Schema registration for MiniYARN parameters.

#ifndef SRC_APPS_MINIYARN_YARN_SCHEMA_H_
#define SRC_APPS_MINIYARN_YARN_SCHEMA_H_

#include "src/conf/conf_schema.h"

namespace zebra {

void RegisterMiniYarnSchema(ConfSchema& schema);

}  // namespace zebra

#endif  // SRC_APPS_MINIYARN_YARN_SCHEMA_H_
