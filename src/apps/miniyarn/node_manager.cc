#include "src/apps/miniyarn/node_manager.h"

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/appcommon/rpc_gate.h"
#include "src/apps/miniyarn/resource_manager.h"
#include "src/apps/miniyarn/yarn_params.h"

namespace zebra {

NodeManager::NodeManager(Cluster* cluster, ResourceManager* rm,
                         const Configuration& conf)
    : init_scope_(kYarnApp, this, "NodeManager", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kYarnApp, conf, __FILE__, __LINE__)),
      cluster_(cluster),
      rm_(rm) {
  conf_.GetInt(kYarnLogRetainSeconds, kYarnLogRetainSecondsDefault);
  conf_.GetBool(kYarnVmemCheck, kYarnVmemCheckDefault);
  conf_.GetDouble(kYarnVmemPmemRatio, kYarnVmemPmemRatioDefault);
  GetIpc(*cluster_, this);

  // Register, reporting this node's (legitimately heterogeneous) capacity.
  RpcGate(*cluster_, rm_, conf_, rm_->conf(), "ResourceTracker.registerNodeManager");
  NmRegistrationResponse response = rm_->RegisterNodeManager(
      id(), conf_.GetInt(kYarnNmMemoryMb, kYarnNmMemoryMbDefault),
      conf_.GetInt(kYarnNmVcores, kYarnNmVcoresDefault));

  // Heartbeat at the interval the ResourceManager decided — not at a value
  // from this node's own configuration file.
  heartbeat_interval_ms_ = response.heartbeat_interval_ms;
  heartbeat_task_ = cluster_->clock().SchedulePeriodic(
      heartbeat_interval_ms_, heartbeat_interval_ms_, [this] {
        if (!stopped_) {
          RpcGate(*cluster_, rm_, conf_, rm_->conf(), "ResourceTracker.nodeHeartbeat");
          rm_->NodeManagerHeartbeat(id());
        }
      });
  init_scope_.Finish();
}

NodeManager::~NodeManager() { Stop(); }

void NodeManager::Stop() {
  if (!stopped_) {
    stopped_ = true;
    cluster_->clock().Cancel(heartbeat_task_);
  }
}

}  // namespace zebra
