// MiniYARN NodeManager: registers with the ResourceManager, heartbeats at the
// interval the RM *hands back in the registration response*, and launches
// containers.

#ifndef SRC_APPS_MINIYARN_NODE_MANAGER_H_
#define SRC_APPS_MINIYARN_NODE_MANAGER_H_

#include <cstdint>

#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

class ResourceManager;

class NodeManager {
 public:
  NodeManager(Cluster* cluster, ResourceManager* rm, const Configuration& conf);
  ~NodeManager();

  NodeManager(const NodeManager&) = delete;
  NodeManager& operator=(const NodeManager&) = delete;

  uint64_t id() const { return reinterpret_cast<uint64_t>(this); }
  const Configuration& conf() const { return conf_; }

  // The heartbeat interval this NodeManager actually uses (RM-provided).
  int64_t effective_heartbeat_interval_ms() const { return heartbeat_interval_ms_; }

  void Stop();

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;
  ResourceManager* rm_;
  int64_t heartbeat_interval_ms_ = 0;
  SimClock::TaskId heartbeat_task_ = 0;
  bool stopped_ = false;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIYARN_NODE_MANAGER_H_
