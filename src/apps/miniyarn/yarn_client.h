// MiniYARN client: the unit-test/end-user API (container requests, timeline
// publishing, delegation tokens).

#ifndef SRC_APPS_MINIYARN_YARN_CLIENT_H_
#define SRC_APPS_MINIYARN_YARN_CLIENT_H_

#include <cstdint>
#include <string>

#include "src/apps/miniyarn/resource_manager.h"
#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"

namespace zebra {

class AppHistoryServer;

class YarnClient {
 public:
  YarnClient(Cluster* cluster, ResourceManager* rm, const Configuration& conf);

  // Requests a container sized at the *client's* view of the scheduler
  // maximums (applications routinely size requests to the documented max).
  uint64_t RequestMaxContainer();

  // Requests a specific size.
  uint64_t RequestContainer(int64_t memory_mb, int64_t vcores);

  DelegationToken GetDelegationToken();
  DelegationToken GetDelegationTokenFrom(ResourceManager* rm);

  // Publishes a timeline event iff the client-side timeline flag is on; the
  // connection fails when the server never started the service, or when the
  // web schemes disagree.
  bool PublishTimelineEvent(AppHistoryServer* ahs, const std::string& event);

  // Queries the timeline web UI (scheme from the client's yarn.http.policy).
  std::string QueryTimelineWeb(AppHistoryServer* ahs);

 private:
  Cluster* cluster_;
  ResourceManager* rm_;
  const Configuration& conf_;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIYARN_YARN_CLIENT_H_
