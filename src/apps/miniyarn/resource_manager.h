// MiniYARN ResourceManager: NodeManager registration/liveness, container
// scheduling with max-allocation validation, and delegation tokens.

#ifndef SRC_APPS_MINIYARN_RESOURCE_MANAGER_H_
#define SRC_APPS_MINIYARN_RESOURCE_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/common/rng.h"
#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

struct DelegationToken {
  uint64_t id = 0;
  int64_t issued_ms = 0;
  int64_t expiry_ms = 0;
};

struct NmRegistrationResponse {
  // The heartbeat interval every NodeManager must use, decided by the
  // ResourceManager and *shipped in the response* — the §7.3 lesson that
  // keeps this parameter heterogeneous-safe.
  int64_t heartbeat_interval_ms = 0;
};

class ResourceManager {
 public:
  ResourceManager(Cluster* cluster, const Configuration& conf);

  ResourceManager(const ResourceManager&) = delete;
  ResourceManager& operator=(const ResourceManager&) = delete;

  const Configuration& conf() const { return conf_; }
  Cluster& cluster() { return *cluster_; }

  // NodeManager registration; the NM reports its (per-node, legitimately
  // heterogeneous) resource capacity.
  NmRegistrationResponse RegisterNodeManager(uint64_t nm_id, int64_t memory_mb,
                                             int64_t vcores);
  void NodeManagerHeartbeat(uint64_t nm_id);
  int NumRegisteredNodeManagers() const;

  // Container allocation: validated against *this* ResourceManager's
  // scheduler maximums ("ResourceManager disallows value decreasement").
  uint64_t AllocateContainer(int64_t memory_mb, int64_t vcores);

  // Issues a delegation token expiring after this RM's renew-interval.
  DelegationToken IssueDelegationToken();

  // Simulates an RM restart followed by a NodeManager re-sync. When the two
  // sides disagree on work-preserving recovery, the NM resyncs with the
  // wrong protocol and the race between its container report and the RM's
  // container-expiry deadline loses container state in ~60% of runs
  // (probabilistically heterogeneous-unsafe; see yarn_params.h).
  void RecoverNodeManager(uint64_t nm_id, const Configuration& nm_conf, Rng& rng);

 private:
  struct NmInfo {
    int64_t memory_mb = 0;
    int64_t vcores = 0;
    int64_t allocated_mb = 0;
    int64_t allocated_vcores = 0;
    int64_t last_heartbeat_ms = 0;
  };

  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;
  std::map<uint64_t, NmInfo> node_managers_;
  uint64_t next_container_id_ = 1;
  uint64_t next_token_id_ = 1;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIYARN_RESOURCE_MANAGER_H_
