// MiniYARN application lifecycle: submit -> allocate containers -> run ->
// complete, with completed-application retention and timeline publication.

#ifndef SRC_APPS_MINIYARN_APPLICATION_H_
#define SRC_APPS_MINIYARN_APPLICATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/apps/miniyarn/resource_manager.h"
#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"

namespace zebra {

class AppHistoryServer;

enum class AppState {
  kSubmitted,
  kRunning,
  kCompleted,
};

struct ApplicationRecord {
  uint64_t app_id = 0;
  std::string name;
  AppState state = AppState::kSubmitted;
  std::vector<uint64_t> containers;
};

// Application-management facet of the ResourceManager. Kept separate from the
// scheduling core so the RM class stays focused; holds a reference to the RM
// it manages applications for.
class AppManager {
 public:
  AppManager(Cluster* cluster, ResourceManager* rm);

  // Submits an application; allocates `num_containers` containers of
  // `memory_mb` each through the RM's scheduler.
  uint64_t SubmitApplication(const std::string& name, int num_containers,
                             int64_t memory_mb, int64_t vcores);

  // Marks the application completed; retention is bounded by the RM's
  // yarn.resourcemanager.max-completed-applications.
  void CompleteApplication(uint64_t app_id);

  // Publishes the application's lifecycle events to the timeline server
  // (client-side flag decides whether to publish at all).
  bool PublishHistory(uint64_t app_id, AppHistoryServer* ahs,
                      const Configuration& client_conf);

  const ApplicationRecord* Find(uint64_t app_id) const;
  int NumRunning() const;
  int NumCompletedRetained() const;

 private:
  void EvictCompletedBeyondRetention();

  Cluster* cluster_;
  ResourceManager* rm_;
  uint64_t next_app_id_ = 1;
  std::vector<ApplicationRecord> applications_;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIYARN_APPLICATION_H_
