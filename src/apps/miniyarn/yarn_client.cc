#include "src/apps/miniyarn/yarn_client.h"

#include "src/apps/appcommon/rpc_gate.h"
#include "src/apps/miniyarn/app_history_server.h"
#include "src/apps/miniyarn/yarn_params.h"
#include "src/common/error.h"

namespace zebra {

YarnClient::YarnClient(Cluster* cluster, ResourceManager* rm, const Configuration& conf)
    : cluster_(cluster), rm_(rm), conf_(conf) {}

uint64_t YarnClient::RequestMaxContainer() {
  return RequestContainer(conf_.GetInt(kYarnMaxAllocMb, kYarnMaxAllocMbDefault),
                          conf_.GetInt(kYarnMaxAllocVcores, kYarnMaxAllocVcoresDefault));
}

uint64_t YarnClient::RequestContainer(int64_t memory_mb, int64_t vcores) {
  RpcGate(*cluster_, rm_, conf_, rm_->conf(), "ApplicationClientProtocol.allocate");
  return rm_->AllocateContainer(memory_mb, vcores);
}

DelegationToken YarnClient::GetDelegationToken() {
  return GetDelegationTokenFrom(rm_);
}

DelegationToken YarnClient::GetDelegationTokenFrom(ResourceManager* rm) {
  RpcGate(*cluster_, rm, conf_, rm->conf(),
          "ApplicationClientProtocol.getDelegationToken");
  return rm->IssueDelegationToken();
}

bool YarnClient::PublishTimelineEvent(AppHistoryServer* ahs, const std::string& event) {
  bool client_timeline_on =
      conf_.GetBool(kYarnTimelineEnabled, kYarnTimelineEnabledDefault);
  if (!client_timeline_on) {
    return false;  // timeline publishing disabled on the client side
  }
  RpcGate(*cluster_, ahs, conf_, ahs->conf(), "TimelineClient.putEntities");
  ahs->PutTimelineEvent(event);
  return true;
}

std::string YarnClient::QueryTimelineWeb(AppHistoryServer* ahs) {
  std::string policy = conf_.Get(kYarnHttpPolicy, kYarnHttpPolicyDefault);
  std::string scheme = policy == "HTTPS_ONLY" ? "https" : "http";
  if (scheme == "https") {
    conf_.Get(kYarnTimelineWebHttpsAddress, kYarnTimelineWebHttpsAddressDefault);
  } else {
    conf_.Get(kYarnTimelineWebAddress, kYarnTimelineWebAddressDefault);
  }
  std::string server_scheme = ahs->WebScheme();
  if (scheme != server_scheme) {
    throw HandshakeError("timeline web client speaks " + scheme +
                         " but the server endpoint serves " + server_scheme);
  }
  return "timeline-events=" + std::to_string(ahs->NumTimelineEvents());
}

}  // namespace zebra
