#include "src/apps/miniyarn/resource_manager.h"

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/miniyarn/yarn_params.h"
#include "src/common/error.h"

namespace zebra {

ResourceManager::ResourceManager(Cluster* cluster, const Configuration& conf)
    : init_scope_(kYarnApp, this, "ResourceManager", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kYarnApp, conf, __FILE__, __LINE__)),
      cluster_(cluster) {
  conf_.GetInt(kYarnMinAllocMb, kYarnMinAllocMbDefault);
  conf_.GetInt(kYarnMaxCompletedApps, kYarnMaxCompletedAppsDefault);
  GetIpc(*cluster_, this);
  init_scope_.Finish();
}

NmRegistrationResponse ResourceManager::RegisterNodeManager(uint64_t nm_id,
                                                            int64_t memory_mb,
                                                            int64_t vcores) {
  NmInfo info;
  info.memory_mb = memory_mb;
  info.vcores = vcores;
  info.last_heartbeat_ms = cluster_->NowMs();
  node_managers_[nm_id] = info;

  NmRegistrationResponse response;
  response.heartbeat_interval_ms =
      conf_.GetInt(kYarnNmHeartbeatMs, kYarnNmHeartbeatMsDefault);
  return response;
}

void ResourceManager::NodeManagerHeartbeat(uint64_t nm_id) {
  auto it = node_managers_.find(nm_id);
  if (it == node_managers_.end()) {
    throw RpcError("heartbeat from unregistered NodeManager");
  }
  it->second.last_heartbeat_ms = cluster_->NowMs();
}

int ResourceManager::NumRegisteredNodeManagers() const {
  return static_cast<int>(node_managers_.size());
}

uint64_t ResourceManager::AllocateContainer(int64_t memory_mb, int64_t vcores) {
  int64_t max_mb = conf_.GetInt(kYarnMaxAllocMb, kYarnMaxAllocMbDefault);
  int64_t max_vcores = conf_.GetInt(kYarnMaxAllocVcores, kYarnMaxAllocVcoresDefault);
  if (memory_mb > max_mb) {
    throw LimitError("container request of " + std::to_string(memory_mb) +
                     " MB exceeds yarn.scheduler.maximum-allocation-mb=" +
                     std::to_string(max_mb));
  }
  if (vcores > max_vcores) {
    throw LimitError("container request of " + std::to_string(vcores) +
                     " vcores exceeds yarn.scheduler.maximum-allocation-vcores=" +
                     std::to_string(max_vcores));
  }
  for (auto& [nm_id, info] : node_managers_) {
    if (info.allocated_mb + memory_mb <= info.memory_mb &&
        info.allocated_vcores + vcores <= info.vcores) {
      info.allocated_mb += memory_mb;
      info.allocated_vcores += vcores;
      return next_container_id_++;
    }
  }
  throw RpcError("no NodeManager has capacity for the requested container");
}

void ResourceManager::RecoverNodeManager(uint64_t nm_id, const Configuration& nm_conf,
                                         Rng& rng) {
  auto it = node_managers_.find(nm_id);
  if (it == node_managers_.end()) {
    throw RpcError("recovery resync from unregistered NodeManager");
  }
  bool rm_preserving =
      conf_.GetBool(kYarnWorkPreservingRecovery, kYarnWorkPreservingRecoveryDefault);
  bool nm_preserving = nm_conf.GetBool(kYarnWorkPreservingRecovery,
                                       kYarnWorkPreservingRecoveryDefault);
  if (rm_preserving != nm_preserving && rng.NextBool(0.6)) {
    throw RpcError(
        "work-preserving recovery resync lost container state: the NodeManager's "
        "container report raced the ResourceManager's expiry deadline");
  }
  it->second.last_heartbeat_ms = cluster_->NowMs();
}

DelegationToken ResourceManager::IssueDelegationToken() {
  DelegationToken token;
  token.id = next_token_id_++;
  token.issued_ms = cluster_->NowMs();
  token.expiry_ms =
      token.issued_ms +
      conf_.GetInt(kYarnTokenRenewInterval, kYarnTokenRenewIntervalDefault);
  return token;
}

}  // namespace zebra
