// MiniYARN parameter names and defaults. The five Table 3 heterogeneous-unsafe
// YARN parameters are implemented with their original failure mechanisms.
//
// Deliberately safe-by-design parameters demonstrate the paper's §7.3
// lessons: yarn.nodemanager.resource.memory-mb is heterogeneous *on purpose*
// (per-node hardware), and the NodeManager heartbeat interval is embedded in
// the ResourceManager's registration response instead of being read from each
// node's own file — the "embed parameter values in the communication" fix.

#ifndef SRC_APPS_MINIYARN_YARN_PARAMS_H_
#define SRC_APPS_MINIYARN_YARN_PARAMS_H_

#include <cstdint>

namespace zebra {

inline constexpr char kYarnApp[] = "miniyarn";

// ---- Table 3 heterogeneous-unsafe parameters ---------------------------------

// "Client fails to connect with Timeline web services."
inline constexpr char kYarnHttpPolicy[] = "yarn.http.policy";
inline constexpr char kYarnHttpPolicyDefault[] = "HTTP_ONLY";

// "End users may observe newer tokens expire earlier than prior tokens."
inline constexpr char kYarnTokenRenewInterval[] =
    "yarn.resourcemanager.delegation.token.renew-interval";
inline constexpr int64_t kYarnTokenRenewIntervalDefault = 86400000;  // 1 day

// "ResourceManager disallows value decreasement."
inline constexpr char kYarnMaxAllocMb[] = "yarn.scheduler.maximum-allocation-mb";
inline constexpr int64_t kYarnMaxAllocMbDefault = 8192;

// "ResourceManager disallows value decreasement."
inline constexpr char kYarnMaxAllocVcores[] = "yarn.scheduler.maximum-allocation-vcores";
inline constexpr int64_t kYarnMaxAllocVcoresDefault = 4;

// "Client fails to connect to Timeline Server."
inline constexpr char kYarnTimelineEnabled[] = "yarn.timeline-service.enabled";
inline constexpr bool kYarnTimelineEnabledDefault = false;

// ---- Probabilistically heterogeneous-unsafe (extension) -----------------------

// Work-preserving RM restart: a NodeManager whose flag disagrees with the
// ResourceManager resyncs with the wrong protocol, and the race between the
// container report and the container-expiry deadline manifests in only a
// fraction of runs. Reproduces the §5 false-negative discussion: a single
// first trial can miss it.
inline constexpr char kYarnWorkPreservingRecovery[] =
    "yarn.resourcemanager.work-preserving-recovery.enabled";
inline constexpr bool kYarnWorkPreservingRecoveryDefault = true;

// ---- Heterogeneous-safe parameters -------------------------------------------

inline constexpr char kYarnNmMemoryMb[] = "yarn.nodemanager.resource.memory-mb";
inline constexpr int64_t kYarnNmMemoryMbDefault = 8192;

inline constexpr char kYarnNmVcores[] = "yarn.nodemanager.resource.cpu-vcores";
inline constexpr int64_t kYarnNmVcoresDefault = 8;

inline constexpr char kYarnMinAllocMb[] = "yarn.scheduler.minimum-allocation-mb";
inline constexpr int64_t kYarnMinAllocMbDefault = 1024;

// Shipped to NodeManagers inside the registration response (safe by design).
inline constexpr char kYarnNmHeartbeatMs[] =
    "yarn.resourcemanager.nodemanagers.heartbeat-interval-ms";
inline constexpr int64_t kYarnNmHeartbeatMsDefault = 1000;

inline constexpr char kYarnLogRetainSeconds[] = "yarn.nodemanager.log.retain-seconds";
inline constexpr int64_t kYarnLogRetainSecondsDefault = 10800;

inline constexpr char kYarnMaxCompletedApps[] =
    "yarn.resourcemanager.max-completed-applications";
inline constexpr int64_t kYarnMaxCompletedAppsDefault = 1000;

inline constexpr char kYarnVmemCheck[] = "yarn.nodemanager.vmem-check-enabled";
inline constexpr bool kYarnVmemCheckDefault = true;

inline constexpr char kYarnTimelineTtlMs[] = "yarn.timeline-service.ttl-ms";
inline constexpr int64_t kYarnTimelineTtlMsDefault = 604800000;

inline constexpr char kYarnVmemPmemRatio[] = "yarn.nodemanager.vmem-pmem-ratio";
inline constexpr double kYarnVmemPmemRatioDefault = 2.1;

inline constexpr char kYarnTimelineWebAddress[] = "yarn.timeline-service.webapp.address";
inline constexpr char kYarnTimelineWebAddressDefault[] = "0.0.0.0:8188";
inline constexpr char kYarnTimelineWebHttpsAddress[] =
    "yarn.timeline-service.webapp.https.address";
inline constexpr char kYarnTimelineWebHttpsAddressDefault[] = "0.0.0.0:8190";

}  // namespace zebra

#endif  // SRC_APPS_MINIYARN_YARN_PARAMS_H_
