#include "src/apps/miniyarn/app_history_server.h"

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/miniyarn/yarn_params.h"
#include "src/common/error.h"

namespace zebra {

AppHistoryServer::AppHistoryServer(Cluster* cluster, const Configuration& conf)
    : init_scope_(kYarnApp, this, "ApplicationHistoryServer", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kYarnApp, conf, __FILE__, __LINE__)),
      cluster_(cluster) {
  timeline_serving_ = conf_.GetBool(kYarnTimelineEnabled, kYarnTimelineEnabledDefault);
  if (timeline_serving_) {
    conf_.GetInt(kYarnTimelineTtlMs, kYarnTimelineTtlMsDefault);
    WebScheme();  // bring up the web endpoint
  }
  GetIpc(*cluster_, this);
  init_scope_.Finish();
}

void AppHistoryServer::PutTimelineEvent(const std::string& event) {
  if (!timeline_serving_) {
    throw RpcError("connection refused: the timeline service is not running on this "
                   "ApplicationHistoryServer");
  }
  events_.push_back(event);
}

std::string AppHistoryServer::WebScheme() const {
  std::string policy = conf_.Get(kYarnHttpPolicy, kYarnHttpPolicyDefault);
  if (policy == "HTTPS_ONLY") {
    conf_.Get(kYarnTimelineWebHttpsAddress, kYarnTimelineWebHttpsAddressDefault);
    return "https";
  }
  conf_.Get(kYarnTimelineWebAddress, kYarnTimelineWebAddressDefault);
  return "http";
}

}  // namespace zebra
