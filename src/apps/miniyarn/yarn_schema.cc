#include "src/apps/miniyarn/yarn_schema.h"

#include "src/apps/miniyarn/yarn_params.h"

namespace zebra {

void RegisterMiniYarnSchema(ConfSchema& schema) {
  const char* app = kYarnApp;

  schema.AddParam({kYarnHttpPolicy, app, ParamType::kEnum, "HTTP_ONLY",
                   {"HTTP_ONLY", "HTTPS_ONLY"}, "Web endpoint protocol policy"});
  schema.AddParam({kYarnTokenRenewInterval, app, ParamType::kInt, "86400000",
                   {"3600000", "86400000"}, "Delegation token renew interval"});
  schema.AddParam({kYarnMaxAllocMb, app, ParamType::kInt, "8192",
                   {"1024", "8192"}, "Scheduler maximum container memory"});
  schema.AddParam({kYarnMaxAllocVcores, app, ParamType::kInt, "4",
                   {"1", "4"}, "Scheduler maximum container vcores"});
  schema.AddParam({kYarnTimelineEnabled, app, ParamType::kBool, "false",
                   {"true", "false"}, "Whether the timeline service runs"});

  schema.AddParam({kYarnWorkPreservingRecovery, app, ParamType::kBool, "true",
                   {"true", "false"},
                   "Work-preserving ResourceManager recovery (probabilistically "
                   "heterogeneous-unsafe)"});

  schema.AddParam({kYarnNmMemoryMb, app, ParamType::kInt, "8192",
                   {"4096", "8192"},
                   "NodeManager memory capacity (heterogeneous by design)"});
  schema.AddParam({kYarnNmVcores, app, ParamType::kInt, "8",
                   {"4", "8"},
                   "NodeManager vcore capacity (heterogeneous by design)"});
  schema.AddParam({kYarnMinAllocMb, app, ParamType::kInt, "1024",
                   {"128", "1024"}, "Scheduler minimum allocation (RM-local)"});
  schema.AddParam({kYarnNmHeartbeatMs, app, ParamType::kInt, "1000",
                   {"100", "1000"},
                   "NM heartbeat interval (shipped in the registration response)"});
  schema.AddParam({kYarnLogRetainSeconds, app, ParamType::kInt, "10800",
                   {"3600", "10800"}, "Log retention (NM-local)"});
  schema.AddParam({kYarnMaxCompletedApps, app, ParamType::kInt, "1000",
                   {"100", "1000"}, "Completed apps kept in memory (RM-local)"});
  schema.AddParam({kYarnVmemCheck, app, ParamType::kBool, "true",
                   {"true", "false"}, "Virtual memory enforcement (NM-local)"});
  schema.AddParam({kYarnTimelineTtlMs, app, ParamType::kInt, "604800000",
                   {"86400000", "604800000"}, "Timeline entity TTL (server-local)"});
  schema.AddParam({kYarnVmemPmemRatio, app, ParamType::kDouble, "2.1",
                   {"2.1", "4.0"}, "Virtual/physical memory ratio (NM-local)"});
  schema.AddParam({kYarnTimelineWebAddress, app, ParamType::kString, "0.0.0.0:8188",
                   {"0.0.0.0:8188", "0.0.0.0:18188"}, "Timeline HTTP address"});
  schema.AddParam({kYarnTimelineWebHttpsAddress, app, ParamType::kString,
                   "0.0.0.0:8190",
                   {"0.0.0.0:8190", "0.0.0.0:18190"}, "Timeline HTTPS address"});

  schema.AddDependencyRule(kYarnHttpPolicy, "HTTP_ONLY", kYarnTimelineWebAddress,
                           kYarnTimelineWebAddressDefault);
  schema.AddDependencyRule(kYarnHttpPolicy, "HTTPS_ONLY", kYarnTimelineWebHttpsAddress,
                           kYarnTimelineWebHttpsAddressDefault);
}

}  // namespace zebra
