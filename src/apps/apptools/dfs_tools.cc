#include "src/apps/apptools/dfs_tools.h"

#include "src/apps/appcommon/common_params.h"
#include "src/apps/appcommon/rpc_gate.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"
#include "src/common/strings.h"

namespace zebra {

namespace {

std::string Basename(const std::string& path) {
  size_t pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

// Virtual milliseconds a server-side archive scan takes per member.
constexpr int64_t kArchiveScanMsPerMember = 500;

}  // namespace

DistCpTool::DistCpTool(Cluster* cluster, NameNode* name_node,
                       std::vector<DataNode*> datanodes, const Configuration& conf)
    : cluster_(cluster),
      conf_(conf),
      client_(cluster, name_node, std::move(datanodes), conf) {}

int DistCpTool::Copy(const std::vector<std::string>& sources,
                     const std::string& dest_prefix) {
  conf_.GetInt(kIoFileBufferSize, kIoFileBufferSizeDefault);
  int copied = 0;
  for (const std::string& source : sources) {
    std::string contents = client_.ReadFile(source);
    client_.WriteFile(dest_prefix + Basename(source), contents);
    ++copied;
  }
  return copied;
}

HadoopArchiveTool::HadoopArchiveTool(Cluster* cluster, NameNode* name_node,
                                     std::vector<DataNode*> datanodes,
                                     const Configuration& conf)
    : cluster_(cluster),
      name_node_(name_node),
      conf_(conf),
      client_(cluster, name_node, std::move(datanodes), conf) {}

size_t HadoopArchiveTool::Archive(const std::vector<std::string>& sources,
                                  const std::string& archive_path) {
  // The NameNode-side scan is a long operation under the shared RPC timeout
  // discipline (ipc.client.rpc-timeout.ms on both sides).
  RpcLongOperation(*cluster_, "har-scan", conf_, name_node_->conf(),
                   static_cast<int64_t>(sources.size()) * kArchiveScanMsPerMember);

  // Index: member names; body: concatenated member contents.
  std::string index;
  std::string body;
  for (const std::string& source : sources) {
    std::string contents = client_.ReadFile(source);  // throws if missing
    index += Basename(source) + "\n";
    body += contents;
  }
  client_.WriteFile(archive_path + ".idx", index);
  client_.WriteFile(archive_path, body);
  return body.size();
}

std::vector<std::string> HadoopArchiveTool::ListMembers(
    const std::string& archive_path) {
  std::vector<std::string> members;
  for (const std::string& line : StrSplit(client_.ReadFile(archive_path + ".idx"), '\n')) {
    if (!line.empty()) {
      members.push_back(line);
    }
  }
  return members;
}

}  // namespace zebra
