// Hadoop-Tools analog: standalone tools that operate on a MiniDFS cluster
// through its client API. Tools have no parameters of their own (paper
// Table 1) — they read only shared-library and target-application
// parameters through the configuration object they are launched with.

#ifndef SRC_APPS_APPTOOLS_DFS_TOOLS_H_
#define SRC_APPS_APPTOOLS_DFS_TOOLS_H_

#include <string>
#include <vector>

#include "src/apps/minidfs/dfs_client.h"
#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"

namespace zebra {

class DataNode;
class NameNode;

// DistCp: copies a list of files within (or, in real Hadoop, across)
// filesystems. Reads its buffer sizing from the shared library parameters
// and performs every transfer through the ordinary client data path.
class DistCpTool {
 public:
  DistCpTool(Cluster* cluster, NameNode* name_node, std::vector<DataNode*> datanodes,
             const Configuration& conf);

  // Copies each source path to `dest_prefix + basename(source)`. Returns the
  // number of files copied.
  int Copy(const std::vector<std::string>& sources, const std::string& dest_prefix);

 private:
  Cluster* cluster_;
  const Configuration& conf_;
  DfsClient client_;
};

// HadoopArchive (har): packs a list of files into one archive file plus an
// index, validating that every member is present and readable. The long
// server-side scan runs under the shared RPC timeout discipline.
class HadoopArchiveTool {
 public:
  HadoopArchiveTool(Cluster* cluster, NameNode* name_node,
                    std::vector<DataNode*> datanodes, const Configuration& conf);

  // Archives `sources` into `archive_path`; returns the archive's byte size.
  // Throws if any member is missing or the archive scan times out.
  size_t Archive(const std::vector<std::string>& sources,
                 const std::string& archive_path);

  // Lists the member names recorded in an archive's index.
  std::vector<std::string> ListMembers(const std::string& archive_path);

 private:
  Cluster* cluster_;
  NameNode* name_node_;
  const Configuration& conf_;
  DfsClient client_;
};

}  // namespace zebra

#endif  // SRC_APPS_APPTOOLS_DFS_TOOLS_H_
