#include "src/apps/minidfs/mover.h"

#include <algorithm>

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/appcommon/rpc_gate.h"
#include "src/apps/minidfs/balancer.h"
#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"

namespace zebra {

Mover::Mover(Cluster* cluster, NameNode* name_node, const Configuration& conf)
    : init_scope_(kDfsApp, this, "Mover", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kDfsApp, conf, __FILE__, __LINE__)),
      cluster_(cluster),
      name_node_(name_node) {
  GetIpc(*cluster_, this);
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(),
          "NamenodeProtocol.getBlocks");
  init_scope_.Finish();
}

MoveResult Mover::MigrateBlocks(const std::vector<uint64_t>& block_ids, DataNode* src,
                                DataNode* dst, int64_t timeout_ms) {
  MoveResult result;
  const int64_t start_ms = cluster_->NowMs();
  int64_t mover_max = conf_.GetInt(kDfsBalanceMaxMoves, kDfsBalanceMaxMovesDefault);
  if (mover_max < 1) {
    mover_max = 1;
  }

  size_t next = 0;
  while (next < block_ids.size()) {
    // One dispatch wave at the Mover's own concurrency belief; the source
    // DataNode admits against its own limit and declined dispatchers back
    // off like the Balancer's.
    int64_t wave =
        std::min<int64_t>(mover_max, static_cast<int64_t>(block_ids.size() - next));
    int64_t latest_completion = cluster_->NowMs();
    for (int64_t i = 0; i < wave;) {
      int64_t completion = 0;
      if (src->TryStartBalanceMove(cluster_->NowMs(), Balancer::kMoveBaseDurationMs,
                                   &completion)) {
        src->ReplicateTo(dst, block_ids[next]);
        name_node_->CommitBalanceMove(block_ids[next], src->id(), dst->id());
        latest_completion = std::max(latest_completion, completion);
        ++result.migrated_blocks;
        ++next;
        ++i;
      } else {
        ++result.declined_dispatches;
        cluster_->AdvanceTime(Balancer::kCongestionBackoffMs);
      }
      if (cluster_->NowMs() - start_ms > timeout_ms) {
        throw TimeoutError("mover did not finish within " + std::to_string(timeout_ms) +
                           " ms (" + std::to_string(result.migrated_blocks) + "/" +
                           std::to_string(block_ids.size()) + " blocks)");
      }
    }
    cluster_->clock().AdvanceTo(latest_completion);
  }

  result.elapsed_ms = cluster_->NowMs() - start_ms;
  return result;
}

}  // namespace zebra
