#include "src/apps/minidfs/secondary_name_node.h"

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/appcommon/rpc_gate.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/sim/wire.h"

namespace zebra {

SecondaryNameNode::SecondaryNameNode(Cluster* cluster, NameNode* name_node,
                                     const Configuration& conf)
    : init_scope_(kDfsApp, this, "SecondaryNameNode", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kDfsApp, conf, __FILE__, __LINE__)),
      cluster_(cluster),
      name_node_(name_node) {
  int64_t period_ms =
      conf_.GetInt(kDfsCheckpointPeriod, kDfsCheckpointPeriodDefault) * 1000;
  checkpoint_task_ = cluster_->clock().SchedulePeriodic(period_ms, period_ms,
                                                        [this] { DoCheckpoint(); });
  GetIpc(*cluster_, this);
  init_scope_.Finish();
}

SecondaryNameNode::~SecondaryNameNode() {
  cluster_->clock().Cancel(checkpoint_task_);
}

void SecondaryNameNode::DoCheckpoint() {
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(),
          "NamenodeProtocol.getImage");
  Bytes canonical = name_node_->CanonicalImage();
  image_compressed_ = conf_.GetBool(kDfsImageCompress, kDfsImageCompressDefault);
  image_ = image_compressed_ ? CompressPayload("rle", canonical) : canonical;
  ++checkpoints_taken_;
}

Bytes SecondaryNameNode::CanonicalImage() const {
  return image_compressed_ ? DecompressPayload("rle", image_) : image_;
}

}  // namespace zebra
