// MiniDFS (HDFS analog) parameter names and defaults.
//
// The 21 parameters the paper's Table 3 reports as heterogeneous-unsafe for
// HDFS are all present with their original names; each is wired into the code
// path that makes it unsafe for the same mechanical reason as in HDFS. The
// remaining parameters are heterogeneous-safe (several of them seeded
// false-positive sources, marked below).

#ifndef SRC_APPS_MINIDFS_DFS_PARAMS_H_
#define SRC_APPS_MINIDFS_DFS_PARAMS_H_

#include <cstdint>

namespace zebra {

inline constexpr char kDfsApp[] = "minidfs";

// ---- Table 3 heterogeneous-unsafe parameters ---------------------------------

// "DataNode fails to register block pools."
inline constexpr char kDfsBlockAccessToken[] = "dfs.block.access.token.enable";
inline constexpr bool kDfsBlockAccessTokenDefault = false;

// "Checksum verification fails on DataNode."
inline constexpr char kDfsBytesPerChecksum[] = "dfs.bytes-per-checksum";
inline constexpr int64_t kDfsBytesPerChecksumDefault = 512;

// "End users may observe inconsistent number of blocks."
inline constexpr char kDfsIncrementalBrInterval[] =
    "dfs.blockreport.incremental.intervalMsec";
inline constexpr int64_t kDfsIncrementalBrIntervalDefault = 0;

// "Checksum verification fails on DataNode."
inline constexpr char kDfsChecksumType[] = "dfs.checksum.type";
inline constexpr char kDfsChecksumTypeDefault[] = "CRC32C";

// "NameNode reports Exception when Client tries to find additional DataNode."
inline constexpr char kDfsReplaceDnOnFailure[] =
    "dfs.client.block.write.replace-datanode-on-failure.enable";
inline constexpr bool kDfsReplaceDnOnFailureDefault = true;

// "Socket connection timeouts."
inline constexpr char kDfsClientSocketTimeout[] = "dfs.client.socket-timeout";
inline constexpr int64_t kDfsClientSocketTimeoutDefault = 60000;

// "Balancer timeouts because DataNode fails to reply in time."
inline constexpr char kDfsBalanceBandwidth[] = "dfs.datanode.balance.bandwidthPerSec";
inline constexpr int64_t kDfsBalanceBandwidthDefault = 1048576;  // 1 MiB/s

// "Balancer becomes 10x slower due to DataNode congestion control."
inline constexpr char kDfsBalanceMaxMoves[] =
    "dfs.datanode.balance.max.concurrent.moves";
inline constexpr int64_t kDfsBalanceMaxMovesDefault = 50;

// "End users may observe inconsistent size of reserved space."
inline constexpr char kDfsDuReserved[] = "dfs.datanode.du.reserved";
inline constexpr int64_t kDfsDuReservedDefault = 0;

// "Sasl handshake fails between Client and DataNode."
inline constexpr char kDfsDataTransferProtection[] = "dfs.data.transfer.protection";
inline constexpr char kDfsDataTransferProtectionDefault[] = "none";

// "DataNode fails to re-compute encryption key as block key is missing."
inline constexpr char kDfsEncryptDataTransfer[] = "dfs.encrypt.data.transfer";
inline constexpr bool kDfsEncryptDataTransferDefault = false;

// "JournalNode declines NameNode's request to fetch journaled edits."
inline constexpr char kDfsHaTailEditsInProgress[] = "dfs.ha.tail-edits.in-progress";
inline constexpr bool kDfsHaTailEditsInProgressDefault = false;

// "NameNode falsely identifies alive DataNode as crashed."
inline constexpr char kDfsHeartbeatInterval[] = "dfs.heartbeat.interval";  // seconds
inline constexpr int64_t kDfsHeartbeatIntervalDefault = 3;

// "Tool DFSck fails to connect to HTTP server."
inline constexpr char kDfsHttpPolicy[] = "dfs.http.policy";
inline constexpr char kDfsHttpPolicyDefault[] = "HTTP_ONLY";

// "Length of component name path exceeds maximum limit on NameNode."
inline constexpr char kDfsMaxComponentLength[] =
    "dfs.namenode.fs-limits.max-component-length";
inline constexpr int64_t kDfsMaxComponentLengthDefault = 255;

// "Directory item number exceeds maximum limit on NameNode."
inline constexpr char kDfsMaxDirectoryItems[] =
    "dfs.namenode.fs-limits.max-directory-items";
inline constexpr int64_t kDfsMaxDirectoryItemsDefault = 1048576;

// "End users may observe inconsistent number of dead DataNodes."
inline constexpr char kDfsHeartbeatRecheck[] =
    "dfs.namenode.heartbeat.recheck-interval";  // milliseconds
inline constexpr int64_t kDfsHeartbeatRecheckDefault = 300000;

// "End users may observe inconsistent number of corrupted blocks."
inline constexpr char kDfsMaxCorruptFileBlocks[] =
    "dfs.namenode.max-corrupt-file-blocks-returned";
inline constexpr int64_t kDfsMaxCorruptFileBlocksDefault = 100;

// "NameNode declines Client's request to do snapshot."
inline constexpr char kDfsSnapshotDescendant[] =
    "dfs.namenode.snapshotdiff.allow.snap-root-descendant";
inline constexpr bool kDfsSnapshotDescendantDefault = true;

// "End users may observe inconsistent number of stale DataNodes."
inline constexpr char kDfsStaleInterval[] = "dfs.namenode.stale.datanode.interval";
inline constexpr int64_t kDfsStaleIntervalDefault = 30000;

// "Balancer hangs because of block placement policy violation on NameNode."
inline constexpr char kDfsUpgradeDomainFactor[] = "dfs.namenode.upgrade.domain.factor";
inline constexpr int64_t kDfsUpgradeDomainFactorDefault = 3;

// ---- Heterogeneous-safe parameters -------------------------------------------

inline constexpr char kDfsReplication[] = "dfs.replication";
inline constexpr int64_t kDfsReplicationDefault = 2;

inline constexpr char kDfsBlockSize[] = "dfs.blocksize";
inline constexpr int64_t kDfsBlockSizeDefault = 1024;

inline constexpr char kDfsNameNodeHandlerCount[] = "dfs.namenode.handler.count";
inline constexpr int64_t kDfsNameNodeHandlerCountDefault = 10;

inline constexpr char kDfsDataNodeHandlerCount[] = "dfs.datanode.handler.count";
inline constexpr int64_t kDfsDataNodeHandlerCountDefault = 10;

inline constexpr char kDfsDataDir[] = "dfs.datanode.data.dir";
inline constexpr char kDfsDataDirDefault[] = "/data/dfs";

inline constexpr char kDfsClientRetries[] = "dfs.client.retries";
inline constexpr int64_t kDfsClientRetriesDefault = 3;

inline constexpr char kDfsCheckpointPeriod[] = "dfs.namenode.checkpoint.period";
inline constexpr int64_t kDfsCheckpointPeriodDefault = 3600;

inline constexpr char kDfsSafemodeThreshold[] = "dfs.namenode.safemode.threshold-pct";
inline constexpr double kDfsSafemodeThresholdDefault = 0.999;

// Seeded false-positive source: a unit test manipulates DataNode-private scan
// state with the client's configuration object (unrealistic in production).
inline constexpr char kDfsScanPeriodHours[] = "dfs.datanode.scan.period.hours";
inline constexpr int64_t kDfsScanPeriodHoursDefault = 504;

// Seeded false-positive source: a unit test compares checkpoint image file
// *lengths* across NameNodes (overly strict assertion; contents are equal).
inline constexpr char kDfsImageCompress[] = "dfs.image.compress";
inline constexpr bool kDfsImageCompressDefault = false;

inline constexpr char kDfsPermissionsEnabled[] = "dfs.permissions.enabled";
inline constexpr bool kDfsPermissionsEnabledDefault = true;

inline constexpr char kDfsAclsEnabled[] = "dfs.namenode.acls.enabled";
inline constexpr bool kDfsAclsEnabledDefault = false;

inline constexpr char kDfsMaxTransferThreads[] = "dfs.datanode.max.transfer.threads";
inline constexpr int64_t kDfsMaxTransferThreadsDefault = 4096;

inline constexpr char kDfsUseDnHostname[] = "dfs.client.use.datanode.hostname";
inline constexpr bool kDfsUseDnHostnameDefault = false;

inline constexpr char kDfsReplicationMin[] = "dfs.namenode.replication.min";
inline constexpr int64_t kDfsReplicationMinDefault = 1;

inline constexpr char kDfsSyncBehindWrites[] = "dfs.datanode.sync.behind.writes";
inline constexpr bool kDfsSyncBehindWritesDefault = false;

inline constexpr char kDfsExtraEditsRetained[] = "dfs.namenode.num.extra.edits.retained";
inline constexpr int64_t kDfsExtraEditsRetainedDefault = 1000000;

inline constexpr char kDfsStreamBufferSize[] = "dfs.stream-buffer-size";
inline constexpr int64_t kDfsStreamBufferSizeDefault = 4096;

// Web addresses consumed by the http.policy dependency rules (§4).
inline constexpr char kDfsHttpAddress[] = "dfs.namenode.http-address";
inline constexpr char kDfsHttpAddressDefault[] = "0.0.0.0:9870";
inline constexpr char kDfsHttpsAddress[] = "dfs.namenode.https-address";
inline constexpr char kDfsHttpsAddressDefault[] = "0.0.0.0:9871";

}  // namespace zebra

#endif  // SRC_APPS_MINIDFS_DFS_PARAMS_H_
