// MiniDFS client: the API surface unit tests (and end users) drive.
//
// The client is *not* a node: it reads configuration through whatever
// Configuration object the unit test hands it — typically the unit-test-owned
// object — exactly as HDFS's DFSClient does. That makes the unit test the
// "client node" of the paper's model.

#ifndef SRC_APPS_MINIDFS_DFS_CLIENT_H_
#define SRC_APPS_MINIDFS_DFS_CLIENT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"

namespace zebra {

class DataNode;
class NameNode;

class DfsClient {
 public:
  DfsClient(Cluster* cluster, NameNode* name_node, std::vector<DataNode*> datanodes,
            const Configuration& conf);

  // Writes `data`, chunked at the client's dfs.blocksize, replicated through
  // the DataNode pipeline at the client's dfs.replication. Exercises the RPC
  // gate, the data-transfer handshake and the framed data path.
  void WriteFile(const std::string& path, const std::string& data);

  // Like WriteFile, but the first pipeline DataNode "fails" after the
  // transfer; the client consults its replace-datanode-on-failure policy to
  // decide whether to ask the NameNode for a replacement.
  void WriteFileWithPipelineFailure(const std::string& path, const std::string& data);

  // Reads the file back through DataNode frames decoded with the client's
  // wire configuration.
  std::string ReadFile(const std::string& path);

  // A read served under heavy DataNode load: takes `duration_ms` of virtual
  // time, paced by the DataNode's dfs.client.socket-timeout while the client
  // waits under its own.
  std::string ReadFileSlow(const std::string& path, int64_t duration_ms);

  // Deletes the file; DataNodes report replica deletions per their own
  // incremental block-report interval.
  void DeleteFile(const std::string& path);

  // NameNode-reported corrupt blocks (truncated at the NameNode's limit).
  std::vector<uint64_t> ListCorruptBlocks();
  void ReportBadBlock(uint64_t block_id);

  // Snapshot diff: the client queries a descendant path only when *its*
  // configuration says descendant access is allowed, else the snapshot root.
  int SnapshotDiff(const std::string& root, const std::string& descendant);

  // The fsck tool: connects to the NameNode web endpoint using the scheme
  // derived from the *client's* dfs.http.policy.
  std::string Fsck();

  // Sum of reserved bytes across DataNodes (each reports from its own conf).
  int64_t TotalReservedBytes();

  // NameNode liveness counters as an end user sees them.
  int NumLiveDataNodes();
  int NumDeadDataNodes();
  int NumStaleDataNodes();
  int TotalBlocks();

 private:
  DataNode* ResolveDataNode(uint64_t dn_id) const;

  Cluster* cluster_;
  NameNode* name_node_;
  std::vector<DataNode*> datanodes_;
  const Configuration& conf_;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIDFS_DFS_CLIENT_H_
