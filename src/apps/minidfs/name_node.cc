#include "src/apps/minidfs/name_node.h"

#include <algorithm>

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/journal_node.h"
#include "src/common/error.h"
#include "src/common/strings.h"
#include "src/sim/wire.h"

namespace zebra {

namespace {
constexpr char kBlockAccessTokenValue[] = "block-pool-token";
}  // namespace

NameNode::NameNode(Cluster* cluster, const Configuration& conf)
    : init_scope_(kDfsApp, this, "NameNode", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kDfsApp, conf, __FILE__, __LINE__)),
      cluster_(cluster) {
  // Touch the ordinary startup parameters, as the real NameNode does while
  // constructing its RPC server and storage policies. These reads are what
  // the pre-run records.
  conf_.GetInt(kDfsNameNodeHandlerCount, kDfsNameNodeHandlerCountDefault);
  conf_.GetDouble(kDfsSafemodeThreshold, kDfsSafemodeThresholdDefault);
  conf_.GetInt(kDfsReplicationMin, kDfsReplicationMinDefault);
  conf_.GetBool(kDfsPermissionsEnabled, kDfsPermissionsEnabledDefault);
  conf_.GetBool(kDfsAclsEnabled, kDfsAclsEnabledDefault);
  conf_.GetInt(kDfsExtraEditsRetained, kDfsExtraEditsRetainedDefault);

  // Bring up the web endpoint (reads dfs.http.policy and the matching
  // address parameter).
  WebScheme();

  // Create (or join) the IPC component while still inside the init function
  // so its configuration object maps to this node.
  GetIpc(*cluster_, this);

  // Periodic liveness checking at the recheck interval.
  int64_t recheck = conf_.GetInt(kDfsHeartbeatRecheck, kDfsHeartbeatRecheckDefault);
  liveness_task_ = cluster_->clock().SchedulePeriodic(recheck, recheck,
                                                      [this] { RunLivenessCheck(); });
  init_scope_.Finish();
}

NameNode::~NameNode() { cluster_->clock().Cancel(liveness_task_); }

void NameNode::Reconfigure(const std::string& param, const std::string& value) {
  if (param == kDfsHeartbeatInterval || param == kDfsHeartbeatRecheck) {
    conf_.Set(param, value);  // the liveness check reads both dynamically
    return;
  }
  throw RpcError("NameNode cannot reconfigure '" + param + "' online");
}

void NameNode::RegisterDataNode(uint64_t dn_id, const std::string& access_token) {
  bool tokens_required = conf_.GetBool(kDfsBlockAccessToken, kDfsBlockAccessTokenDefault);
  if (tokens_required && access_token != kBlockAccessTokenValue) {
    throw HandshakeError(
        "NameNode requires block access tokens but the DataNode presented none; "
        "block pool registration failed");
  }
  DataNodeInfo info;
  info.index = static_cast<int>(registration_order_.size());
  info.last_heartbeat_ms = cluster_->NowMs();
  datanodes_[dn_id] = info;
  registration_order_.push_back(dn_id);
}

void NameNode::Heartbeat(uint64_t dn_id) {
  auto it = datanodes_.find(dn_id);
  if (it == datanodes_.end()) {
    throw RpcError("heartbeat from unregistered DataNode");
  }
  if (it->second.dead) {
    // HDFS answers a heartbeat from a dead-declared DataNode with
    // DNA_REGISTER: the node must re-register before it is trusted again.
    throw RpcError(
        "NameNode declared this DataNode dead; heartbeat rejected, "
        "re-registration required");
  }
  it->second.last_heartbeat_ms = cluster_->NowMs();
}

void NameNode::RunLivenessCheck() {
  int64_t recheck = conf_.GetInt(kDfsHeartbeatRecheck, kDfsHeartbeatRecheckDefault);
  int64_t heartbeat_s = conf_.GetInt(kDfsHeartbeatInterval, kDfsHeartbeatIntervalDefault);
  // HDFS's dead window: 2 * recheck + 10 * heartbeat, from *this* NameNode's
  // configuration. Death is sticky until re-registration.
  int64_t dead_window_ms = 2 * recheck + 10 * heartbeat_s * 1000;
  int64_t now = cluster_->NowMs();
  for (auto& [dn_id, info] : datanodes_) {
    if (now - info.last_heartbeat_ms > dead_window_ms) {
      info.dead = true;
    }
  }
}

int NameNode::NumLiveDataNodes() const {
  int live = 0;
  for (const auto& [dn_id, info] : datanodes_) {
    if (!info.dead) {
      ++live;
    }
  }
  return live;
}

int NameNode::NumDeadDataNodes() const {
  return static_cast<int>(datanodes_.size()) - NumLiveDataNodes();
}

int NameNode::NumStaleDataNodes() const {
  int64_t stale_window = conf_.GetInt(kDfsStaleInterval, kDfsStaleIntervalDefault);
  int64_t now = cluster_->NowMs();
  int stale = 0;
  for (const auto& [dn_id, info] : datanodes_) {
    if (now - info.last_heartbeat_ms > stale_window) {
      ++stale;
    }
  }
  return stale;
}

int NameNode::NumRegisteredDataNodes() const {
  return static_cast<int>(datanodes_.size());
}

void NameNode::EnterSafeMode(int expected_blocks) {
  safe_mode_ = true;
  safe_mode_expected_blocks_ = expected_blocks;
}

bool NameNode::InSafeMode() const {
  if (!safe_mode_) {
    return false;
  }
  double threshold = conf_.GetDouble(kDfsSafemodeThreshold, kDfsSafemodeThresholdDefault);
  double needed = threshold * static_cast<double>(safe_mode_expected_blocks_);
  return static_cast<double>(TotalBlocks()) < needed;
}

void NameNode::ProcessBlockReport(uint64_t dn_id,
                                  const std::vector<uint64_t>& block_ids) {
  if (datanodes_.count(dn_id) == 0) {
    throw RpcError("block report from unregistered DataNode");
  }
  for (uint64_t block_id : block_ids) {
    block_locations_[block_id].insert(dn_id);
  }
}

void NameNode::CreateFile(const std::string& path, int replication) {
  if (InSafeMode()) {
    throw RpcError("Name node is in safe mode: cannot create " + path);
  }
  int64_t max_component =
      conf_.GetInt(kDfsMaxComponentLength, kDfsMaxComponentLengthDefault);
  int64_t max_items = conf_.GetInt(kDfsMaxDirectoryItems, kDfsMaxDirectoryItemsDefault);

  std::vector<std::string> components = StrSplit(path, '/');
  for (const std::string& component : components) {
    if (max_component > 0 && static_cast<int64_t>(component.size()) > max_component) {
      throw LimitError("path component '" + component.substr(0, 32) +
                       "...' exceeds fs-limits.max-component-length=" +
                       std::to_string(max_component));
    }
  }

  std::string parent = "/";
  if (auto pos = path.find_last_of('/'); pos != std::string::npos && pos > 0) {
    parent = path.substr(0, pos);
  }
  std::set<std::string>& children = directory_children_[parent];
  if (max_items > 0 && static_cast<int64_t>(children.size()) >= max_items &&
      children.count(path) == 0) {
    throw LimitError("directory " + parent +
                     " exceeds fs-limits.max-directory-items=" +
                     std::to_string(max_items));
  }
  children.insert(path);

  FileInfo info;
  info.replication = replication;
  files_[path] = info;
}

uint64_t NameNode::AddBlock(const std::string& path) {
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw RpcError("addBlock on nonexistent file " + path);
  }
  uint64_t block_id = next_block_id_++;
  it->second.block_ids.push_back(block_id);
  block_locations_[block_id];  // ensure presence
  return block_id;
}

std::vector<uint64_t> NameNode::PickTargets(int count) {
  if (registration_order_.empty()) {
    throw RpcError("no DataNodes registered");
  }
  std::vector<uint64_t> targets;
  for (int i = 0; i < count && i < static_cast<int>(registration_order_.size()); ++i) {
    targets.push_back(
        registration_order_[(next_target_rotation_ + i) % registration_order_.size()]);
  }
  ++next_target_rotation_;
  return targets;
}

void NameNode::RecordBlockLocation(uint64_t block_id, uint64_t dn_id) {
  block_locations_[block_id].insert(dn_id);
}

bool NameNode::FileExists(const std::string& path) const {
  return files_.count(path) > 0;
}

std::vector<uint64_t> NameNode::BlocksOf(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw RpcError("getBlockLocations on nonexistent file " + path);
  }
  return it->second.block_ids;
}

std::vector<uint64_t> NameNode::LocationsOf(uint64_t block_id) const {
  auto it = block_locations_.find(block_id);
  if (it == block_locations_.end()) {
    return {};
  }
  return std::vector<uint64_t>(it->second.begin(), it->second.end());
}

std::map<uint64_t, std::vector<uint64_t>> NameNode::RemoveFile(const std::string& path) {
  if (InSafeMode()) {
    throw RpcError("Name node is in safe mode: cannot delete " + path);
  }
  auto it = files_.find(path);
  if (it == files_.end()) {
    throw RpcError("delete on nonexistent file " + path);
  }
  std::map<uint64_t, std::vector<uint64_t>> result;
  for (uint64_t block_id : it->second.block_ids) {
    result[block_id] = LocationsOf(block_id);
  }
  files_.erase(it);
  std::string parent = "/";
  if (auto pos = path.find_last_of('/'); pos != std::string::npos && pos > 0) {
    parent = path.substr(0, pos);
  }
  directory_children_[parent].erase(path);
  return result;
}

void NameNode::OnBlockReplicaDeleted(uint64_t block_id, uint64_t dn_id) {
  auto it = block_locations_.find(block_id);
  if (it == block_locations_.end()) {
    return;
  }
  it->second.erase(dn_id);
  if (it->second.empty()) {
    block_locations_.erase(it);
    corrupt_blocks_.erase(block_id);
  }
}

int NameNode::TotalBlocks() const {
  int total = 0;
  for (const auto& [block_id, locations] : block_locations_) {
    if (!locations.empty()) {
      ++total;
    }
  }
  return total;
}

void NameNode::MarkBlockCorrupt(uint64_t block_id) { corrupt_blocks_.insert(block_id); }

std::vector<uint64_t> NameNode::ListCorruptBlocks() const {
  int64_t max_returned =
      conf_.GetInt(kDfsMaxCorruptFileBlocks, kDfsMaxCorruptFileBlocksDefault);
  std::vector<uint64_t> result;
  for (uint64_t block_id : corrupt_blocks_) {
    if (static_cast<int64_t>(result.size()) >= max_returned) {
      break;
    }
    result.push_back(block_id);
  }
  return result;
}

void NameNode::AllowSnapshot(const std::string& root_path) {
  snapshot_roots_.insert(root_path);
}

int NameNode::SnapshotDiff(const std::string& path) const {
  if (snapshot_roots_.count(path) > 0) {
    return static_cast<int>(files_.size());
  }
  // `path` is a descendant of a snapshot root.
  bool allow_descendant =
      conf_.GetBool(kDfsSnapshotDescendant, kDfsSnapshotDescendantDefault);
  for (const std::string& root : snapshot_roots_) {
    if (StartsWith(path, root + "/") || root == "/") {
      if (!allow_descendant) {
        throw RpcError("snapshot diff on descendant path " + path +
                       " declined: snap-root-descendant access is disabled");
      }
      return static_cast<int>(files_.size());
    }
  }
  throw RpcError("path " + path + " is not under a snapshottable root");
}

uint64_t NameNode::GetAdditionalDataNode(uint64_t failed_dn_id) {
  bool replace_enabled =
      conf_.GetBool(kDfsReplaceDnOnFailure, kDfsReplaceDnOnFailureDefault);
  if (!replace_enabled) {
    throw RpcError(
        "getAdditionalDatanode: replace-datanode-on-failure policy is DISABLE "
        "on the NameNode");
  }
  for (uint64_t dn_id : registration_order_) {
    if (dn_id != failed_dn_id && !datanodes_.at(dn_id).dead) {
      return dn_id;
    }
  }
  throw RpcError("no replacement DataNode available");
}

Bytes NameNode::CanonicalImage() const {
  Bytes image;
  AppendU32(&image, static_cast<uint32_t>(files_.size()));
  for (const auto& [path, info] : files_) {
    AppendLengthPrefixedString(&image, path);
    AppendU32(&image, static_cast<uint32_t>(info.replication));
    AppendU32(&image, static_cast<uint32_t>(info.block_ids.size()));
    for (uint64_t block_id : info.block_ids) {
      AppendU64(&image, block_id);
    }
  }
  return image;
}

Bytes NameNode::SaveImage() const {
  Bytes canonical = CanonicalImage();
  if (conf_.GetBool(kDfsImageCompress, kDfsImageCompressDefault)) {
    return CompressPayload("rle", canonical);
  }
  return canonical;
}

int NameNode::TailEdits(JournalNode* journal) {
  bool want_in_progress =
      conf_.GetBool(kDfsHaTailEditsInProgress, kDfsHaTailEditsInProgressDefault);
  return journal->FetchEdits(want_in_progress);
}

int NameNode::RegistrationIndexOf(uint64_t dn_id) const {
  auto it = datanodes_.find(dn_id);
  if (it == datanodes_.end()) {
    throw RpcError("unknown DataNode in upgrade-domain lookup");
  }
  return it->second.index;
}

int NameNode::UpgradeDomainOf(uint64_t dn_id) const {
  int64_t factor = conf_.GetInt(kDfsUpgradeDomainFactor, kDfsUpgradeDomainFactorDefault);
  if (factor <= 0) {
    factor = 1;
  }
  return static_cast<int>(RegistrationIndexOf(dn_id) % factor);
}

bool NameNode::ValidateBalanceMove(uint64_t block_id, uint64_t src_dn,
                                   uint64_t dst_dn) const {
  auto it = block_locations_.find(block_id);
  if (it == block_locations_.end() || it->second.count(src_dn) == 0) {
    return false;
  }
  std::set<int> domains;
  domains.insert(UpgradeDomainOf(dst_dn));
  for (uint64_t dn_id : it->second) {
    if (dn_id == src_dn) {
      continue;
    }
    int domain = UpgradeDomainOf(dn_id);
    if (domains.count(domain) > 0) {
      return false;  // placement policy violation under the NameNode's factor
    }
    domains.insert(domain);
  }
  return true;
}

void NameNode::CommitBalanceMove(uint64_t block_id, uint64_t src_dn, uint64_t dst_dn) {
  auto it = block_locations_.find(block_id);
  if (it == block_locations_.end()) {
    return;
  }
  it->second.erase(src_dn);
  it->second.insert(dst_dn);
}

std::string NameNode::WebScheme() const {
  std::string policy = conf_.Get(kDfsHttpPolicy, kDfsHttpPolicyDefault);
  if (policy == "HTTPS_ONLY") {
    conf_.Get(kDfsHttpsAddress, kDfsHttpsAddressDefault);
    return "https";
  }
  conf_.Get(kDfsHttpAddress, kDfsHttpAddressDefault);
  return "http";
}

}  // namespace zebra
