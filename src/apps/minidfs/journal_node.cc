#include "src/apps/minidfs/journal_node.h"

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/common/error.h"

namespace zebra {

JournalNode::JournalNode(Cluster* cluster, const Configuration& conf)
    : init_scope_(kDfsApp, this, "JournalNode", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kDfsApp, conf, __FILE__, __LINE__)) {
  conf_.Get(kDfsDataDir, kDfsDataDirDefault);
  GetIpc(*cluster, this);
  init_scope_.Finish();
}

int JournalNode::FetchEdits(bool include_in_progress) const {
  if (include_in_progress) {
    bool serving_enabled =
        conf_.GetBool(kDfsHaTailEditsInProgress, kDfsHaTailEditsInProgressDefault);
    if (!serving_enabled) {
      throw RpcError(
          "JournalNode declines request for in-progress edits: "
          "dfs.ha.tail-edits.in-progress is disabled on this JournalNode");
    }
    return finalized_edits_ + in_progress_edits_;
  }
  return finalized_edits_;
}

}  // namespace zebra
