// MiniDFS Balancer: redistributes block replicas across DataNodes.
//
// Reproduces three Table 3 / §7.1 failure mechanisms:
//  * dfs.datanode.balance.max.concurrent.moves — the Balancer dispatches
//    according to *its* limit; DataNodes admit according to *theirs*; each
//    declined dispatch triggers the 1100 ms congestion backoff, collapsing
//    throughput roughly 10x when the Balancer believes in more capacity than
//    the DataNode has (the paper's (DataNode:1, Balancer:50) case).
//  * dfs.namenode.upgrade.domain.factor — the Balancer plans moves that are
//    valid under *its* domain factor; the NameNode validates under its own;
//    a mismatch can decline every proposal and the rebalance never finishes.
//  * dfs.datanode.balance.bandwidthPerSec — a fast sender saturates a slow
//    receiver, whose throttling then starves its own progress reports until
//    the Balancer times out.

#ifndef SRC_APPS_MINIDFS_BALANCER_H_
#define SRC_APPS_MINIDFS_BALANCER_H_

#include <cstdint>
#include <vector>

#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

class DataNode;
class NameNode;

struct BalanceResult {
  int completed_moves = 0;
  int declined_dispatches = 0;
  int64_t elapsed_ms = 0;
};

class Balancer {
 public:
  Balancer(Cluster* cluster, NameNode* name_node, const Configuration& conf);

  Balancer(const Balancer&) = delete;
  Balancer& operator=(const Balancer&) = delete;

  const Configuration& conf() const { return conf_; }

  // Moves `num_moves` blocks onto `target`, dispatching up to the Balancer's
  // max.concurrent.moves concurrently; each declined dispatch backs off
  // kCongestionBackoffMs. Throws TimeoutError when `timeout_ms` elapses
  // first. Advances virtual time.
  BalanceResult RunMoves(DataNode* target, int num_moves, int64_t timeout_ms);

  // Upgrade-domain-aware rebalancing: moves one replica of each given block
  // from `src` to `dst`, proposing only moves valid under the Balancer's own
  // domain factor and committing only those the NameNode validates. Throws
  // TimeoutError if repeated NameNode declines prevent progress.
  BalanceResult RunDomainMoves(const std::vector<uint64_t>& block_ids, DataNode* src,
                               DataNode* dst, int64_t timeout_ms);

  // Streams `total_bytes` of balancing traffic from `src` to `dst` while
  // `dst` must also deliver a progress report to the Balancer every second.
  // Returns the maximum progress-report delay observed; throws TimeoutError
  // if a report is delayed beyond kProgressTimeoutMs.
  int64_t RunThrottledTransfer(DataNode* src, DataNode* dst, int64_t total_bytes);

  static constexpr int64_t kMoveBaseDurationMs = 110;
  static constexpr int64_t kCongestionBackoffMs = 1100;
  static constexpr int64_t kProgressTimeoutMs = 5000;
  static constexpr int64_t kProgressReportBytes = 1024;

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;
  NameNode* name_node_;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIDFS_BALANCER_H_
