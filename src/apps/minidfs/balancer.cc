#include "src/apps/minidfs/balancer.h"

#include <algorithm>
#include <set>

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/appcommon/rpc_gate.h"
#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"
#include "src/sim/sim_network.h"

namespace zebra {

Balancer::Balancer(Cluster* cluster, NameNode* name_node, const Configuration& conf)
    : init_scope_(kDfsApp, this, "Balancer", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kDfsApp, conf, __FILE__, __LINE__)),
      cluster_(cluster),
      name_node_(name_node) {
  GetIpc(*cluster_, this);
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(),
          "NamenodeProtocol.getBlocks");
  init_scope_.Finish();
}

BalanceResult Balancer::RunMoves(DataNode* target, int num_moves, int64_t timeout_ms) {
  BalanceResult result;
  const int64_t start_ms = cluster_->NowMs();
  int64_t balancer_max = conf_.GetInt(kDfsBalanceMaxMoves, kDfsBalanceMaxMovesDefault);
  if (balancer_max < 1) {
    balancer_max = 1;
  }

  int remaining = num_moves;
  while (remaining > 0) {
    // One dispatch iteration: the Balancer launches up to *its* concurrency
    // limit worth of moves and waits for all of them before planning the next
    // wave (HDFS's per-iteration dispatcher).
    int batch = static_cast<int>(std::min<int64_t>(balancer_max, remaining));
    std::multiset<int64_t> completions;
    std::multiset<int64_t> retries;

    auto attempt = [&](int64_t now_ms) {
      int64_t completion = 0;
      if (target->TryStartBalanceMove(now_ms, kMoveBaseDurationMs, &completion)) {
        completions.insert(completion);
      } else {
        ++result.declined_dispatches;
        retries.insert(now_ms + kCongestionBackoffMs);
      }
    };

    for (int i = 0; i < batch; ++i) {
      attempt(cluster_->NowMs());
    }

    while (!completions.empty() || !retries.empty()) {
      int64_t next_completion =
          completions.empty() ? INT64_MAX : *completions.begin();
      int64_t next_retry = retries.empty() ? INT64_MAX : *retries.begin();
      int64_t next_event = std::min(next_completion, next_retry);
      if (next_event - start_ms > timeout_ms) {
        throw TimeoutError("balancer did not finish within " +
                           std::to_string(timeout_ms) + " ms (" +
                           std::to_string(result.completed_moves) + "/" +
                           std::to_string(num_moves) + " moves, " +
                           std::to_string(result.declined_dispatches) + " declines)");
      }
      cluster_->clock().AdvanceTo(next_event);
      int64_t now_ms = cluster_->NowMs();
      while (!completions.empty() && *completions.begin() <= now_ms) {
        completions.erase(completions.begin());
        ++result.completed_moves;
      }
      std::vector<int64_t> due;
      while (!retries.empty() && *retries.begin() <= now_ms) {
        due.push_back(*retries.begin());
        retries.erase(retries.begin());
      }
      for (size_t i = 0; i < due.size(); ++i) {
        attempt(now_ms);
      }
    }
    remaining -= batch;
  }

  result.elapsed_ms = cluster_->NowMs() - start_ms;
  return result;
}

BalanceResult Balancer::RunDomainMoves(const std::vector<uint64_t>& block_ids,
                                       DataNode* src, DataNode* dst,
                                       int64_t timeout_ms) {
  BalanceResult result;
  const int64_t start_ms = cluster_->NowMs();
  int64_t balancer_factor =
      conf_.GetInt(kDfsUpgradeDomainFactor, kDfsUpgradeDomainFactorDefault);
  if (balancer_factor <= 0) {
    balancer_factor = 1;
  }

  for (uint64_t block_id : block_ids) {
    // The Balancer evaluates placement with *its own* domain factor: the
    // destination's domain must differ from every remaining replica's domain.
    std::set<int64_t> domains_after;
    domains_after.insert(name_node_->DataNodeIndex(dst->id()) % balancer_factor);
    bool valid_for_balancer = true;
    for (uint64_t dn_id : name_node_->LocationsOf(block_id)) {
      if (dn_id == src->id()) {
        continue;
      }
      int64_t domain = name_node_->DataNodeIndex(dn_id) % balancer_factor;
      if (domains_after.count(domain) > 0) {
        valid_for_balancer = false;
        break;
      }
      domains_after.insert(domain);
    }
    if (!valid_for_balancer) {
      continue;  // the Balancer finds nothing it considers movable
    }

    // Keep re-proposing the move the Balancer believes is valid; the NameNode
    // validates with its own factor and may decline every time.
    while (true) {
      if (name_node_->ValidateBalanceMove(block_id, src->id(), dst->id())) {
        src->ReplicateTo(dst, block_id);
        name_node_->CommitBalanceMove(block_id, src->id(), dst->id());
        ++result.completed_moves;
        cluster_->AdvanceTime(kMoveBaseDurationMs);
        break;
      }
      ++result.declined_dispatches;
      cluster_->AdvanceTime(kCongestionBackoffMs);
      if (cluster_->NowMs() - start_ms > timeout_ms) {
        throw TimeoutError(
            "rebalancing made no progress: NameNode keeps declining moves as "
            "block placement policy violations (" +
            std::to_string(result.declined_dispatches) + " declines)");
      }
    }
  }

  result.elapsed_ms = cluster_->NowMs() - start_ms;
  return result;
}

int64_t Balancer::RunThrottledTransfer(DataNode* src, DataNode* dst,
                                       int64_t total_bytes) {
  int64_t src_rate = src->BalanceBandwidthPerSec();
  int64_t dst_rate = dst->BalanceBandwidthPerSec();
  if (src_rate <= 0 || dst_rate <= 0) {
    throw RpcError("balancing bandwidth must be positive");
  }

  // The receiver's inbound link drains at *its* bandwidth limit; messages
  // are delivered FIFO, so the periodic progress report queues behind
  // whatever data backlog the (faster) sender has built up.
  InboundQueue inbound(dst_rate);
  int64_t sent_bytes = 0;
  int64_t max_report_delay_ms = 0;
  while (sent_bytes < total_bytes) {
    int64_t now = cluster_->NowMs();
    // The receiver emits its progress report, then one second of sender
    // traffic (paced at the sender's own limit) lands behind it.
    uint64_t report = inbound.Enqueue(kProgressReportBytes, now);
    int64_t inflow = std::min(src_rate, total_bytes - sent_bytes);
    sent_bytes += inflow;
    inbound.Enqueue(inflow, now);

    int64_t report_delay_ms = inbound.DeliveryDelayMs(report);
    max_report_delay_ms = std::max(max_report_delay_ms, report_delay_ms);
    cluster_->AdvanceTime(1000);
    inbound.ForgetDelivered(cluster_->NowMs());
    if (report_delay_ms > kProgressTimeoutMs) {
      throw TimeoutError(
          "balancer timed out waiting for DataNode progress report (delayed " +
          std::to_string(report_delay_ms) + " ms behind throttled traffic)");
    }
  }
  return max_report_delay_ms;
}

}  // namespace zebra
