#include "src/apps/minidfs/dfs_schema.h"

#include "src/apps/minidfs/dfs_params.h"

namespace zebra {

void RegisterMiniDfsSchema(ConfSchema& schema) {
  const char* app = kDfsApp;

  // ---- Table 3 heterogeneous-unsafe parameters -------------------------------
  schema.AddParam({kDfsBlockAccessToken, app, ParamType::kBool, "false",
                   {"true", "false"},
                   "Require block access tokens for DataNode registration"});
  schema.AddParam({kDfsBytesPerChecksum, app, ParamType::kInt, "512",
                   {"128", "512", "4096"},
                   "Bytes covered by each data-transfer checksum"});
  schema.AddParam({kDfsIncrementalBrInterval, app, ParamType::kInt, "0",
                   {"0", "10000"},
                   "Delay before incremental block reports reach the NameNode"});
  schema.AddParam({kDfsChecksumType, app, ParamType::kEnum, "CRC32C",
                   {"NONE", "CRC32", "CRC32C"},
                   "Checksum algorithm for data transfers"});
  schema.AddParam({kDfsReplaceDnOnFailure, app, ParamType::kBool, "true",
                   {"true", "false"},
                   "Replace a failed pipeline DataNode during writes"});
  schema.AddParam({kDfsClientSocketTimeout, app, ParamType::kInt, "60000",
                   {"1000", "60000", "300000"},
                   "Client socket timeout for data transfers"});
  schema.AddParam({kDfsBalanceBandwidth, app, ParamType::kInt, "1048576",
                   {"1048576", "10485760"},
                   "Per-DataNode bandwidth budget for balancing traffic"});
  schema.AddParam({kDfsBalanceMaxMoves, app, ParamType::kInt, "50",
                   {"1", "50"},
                   "Concurrent balancing moves a DataNode admits"});
  schema.AddParam({kDfsDuReserved, app, ParamType::kInt, "0",
                   {"0", "1073741824"},
                   "Reserved non-DFS bytes per DataNode volume"});
  schema.AddParam({kDfsDataTransferProtection, app, ParamType::kEnum, "none",
                   {"none", "authentication", "privacy"},
                   "SASL protection for the DataNode data-transfer protocol"});
  schema.AddParam({kDfsEncryptDataTransfer, app, ParamType::kBool, "false",
                   {"true", "false"},
                   "Encrypt block data in transit"});
  schema.AddParam({kDfsHaTailEditsInProgress, app, ParamType::kBool, "false",
                   {"true", "false"},
                   "Tail in-progress edit segments from JournalNodes"});
  schema.AddParam({kDfsHeartbeatInterval, app, ParamType::kInt, "3",
                   {"1", "3", "100"},
                   "DataNode heartbeat interval in seconds"});
  schema.AddParam({kDfsHttpPolicy, app, ParamType::kEnum, "HTTP_ONLY",
                   {"HTTP_ONLY", "HTTPS_ONLY"},
                   "Web endpoint protocol policy"});
  schema.AddParam({kDfsMaxComponentLength, app, ParamType::kInt, "255",
                   {"16", "255", "1024"},
                   "Maximum path-component length the NameNode accepts"});
  schema.AddParam({kDfsMaxDirectoryItems, app, ParamType::kInt, "1048576",
                   {"4", "1048576"},
                   "Maximum children per directory"});
  schema.AddParam({kDfsHeartbeatRecheck, app, ParamType::kInt, "300000",
                   {"1000", "300000"},
                   "NameNode liveness recheck interval in milliseconds"});
  schema.AddParam({kDfsMaxCorruptFileBlocks, app, ParamType::kInt, "100",
                   {"5", "100"},
                   "Corrupt file blocks returned per listCorruptFileBlocks call"});
  schema.AddParam({kDfsSnapshotDescendant, app, ParamType::kBool, "true",
                   {"true", "false"},
                   "Allow snapshot diffs on descendants of the snapshot root"});
  schema.AddParam({kDfsStaleInterval, app, ParamType::kInt, "30000",
                   {"5000", "30000", "90000"},
                   "Silence interval after which a DataNode is marked stale"});
  schema.AddParam({kDfsUpgradeDomainFactor, app, ParamType::kInt, "3",
                   {"2", "3"},
                   "Number of upgrade domains for block placement"});

  // ---- Heterogeneous-safe parameters -----------------------------------------
  schema.AddParam({kDfsReplication, app, ParamType::kInt, "2",
                   {"1", "2", "3"}, "Default replication factor (per-file metadata)"});
  schema.AddParam({kDfsBlockSize, app, ParamType::kInt, "1024",
                   {"512", "1024", "4096"}, "Block size recorded per block at create"});
  schema.AddParam({kDfsNameNodeHandlerCount, app, ParamType::kInt, "10",
                   {"1", "10", "100"}, "NameNode RPC handler threads (node-local)"});
  schema.AddParam({kDfsDataNodeHandlerCount, app, ParamType::kInt, "10",
                   {"1", "10", "100"}, "DataNode RPC handler threads (node-local)"});
  schema.AddParam({kDfsDataDir, app, ParamType::kString, "/data/dfs",
                   {"/data/dfs", "/mnt/dfs"}, "Local storage directory"});
  schema.AddParam({kDfsClientRetries, app, ParamType::kInt, "3",
                   {"1", "3", "10"}, "Client retry budget (client-local)"});
  schema.AddParam({kDfsCheckpointPeriod, app, ParamType::kInt, "3600",
                   {"60", "3600"}, "Seconds between secondary checkpoints"});
  schema.AddParam({kDfsSafemodeThreshold, app, ParamType::kDouble, "0.999",
                   {"0.5", "0.999"}, "Safe-mode block threshold (NameNode-local)"});
  schema.AddParam({kDfsScanPeriodHours, app, ParamType::kInt, "504",
                   {"1", "504"},
                   "Block scanner period (FP source: test pokes private state)"});
  schema.AddParam({kDfsImageCompress, app, ParamType::kBool, "false",
                   {"true", "false"},
                   "Compress checkpoint images (FP source: strict length assert)"});
  schema.AddParam({kDfsPermissionsEnabled, app, ParamType::kBool, "true",
                   {"true", "false"}, "Enforce permissions (NameNode-local)"});
  schema.AddParam({kDfsAclsEnabled, app, ParamType::kBool, "false",
                   {"true", "false"}, "Enable ACLs (NameNode-local)"});
  schema.AddParam({kDfsMaxTransferThreads, app, ParamType::kInt, "4096",
                   {"256", "4096"}, "DataNode transceiver thread cap (node-local)"});
  schema.AddParam({kDfsUseDnHostname, app, ParamType::kBool, "false",
                   {"true", "false"}, "Clients connect to DataNodes by hostname"});
  schema.AddParam({kDfsReplicationMin, app, ParamType::kInt, "1",
                   {"1", "2"}, "Minimal replication before commit (NameNode-local)"});
  schema.AddParam({kDfsSyncBehindWrites, app, ParamType::kBool, "false",
                   {"true", "false"}, "fsync behind writes (DataNode-local)"});
  schema.AddParam({kDfsExtraEditsRetained, app, ParamType::kInt, "1000000",
                   {"1000", "1000000"}, "Extra edit records retained (NameNode-local)"});
  schema.AddParam({kDfsStreamBufferSize, app, ParamType::kInt, "4096",
                   {"512", "4096"}, "Stream copy buffer size"});
  schema.AddParam({kDfsHttpAddress, app, ParamType::kString, "0.0.0.0:9870",
                   {"0.0.0.0:9870", "0.0.0.0:19870"}, "HTTP web address"});
  schema.AddParam({kDfsHttpsAddress, app, ParamType::kString, "0.0.0.0:9871",
                   {"0.0.0.0:9871", "0.0.0.0:19871"}, "HTTPS web address"});

  // ---- Dependency rules (§4) ---------------------------------------------------
  // "we set the http address if using the http protocol and set the https
  // address if using the https protocol."
  schema.AddDependencyRule(kDfsHttpPolicy, "HTTP_ONLY", kDfsHttpAddress,
                           kDfsHttpAddressDefault);
  schema.AddDependencyRule(kDfsHttpPolicy, "HTTPS_ONLY", kDfsHttpsAddress,
                           kDfsHttpsAddressDefault);
}

}  // namespace zebra
