// MiniDFS JournalNode: serves edit-log segments to tailing NameNodes.

#ifndef SRC_APPS_MINIDFS_JOURNAL_NODE_H_
#define SRC_APPS_MINIDFS_JOURNAL_NODE_H_

#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

class JournalNode {
 public:
  JournalNode(Cluster* cluster, const Configuration& conf);

  JournalNode(const JournalNode&) = delete;
  JournalNode& operator=(const JournalNode&) = delete;

  const Configuration& conf() const { return conf_; }

  // Appends edits to the current in-progress segment.
  void AppendEdits(int count) { in_progress_edits_ += count; }

  // Seals the in-progress segment into a finalized one.
  void FinalizeSegment() {
    finalized_edits_ += in_progress_edits_;
    in_progress_edits_ = 0;
  }

  // Serves edits to a tailing NameNode. Serving the in-progress segment is
  // only possible when this JournalNode has in-progress tailing enabled;
  // otherwise the request is declined ("JournalNode declines NameNode's
  // request to fetch journaled edits").
  int FetchEdits(bool include_in_progress) const;

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  int finalized_edits_ = 0;
  int in_progress_edits_ = 0;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIDFS_JOURNAL_NODE_H_
