// MiniDFS DataNode: block storage with receiver-side wire verification,
// heartbeats, incremental block reports, balancing move admission, and
// bandwidth accounting.

#ifndef SRC_APPS_MINIDFS_DATA_NODE_H_
#define SRC_APPS_MINIDFS_DATA_NODE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"
#include "src/sim/wire.h"

namespace zebra {

class NameNode;

// Builds the data-transfer wire configuration from a node's (or the
// client's) configuration: dfs.encrypt.data.transfer, dfs.checksum.type and
// dfs.bytes-per-checksum all shape the frame format.
WireConfig DfsDataWireConfig(const Configuration& conf);

// SASL data-transfer handshake (dfs.data.transfer.protection): both ends must
// negotiate the same protection level.
void DfsDataTransferHandshake(const Configuration& initiator,
                              const Configuration& acceptor);

class DataNode {
 public:
  DataNode(Cluster* cluster, NameNode* name_node, const Configuration& conf);
  ~DataNode();

  DataNode(const DataNode&) = delete;
  DataNode& operator=(const DataNode&) = delete;

  uint64_t id() const { return reinterpret_cast<uint64_t>(this); }
  const Configuration& conf() const { return conf_; }

  // Stops heartbeating (simulates a crash / decommission in corpus tests).
  void Stop();

  // Online reconfiguration (the dfsadmin -reconfig analog). Supported:
  // dfs.heartbeat.interval (reschedules the heartbeat task) and
  // dfs.datanode.balance.bandwidthPerSec (read dynamically). Throws RpcError
  // for parameters this DataNode cannot reconfigure online.
  void Reconfigure(const std::string& param, const std::string& value);

  // ---- Data path -------------------------------------------------------------

  // Receives a block frame encoded by the sender's wire configuration and
  // decodes/verifies it with this DataNode's own configuration.
  void ReceiveBlockFrame(uint64_t block_id, const Bytes& frame);

  // Encodes a stored block with this DataNode's wire configuration.
  Bytes SendBlockFrame(uint64_t block_id) const;

  // Pipeline replication hop: re-encode with this node's configuration and
  // hand to the next DataNode (after the data-transfer handshake).
  void ReplicateTo(DataNode* target, uint64_t block_id);

  bool HasBlock(uint64_t block_id) const;
  int BlockCount() const;

  // Deletes a replica; the NameNode learns about it immediately when
  // dfs.blockreport.incremental.intervalMsec is 0, otherwise after that delay.
  void DeleteBlock(uint64_t block_id);

  // Re-registers with a (typically restarted) NameNode; subsequent
  // heartbeats and reports go to it.
  void ReRegister(NameNode* name_node);

  // Full block report: registers every stored replica with the given
  // NameNode (what brings a restarted NameNode out of safe mode).
  void SendFullBlockReport(NameNode* name_node) const;

  // ---- Balancing -------------------------------------------------------------

  // Admission control for balancer-initiated moves: accepts only while fewer
  // than dfs.datanode.balance.max.concurrent.moves are active. On acceptance
  // returns the move's completion time; the per-move duration stretches with
  // the number of concurrent moves (disk bandwidth is shared).
  bool TryStartBalanceMove(int64_t now_ms, int64_t base_duration_ms,
                           int64_t* completion_ms);

  // Number of moves still executing at `now_ms`.
  int ActiveBalanceMoves(int64_t now_ms) const;

  // Balancing bandwidth limit (dfs.datanode.balance.bandwidthPerSec).
  int64_t BalanceBandwidthPerSec() const;

  // Reserved non-DFS space (dfs.datanode.du.reserved).
  int64_t ReservedBytes() const;

  // ---- Test-only internals (seeded false-positive source) ---------------------

  // A corpus unit test manipulates the DataNode's private scanner state using
  // an *external* (client-owned) configuration object — possible only inside
  // a unit test, never across real processes. Throws if the external scan
  // period disagrees with this node's own.
  void TriggerScanForTest(const Configuration& external_conf);

 private:
  void PruneCompletedMoves(int64_t now_ms);

  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;
  NameNode* name_node_;
  std::map<uint64_t, Bytes> blocks_;
  std::vector<int64_t> active_move_completions_;
  SimClock::TaskId heartbeat_task_ = 0;
  bool stopped_ = false;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIDFS_DATA_NODE_H_
