// MiniDFS NameNode: namespace, block map, DataNode liveness tracking,
// fs-limits enforcement, corrupt-block reporting, checkpoint images,
// upgrade-domain-aware balance validation, and the web endpoint.

#ifndef SRC_APPS_MINIDFS_NAME_NODE_H_
#define SRC_APPS_MINIDFS_NAME_NODE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

class JournalNode;

class NameNode {
 public:
  NameNode(Cluster* cluster, const Configuration& conf);
  ~NameNode();

  NameNode(const NameNode&) = delete;
  NameNode& operator=(const NameNode&) = delete;

  const Configuration& conf() const { return conf_; }
  Cluster& cluster() { return *cluster_; }

  // Online reconfiguration (the dfsadmin -reconfig namenode analog).
  // Supported: dfs.heartbeat.interval and
  // dfs.namenode.heartbeat.recheck-interval, both consulted dynamically by
  // the liveness check. Throws RpcError for anything else.
  void Reconfigure(const std::string& param, const std::string& value);

  // ---- DataNode registration & liveness -------------------------------------

  // Called by a DataNode during startup. `access_token` is derived from the
  // DataNode's dfs.block.access.token.enable; the NameNode validates it
  // against its own setting ("DataNode fails to register block pools").
  void RegisterDataNode(uint64_t dn_id, const std::string& access_token);

  void Heartbeat(uint64_t dn_id);

  // Periodic liveness check (scheduled every heartbeat.recheck-interval).
  // The dead window is 2 * recheck + 10 * heartbeat.interval, all from the
  // NameNode's own configuration — HDFS's formula.
  void RunLivenessCheck();

  int NumLiveDataNodes() const;
  int NumDeadDataNodes() const;
  int NumStaleDataNodes() const;
  int NumRegisteredDataNodes() const;

  // ---- Safe mode --------------------------------------------------------------

  // Enters safe mode expecting `expected_blocks` replicas to be reported
  // (what a restarted NameNode derives from its image). Namespace mutations
  // are rejected until the reported fraction reaches
  // dfs.namenode.safemode.threshold-pct of the expectation.
  void EnterSafeMode(int expected_blocks);
  bool InSafeMode() const;

  // Full block report from a DataNode: registers every replica it stores
  // (the mechanism that brings a restarted NameNode out of safe mode).
  void ProcessBlockReport(uint64_t dn_id, const std::vector<uint64_t>& block_ids);

  // ---- Namespace -------------------------------------------------------------

  // Creates a file, enforcing fs-limits (max-component-length and
  // max-directory-items) from the NameNode's configuration.
  void CreateFile(const std::string& path, int replication);

  // Allocates a block for the file and returns its id.
  uint64_t AddBlock(const std::string& path);

  // Chooses `count` target DataNodes for a new block (registration order,
  // rotating).
  std::vector<uint64_t> PickTargets(int count);

  // Records that `dn_id` stores `block_id`.
  void RecordBlockLocation(uint64_t block_id, uint64_t dn_id);

  bool FileExists(const std::string& path) const;
  std::vector<uint64_t> BlocksOf(const std::string& path) const;
  std::vector<uint64_t> LocationsOf(uint64_t block_id) const;

  // Removes the file; returns (block id -> DataNodes holding it) so the
  // client can issue DataNode-side deletions.
  std::map<uint64_t, std::vector<uint64_t>> RemoveFile(const std::string& path);

  // Incremental block report from a DataNode: a replica disappeared.
  void OnBlockReplicaDeleted(uint64_t block_id, uint64_t dn_id);

  // Blocks with at least one recorded replica.
  int TotalBlocks() const;

  // ---- Corrupt blocks ---------------------------------------------------------

  void MarkBlockCorrupt(uint64_t block_id);

  // Truncated at the NameNode's max-corrupt-file-blocks-returned ("end users
  // may observe inconsistent number of corrupted blocks").
  std::vector<uint64_t> ListCorruptBlocks() const;

  // ---- Snapshots ---------------------------------------------------------------

  void AllowSnapshot(const std::string& root_path);

  // Computes a snapshot diff; `path` may be the snapshot root, or a
  // descendant of it only when the NameNode allows that ("NameNode declines
  // Client's request to do snapshot").
  int SnapshotDiff(const std::string& path) const;

  // ---- Pipeline recovery ---------------------------------------------------------

  // Returns a replacement DataNode for a failed write pipeline; refuses when
  // the NameNode's replace-datanode-on-failure is disabled ("NameNode reports
  // Exception when Client tries to find additional DataNode").
  uint64_t GetAdditionalDataNode(uint64_t failed_dn_id);

  // ---- Checkpoint images -----------------------------------------------------------

  // Serialized namespace image, compressed iff dfs.image.compress.
  Bytes SaveImage() const;
  // Canonical (uncompressed) serialization, for semantic comparison.
  Bytes CanonicalImage() const;

  // ---- Edit tailing (HA) --------------------------------------------------------------

  // Tails edits from a JournalNode, requesting in-progress segments iff this
  // NameNode's dfs.ha.tail-edits.in-progress is set.
  int TailEdits(JournalNode* journal);

  // ---- Balancer support -----------------------------------------------------------------

  // Registration index of a DataNode — cluster topology data (not
  // configuration) that the Balancer also uses for its own domain math.
  int DataNodeIndex(uint64_t dn_id) const { return RegistrationIndexOf(dn_id); }

  // Upgrade domain of a DataNode (registration index modulo the NameNode's
  // upgrade.domain.factor).
  int UpgradeDomainOf(uint64_t dn_id) const;

  // Validates that moving one replica of `block_id` from `src_dn` to `dst_dn`
  // keeps all replicas in distinct upgrade domains under the NameNode's
  // domain factor ("Balancer hangs because of block placement policy
  // violation on NameNode").
  bool ValidateBalanceMove(uint64_t block_id, uint64_t src_dn, uint64_t dst_dn) const;

  // Applies a validated move to the block map.
  void CommitBalanceMove(uint64_t block_id, uint64_t src_dn, uint64_t dst_dn);

  // ---- Web endpoint ------------------------------------------------------------------------

  // "http" or "https", from dfs.http.policy (reads the matching address
  // parameter, which the §4 dependency rules must provide).
  std::string WebScheme() const;

 private:
  int RegistrationIndexOf(uint64_t dn_id) const;

  struct DataNodeInfo {
    int index = 0;  // registration order
    int64_t last_heartbeat_ms = 0;
    bool dead = false;
  };

  struct FileInfo {
    int replication = 1;
    std::vector<uint64_t> block_ids;
  };

  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;

  std::map<uint64_t, DataNodeInfo> datanodes_;
  std::vector<uint64_t> registration_order_;
  std::map<std::string, FileInfo> files_;
  std::map<std::string, std::set<std::string>> directory_children_;
  std::map<uint64_t, std::set<uint64_t>> block_locations_;
  std::set<uint64_t> corrupt_blocks_;
  std::set<std::string> snapshot_roots_;
  uint64_t next_block_id_ = 1;
  uint64_t next_target_rotation_ = 0;
  SimClock::TaskId liveness_task_ = 0;
  bool safe_mode_ = false;
  int safe_mode_expected_blocks_ = 0;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIDFS_NAME_NODE_H_
