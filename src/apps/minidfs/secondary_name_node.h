// MiniDFS SecondaryNameNode: periodic checkpointing of the NameNode image.

#ifndef SRC_APPS_MINIDFS_SECONDARY_NAME_NODE_H_
#define SRC_APPS_MINIDFS_SECONDARY_NAME_NODE_H_

#include "src/common/bytes.h"
#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

class NameNode;

class SecondaryNameNode {
 public:
  // Schedules periodic checkpoints every dfs.namenode.checkpoint.period
  // seconds (in addition to explicit DoCheckpoint calls).
  SecondaryNameNode(Cluster* cluster, NameNode* name_node, const Configuration& conf);
  ~SecondaryNameNode();

  SecondaryNameNode(const SecondaryNameNode&) = delete;
  SecondaryNameNode& operator=(const SecondaryNameNode&) = delete;

  // Downloads the namespace from the primary and writes a checkpoint image
  // using *this* node's dfs.image.compress setting.
  void DoCheckpoint();

  // The checkpoint image as stored on disk (possibly compressed).
  const Bytes& ImageBytes() const { return image_; }

  // The image decoded back to its canonical form.
  Bytes CanonicalImage() const;

  int checkpoints_taken() const { return checkpoints_taken_; }

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;
  NameNode* name_node_;
  Bytes image_;
  bool image_compressed_ = false;
  int checkpoints_taken_ = 0;
  SimClock::TaskId checkpoint_task_ = 0;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIDFS_SECONDARY_NAME_NODE_H_
