// MiniDFS Mover: migrates block replicas between storage tiers (the HDFS
// Mover tool). Shares the DataNode's balancing-move admission control, so it
// is subject to the same max.concurrent.moves congestion behaviour as the
// Balancer.

#ifndef SRC_APPS_MINIDFS_MOVER_H_
#define SRC_APPS_MINIDFS_MOVER_H_

#include <cstdint>
#include <vector>

#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

class DataNode;
class NameNode;

struct MoveResult {
  int migrated_blocks = 0;
  int declined_dispatches = 0;
  int64_t elapsed_ms = 0;
};

class Mover {
 public:
  Mover(Cluster* cluster, NameNode* name_node, const Configuration& conf);

  Mover(const Mover&) = delete;
  Mover& operator=(const Mover&) = delete;

  const Configuration& conf() const { return conf_; }

  // Migrates the given blocks from `src` to `dst` (a storage-tier change),
  // dispatching up to this Mover's own max.concurrent.moves at the source
  // DataNode. Throws TimeoutError when `timeout_ms` elapses first.
  MoveResult MigrateBlocks(const std::vector<uint64_t>& block_ids, DataNode* src,
                           DataNode* dst, int64_t timeout_ms);

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;
  NameNode* name_node_;
};

}  // namespace zebra

#endif  // SRC_APPS_MINIDFS_MOVER_H_
