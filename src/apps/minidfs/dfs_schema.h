// Schema registration for MiniDFS parameters (incl. the §4 dependency rules
// for dfs.http.policy).

#ifndef SRC_APPS_MINIDFS_DFS_SCHEMA_H_
#define SRC_APPS_MINIDFS_DFS_SCHEMA_H_

#include "src/conf/conf_schema.h"

namespace zebra {

void RegisterMiniDfsSchema(ConfSchema& schema);

}  // namespace zebra

#endif  // SRC_APPS_MINIDFS_DFS_SCHEMA_H_
