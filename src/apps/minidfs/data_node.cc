#include "src/apps/minidfs/data_node.h"

#include <algorithm>

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/appcommon/rpc_gate.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"

namespace zebra {

namespace {
constexpr char kBlockAccessTokenValue[] = "block-pool-token";
}  // namespace

WireConfig DfsDataWireConfig(const Configuration& conf) {
  WireConfig wire;
  wire.encrypt = conf.GetBool(kDfsEncryptDataTransfer, kDfsEncryptDataTransferDefault);
  wire.checksum = ParseChecksumType(conf.Get(kDfsChecksumType, kDfsChecksumTypeDefault));
  wire.bytes_per_checksum =
      conf.GetInt(kDfsBytesPerChecksum, kDfsBytesPerChecksumDefault);
  return wire;
}

void DfsDataTransferHandshake(const Configuration& initiator,
                              const Configuration& acceptor) {
  RequireMatchingTokens(
      "dfs-data-transfer",
      WireToken(initiator.Get(kDfsDataTransferProtection,
                              kDfsDataTransferProtectionDefault)),
      WireToken(
          acceptor.Get(kDfsDataTransferProtection, kDfsDataTransferProtectionDefault)));
}

DataNode::DataNode(Cluster* cluster, NameNode* name_node, const Configuration& conf)
    : init_scope_(kDfsApp, this, "DataNode", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kDfsApp, conf, __FILE__, __LINE__)),
      cluster_(cluster),
      name_node_(name_node) {
  // Ordinary startup reads.
  conf_.Get(kDfsDataDir, kDfsDataDirDefault);
  conf_.GetInt(kDfsDataNodeHandlerCount, kDfsDataNodeHandlerCountDefault);
  conf_.GetInt(kDfsMaxTransferThreads, kDfsMaxTransferThreadsDefault);
  conf_.GetBool(kDfsSyncBehindWrites, kDfsSyncBehindWritesDefault);
  GetIpc(*cluster_, this);

  // Register with the NameNode, presenting a block access token only if this
  // DataNode believes tokens are enabled.
  std::string token =
      conf_.GetBool(kDfsBlockAccessToken, kDfsBlockAccessTokenDefault)
          ? kBlockAccessTokenValue
          : "";
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(),
          "DatanodeProtocol.registerDatanode");
  name_node_->RegisterDataNode(id(), token);

  // Periodic heartbeats at this DataNode's own interval.
  int64_t interval_ms =
      conf_.GetInt(kDfsHeartbeatInterval, kDfsHeartbeatIntervalDefault) * 1000;
  // Heartbeats reuse the connection established at registration, so the
  // per-beat path is just the lightweight status call.
  heartbeat_task_ = cluster_->clock().SchedulePeriodic(interval_ms, interval_ms, [this] {
    if (!stopped_) {
      name_node_->Heartbeat(id());
    }
  });
  init_scope_.Finish();
}

DataNode::~DataNode() { Stop(); }

void DataNode::Stop() {
  if (!stopped_) {
    stopped_ = true;
    cluster_->clock().Cancel(heartbeat_task_);
  }
}

void DataNode::Reconfigure(const std::string& param, const std::string& value) {
  if (param == kDfsHeartbeatInterval) {
    conf_.Set(param, value);
    // Reschedule the heartbeat loop at the new interval.
    cluster_->clock().Cancel(heartbeat_task_);
    int64_t interval_ms =
        conf_.GetInt(kDfsHeartbeatInterval, kDfsHeartbeatIntervalDefault) * 1000;
    heartbeat_task_ =
        cluster_->clock().SchedulePeriodic(interval_ms, interval_ms, [this] {
          if (!stopped_) {
            name_node_->Heartbeat(id());
          }
        });
    return;
  }
  if (param == kDfsBalanceBandwidth || param == kDfsBalanceMaxMoves) {
    conf_.Set(param, value);  // consulted dynamically on every operation
    return;
  }
  throw RpcError("DataNode cannot reconfigure '" + param + "' online");
}

void DataNode::ReceiveBlockFrame(uint64_t block_id, const Bytes& frame) {
  Bytes payload = DecodeFrame(DfsDataWireConfig(conf_), frame);
  blocks_[block_id] = payload;
  name_node_->RecordBlockLocation(block_id, id());
}

Bytes DataNode::SendBlockFrame(uint64_t block_id) const {
  auto it = blocks_.find(block_id);
  if (it == blocks_.end()) {
    throw RpcError("DataNode does not store block " + std::to_string(block_id));
  }
  return EncodeFrame(DfsDataWireConfig(conf_), it->second);
}

void DataNode::ReplicateTo(DataNode* target, uint64_t block_id) {
  DfsDataTransferHandshake(conf_, target->conf());
  target->ReceiveBlockFrame(block_id, SendBlockFrame(block_id));
}

bool DataNode::HasBlock(uint64_t block_id) const { return blocks_.count(block_id) > 0; }

int DataNode::BlockCount() const { return static_cast<int>(blocks_.size()); }

void DataNode::DeleteBlock(uint64_t block_id) {
  blocks_.erase(block_id);
  int64_t interval =
      conf_.GetInt(kDfsIncrementalBrInterval, kDfsIncrementalBrIntervalDefault);
  uint64_t dn_id = id();
  NameNode* nn = name_node_;
  if (interval <= 0) {
    nn->OnBlockReplicaDeleted(block_id, dn_id);
  } else {
    cluster_->clock().ScheduleAfter(
        interval, [nn, block_id, dn_id] { nn->OnBlockReplicaDeleted(block_id, dn_id); });
  }
}

void DataNode::ReRegister(NameNode* name_node) {
  name_node_ = name_node;
  std::string token =
      conf_.GetBool(kDfsBlockAccessToken, kDfsBlockAccessTokenDefault)
          ? kBlockAccessTokenValue
          : "";
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(),
          "DatanodeProtocol.registerDatanode");
  name_node_->RegisterDataNode(id(), token);
}

void DataNode::SendFullBlockReport(NameNode* name_node) const {
  std::vector<uint64_t> block_ids;
  block_ids.reserve(blocks_.size());
  for (const auto& [block_id, payload] : blocks_) {
    block_ids.push_back(block_id);
  }
  name_node->ProcessBlockReport(id(), block_ids);
}

void DataNode::PruneCompletedMoves(int64_t now_ms) {
  active_move_completions_.erase(
      std::remove_if(active_move_completions_.begin(), active_move_completions_.end(),
                     [now_ms](int64_t completion) { return completion <= now_ms; }),
      active_move_completions_.end());
}

bool DataNode::TryStartBalanceMove(int64_t now_ms, int64_t base_duration_ms,
                                   int64_t* completion_ms) {
  PruneCompletedMoves(now_ms);
  int64_t max_moves = conf_.GetInt(kDfsBalanceMaxMoves, kDfsBalanceMaxMovesDefault);
  if (static_cast<int64_t>(active_move_completions_.size()) >= max_moves) {
    return false;  // decline; the balancer's dispatcher backs off
  }
  // Disk bandwidth is shared across concurrent movers.
  int64_t concurrency = static_cast<int64_t>(active_move_completions_.size()) + 1;
  int64_t completion = now_ms + base_duration_ms * concurrency;
  active_move_completions_.push_back(completion);
  *completion_ms = completion;
  return true;
}

int DataNode::ActiveBalanceMoves(int64_t now_ms) const {
  int active = 0;
  for (int64_t completion : active_move_completions_) {
    if (completion > now_ms) {
      ++active;
    }
  }
  return active;
}

int64_t DataNode::BalanceBandwidthPerSec() const {
  return conf_.GetInt(kDfsBalanceBandwidth, kDfsBalanceBandwidthDefault);
}

int64_t DataNode::ReservedBytes() const {
  return conf_.GetInt(kDfsDuReserved, kDfsDuReservedDefault);
}

void DataNode::TriggerScanForTest(const Configuration& external_conf) {
  int64_t own_period = conf_.GetInt(kDfsScanPeriodHours, kDfsScanPeriodHoursDefault);
  int64_t external_period =
      external_conf.GetInt(kDfsScanPeriodHours, kDfsScanPeriodHoursDefault);
  if (own_period != external_period) {
    throw Error(
        "scanner state manipulated with a configuration that disagrees with the "
        "DataNode's own scan period (" +
        std::to_string(external_period) + " vs " + std::to_string(own_period) + ")");
  }
}

}  // namespace zebra
