#include "src/apps/minidfs/dfs_client.h"

#include <algorithm>

#include "src/apps/appcommon/rpc_gate.h"
#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/error.h"
#include "src/sim/wire.h"

namespace zebra {

DfsClient::DfsClient(Cluster* cluster, NameNode* name_node,
                     std::vector<DataNode*> datanodes, const Configuration& conf)
    : cluster_(cluster),
      name_node_(name_node),
      datanodes_(std::move(datanodes)),
      conf_(conf) {}

DataNode* DfsClient::ResolveDataNode(uint64_t dn_id) const {
  for (DataNode* dn : datanodes_) {
    if (dn->id() == dn_id) {
      return dn;
    }
  }
  throw RpcError("client cannot resolve DataNode " + std::to_string(dn_id));
}

void DfsClient::WriteFile(const std::string& path, const std::string& data) {
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(), "ClientProtocol.create");
  int replication =
      static_cast<int>(conf_.GetInt(kDfsReplication, kDfsReplicationDefault));
  name_node_->CreateFile(path, replication);

  int64_t block_size = conf_.GetInt(kDfsBlockSize, kDfsBlockSizeDefault);
  if (block_size <= 0) {
    block_size = kDfsBlockSizeDefault;
  }
  conf_.GetInt(kDfsClientRetries, kDfsClientRetriesDefault);

  for (size_t offset = 0; offset < data.size() || offset == 0;
       offset += static_cast<size_t>(block_size)) {
    std::string chunk = data.substr(offset, static_cast<size_t>(block_size));
    uint64_t block_id = name_node_->AddBlock(path);
    std::vector<uint64_t> targets = name_node_->PickTargets(replication);
    if (targets.empty()) {
      throw RpcError("no pipeline targets for block");
    }
    // First hop: client -> first DataNode, under the client's wire config.
    DataNode* first = ResolveDataNode(targets[0]);
    DfsDataTransferHandshake(conf_, first->conf());
    first->ReceiveBlockFrame(block_id, EncodeFrame(DfsDataWireConfig(conf_),
                                                   BytesFromString(chunk)));
    // Pipeline hops: DataNode -> DataNode, each under the sender's config.
    DataNode* previous = first;
    for (size_t i = 1; i < targets.size(); ++i) {
      DataNode* next = ResolveDataNode(targets[i]);
      previous->ReplicateTo(next, block_id);
      previous = next;
    }
    if (data.empty()) {
      break;
    }
  }
}

void DfsClient::WriteFileWithPipelineFailure(const std::string& path,
                                             const std::string& data) {
  WriteFile(path, data);
  // The first DataNode of the last pipeline "fails"; per the client's
  // replace-datanode-on-failure policy, ask the NameNode for a substitute.
  bool replace = conf_.GetBool(kDfsReplaceDnOnFailure, kDfsReplaceDnOnFailureDefault);
  if (!replace) {
    return;  // client policy DISABLE: continue with the shorter pipeline
  }
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(),
          "ClientProtocol.getAdditionalDatanode");
  uint64_t failed = datanodes_.front()->id();
  uint64_t replacement = name_node_->GetAdditionalDataNode(failed);
  (void)replacement;
}

std::string DfsClient::ReadFile(const std::string& path) {
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(),
          "ClientProtocol.getBlockLocations");
  std::string data;
  for (uint64_t block_id : name_node_->BlocksOf(path)) {
    std::vector<uint64_t> locations = name_node_->LocationsOf(block_id);
    if (locations.empty()) {
      throw RpcError("block " + std::to_string(block_id) + " has no locations");
    }
    DataNode* dn = ResolveDataNode(locations.front());
    DfsDataTransferHandshake(conf_, dn->conf());
    Bytes payload = DecodeFrame(DfsDataWireConfig(conf_), dn->SendBlockFrame(block_id));
    data += StringFromBytes(payload);
  }
  return data;
}

std::string DfsClient::ReadFileSlow(const std::string& path, int64_t duration_ms) {
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(),
          "ClientProtocol.getBlockLocations");
  std::vector<uint64_t> blocks = name_node_->BlocksOf(path);
  if (blocks.empty()) {
    throw RpcError("file has no blocks: " + path);
  }
  std::vector<uint64_t> locations = name_node_->LocationsOf(blocks.front());
  DataNode* dn = ResolveDataNode(locations.front());
  // The DataNode paces its stream from *its* socket-timeout assumption; the
  // client aborts after *its* timeout of silence.
  int64_t client_timeout =
      conf_.GetInt(kDfsClientSocketTimeout, kDfsClientSocketTimeoutDefault);
  int64_t server_pace =
      dn->conf().GetInt(kDfsClientSocketTimeout, kDfsClientSocketTimeoutDefault) / 2;
  SimulatePacedWait("dfs-read", duration_ms, client_timeout, server_pace);
  cluster_->AdvanceTime(duration_ms);
  return ReadFile(path);
}

void DfsClient::DeleteFile(const std::string& path) {
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(), "ClientProtocol.delete");
  std::map<uint64_t, std::vector<uint64_t>> replicas = name_node_->RemoveFile(path);
  for (const auto& [block_id, dn_ids] : replicas) {
    for (uint64_t dn_id : dn_ids) {
      ResolveDataNode(dn_id)->DeleteBlock(block_id);
    }
  }
}

std::vector<uint64_t> DfsClient::ListCorruptBlocks() {
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(),
          "ClientProtocol.listCorruptFileBlocks");
  return name_node_->ListCorruptBlocks();
}

void DfsClient::ReportBadBlock(uint64_t block_id) {
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(),
          "ClientProtocol.reportBadBlocks");
  name_node_->MarkBlockCorrupt(block_id);
}

int DfsClient::SnapshotDiff(const std::string& root, const std::string& descendant) {
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(),
          "ClientProtocol.getSnapshotDiffReport");
  bool use_descendant =
      conf_.GetBool(kDfsSnapshotDescendant, kDfsSnapshotDescendantDefault);
  return name_node_->SnapshotDiff(use_descendant ? descendant : root);
}

std::string DfsClient::Fsck() {
  // The fsck tool builds its URL from the client-side http policy.
  std::string policy = conf_.Get(kDfsHttpPolicy, kDfsHttpPolicyDefault);
  std::string scheme = policy == "HTTPS_ONLY" ? "https" : "http";
  if (scheme == "https") {
    conf_.Get(kDfsHttpsAddress, kDfsHttpsAddressDefault);
  } else {
    conf_.Get(kDfsHttpAddress, kDfsHttpAddressDefault);
  }
  std::string server_scheme = name_node_->WebScheme();
  if (scheme != server_scheme) {
    throw HandshakeError("DFSck cannot connect: tool speaks " + scheme +
                         " but the NameNode web endpoint serves " + server_scheme);
  }
  return "Status: HEALTHY (blocks=" + std::to_string(name_node_->TotalBlocks()) + ")";
}

int64_t DfsClient::TotalReservedBytes() {
  int64_t total = 0;
  for (DataNode* dn : datanodes_) {
    total += dn->ReservedBytes();
  }
  return total;
}

int DfsClient::NumLiveDataNodes() {
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(), "ClientProtocol.getStats");
  return name_node_->NumLiveDataNodes();
}

int DfsClient::NumDeadDataNodes() {
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(), "ClientProtocol.getStats");
  return name_node_->NumDeadDataNodes();
}

int DfsClient::NumStaleDataNodes() {
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(), "ClientProtocol.getStats");
  return name_node_->NumStaleDataNodes();
}

int DfsClient::TotalBlocks() {
  RpcGate(*cluster_, name_node_, conf_, name_node_->conf(), "ClientProtocol.getStats");
  return name_node_->TotalBlocks();
}

}  // namespace zebra
