#include "src/apps/ministream/job_manager.h"

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/ministream/stream_params.h"
#include "src/apps/ministream/task_manager.h"
#include "src/common/error.h"
#include "src/sim/wire.h"

namespace zebra {

JobManager::JobManager(Cluster* cluster, const Configuration& conf)
    : init_scope_(kStreamApp, this, "JobManager", __FILE__, __LINE__),
      conf_(AnnotatedRefToClone(kStreamApp, conf, __FILE__, __LINE__)),
      cluster_(cluster) {
  conf_.GetInt(kStreamJmRpcPort, kStreamJmRpcPortDefault);
  conf_.GetInt(kStreamWebPort, kStreamWebPortDefault);
  conf_.Get(kStreamRestartStrategy, kStreamRestartStrategyDefault);
  GetIpc(*cluster_, this);
  init_scope_.Finish();
}

void JobManager::RegisterTaskManager(TaskManager* tm) {
  RequireMatchingTokens("akka-control-plane",
                        WireToken(tm->conf().Get(kStreamAkkaSsl, "false")),
                        WireToken(conf_.Get(kStreamAkkaSsl, "false")));
  task_managers_.push_back(tm);
}

void JobManager::SubmitJob(int parallelism) {
  if (task_managers_.empty()) {
    throw RpcError("no TaskManagers registered");
  }
  // The JobManager believes every TaskManager offers *its* slot count.
  int64_t assumed_slots = conf_.GetInt(kStreamTaskSlots, kStreamTaskSlotsDefault);
  if (assumed_slots < 1) {
    assumed_slots = 1;
  }
  int remaining = parallelism;
  for (TaskManager* tm : task_managers_) {
    int64_t& believed_used = believed_used_slots_[tm];
    while (believed_used < assumed_slots && remaining > 0) {
      tm->DeployTask();  // admitted against the TaskManager's own slot count
      ++believed_used;
      --remaining;
    }
  }
  if (remaining > 0) {
    throw RpcError("insufficient slots for parallelism " +
                   std::to_string(parallelism));
  }
}

}  // namespace zebra
