#include "src/apps/ministream/task_manager.h"

#include "src/apps/appcommon/ipc_component.h"
#include "src/apps/ministream/stream_params.h"
#include "src/common/error.h"
#include "src/sim/wire.h"

namespace zebra {

namespace {

WireConfig StreamDataWireConfig(const Configuration& conf) {
  WireConfig wire;
  wire.encrypt = conf.GetBool(kStreamDataSsl, kStreamDataSslDefault);
  wire.checksum = ChecksumType::kCrc32;
  wire.bytes_per_checksum = 512;
  return wire;
}

}  // namespace

// zebralint(external-init): TaskManager deliberately lacks a NodeInitScope —
// it models Flink's pattern where the TM is constructed by the JM's deploy
// path and node-init attribution happens at the call site (DESIGN.md Rule 3).
TaskManager::TaskManager(Cluster* cluster, const Configuration& conf)
    : conf_(conf),  // plain clone: Rule 3 keeps it with the caller's entity
      cluster_(cluster) {
  conf_.GetInt(kStreamTmMemory, kStreamTmMemoryDefault);
  conf_.GetInt(kStreamTmHeap, kStreamTmHeapDefault);
  conf_.GetInt(kStreamNetworkBuffers, kStreamNetworkBuffersDefault);
  conf_.Get(kStreamStateBackend, kStreamStateBackendDefault);
  GetIpc(*cluster_, this);
}

int TaskManager::NumSlots() const {
  return static_cast<int>(conf_.GetInt(kStreamTaskSlots, kStreamTaskSlotsDefault));
}

void TaskManager::DeployTask() {
  if (deployed_tasks_ >= NumSlots()) {
    throw RpcError("TaskManager has no free slot (" + std::to_string(NumSlots()) +
                   " configured, " + std::to_string(deployed_tasks_) + " in use)");
  }
  ++deployed_tasks_;
}

void TaskManager::SendRecords(TaskManager* receiver,
                              const std::vector<std::string>& records) {
  Bytes payload;
  AppendU32(&payload, static_cast<uint32_t>(records.size()));
  for (const std::string& record : records) {
    AppendLengthPrefixedString(&payload, record);
  }
  receiver->ReceiveFrame(EncodeFrame(StreamDataWireConfig(conf_), payload));
}

void TaskManager::ReceiveFrame(const Bytes& frame) {
  Bytes payload = DecodeFrame(StreamDataWireConfig(conf_), frame);
  size_t offset = 0;
  uint32_t count = ReadU32(payload, &offset);
  for (uint32_t i = 0; i < count; ++i) {
    received_.push_back(ReadLengthPrefixedString(payload, &offset));
  }
}

}  // namespace zebra
