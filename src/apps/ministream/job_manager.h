// MiniStream JobManager: TaskManager registration over the (possibly
// SSL-protected) control plane and slot-based job scheduling.
//
// The scheduling bug-mechanism mirrors Flink's: the JobManager plans slot
// usage from *its own* taskmanager.numberOfTaskSlots, while each TaskManager
// enforces its own — disagreement makes slot allocation fail.

#ifndef SRC_APPS_MINISTREAM_JOB_MANAGER_H_
#define SRC_APPS_MINISTREAM_JOB_MANAGER_H_

#include <map>
#include <vector>

#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"
#include "src/runtime/node_init.h"

namespace zebra {

class TaskManager;

class JobManager {
 public:
  JobManager(Cluster* cluster, const Configuration& conf);

  JobManager(const JobManager&) = delete;
  JobManager& operator=(const JobManager&) = delete;

  const Configuration& conf() const { return conf_; }

  // Control-plane registration: both endpoints must agree on akka SSL.
  void RegisterTaskManager(TaskManager* tm);

  int NumTaskManagers() const { return static_cast<int>(task_managers_.size()); }

  // Schedules `parallelism` tasks across registered TaskManagers, assuming
  // every TaskManager offers this JobManager's view of the slot count. The
  // JobManager tracks which slots *it believes* are in use across jobs; each
  // TaskManager admits deployments against its own slot count.
  void SubmitJob(int parallelism);

 private:
  NodeInitScope init_scope_;
  Configuration conf_;
  Cluster* cluster_;
  std::vector<TaskManager*> task_managers_;
  std::map<TaskManager*, int64_t> believed_used_slots_;
};

}  // namespace zebra

#endif  // SRC_APPS_MINISTREAM_JOB_MANAGER_H_
