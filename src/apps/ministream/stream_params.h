// MiniStream (Flink analog) parameter names and defaults.

#ifndef SRC_APPS_MINISTREAM_STREAM_PARAMS_H_
#define SRC_APPS_MINISTREAM_STREAM_PARAMS_H_

#include <cstdint>

namespace zebra {

inline constexpr char kStreamApp[] = "ministream";

// ---- Table 3 heterogeneous-unsafe parameters ---------------------------------

// "TaskManager fails to connect to ResourceManager."
inline constexpr char kStreamAkkaSsl[] = "akka.ssl.enabled";
inline constexpr bool kStreamAkkaSslDefault = false;

// "TaskManager fails to decode peer message due to invalid SSL/TLS record."
inline constexpr char kStreamDataSsl[] = "taskmanager.data.ssl.enabled";
inline constexpr bool kStreamDataSslDefault = false;

// "JobManager fails to allocate slot from TaskManager."
inline constexpr char kStreamTaskSlots[] = "taskmanager.numberOfTaskSlots";
inline constexpr int64_t kStreamTaskSlotsDefault = 1;

// ---- Heterogeneous-safe parameters -------------------------------------------

inline constexpr char kStreamTmMemory[] = "taskmanager.memory.size";
inline constexpr int64_t kStreamTmMemoryDefault = 1024;

inline constexpr char kStreamParallelism[] = "parallelism.default";
inline constexpr int64_t kStreamParallelismDefault = 1;

inline constexpr char kStreamJmRpcPort[] = "jobmanager.rpc.port";
inline constexpr int64_t kStreamJmRpcPortDefault = 6123;

inline constexpr char kStreamNetworkBuffers[] = "taskmanager.network.numberOfBuffers";
inline constexpr int64_t kStreamNetworkBuffersDefault = 2048;

inline constexpr char kStreamStateBackend[] = "state.backend";
inline constexpr char kStreamStateBackendDefault[] = "memory";

inline constexpr char kStreamRestartStrategy[] = "restart-strategy";
inline constexpr char kStreamRestartStrategyDefault[] = "none";

inline constexpr char kStreamTmHeap[] = "taskmanager.heap.size";
inline constexpr int64_t kStreamTmHeapDefault = 1024;

inline constexpr char kStreamWebPort[] = "web.port";
inline constexpr int64_t kStreamWebPortDefault = 8081;

}  // namespace zebra

#endif  // SRC_APPS_MINISTREAM_STREAM_PARAMS_H_
