// MiniStream TaskManager.
//
// Flink quirk, reproduced deliberately: production code initializes
// TaskManagers through a proper init function, but Flink's *unit tests* copy
// the initialization code inline into the test body (paper §7.2). The class
// therefore takes an already-prepared Configuration and performs no
// ConfAgent bracketing itself; callers are responsible for the
// NodeInitScope + AnnotatedRefToClone dance:
//
//   NodeInitScope scope(kStreamApp, &tm, "TaskManager", __FILE__, __LINE__);
//   Configuration tm_conf = AnnotatedRefToClone(kStreamApp, shared, ...);
//   TaskManager tm(&cluster, tm_conf);   // clone maps to the node via Rule 3
//   scope.Finish();
//
// This is why ministream needs the most annotation lines (Table 4).

#ifndef SRC_APPS_MINISTREAM_TASK_MANAGER_H_
#define SRC_APPS_MINISTREAM_TASK_MANAGER_H_

#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/conf/configuration.h"
#include "src/runtime/cluster.h"

namespace zebra {

class TaskManager {
 public:
  // `conf` must already belong to this node (see the header comment); the
  // constructor clones it (Rule 3 keeps the clone with the same entity).
  TaskManager(Cluster* cluster, const Configuration& conf);

  TaskManager(const TaskManager&) = delete;
  TaskManager& operator=(const TaskManager&) = delete;

  const Configuration& conf() const { return conf_; }

  int NumSlots() const;
  int DeployedTasks() const { return deployed_tasks_; }

  // Admits one task deployment against this TaskManager's own slot count.
  void DeployTask();

  // Data-plane exchange: records encoded under this sender's SSL setting and
  // decoded under the receiver's.
  void SendRecords(TaskManager* receiver, const std::vector<std::string>& records);
  const std::vector<std::string>& received_records() const { return received_; }

 private:
  void ReceiveFrame(const Bytes& frame);

  Configuration conf_;
  Cluster* cluster_;
  int deployed_tasks_ = 0;
  std::vector<std::string> received_;
};

}  // namespace zebra

#endif  // SRC_APPS_MINISTREAM_TASK_MANAGER_H_
