// Schema registration for MiniStream parameters.

#ifndef SRC_APPS_MINISTREAM_STREAM_SCHEMA_H_
#define SRC_APPS_MINISTREAM_STREAM_SCHEMA_H_

#include "src/conf/conf_schema.h"

namespace zebra {

void RegisterMiniStreamSchema(ConfSchema& schema);

}  // namespace zebra

#endif  // SRC_APPS_MINISTREAM_STREAM_SCHEMA_H_
