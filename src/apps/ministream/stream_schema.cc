#include "src/apps/ministream/stream_schema.h"

#include "src/apps/ministream/stream_params.h"

namespace zebra {

void RegisterMiniStreamSchema(ConfSchema& schema) {
  const char* app = kStreamApp;

  schema.AddParam({kStreamAkkaSsl, app, ParamType::kBool, "false",
                   {"true", "false"}, "SSL for the control plane (akka)"});
  schema.AddParam({kStreamDataSsl, app, ParamType::kBool, "false",
                   {"true", "false"}, "SSL for TaskManager data exchanges"});
  schema.AddParam({kStreamTaskSlots, app, ParamType::kInt, "1",
                   {"1", "2", "4"}, "Task slots offered per TaskManager"});

  schema.AddParam({kStreamTmMemory, app, ParamType::kInt, "1024",
                   {"512", "1024", "4096"}, "TaskManager managed memory (node-local)"});
  schema.AddParam({kStreamParallelism, app, ParamType::kInt, "1",
                   {"1", "2"}, "Default job parallelism (client-local)"});
  schema.AddParam({kStreamJmRpcPort, app, ParamType::kInt, "6123",
                   {"6123", "16123"}, "JobManager RPC port"});
  schema.AddParam({kStreamNetworkBuffers, app, ParamType::kInt, "2048",
                   {"512", "2048"}, "Network buffer pool size (node-local)"});
  schema.AddParam({kStreamStateBackend, app, ParamType::kEnum, "memory",
                   {"memory", "fs"}, "State backend (task-local)"});
  schema.AddParam({kStreamRestartStrategy, app, ParamType::kEnum, "none",
                   {"none", "fixed-delay"}, "Job restart strategy (JM-local)"});
  schema.AddParam({kStreamTmHeap, app, ParamType::kInt, "1024",
                   {"512", "1024"}, "TaskManager heap (node-local)"});
  schema.AddParam({kStreamWebPort, app, ParamType::kInt, "8081",
                   {"8081", "18081"}, "Web UI port (JM-local)"});
}

}  // namespace zebra
