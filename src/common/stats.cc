#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

namespace zebra {

double LogFactorial(int64_t n) {
  if (n <= 1) {
    return 0.0;
  }
  // lgamma_r, not std::lgamma: the latter writes the process-global
  // `signgam`, a data race when campaign worker threads verify instances
  // concurrently. The sign is irrelevant here (the argument is positive).
  int sign = 0;
  return ::lgamma_r(static_cast<double>(n) + 1.0, &sign);
}

double LogChoose(int64_t n, int64_t k) {
  if (k < 0 || k > n) {
    return -1e300;  // effectively log(0)
  }
  return LogFactorial(n) - LogFactorial(k) - LogFactorial(n - k);
}

double HypergeometricPmf(int64_t total, int64_t successes, int64_t draws, int64_t k) {
  if (k < 0 || k > draws || k > successes || draws - k > total - successes) {
    return 0.0;
  }
  double log_p = LogChoose(successes, k) + LogChoose(total - successes, draws - k) -
                 LogChoose(total, draws);
  return std::exp(log_p);
}

double FisherExactOneSided(int64_t hetero_failed, int64_t hetero_total,
                           int64_t homo_failed, int64_t homo_total) {
  const int64_t total = hetero_total + homo_total;
  const int64_t total_failed = hetero_failed + homo_failed;
  if (hetero_total <= 0 || total_failed == 0) {
    return 1.0;
  }
  // Tail: at least `hetero_failed` of the failures landing in the hetero row.
  const int64_t max_k = std::min(total_failed, hetero_total);
  double p = 0.0;
  for (int64_t k = hetero_failed; k <= max_k; ++k) {
    p += HypergeometricPmf(total, total_failed, hetero_total, k);
  }
  return std::min(p, 1.0);
}

bool SignificantlyWorse(int64_t hetero_failed, int64_t hetero_total,
                        int64_t homo_failed, int64_t homo_total,
                        double significance) {
  return FisherExactOneSided(hetero_failed, hetero_total, homo_failed, homo_total) <
         significance;
}

int64_t MinTrialsForSignificance(double significance) {
  // With hetero n/n failed and homo 0/n failed, the one-sided p-value is
  // 1 / C(2n, n). Find the smallest n that gets below the threshold.
  for (int64_t n = 1; n <= 64; ++n) {
    double p = std::exp(-LogChoose(2 * n, n));
    if (p < significance) {
      return n;
    }
  }
  return 64;
}

}  // namespace zebra
