#include "src/common/strings.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace zebra {

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) {
      result.append(sep);
    }
    result.append(pieces[i]);
  }
  return result;
}

std::string StrTrim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return std::string(text.substr(begin, end - begin));
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

bool ParseInt64(std::string_view text, int64_t* out) {
  std::string trimmed = StrTrim(text);
  if (trimmed.empty()) {
    return false;
  }
  int64_t value = 0;
  const char* begin = trimmed.data();
  const char* end = begin + trimmed.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || ptr != end) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseDouble(std::string_view text, double* out) {
  std::string trimmed = StrTrim(text);
  if (trimmed.empty()) {
    return false;
  }
  char* end_ptr = nullptr;
  double value = std::strtod(trimmed.c_str(), &end_ptr);
  if (end_ptr == nullptr || *end_ptr != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ParseBool(std::string_view text, bool* out) {
  std::string lowered = StrTrim(text);
  std::transform(lowered.begin(), lowered.end(), lowered.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lowered == "true" || lowered == "1" || lowered == "yes") {
    *out = true;
    return true;
  }
  if (lowered == "false" || lowered == "0" || lowered == "no") {
    *out = false;
    return true;
  }
  return false;
}

std::string BoolToString(bool value) { return value ? "true" : "false"; }

std::string Int64ToString(int64_t value) { return std::to_string(value); }

std::string DoubleToString(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

uint64_t HashFnv64(std::string_view text, uint64_t seed) {
  uint64_t digest = seed;
  for (unsigned char c : text) {
    digest ^= static_cast<uint64_t>(c);
    digest *= 0x100000001b3ull;
  }
  return digest;
}

uint64_t HashContent64(std::string_view text) {
  // Four interleaved FNV-style lanes: a single lane's multiply chain is
  // latency-bound (one dependent 5-cycle multiply per 8 bytes), so
  // independent lanes pipeline and hash ~4x faster. Each lane adds a
  // shift-xor fold because chunked FNV alone diffuses poorly.
  constexpr uint64_t kPrime = 0x100000001b3ull;
  uint64_t lane[4] = {kFnv64Seed, kFnv64Seed ^ 0x9e3779b97f4a7c15ull,
                      kFnv64Seed ^ 0x6a09e667f3bcc908ull,
                      kFnv64Seed ^ 0xbb67ae8584caa73bull};
  size_t i = 0;
  for (; i + 32 <= text.size(); i += 32) {
    for (int k = 0; k < 4; ++k) {
      uint64_t chunk;
      std::memcpy(&chunk, text.data() + i + 8 * static_cast<size_t>(k), 8);
      lane[k] ^= chunk;
      lane[k] *= kPrime;
      lane[k] ^= lane[k] >> 29;
    }
  }
  uint64_t digest = lane[0];
  for (int k = 1; k < 4; ++k) {
    digest ^= lane[k];
    digest *= kPrime;
    digest ^= digest >> 29;
  }
  for (; i < text.size(); ++i) {
    digest ^= static_cast<unsigned char>(text[i]);
    digest *= kPrime;
  }
  digest ^= text.size();
  digest *= kPrime;
  return digest;
}

Digest128 HashFnv128(std::string_view text, Digest128 seed) {
  // FNV-128 prime: 2^88 + 2^8 + 0x3b. The 128-bit state and multiply ride on
  // the compiler's __int128 support (baked into every target this project
  // builds on); the loop is the textbook FNV-1a xor-then-multiply per byte.
  using uint128 = unsigned __int128;
  constexpr uint128 kPrime =
      (static_cast<uint128>(1) << 88) | (static_cast<uint128>(1) << 8) | 0x3b;
  uint128 digest =
      (static_cast<uint128>(seed.hi) << 64) | static_cast<uint128>(seed.lo);
  for (unsigned char c : text) {
    digest ^= static_cast<uint128>(c);
    digest *= kPrime;
  }
  return Digest128{static_cast<uint64_t>(digest >> 64),
                   static_cast<uint64_t>(digest)};
}

Digest128 HashFnv128Decimal(uint64_t value, Digest128 seed) {
  char buffer[20];  // max uint64_t is 20 digits
  char* end = buffer + sizeof(buffer);
  char* begin = end;
  do {
    *--begin = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  return HashFnv128(std::string_view(begin, static_cast<size_t>(end - begin)),
                    seed);
}

std::string HashToHex(uint64_t digest) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(digest));
  return buffer;
}

}  // namespace zebra
