// Statistical primitives backing TestRunner's hypothesis testing (paper §5).
//
// TestRunner must decide, from trial outcomes, whether a heterogeneous
// configuration fails *because it is heterogeneous* rather than because the
// unit test is nondeterministically flaky. We model this as a 2x2 contingency
// table (hetero vs homo trials, failed vs passed) and apply a one-sided
// Fisher exact test at the paper's significance level of 1e-4.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstdint>

namespace zebra {

// ln(n!) via lgamma. Exact enough for the trial counts we use (< 10^4).
double LogFactorial(int64_t n);

// ln C(n, k). Requires 0 <= k <= n.
double LogChoose(int64_t n, int64_t k);

// P(X = k) for X ~ Hypergeometric(total, successes, draws).
double HypergeometricPmf(int64_t total, int64_t successes, int64_t draws, int64_t k);

// One-sided Fisher exact test for the 2x2 table:
//
//              failed              passed
//   hetero     hetero_failed       hetero_total - hetero_failed
//   homo       homo_failed         homo_total - homo_failed
//
// Returns the probability, under the null hypothesis that failures are
// independent of which row a trial is in, of observing at least
// `hetero_failed` failures in the hetero row. Small values mean the
// heterogeneous configuration fails significantly more often.
double FisherExactOneSided(int64_t hetero_failed, int64_t hetero_total,
                           int64_t homo_failed, int64_t homo_total);

// Convenience: true if the Fisher exact p-value is below `significance`.
bool SignificantlyWorse(int64_t hetero_failed, int64_t hetero_total,
                        int64_t homo_failed, int64_t homo_total, double significance);

// The smallest per-row trial count n such that (hetero n/n failed, homo 0/n
// failed) reaches `significance`. TestRunner uses this to size its trial
// budget: if even a perfect split cannot reach significance within the
// budget, the candidate is filtered early.
int64_t MinTrialsForSignificance(double significance);

}  // namespace zebra

#endif  // SRC_COMMON_STATS_H_
