// Deterministic pseudo-random number generation.
//
// All nondeterminism in the test corpus is injected through SplitMix64
// generators seeded from (test id, trial number), so that (a) individual unit
// tests are reproducible, and (b) TestRunner's multi-trial hypothesis testing
// observes genuinely varying outcomes across trials.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>
#include <string_view>

namespace zebra {

// SplitMix64: tiny, fast, and statistically adequate for workload generation.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    ++draws_;
    state_ += 0x9E3779B97F4A7C15ULL;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  // Number of values drawn so far. A consumer that never draws is provably
  // independent of the seed — the run cache uses this to recognize
  // trial-insensitive unit-test executions.
  uint64_t draws() const { return draws_; }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return NextU64() % bound; }

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // True with probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
  uint64_t draws_ = 0;
};

// Stable 64-bit FNV-1a hash; used to derive seeds from string identifiers and
// to build the opaque "wire tokens" handshake parameters compare.
constexpr uint64_t Fnv1a64(std::string_view text) {
  uint64_t hash = 0xCBF29CE484222325ULL;
  for (char c : text) {
    hash ^= static_cast<uint8_t>(c);
    hash *= 0x100000001B3ULL;
  }
  return hash;
}

// Combines two hashes/seeds into one (boost::hash_combine-style).
constexpr uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
}

}  // namespace zebra

#endif  // SRC_COMMON_RNG_H_
