// InternArena: an arena-backed string intern table.
//
// Interning returns a stable view of the first copy ever seen of a string;
// the bytes live in bump-allocated chunks owned by the arena, so repeated
// occurrences of the same name (configuration parameters are read millions
// of times per campaign, from a vocabulary of a few hundred names) cost one
// hash probe and zero allocations after the first. Views stay valid for the
// arena's lifetime — which is why ConfAgent keeps one arena per agent,
// shared across every session that agent runs, instead of re-interning per
// session.
//
// Not internally synchronized: the owner serializes access (ConfAgent calls
// it under its own mutex; each worker thread owns its own agent, so there is
// no cross-thread sharing to begin with).

#ifndef SRC_COMMON_INTERN_ARENA_H_
#define SRC_COMMON_INTERN_ARENA_H_

#include <cstddef>
#include <memory>
#include <string_view>
#include <unordered_set>
#include <vector>

namespace zebra {

class InternArena {
 public:
  InternArena() = default;
  InternArena(const InternArena&) = delete;
  InternArena& operator=(const InternArena&) = delete;

  // Returns the interned copy of `text`. The view (and its data() pointer,
  // which callers may use as a cheap identity key) is stable for the arena's
  // lifetime. O(1) amortized; allocates only on first occurrence.
  std::string_view Intern(std::string_view text);

  // Distinct strings interned.
  size_t size() const { return index_.size(); }

  // Bytes of arena chunk capacity allocated so far.
  size_t arena_bytes() const { return arena_bytes_; }

 private:
  static constexpr size_t kChunkBytes = 16 * 1024;

  // Chunked bump allocator; strings never straddle a chunk boundary, and a
  // string larger than a whole chunk gets a dedicated allocation.
  const char* Copy(std::string_view text);

  std::vector<std::unique_ptr<char[]>> chunks_;
  size_t chunk_used_ = kChunkBytes;  // forces allocation on first Intern
  size_t arena_bytes_ = 0;
  std::unordered_set<std::string_view> index_;  // views into chunks_
};

}  // namespace zebra

#endif  // SRC_COMMON_INTERN_ARENA_H_
