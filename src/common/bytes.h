// Byte-buffer type and serialization helpers used by the wire layer.

#ifndef SRC_COMMON_BYTES_H_
#define SRC_COMMON_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/error.h"

namespace zebra {

using Bytes = std::vector<uint8_t>;

inline Bytes BytesFromString(std::string_view text) {
  return Bytes(text.begin(), text.end());
}

inline std::string StringFromBytes(const Bytes& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

// Little-endian append/read of fixed-width integers. Readers throw DecodeError
// when the buffer is too short — a truncated or garbled frame is an
// application-visible decode failure, not a harness bug.
inline void AppendU32(Bytes* out, uint32_t value) {
  out->push_back(static_cast<uint8_t>(value));
  out->push_back(static_cast<uint8_t>(value >> 8));
  out->push_back(static_cast<uint8_t>(value >> 16));
  out->push_back(static_cast<uint8_t>(value >> 24));
}

inline void AppendU64(Bytes* out, uint64_t value) {
  AppendU32(out, static_cast<uint32_t>(value));
  AppendU32(out, static_cast<uint32_t>(value >> 32));
}

inline uint32_t ReadU32(const Bytes& in, size_t* offset) {
  if (*offset + 4 > in.size()) {
    throw DecodeError("buffer underrun reading u32");
  }
  uint32_t value = static_cast<uint32_t>(in[*offset]) |
                   static_cast<uint32_t>(in[*offset + 1]) << 8 |
                   static_cast<uint32_t>(in[*offset + 2]) << 16 |
                   static_cast<uint32_t>(in[*offset + 3]) << 24;
  *offset += 4;
  return value;
}

inline uint64_t ReadU64(const Bytes& in, size_t* offset) {
  uint64_t lo = ReadU32(in, offset);
  uint64_t hi = ReadU32(in, offset);
  return lo | (hi << 32);
}

inline void AppendLengthPrefixed(Bytes* out, const Bytes& payload) {
  AppendU32(out, static_cast<uint32_t>(payload.size()));
  out->insert(out->end(), payload.begin(), payload.end());
}

inline void AppendLengthPrefixedString(Bytes* out, std::string_view text) {
  AppendU32(out, static_cast<uint32_t>(text.size()));
  out->insert(out->end(), text.begin(), text.end());
}

inline Bytes ReadLengthPrefixed(const Bytes& in, size_t* offset) {
  uint32_t length = ReadU32(in, offset);
  if (*offset + length > in.size()) {
    throw DecodeError("buffer underrun reading length-prefixed block");
  }
  Bytes payload(in.begin() + static_cast<long>(*offset),
                in.begin() + static_cast<long>(*offset + length));
  *offset += length;
  return payload;
}

inline std::string ReadLengthPrefixedString(const Bytes& in, size_t* offset) {
  return StringFromBytes(ReadLengthPrefixed(in, offset));
}

}  // namespace zebra

#endif  // SRC_COMMON_BYTES_H_
