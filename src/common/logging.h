// Minimal leveled logger. Logging is off by default so that test-corpus runs
// (which execute tens of thousands of mini-cluster operations) stay quiet;
// examples and debugging sessions can raise the level.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace zebra {

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Sets the process-wide minimum level that is emitted. Thread-safe.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Emits one line to stderr if `level` >= the configured minimum.
void LogLine(LogLevel level, const std::string& message);

namespace log_internal {

class LineBuilder {
 public:
  explicit LineBuilder(LogLevel level) : level_(level) {}
  ~LineBuilder() { LogLine(level_, stream_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace log_internal

}  // namespace zebra

#define ZLOG_DEBUG ::zebra::log_internal::LineBuilder(::zebra::LogLevel::kDebug)
#define ZLOG_INFO ::zebra::log_internal::LineBuilder(::zebra::LogLevel::kInfo)
#define ZLOG_WARN ::zebra::log_internal::LineBuilder(::zebra::LogLevel::kWarning)
#define ZLOG_ERROR ::zebra::log_internal::LineBuilder(::zebra::LogLevel::kError)

#endif  // SRC_COMMON_LOGGING_H_
