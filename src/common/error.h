// Error taxonomy shared by the simulation substrate, the mini-applications, and
// the ZebraConf core.
//
// The mini-applications signal operational failures (decode errors, handshake
// rejections, timeouts, limit violations) with exceptions derived from
// zebra::Error, mirroring how the Java applications the paper studies surface
// failures to their unit tests. The test harness converts any escaping Error
// (or assertion failure) into a failed TestResult.

#ifndef SRC_COMMON_ERROR_H_
#define SRC_COMMON_ERROR_H_

#include <stdexcept>
#include <string>

namespace zebra {

// Base class for all application-level failures in the mini-systems.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& message) : std::runtime_error(message) {}
};

// A remote call failed: the peer rejected the request or the reply could not
// be interpreted.
class RpcError : public Error {
 public:
  explicit RpcError(const std::string& message) : Error("RpcError: " + message) {}
};

// Connection-establishment failed because the two endpoints disagree on a
// security/transport parameter (SASL, SSL, protection level, protocol).
class HandshakeError : public Error {
 public:
  explicit HandshakeError(const std::string& message)
      : Error("HandshakeError: " + message) {}
};

// Payload bytes did not verify against the receiver-side checksum, or a frame
// failed to parse under the receiver's wire configuration.
class ChecksumError : public Error {
 public:
  explicit ChecksumError(const std::string& message)
      : Error("ChecksumError: " + message) {}
};

// A frame could not be decoded (wrong compression codec, missing decryption,
// framing mismatch, garbage header).
class DecodeError : public Error {
 public:
  explicit DecodeError(const std::string& message) : Error("DecodeError: " + message) {}
};

// An operation did not complete within the caller's configured deadline.
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& message)
      : Error("TimeoutError: " + message) {}
};

// A server-side limit (fs-limits, max allocation, quota) rejected the request.
class LimitError : public Error {
 public:
  explicit LimitError(const std::string& message) : Error("LimitError: " + message) {}
};

// Misuse of an API inside the repository itself (not an application failure).
// Kept distinct so harness bugs never masquerade as heterogeneous-unsafety.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& message)
      : Error("InternalError: " + message) {}
};

}  // namespace zebra

#endif  // SRC_COMMON_ERROR_H_
