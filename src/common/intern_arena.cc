#include "src/common/intern_arena.h"

#include <cstring>

namespace zebra {

std::string_view InternArena::Intern(std::string_view text) {
  auto it = index_.find(text);
  if (it != index_.end()) {
    return *it;
  }
  std::string_view stored(Copy(text), text.size());
  index_.insert(stored);
  return stored;
}

const char* InternArena::Copy(std::string_view text) {
  if (text.size() > kChunkBytes) {
    // Oversized string: dedicated chunk, current bump chunk untouched.
    auto chunk = std::make_unique<char[]>(text.size());
    char* dest = chunk.get();
    std::memcpy(dest, text.data(), text.size());
    arena_bytes_ += text.size();
    chunks_.push_back(std::move(chunk));
    // Keep the bump chunk (if any) as the last element so Copy stays O(1).
    if (chunks_.size() >= 2 && chunk_used_ < kChunkBytes) {
      std::swap(chunks_[chunks_.size() - 2], chunks_.back());
    }
    return dest;
  }
  if (chunk_used_ + text.size() > kChunkBytes) {
    chunks_.push_back(std::make_unique<char[]>(kChunkBytes));
    arena_bytes_ += kChunkBytes;
    chunk_used_ = 0;
  }
  char* dest = chunks_.back().get() + chunk_used_;
  if (!text.empty()) {
    std::memcpy(dest, text.data(), text.size());
  }
  chunk_used_ += text.size();
  return dest;
}

}  // namespace zebra
