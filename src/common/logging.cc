#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace zebra {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kOff)};
std::mutex g_emit_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_min_level.load()); }

void LogLine(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_min_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelTag(level), message.c_str());
}

}  // namespace zebra
