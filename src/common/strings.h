// Small string utilities used across the project.

#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace zebra {

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string StrTrim(std::string_view text);

// True if `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Strict integer / double / bool parsing. Returns false on malformed input and
// leaves `*out` untouched; configuration getters use these and fall back to
// defaults for unparseable values, like Hadoop's Configuration does.
bool ParseInt64(std::string_view text, int64_t* out);
bool ParseDouble(std::string_view text, double* out);
bool ParseBool(std::string_view text, bool* out);

// Renders values in the canonical form stored in configuration files.
std::string BoolToString(bool value);
std::string Int64ToString(int64_t value);
std::string DoubleToString(double value);

}  // namespace zebra

#endif  // SRC_COMMON_STRINGS_H_
