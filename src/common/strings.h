// Small string utilities used across the project.

#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace zebra {

// Splits `text` on `sep`, keeping empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

// Joins `pieces` with `sep`.
std::string StrJoin(const std::vector<std::string>& pieces, std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string StrTrim(std::string_view text);

// True if `text` starts with / ends with the given affix.
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

// Strict integer / double / bool parsing. Returns false on malformed input and
// leaves `*out` untouched; configuration getters use these and fall back to
// defaults for unparseable values, like Hadoop's Configuration does.
bool ParseInt64(std::string_view text, int64_t* out);
bool ParseDouble(std::string_view text, double* out);
bool ParseBool(std::string_view text, bool* out);

// Renders values in the canonical form stored in configuration files.
std::string BoolToString(bool value);
std::string Int64ToString(int64_t value);
std::string DoubleToString(double value);

// FNV-1a over the bytes of `text`, folded from `seed` (pass kFnv64Seed for a
// fresh hash, or a previous digest to chain). Used for record checksums in
// the campaign journal and run-cache files and for the deterministic
// fault-injection coin flips — stability across runs matters, stdlib
// std::hash does not guarantee it.
inline constexpr uint64_t kFnv64Seed = 0xcbf29ce484222325ull;
uint64_t HashFnv64(std::string_view text, uint64_t seed = kFnv64Seed);

// 16-hex-digit rendering of a 64-bit digest (zero-padded, lower case).
std::string HashToHex(uint64_t digest);

// Content fingerprint for whole files: FNV-1a folded over 8-byte chunks
// instead of single bytes, ~8x faster on large inputs. NOT interchangeable
// with HashFnv64 — use only where every producer and consumer hashes with
// this function (the analysis summary cache keys TU content with it; the
// incremental path hashes every source on every run, so byte-at-a-time FNV
// showed up as a fixed per-run cost).
uint64_t HashContent64(std::string_view text);

// 128-bit FNV-1a digest. Chainable exactly like HashFnv64: folding the
// pieces of a concatenation one after another yields the digest of the
// concatenated bytes, which is what lets the run cache derive a key from
// (test id, separator, fingerprint, trial) components without materializing
// the joined string — and re-derive the identical key from the persisted
// string form. 128 bits because these digests *are* the cache identity:
// at 64 bits a birthday collision across a long-lived warm-started cache is
// merely improbable; at 128 it is negligible, and the insert path still
// cross-checks the legacy string key so even a collision is detected, not
// served.
struct Digest128 {
  uint64_t hi = 0;
  uint64_t lo = 0;

  bool operator==(const Digest128& other) const {
    return hi == other.hi && lo == other.lo;
  }
  bool operator!=(const Digest128& other) const { return !(*this == other); }
};

// FNV-128 offset basis (the standard 0x6c62272e07bb014262b821756295c58d).
inline constexpr Digest128 kFnv128Seed = {0x6c62272e07bb0142ull,
                                          0x62b821756295c58dull};

Digest128 HashFnv128(std::string_view text, Digest128 seed = kFnv128Seed);

// Folds the decimal rendering of `value` (the bytes std::to_string would
// produce) without allocating.
Digest128 HashFnv128Decimal(uint64_t value, Digest128 seed);

}  // namespace zebra

#endif  // SRC_COMMON_STRINGS_H_
