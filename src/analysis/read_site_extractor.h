// zebralint's structural layer: turns one translation unit's token stream into
// a model of function definitions, configuration read sites, call sites, and
// annotation brackets.
//
// The extractor is deliberately lexical (no type checking, no template
// instantiation): the properties ZebraConf's static prior needs — "which
// parameter constants does this function read", "which node-class object does
// this statement call into", "is this constructor bracketed with
// NodeInitScope" — are all recoverable from token shapes in the coding style
// this repository (and Hadoop-style C++ in general) uses. Everything the
// later passes consume is recorded with file:line provenance so reports stay
// clickable.

#ifndef SRC_ANALYSIS_READ_SITE_EXTRACTOR_H_
#define SRC_ANALYSIS_READ_SITE_EXTRACTOR_H_

#include <algorithm>
#include <deque>
#include <map>
#include <stdexcept>
#include <utility>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/source_lexer.h"

namespace zebra {
namespace analysis {

// One Configuration::Get* call site.
struct ReadSite {
  // The raw first argument: an identifier (a parameter-name constant such as
  // kDfsHeartbeatInterval) or a string literal. Resolution against the
  // program-wide constant table happens in ProgramModel::Resolve().
  std::string arg_token;
  bool arg_is_literal = false;

  std::string param;     // resolved parameter name ("" if unresolvable)
  std::string accessor;  // receiver expression's final identifier ("conf_")
  std::string method;    // Get / GetBool / GetInt / GetDouble

  std::string file;
  int line = 0;
  std::string function;         // qualified enclosing function
  std::string enclosing_class;  // "" for free functions
};

// A function (or constructor) definition with its body tokens retained for
// the statement-level taint pass.
struct FunctionModel {
  std::string cls;        // "" for free functions
  std::string name;       // unqualified
  std::string qualified;  // "Class::Name" or "Name"
  std::string return_type;
  bool is_constructor = false;

  std::string file;
  int line = 0;

  // Body tokens: the constructor member-init list (if any) followed by the
  // brace-enclosed body, braces included.
  std::vector<Token> tokens;
  // Half-open token ranges forming statements: split on ';' at parenthesis
  // depth zero (so a whole call expression — lambdas included — stays in one
  // statement) and on top-level ',' inside the member-init list.
  std::vector<std::pair<size_t, size_t>> statements;

  std::vector<ReadSite> read_sites;
  // Every name that appears as NAME( in the body — sorted, deduplicated
  // (canonicalized when the function is finalized by the extractor).
  std::vector<std::string> callees;
  bool has_init_bracket = false;  // NodeInitScope / init_scope_ / ZC_ANNOTATION_SITE
  bool uses_ref_to_clone = false;
  // Name matches a protocol-surface pattern (MatchesProtocolName). Stamped
  // at extraction and carried through the summary cache so warm analyses
  // never re-run the pattern matcher over every function name.
  bool name_is_protocol = false;
};

// Everything extracted from one file.
struct TuModel {
  std::string file;
  std::vector<FunctionModel> functions;

  // `inline constexpr char kFoo[] = "the.param.name";` declarations.
  std::map<std::string, std::string> param_constants;

  // Node-type names harvested from NodeInitScope brackets: the string literal
  // argument, plus the enclosing class of the bracket.
  std::set<std::string> node_classes;

  // Best-effort identifier -> class-type map from declarations of the form
  // `Type* name`, `Type& name`, `Type name` (Type upper-case initial). Covers
  // members, locals, and parameters alike.
  std::map<std::string, std::string> var_types;

  // Function name (bare and qualified) -> return type identifier, for
  // resolving chained receivers like ResolveDataNode(id)->DeleteBlock(...).
  std::map<std::string, std::string> fn_return_types;

  // Classes declaring a NodeInitScope member in this file.
  std::set<std::string> classes_with_scope_member;

  std::vector<LintMarker> markers;

  // Get* calls whose first argument was neither an identifier nor a literal
  // (dynamic parameter names); counted so reports can surface blind spots.
  int unresolved_reads = 0;
};

// Extracts the model of one file. `file` is used for provenance only.
TuModel ExtractTu(std::string file, std::string_view source);

// A merged program-wide key/value table: string_views into the per-TU
// models' own map storage (kept alive by ProgramModel::tus), flattened and
// sorted on first lookup. Merging a TU is then a cheap append — no per-entry
// tree insert, no string copy — which matters on warm incremental runs where
// every table is re-merged from (mostly cached) TUs on every analysis.
// Duplicate keys keep the first appended occurrence, matching the old
// std::map::emplace merge semantics, and iteration is sorted by key, so the
// program table hash sees the exact entry sequence the std::map produced.
class MergedTable {
 public:
  using Entry = std::pair<std::string_view, std::string_view>;

  // Appends every entry of one TU's table (views — the map must stay alive).
  void AppendFrom(const std::map<std::string, std::string>& tu_table) {
    for (const auto& [k, v] : tu_table) entries_.emplace_back(k, v);
    sealed_ = false;
  }
  // Inserts one entry not backed by a TU model; the strings are copied into
  // owned storage so callers may pass temporaries.
  void InsertOwned(std::string_view key, std::string_view value) {
    pool_.emplace_back(key);
    const std::string& k = pool_.back();
    pool_.emplace_back(value);
    entries_.emplace_back(k, pool_.back());
    sealed_ = false;
  }

  // Pointer to the value for `key`, or nullptr. O(log n).
  const std::string_view* Find(std::string_view key) const {
    Seal();
    auto it = std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const Entry& e, std::string_view k) { return e.first < k; });
    if (it == entries_.end() || it->first != key) return nullptr;
    return &it->second;
  }
  size_t count(std::string_view key) const { return Find(key) ? 1 : 0; }
  std::string_view at(std::string_view key) const {
    const std::string_view* v = Find(key);
    if (v == nullptr) throw std::out_of_range("MergedTable::at");
    return *v;
  }
  size_t size() const {
    Seal();
    return entries_.size();
  }
  // Sorted unique entries, for deterministic iteration (the table hash).
  const std::vector<Entry>& entries() const {
    Seal();
    return entries_;
  }

 private:
  void Seal() const;
  mutable std::vector<Entry> entries_;
  mutable bool sealed_ = true;        // empty table is trivially sealed
  std::deque<std::string> pool_;      // stable backing for InsertOwned
};

// Set flavor of MergedTable: same flattened-view merge, keys only.
class MergedSet {
 public:
  void AppendFrom(const std::set<std::string>& tu_set) {
    for (const std::string& k : tu_set) keys_.emplace_back(k);
    sealed_ = false;
  }
  void InsertOwned(std::string_view key) {
    pool_.emplace_back(key);
    keys_.emplace_back(pool_.back());
    sealed_ = false;
  }
  size_t count(std::string_view key) const {
    Seal();
    return std::binary_search(keys_.begin(), keys_.end(), key) ? 1 : 0;
  }
  size_t size() const {
    Seal();
    return keys_.size();
  }
  const std::vector<std::string_view>& keys() const {
    Seal();
    return keys_;
  }

 private:
  void Seal() const;
  mutable std::vector<std::string_view> keys_;
  mutable bool sealed_ = true;
  std::deque<std::string> pool_;
};

// The merged program-wide model over all scanned files. TUs are held by
// shared pointer so summary-cache hits can be *borrowed* instead of copied —
// on a large tree, copying every unchanged TU back into the program is most
// of an incremental run's cost.
struct ProgramModel {
  std::vector<std::shared_ptr<TuModel>> tus;

  MergedTable param_constants;
  MergedSet node_classes;
  MergedTable var_types;
  MergedTable fn_return_types;
  MergedSet classes_with_scope_member;
  std::vector<LintMarker> markers;
  int unresolved_reads = 0;

  void Merge(TuModel tu);

  // Shares a TU owned elsewhere (the summary cache). The caller guarantees
  // Resolve() will be a no-op on it: cached TUs are served only when the
  // merged table hash equals the one they were stored under, so every site
  // resolvable now was already resolved at store time (see summary_cache.h).
  void MergeShared(std::shared_ptr<TuModel> tu);

  // Fills ReadSite::param across all TUs from the merged constant table.
  // Call once after every file has been merged.
  void Resolve();

  // All read sites across the program (valid after Resolve()).
  std::vector<const ReadSite*> AllReadSites() const;

  // Classes suppressed via `zebralint(external-init): <Class> ...` markers.
  std::set<std::string> ExternallyInitializedClasses() const;
};

}  // namespace analysis
}  // namespace zebra

#endif  // SRC_ANALYSIS_READ_SITE_EXTRACTOR_H_
