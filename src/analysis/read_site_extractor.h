// zebralint's structural layer: turns one translation unit's token stream into
// a model of function definitions, configuration read sites, call sites, and
// annotation brackets.
//
// The extractor is deliberately lexical (no type checking, no template
// instantiation): the properties ZebraConf's static prior needs — "which
// parameter constants does this function read", "which node-class object does
// this statement call into", "is this constructor bracketed with
// NodeInitScope" — are all recoverable from token shapes in the coding style
// this repository (and Hadoop-style C++ in general) uses. Everything the
// later passes consume is recorded with file:line provenance so reports stay
// clickable.

#ifndef SRC_ANALYSIS_READ_SITE_EXTRACTOR_H_
#define SRC_ANALYSIS_READ_SITE_EXTRACTOR_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/source_lexer.h"

namespace zebra {
namespace analysis {

// One Configuration::Get* call site.
struct ReadSite {
  // The raw first argument: an identifier (a parameter-name constant such as
  // kDfsHeartbeatInterval) or a string literal. Resolution against the
  // program-wide constant table happens in ProgramModel::Resolve().
  std::string arg_token;
  bool arg_is_literal = false;

  std::string param;     // resolved parameter name ("" if unresolvable)
  std::string accessor;  // receiver expression's final identifier ("conf_")
  std::string method;    // Get / GetBool / GetInt / GetDouble

  std::string file;
  int line = 0;
  std::string function;         // qualified enclosing function
  std::string enclosing_class;  // "" for free functions
};

// A function (or constructor) definition with its body tokens retained for
// the statement-level taint pass.
struct FunctionModel {
  std::string cls;        // "" for free functions
  std::string name;       // unqualified
  std::string qualified;  // "Class::Name" or "Name"
  std::string return_type;
  bool is_constructor = false;

  std::string file;
  int line = 0;

  // Body tokens: the constructor member-init list (if any) followed by the
  // brace-enclosed body, braces included.
  std::vector<Token> tokens;
  // Half-open token ranges forming statements: split on ';' at parenthesis
  // depth zero (so a whole call expression — lambdas included — stays in one
  // statement) and on top-level ',' inside the member-init list.
  std::vector<std::pair<size_t, size_t>> statements;

  std::vector<ReadSite> read_sites;
  std::set<std::string> callees;  // every name that appears as NAME(
  bool has_init_bracket = false;  // NodeInitScope / init_scope_ / ZC_ANNOTATION_SITE
  bool uses_ref_to_clone = false;
};

// Everything extracted from one file.
struct TuModel {
  std::string file;
  std::vector<FunctionModel> functions;

  // `inline constexpr char kFoo[] = "the.param.name";` declarations.
  std::map<std::string, std::string> param_constants;

  // Node-type names harvested from NodeInitScope brackets: the string literal
  // argument, plus the enclosing class of the bracket.
  std::set<std::string> node_classes;

  // Best-effort identifier -> class-type map from declarations of the form
  // `Type* name`, `Type& name`, `Type name` (Type upper-case initial). Covers
  // members, locals, and parameters alike.
  std::map<std::string, std::string> var_types;

  // Function name (bare and qualified) -> return type identifier, for
  // resolving chained receivers like ResolveDataNode(id)->DeleteBlock(...).
  std::map<std::string, std::string> fn_return_types;

  // Classes declaring a NodeInitScope member in this file.
  std::set<std::string> classes_with_scope_member;

  std::vector<LintMarker> markers;

  // Get* calls whose first argument was neither an identifier nor a literal
  // (dynamic parameter names); counted so reports can surface blind spots.
  int unresolved_reads = 0;
};

// Extracts the model of one file. `file` is used for provenance only.
TuModel ExtractTu(std::string file, std::string_view source);

// The merged program-wide model over all scanned files.
struct ProgramModel {
  std::vector<TuModel> tus;

  std::map<std::string, std::string> param_constants;
  std::set<std::string> node_classes;
  std::map<std::string, std::string> var_types;
  std::map<std::string, std::string> fn_return_types;
  std::set<std::string> classes_with_scope_member;
  std::vector<LintMarker> markers;
  int unresolved_reads = 0;

  void Merge(TuModel tu);

  // Fills ReadSite::param across all TUs from the merged constant table.
  // Call once after every file has been merged.
  void Resolve();

  // All read sites across the program (valid after Resolve()).
  std::vector<const ReadSite*> AllReadSites() const;

  // Classes suppressed via `zebralint(external-init): <Class> ...` markers.
  std::set<std::string> ExternallyInitializedClasses() const;
};

}  // namespace analysis
}  // namespace zebra

#endif  // SRC_ANALYSIS_READ_SITE_EXTRACTOR_H_
