#include "src/analysis/prior_diff.h"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace zebra {
namespace analysis {

namespace {

void JsonEscape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

// Parses the JSON string starting at text[pos] (which must be '"'); advances
// pos past the closing quote.
bool ParseJsonString(const std::string& text, size_t* pos, std::string* out) {
  if (*pos >= text.size() || text[*pos] != '"') return false;
  out->clear();
  for (size_t i = *pos + 1; i < text.size(); ++i) {
    char c = text[i];
    if (c == '"') {
      *pos = i + 1;
      return true;
    }
    if (c == '\\') {
      if (i + 1 >= text.size()) return false;
      char esc = text[++i];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        default: return false;
      }
      continue;
    }
    out->push_back(c);
  }
  return false;
}

// Expects `literal` at text[pos] (skipping nothing); advances past it.
bool Expect(const std::string& text, size_t* pos, const std::string& literal) {
  if (text.compare(*pos, literal.size(), literal) != 0) return false;
  *pos += literal.size();
  return true;
}

// Finds `field` ("\"in_schema\": ") at or after pos; advances past it.
bool SeekField(const std::string& text, size_t* pos, const std::string& field,
               size_t limit) {
  size_t found = text.find(field, *pos);
  if (found == std::string::npos || found >= limit) return false;
  *pos = found + field.size();
  return true;
}

bool ParseBool(const std::string& text, size_t* pos, bool* out) {
  if (Expect(text, pos, "true")) {
    *out = true;
    return true;
  }
  if (Expect(text, pos, "false")) {
    *out = false;
    return true;
  }
  return false;
}

bool ParseInt(const std::string& text, size_t* pos, int* out) {
  size_t i = *pos;
  int value = 0;
  bool any = false;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    value = value * 10 + (text[i] - '0');
    any = true;
    ++i;
  }
  if (!any) return false;
  *pos = i;
  *out = value;
  return true;
}

bool ParseHex(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    int d;
    if (c >= '0' && c <= '9') d = c - '0';
    else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
    else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
    else return false;
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

// Parses a ["...", "..."] array of JSON strings starting at '['.
bool ParseStringArray(const std::string& text, size_t* pos,
                      std::vector<std::string>* out) {
  if (!Expect(text, pos, "[")) return false;
  out->clear();
  // Skip whitespace.
  while (*pos < text.size() && (text[*pos] == ' ' || text[*pos] == '\n')) {
    ++*pos;
  }
  if (*pos < text.size() && text[*pos] == ']') {
    ++*pos;
    return true;
  }
  while (*pos < text.size()) {
    std::string item;
    if (!ParseJsonString(text, pos, &item)) return false;
    out->push_back(std::move(item));
    while (*pos < text.size() && (text[*pos] == ' ' || text[*pos] == '\n')) {
      ++*pos;
    }
    if (*pos < text.size() && text[*pos] == ',') {
      ++*pos;
      while (*pos < text.size() && (text[*pos] == ' ' || text[*pos] == '\n')) {
        ++*pos;
      }
      continue;
    }
    if (*pos < text.size() && text[*pos] == ']') {
      ++*pos;
      return true;
    }
    return false;
  }
  return false;
}

void EmitStringArray(std::ostringstream& out,
                     const std::vector<std::string>& items) {
  out << "[";
  for (size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out << ", ";
    JsonEscape(out, items[i]);
  }
  out << "]";
}

}  // namespace

bool ParsePriorJson(const std::string& json, PriorSnapshot* out) {
  out->params.clear();
  size_t params_start = json.find("\"params\": [");
  if (params_start == std::string::npos) return false;
  // Each param entry is one line of the emitter's output; parse the fields
  // in their fixed emission order. The entry pattern never occurs elsewhere.
  const std::string kEntry = "{\"name\": ";
  size_t pos = params_start;
  while (true) {
    size_t entry = json.find(kEntry, pos);
    if (entry == std::string::npos) break;
    size_t cursor = entry + kEntry.size();
    // Entries live on single lines; bound field seeks to this line.
    size_t line_end = json.find('\n', entry);
    if (line_end == std::string::npos) line_end = json.size();

    std::string name;
    PriorSnapshot::Param param;
    if (!ParseJsonString(json, &cursor, &name)) return false;
    if (!SeekField(json, &cursor, "\"in_schema\": ", line_end) ||
        !ParseBool(json, &cursor, &param.in_schema)) {
      return false;
    }
    if (!SeekField(json, &cursor, "\"read_sites\": ", line_end) ||
        !ParseInt(json, &cursor, &param.read_sites)) {
      return false;
    }
    if (!SeekField(json, &cursor, "\"wire_tainted\": ", line_end) ||
        !ParseBool(json, &cursor, &param.wire_tainted)) {
      return false;
    }
    std::string surface_hex;
    if (!SeekField(json, &cursor, "\"surface\": ", line_end) ||
        !ParseJsonString(json, &cursor, &surface_hex) ||
        !ParseHex(surface_hex, &param.surface_hash)) {
      return false;
    }
    out->params.emplace(std::move(name), param);
    pos = line_end;
  }
  return !out->params.empty();
}

std::vector<std::string> StaticPriorDiff::ImpactedParams() const {
  std::vector<std::string> all;
  all.insert(all.end(), added.begin(), added.end());
  all.insert(all.end(), removed.begin(), removed.end());
  all.insert(all.end(), retainted.begin(), retainted.end());
  all.insert(all.end(), read_surface_changed.begin(),
             read_surface_changed.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

StaticPriorDiff DiffAgainstSnapshot(const PriorSnapshot& old_snapshot,
                                    const StaticPriorReport& current) {
  StaticPriorDiff diff;
  for (const auto& [name, profile] : current.params) {
    auto it = old_snapshot.params.find(name);
    if (it == old_snapshot.params.end()) {
      diff.added.push_back(name);
      continue;
    }
    if (it->second.wire_tainted != profile.wire_tainted) {
      diff.retainted.push_back(name);
    }
    if (it->second.surface_hash != profile.surface_hash) {
      diff.read_surface_changed.push_back(name);
    }
  }
  for (const auto& [name, param] : old_snapshot.params) {
    if (current.params.find(name) == current.params.end()) {
      diff.removed.push_back(name);
    }
  }
  // current.params and old_snapshot.params are ordered maps, so every list
  // is already sorted; keep that an explicit invariant.
  std::sort(diff.added.begin(), diff.added.end());
  std::sort(diff.removed.begin(), diff.removed.end());
  std::sort(diff.retainted.begin(), diff.retainted.end());
  std::sort(diff.read_surface_changed.begin(),
            diff.read_surface_changed.end());
  return diff;
}

std::string DiffToJson(const StaticPriorDiff& diff) {
  std::ostringstream out;
  out << "{\n  \"added\": ";
  EmitStringArray(out, diff.added);
  out << ",\n  \"removed\": ";
  EmitStringArray(out, diff.removed);
  out << ",\n  \"retainted\": ";
  EmitStringArray(out, diff.retainted);
  out << ",\n  \"read_surface_changed\": ";
  EmitStringArray(out, diff.read_surface_changed);
  out << ",\n  \"impacted\": ";
  EmitStringArray(out, diff.ImpactedParams());
  out << "\n}\n";
  return out.str();
}

std::string DiffToText(const StaticPriorDiff& diff) {
  std::ostringstream out;
  if (diff.Empty()) {
    out << "zebralint diff: no static-prior changes\n";
    return out.str();
  }
  auto section = [&out](const char* title,
                        const std::vector<std::string>& items) {
    if (items.empty()) return;
    out << title << " (" << items.size() << ")\n";
    for (const std::string& param : items) {
      out << "  " << param << "\n";
    }
  };
  section("ADDED PARAMETERS", diff.added);
  section("REMOVED PARAMETERS", diff.removed);
  section("RE-TAINTED PARAMETERS (verdict flipped)", diff.retainted);
  section("READ-SURFACE-CHANGED PARAMETERS", diff.read_surface_changed);
  out << "impacted: " << diff.ImpactedParams().size() << " parameters\n";
  return out.str();
}

bool DiffAgainstFile(const std::string& path, const StaticPriorReport& current,
                     StaticPriorDiff* out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  PriorSnapshot snapshot;
  if (!ParsePriorJson(buf.str(), &snapshot)) {
    if (error != nullptr) *error = "cannot parse prior report " + path;
    return false;
  }
  *out = DiffAgainstSnapshot(snapshot, current);
  return true;
}

bool LoadImpactedParams(const std::string& path,
                        std::vector<std::string>* params, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  const std::string kField = "\"impacted\": ";
  size_t pos = text.find(kField);
  if (pos == std::string::npos) {
    if (error != nullptr) *error = "no \"impacted\" list in " + path;
    return false;
  }
  pos += kField.size();
  if (!ParseStringArray(text, &pos, params)) {
    if (error != nullptr) *error = "malformed \"impacted\" list in " + path;
    return false;
  }
  return true;
}

}  // namespace analysis
}  // namespace zebra
