#include "src/analysis/summary_cache.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/strings.h"

namespace zebra {
namespace analysis {

namespace {

// Field escaping for the line-oriented format: records are space-separated,
// so spaces, percent signs, newlines, and the \x1f key separator are
// percent-encoded. The empty string encodes as "%0" so a blank field still
// occupies one token.
std::string Esc(const std::string& s) {
  if (s.empty()) return "%0";
  std::string out;
  out.reserve(s.size());
  char buf[4];
  for (unsigned char c : s) {
    if (c == '%' || c == ' ' || c == '\n' || c == '\r' || c == '\t' ||
        c == 0x1f) {
      std::snprintf(buf, sizeof(buf), "%%%02X", c);
      out += buf;
    } else {
      out.push_back(static_cast<char>(c));
    }
  }
  return out;
}

bool HexVal(char c, int* v) {
  if (c >= '0' && c <= '9') { *v = c - '0'; return true; }
  if (c >= 'A' && c <= 'F') { *v = c - 'A' + 10; return true; }
  if (c >= 'a' && c <= 'f') { *v = c - 'a' + 10; return true; }
  return false;
}

bool Unesc(const std::string& s, std::string* out) {
  if (s == "%0") {
    out->clear();
    return true;
  }
  out->clear();
  out->reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out->push_back(s[i]);
      continue;
    }
    int hi = 0, lo = 0;
    if (i + 2 >= s.size() || !HexVal(s[i + 1], &hi) || !HexVal(s[i + 2], &lo)) {
      return false;
    }
    out->push_back(static_cast<char>(hi * 16 + lo));
    i += 2;
  }
  return true;
}

constexpr const char* kMagic = "zebra-summary-cache-v1";

std::string HexU64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(v));
  return buf;
}

bool ParseHexU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (char c : s) {
    int d = 0;
    if (!HexVal(c, &d)) return false;
    v = (v << 4) | static_cast<uint64_t>(d);
  }
  *out = v;
  return true;
}

// Reads the next space-separated raw token from the stream.
bool NextTok(std::istringstream& in, std::string* out) {
  return static_cast<bool>(in >> *out);
}

bool NextStr(std::istringstream& in, std::string* out) {
  std::string raw;
  return NextTok(in, &raw) && Unesc(raw, out);
}

bool NextInt(std::istringstream& in, int* out) {
  return static_cast<bool>(in >> *out);
}

void WriteStmtFacts(std::ostringstream& out, const StmtFacts& st) {
  out << "G " << st.first_line << ' ' << (st.has_wire_primitive ? 1 : 0)
      << (st.has_protocol_throw ? 1 : 0) << (st.has_comparison ? 1 : 0)
      << (st.has_persistence ? 1 : 0) << (st.has_timer ? 1 : 0)
      << (st.first_protocol_is_timer ? 1 : 0) << ' '
      << static_cast<int>(st.protocol_callee_mask) << ' '
      << Esc(st.first_protocol_callee) << ' ' << Esc(st.assign_target);
  out << ' ' << st.direct_params.size();
  for (const std::string& p : st.direct_params) out << ' ' << Esc(p);
  out << ' ' << st.callees.size();
  for (const std::string& c : st.callees) out << ' ' << Esc(c);
  out << ' ' << st.cross_node_methods.size();
  for (const std::string& m : st.cross_node_methods) out << ' ' << Esc(m);
  out << ' ' << st.used_locals.size();
  for (const std::string& l : st.used_locals) out << ' ' << Esc(l);
  out << '\n';
}

bool ReadStmtFacts(std::istringstream& in, StmtFacts* st) {
  std::string flags;
  if (!NextInt(in, &st->first_line) || !NextTok(in, &flags) ||
      flags.size() != 6) {
    return false;
  }
  st->has_wire_primitive = flags[0] == '1';
  st->has_protocol_throw = flags[1] == '1';
  st->has_comparison = flags[2] == '1';
  st->has_persistence = flags[3] == '1';
  st->has_timer = flags[4] == '1';
  st->first_protocol_is_timer = flags[5] == '1';
  int mask = 0;
  if (!NextInt(in, &mask) || mask < 0 || mask > 255) return false;
  st->protocol_callee_mask = static_cast<SinkMask>(mask);
  if (!NextStr(in, &st->first_protocol_callee)) return false;
  if (!NextStr(in, &st->assign_target)) return false;
  int count = 0;
  std::string item;
  if (!NextInt(in, &count) || count < 0) return false;
  for (int i = 0; i < count; ++i) {
    if (!NextStr(in, &item)) return false;
    st->direct_params.push_back(item);
  }
  if (!NextInt(in, &count) || count < 0) return false;
  for (int i = 0; i < count; ++i) {
    if (!NextStr(in, &item)) return false;
    st->callees.push_back(item);
  }
  if (!NextInt(in, &count) || count < 0) return false;
  for (int i = 0; i < count; ++i) {
    if (!NextStr(in, &item)) return false;
    st->cross_node_methods.push_back(item);
  }
  if (!NextInt(in, &count) || count < 0) return false;
  for (int i = 0; i < count; ++i) {
    if (!NextStr(in, &item)) return false;
    st->used_locals.push_back(item);
  }
  return true;
}

}  // namespace

const SummaryCache::TuEntry* SummaryCache::Lookup(const std::string& path,
                                                  uint64_t content_hash) const {
  auto it = entries_.find(path);
  if (it == entries_.end() || it->second.content_hash != content_hash) {
    return nullptr;
  }
  return &it->second;
}

void SummaryCache::Put(const std::string& path, uint64_t content_hash,
                       const TuModel& model,
                       std::vector<std::vector<StmtFacts>> fn_facts) {
  TuEntry& entry = entries_[path];
  entry.content_hash = content_hash;
  entry.model = std::make_shared<TuModel>(model);
  entry.fn_facts = std::move(fn_facts);
  // Strip what the cache must never serve: token streams and statement
  // ranges. Resolved param names stay — resolution depends only on the
  // merged tables, and entries are served only under the exact table hash
  // they were stored with, so the stored resolution is always current.
  for (FunctionModel& fn : entry.model->functions) {
    fn.tokens.clear();
    fn.statements.clear();
  }
}

bool SummaryCache::SaveToFile(const std::string& path) const {
  std::ostringstream body;
  body << kMagic << '\n';
  body << "H " << HexU64(table_hash_) << '\n';
  for (const auto& [tu_path, entry] : entries_) {
    const TuModel& model = *entry.model;
    body << "U " << Esc(tu_path) << ' ' << HexU64(entry.content_hash) << ' '
         << model.unresolved_reads << '\n';
    for (const auto& [name, value] : model.param_constants) {
      body << "P " << Esc(name) << ' ' << Esc(value) << '\n';
    }
    for (const std::string& cls : model.node_classes) {
      body << "N " << Esc(cls) << '\n';
    }
    for (const auto& [name, type] : model.var_types) {
      body << "V " << Esc(name) << ' ' << Esc(type) << '\n';
    }
    for (const auto& [name, type] : model.fn_return_types) {
      body << "R " << Esc(name) << ' ' << Esc(type) << '\n';
    }
    for (const std::string& cls : model.classes_with_scope_member) {
      body << "S " << Esc(cls) << '\n';
    }
    for (const LintMarker& marker : model.markers) {
      body << "M " << marker.line << ' ' << Esc(marker.tag) << ' '
           << Esc(marker.argument) << '\n';
    }
    for (size_t f = 0; f < model.functions.size(); ++f) {
      const FunctionModel& fn = model.functions[f];
      body << "F " << Esc(fn.cls) << ' ' << Esc(fn.name) << ' '
           << Esc(fn.qualified) << ' ' << Esc(fn.return_type) << ' '
           << (fn.is_constructor ? 1 : 0) << (fn.has_init_bracket ? 1 : 0)
           << (fn.uses_ref_to_clone ? 1 : 0) << (fn.name_is_protocol ? 1 : 0)
           << ' ' << Esc(fn.file) << ' '
           << fn.line << '\n';
      for (const ReadSite& site : fn.read_sites) {
        body << "D " << Esc(site.arg_token) << ' '
             << (site.arg_is_literal ? 1 : 0) << ' ' << Esc(site.accessor)
             << ' ' << Esc(site.method) << ' ' << Esc(site.file) << ' '
             << site.line << ' ' << Esc(site.function) << ' '
             << Esc(site.enclosing_class) << ' ' << Esc(site.param) << '\n';
      }
      for (const std::string& callee : fn.callees) {
        body << "E " << Esc(callee) << '\n';
      }
      if (f < entry.fn_facts.size()) {
        for (const StmtFacts& st : entry.fn_facts[f]) {
          WriteStmtFacts(body, st);
        }
      }
    }
  }

  // Whole-file checksum, folded line by line like RunCache v2.
  std::istringstream lines(body.str());
  uint64_t digest = kFnv64Seed;
  std::string line;
  while (std::getline(lines, line)) {
    digest = HashFnv64(line, digest);
  }

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << body.str() << "C " << HexU64(digest) << '\n';
  out.flush();
  return static_cast<bool>(out);
}

bool SummaryCache::LoadFromFile(const std::string& path) {
  entries_.clear();
  table_hash_ = 0;

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    // Missing file is the normal cold-start case, not corruption.
    return false;
  }

  auto reject = [this](const char* why) {
    std::fprintf(stderr, "zebralint: summary cache rejected (%s)\n", why);
    entries_.clear();
    table_hash_ = 0;
    ++stats_.load_failures;
    return false;
  };

  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    lines.push_back(line);
  }
  if (lines.empty() || lines.front() != kMagic) return reject("bad magic");
  if (lines.size() < 2 || lines.back().rfind("C ", 0) != 0) {
    return reject("missing checksum");
  }
  uint64_t stored = 0;
  if (!ParseHexU64(lines.back().substr(2), &stored)) {
    return reject("malformed checksum");
  }
  uint64_t digest = kFnv64Seed;
  for (size_t i = 0; i + 1 < lines.size(); ++i) {
    digest = HashFnv64(lines[i], digest);
  }
  if (digest != stored) return reject("checksum mismatch");

  TuEntry* tu = nullptr;
  std::string tu_path;
  FunctionModel* fn = nullptr;
  for (size_t i = 1; i + 1 < lines.size(); ++i) {
    std::istringstream rec(lines[i]);
    std::string tag;
    if (!NextTok(rec, &tag)) return reject("empty record");
    if (tag == "H") {
      std::string hex;
      if (!NextTok(rec, &hex) || !ParseHexU64(hex, &table_hash_)) {
        return reject("bad table hash");
      }
      continue;
    }
    if (tag == "U") {
      std::string hex;
      TuEntry entry;
      entry.model = std::make_shared<TuModel>();
      if (!NextStr(rec, &tu_path) || !NextTok(rec, &hex) ||
          !ParseHexU64(hex, &entry.content_hash) ||
          !NextInt(rec, &entry.model->unresolved_reads)) {
        return reject("bad TU record");
      }
      entry.model->file = tu_path;
      tu = &entries_[tu_path];
      *tu = std::move(entry);
      fn = nullptr;
      continue;
    }
    if (tu == nullptr) return reject("record before TU");
    TuModel& model = *tu->model;
    if (tag == "P") {
      std::string name, value;
      if (!NextStr(rec, &name) || !NextStr(rec, &value)) {
        return reject("bad constant");
      }
      model.param_constants[name] = value;
    } else if (tag == "N") {
      std::string cls;
      if (!NextStr(rec, &cls)) return reject("bad node class");
      model.node_classes.insert(cls);
    } else if (tag == "V") {
      std::string name, type;
      if (!NextStr(rec, &name) || !NextStr(rec, &type)) {
        return reject("bad var type");
      }
      model.var_types[name] = type;
    } else if (tag == "R") {
      std::string name, type;
      if (!NextStr(rec, &name) || !NextStr(rec, &type)) {
        return reject("bad return type");
      }
      model.fn_return_types[name] = type;
    } else if (tag == "S") {
      std::string cls;
      if (!NextStr(rec, &cls)) return reject("bad scope member");
      model.classes_with_scope_member.insert(cls);
    } else if (tag == "M") {
      LintMarker marker;
      if (!NextInt(rec, &marker.line) || !NextStr(rec, &marker.tag) ||
          !NextStr(rec, &marker.argument)) {
        return reject("bad marker");
      }
      model.markers.push_back(std::move(marker));
    } else if (tag == "F") {
      FunctionModel next;
      std::string flags;
      if (!NextStr(rec, &next.cls) || !NextStr(rec, &next.name) ||
          !NextStr(rec, &next.qualified) || !NextStr(rec, &next.return_type) ||
          !NextTok(rec, &flags) || flags.size() != 4 ||
          !NextStr(rec, &next.file) || !NextInt(rec, &next.line)) {
        return reject("bad function");
      }
      next.is_constructor = flags[0] == '1';
      next.has_init_bracket = flags[1] == '1';
      next.uses_ref_to_clone = flags[2] == '1';
      next.name_is_protocol = flags[3] == '1';
      model.functions.push_back(std::move(next));
      tu->fn_facts.emplace_back();
      fn = &model.functions.back();
    } else if (tag == "D") {
      if (fn == nullptr) return reject("read site before function");
      ReadSite site;
      int literal = 0;
      if (!NextStr(rec, &site.arg_token) || !NextInt(rec, &literal) ||
          !NextStr(rec, &site.accessor) || !NextStr(rec, &site.method) ||
          !NextStr(rec, &site.file) || !NextInt(rec, &site.line) ||
          !NextStr(rec, &site.function) ||
          !NextStr(rec, &site.enclosing_class) ||
          !NextStr(rec, &site.param)) {
        return reject("bad read site");
      }
      site.arg_is_literal = literal != 0;
      fn->read_sites.push_back(std::move(site));
    } else if (tag == "E") {
      if (fn == nullptr) return reject("callee before function");
      std::string callee;
      if (!NextStr(rec, &callee)) return reject("bad callee");
      fn->callees.push_back(callee);
    } else if (tag == "G") {
      if (fn == nullptr || tu->fn_facts.empty()) {
        return reject("facts before function");
      }
      StmtFacts st;
      if (!ReadStmtFacts(rec, &st)) return reject("bad statement facts");
      tu->fn_facts.back().push_back(std::move(st));
    } else {
      return reject("unknown record");
    }
  }
  return true;
}

}  // namespace analysis
}  // namespace zebra
