// The taint pass is now a thin view over the config-flow graph (see
// flow_graph.h): BuildFlowGraph computes the R1a–R1e / R2 / R3 verdicts
// documented in taint_pass.h — plus sink typing and coupling, which this
// report shape predates and does not carry.

#include "src/analysis/taint_pass.h"

#include "src/analysis/flow_graph.h"

namespace zebra {
namespace analysis {

TaintReport RunTaintPass(const ProgramModel& program) {
  ProgramFacts facts = BuildProgramFacts(program);
  FlowGraph graph = BuildFlowGraph(facts);

  TaintReport report;
  report.protocol_surfaces = graph.protocol_surfaces;
  for (const auto& [param, flow] : graph.params) {
    TaintVerdict& verdict = report.params[param];
    verdict.wire_tainted = flow.wire_tainted;
    verdict.reasons = flow.reasons;
  }
  return report;
}

}  // namespace analysis
}  // namespace zebra
