#include "src/analysis/taint_pass.h"

#include <algorithm>
#include <cctype>

namespace zebra {
namespace analysis {

namespace {

const char* const kWirePrimitives[] = {
    "EncodeFrame",     "DecodeFrame",      "EncryptPayload",
    "DecryptPayload",  "CompressPayload",  "DecompressPayload",
    "ComputeChecksum", "WireToken",        "RequireMatchingTokens",
    "SimulatePacedWait", "RpcGate",        "RpcLongOperation",
};

const char* const kProtocolErrors[] = {
    "RpcError",      "HandshakeError", "TimeoutError",
    "DecodeError",   "ChecksumError",  "LimitError",
};

// Lower-case substrings that mark a function name as protocol-flavored.
const char* const kProtocolNamePatterns[] = {
    "heartbeat", "handshake", "liveness", "stale", "token",
};

bool IsWirePrimitive(const std::string& name) {
  for (const char* p : kWirePrimitives) {
    if (name == p) return true;
  }
  return false;
}

bool IsProtocolError(const std::string& name) {
  for (const char* p : kProtocolErrors) {
    if (name == p) return true;
  }
  return false;
}

std::string Lower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool MatchesProtocolName(const std::string& name) {
  std::string low = Lower(name);
  for (const char* p : kProtocolNamePatterns) {
    if (low.find(p) != std::string::npos) return true;
  }
  return false;
}

std::string Loc(const FunctionModel& fn, int line) {
  return fn.file + ":" + std::to_string(line);
}

// Per-statement facts, recomputed from the retained token range.
struct StmtFacts {
  std::set<std::string> direct_params;  // params read in this statement
  int first_line = 0;
  std::set<std::string> callees;
  std::vector<std::string> cross_node_methods;  // methods called on node objs
  bool has_wire_primitive = false;
  bool has_protocol_throw = false;
  std::string assign_target;             // lhs of the first top-level '='
  std::set<std::string> idents;          // every identifier used
};

bool IsGetMethod(const std::string& s) {
  return s == "Get" || s == "GetBool" || s == "GetInt" || s == "GetDouble";
}

// Config accessor names must never resolve through the bare-name function
// index: `conf().GetInt(...)` would otherwise alias KvStore::Get and friends.
bool ResolvableCallee(const std::string& s) { return !IsGetMethod(s); }

StmtFacts AnalyzeStatement(const ProgramModel& program,
                           const FunctionModel& fn, size_t begin, size_t end) {
  StmtFacts facts;
  const auto& toks = fn.tokens;
  bool saw_throw = false;
  int depth = 0;
  for (size_t k = begin; k < end && k < toks.size(); ++k) {
    const Token& tk = toks[k];
    if (facts.first_line == 0 && tk.line > 0) facts.first_line = tk.line;

    if (tk.kind == TokenKind::kPunct) {
      if (tk.Is("(") || tk.Is("[")) ++depth;
      if (tk.Is(")") || tk.Is("]")) --depth;
      // First top-level assignment: the token to the left is the target.
      if (tk.Is("=") && depth == 0 && facts.assign_target.empty() &&
          k > begin && toks[k - 1].IsIdent()) {
        facts.assign_target = toks[k - 1].text;
      }
      continue;
    }
    if (!tk.IsIdent()) continue;
    facts.idents.insert(tk.text);

    if (tk.Is("throw")) saw_throw = true;
    if (saw_throw && IsProtocolError(tk.text)) facts.has_protocol_throw = true;

    bool is_call = k + 1 < toks.size() && toks[k + 1].Is("(");
    if (!is_call) continue;

    if (IsWirePrimitive(tk.text)) facts.has_wire_primitive = true;
    facts.callees.insert(tk.text);

    // Member-init-list shape `member_(expr)` at depth 0 acts as an
    // assignment into `member_`.
    if (depth == 0 && facts.assign_target.empty() && k == begin &&
        (k + 1 >= toks.size() || !toks[k].Is("if"))) {
      // Only treat it as init-list assignment when the statement IS the
      // call (ctor init entries); ordinary calls are still recorded above.
      if (!fn.statements.empty() && tk.text.back() == '_') {
        facts.assign_target = tk.text;
      }
    }

    // Read site: [.|->] Get*( ARG ...
    if (IsGetMethod(tk.text) && k > begin &&
        (toks[k - 1].Is(".") || toks[k - 1].Is("->")) &&
        k + 2 < toks.size()) {
      const Token& arg = toks[k + 2];
      if (arg.kind == TokenKind::kString) {
        facts.direct_params.insert(arg.text);
      } else if (arg.IsIdent()) {
        auto it = program.param_constants.find(arg.text);
        if (it != program.param_constants.end()) {
          facts.direct_params.insert(it->second);
        }
      }
    }

    // Cross-node call: receiver typed as a node class (or a chained call
    // returning one). `this->Foo()` is node-local by construction.
    if (k > begin && (toks[k - 1].Is("->") || toks[k - 1].Is("."))) {
      std::string receiver_type;
      if (k >= 2) {
        const Token& recv = toks[k - 2];
        if (recv.IsIdent() && !recv.Is("this")) {
          auto it = program.var_types.find(recv.text);
          if (it != program.var_types.end()) receiver_type = it->second;
        } else if (recv.Is(")")) {
          // Chained: CALLEE(...)->Method(). Walk back to the matching '('.
          int d = 0;
          for (size_t q = k - 2;; --q) {
            if (toks[q].Is(")")) ++d;
            if (toks[q].Is("(") && --d == 0) {
              if (q > 0 && toks[q - 1].IsIdent()) {
                auto it = program.fn_return_types.find(toks[q - 1].text);
                if (it != program.fn_return_types.end()) {
                  receiver_type = it->second;
                }
              }
              break;
            }
            if (q == 0) break;
          }
        }
      }
      if (!receiver_type.empty() && program.node_classes.count(receiver_type)) {
        facts.cross_node_methods.push_back(tk.text);
      }
    }
  }
  return facts;
}

// Index of defined functions by bare and qualified name.
struct FunctionIndex {
  std::map<std::string, std::vector<const FunctionModel*>> by_name;

  explicit FunctionIndex(const ProgramModel& program) {
    for (const TuModel& tu : program.tus) {
      for (const FunctionModel& fn : tu.functions) {
        by_name[fn.name].push_back(&fn);
        by_name[fn.qualified].push_back(&fn);
      }
    }
  }

  const std::vector<const FunctionModel*>* Lookup(
      const std::string& name) const {
    auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : &it->second;
  }
};

}  // namespace

TaintReport RunTaintPass(const ProgramModel& program) {
  TaintReport report;
  FunctionIndex index(program);

  // Seed a verdict for every resolved read site so node-local parameters
  // appear in the report with an empty reason list.
  for (const ReadSite* site : program.AllReadSites()) {
    report.params[site->param];
  }

  // Precompute statement facts once per function.
  std::map<const FunctionModel*, std::vector<StmtFacts>> facts_by_fn;
  for (const TuModel& tu : program.tus) {
    for (const FunctionModel& fn : tu.functions) {
      auto& list = facts_by_fn[&fn];
      list.reserve(fn.statements.size());
      for (const auto& [b, e] : fn.statements) {
        list.push_back(AnalyzeStatement(program, fn, b, e));
      }
    }
  }

  // Program-wide sets: methods observed being called on node-class objects,
  // and direct reads per function.
  std::set<std::string> cross_node_called;
  std::map<const FunctionModel*, std::set<std::string>> direct_reads;
  for (const auto& [fn, stmts] : facts_by_fn) {
    for (const StmtFacts& facts : stmts) {
      for (const std::string& method : facts.cross_node_methods) {
        cross_node_called.insert(method);
      }
    }
    std::set<std::string> reads;
    for (const ReadSite& site : fn->read_sites) {
      if (!site.param.empty()) reads.insert(site.param);
    }
    direct_reads[fn] = std::move(reads);
  }

  // Function sink summaries (fixpoint): does the body reach a wire sink?
  std::map<const FunctionModel*, bool> reaches_sink;
  for (const auto& [fn, stmts] : facts_by_fn) {
    bool sink = false;
    for (const StmtFacts& facts : stmts) {
      if (facts.has_wire_primitive || facts.has_protocol_throw ||
          !facts.cross_node_methods.empty()) {
        sink = true;
        break;
      }
      for (const std::string& callee : facts.callees) {
        if (MatchesProtocolName(callee)) {
          sink = true;
          break;
        }
      }
      if (sink) break;
    }
    reaches_sink[fn] = sink;
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (const auto& [fn, stmts] : facts_by_fn) {
      if (reaches_sink[fn]) continue;
      for (const std::string& callee : fn->callees) {
        if (!ResolvableCallee(callee)) continue;
        const auto* defs = index.Lookup(callee);
        if (!defs) continue;
        for (const FunctionModel* def : *defs) {
          if (reaches_sink[def]) {
            reaches_sink[fn] = true;
            changed = true;
            break;
          }
        }
        if (reaches_sink[fn]) break;
      }
    }
  }

  // Protocol surfaces: node-class methods called cross-node, name-pattern
  // functions, plus everything they transitively invoke (within the corpus).
  std::set<const FunctionModel*> surfaces;
  for (const auto& [fn, stmts] : facts_by_fn) {
    bool is_surface = false;
    if (!fn->cls.empty() && program.node_classes.count(fn->cls) &&
        !fn->is_constructor && cross_node_called.count(fn->name)) {
      is_surface = true;
    }
    if (MatchesProtocolName(fn->name)) is_surface = true;
    if (is_surface) surfaces.insert(fn);
  }
  for (bool changed = true; changed;) {
    changed = false;
    std::vector<const FunctionModel*> frontier(surfaces.begin(),
                                               surfaces.end());
    for (const FunctionModel* fn : frontier) {
      for (const std::string& callee : fn->callees) {
        if (!ResolvableCallee(callee)) continue;
        const auto* defs = index.Lookup(callee);
        if (!defs) continue;
        for (const FunctionModel* def : *defs) {
          if (def->is_constructor) continue;
          if (surfaces.insert(def).second) changed = true;
        }
      }
    }
  }
  for (const FunctionModel* fn : surfaces) {
    report.protocol_surfaces.insert(fn->qualified);
  }

  auto taint = [&](const std::string& param, std::string reason) {
    auto it = report.params.find(param);
    if (it == report.params.end()) return;
    it->second.wire_tainted = true;
    if (it->second.reasons.size() < 8) {
      it->second.reasons.push_back(std::move(reason));
    }
  };

  // R2: every read inside a protocol surface is wire-tainted.
  for (const FunctionModel* fn : surfaces) {
    for (const std::string& param : direct_reads[fn]) {
      taint(param, "R2 read inside protocol surface " + fn->qualified + " (" +
                       Loc(*fn, fn->line) + ")");
    }
  }

  // R1 + R3: statement-level co-occurrence with local-taint propagation.
  for (const auto& [fn, stmts] : facts_by_fn) {
    std::map<std::string, std::set<std::string>> local_taint;
    for (const StmtFacts& facts : stmts) {
      // Statement parameter set: direct reads, tainted locals used, and the
      // direct reads of locally defined callees (R3's generalization — the
      // DfsDataWireConfig helper pattern).
      std::set<std::string> stmt_params = facts.direct_params;
      std::map<std::string, std::string> origin;  // param -> short origin
      for (const std::string& p : facts.direct_params) origin[p] = "read here";
      for (const std::string& ident : facts.idents) {
        auto it = local_taint.find(ident);
        if (it == local_taint.end()) continue;
        for (const std::string& p : it->second) {
          stmt_params.insert(p);
          origin.emplace(p, "via local `" + ident + "`");
        }
      }
      for (const std::string& callee : facts.callees) {
        if (!ResolvableCallee(callee)) continue;
        const auto* defs = index.Lookup(callee);
        if (!defs) continue;
        for (const FunctionModel* def : *defs) {
          for (const std::string& p : direct_reads[def]) {
            stmt_params.insert(p);
            origin.emplace(p, "via helper " + def->qualified + " (R3)");
          }
        }
      }

      // Sink classification for this statement.
      std::string sink;
      if (facts.has_wire_primitive) {
        sink = "R1a wire primitive";
      } else if (!facts.cross_node_methods.empty()) {
        sink = "R1b cross-node call " + facts.cross_node_methods.front();
      } else if (facts.has_protocol_throw) {
        sink = "R1e protocol error throw";
      } else {
        for (const std::string& callee : facts.callees) {
          if (!ResolvableCallee(callee)) continue;
          const auto* defs = index.Lookup(callee);
          if (defs) {
            for (const FunctionModel* def : *defs) {
              if (reaches_sink[def]) {
                sink = "R1c sink-reaching callee " + callee;
                break;
              }
            }
          }
          if (!sink.empty()) break;
          if (MatchesProtocolName(callee)) {
            sink = "R1d protocol-named callee " + callee;
            break;
          }
        }
      }

      if (!sink.empty()) {
        for (const std::string& p : stmt_params) {
          taint(p, sink + ", " + origin[p] + " in " + fn->qualified + " (" +
                       fn->file + ":" + std::to_string(facts.first_line) +
                       ")");
        }
      }

      // Propagate into the assignment target (or init-list member).
      if (!facts.assign_target.empty() && !stmt_params.empty()) {
        auto& slot = local_taint[facts.assign_target];
        slot.insert(stmt_params.begin(), stmt_params.end());
      }
    }
  }

  return report;
}

}  // namespace analysis
}  // namespace zebra
