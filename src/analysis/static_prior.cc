#include "src/analysis/static_prior.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace zebra {
namespace analysis {

namespace {

namespace fs = std::filesystem;

// App attribution from a path: the component after "apps/", else "conf" for
// the configuration library, else the first path component.
std::string AppOfPath(const std::string& path) {
  size_t pos = path.find("apps/");
  if (pos != std::string::npos) {
    size_t start = pos + 5;
    size_t end = path.find('/', start);
    if (end != std::string::npos) return path.substr(start, end - start);
  }
  if (path.find("/conf/") != std::string::npos ||
      path.rfind("conf/", 0) == 0) {
    return "conf";
  }
  return "other";
}

void JsonEscape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

}  // namespace

const ParamProfile* StaticPriorReport::Find(const std::string& param) const {
  auto it = params.find(param);
  return it == params.end() ? nullptr : &it->second;
}

bool StaticPriorReport::IsWireTainted(const std::string& param) const {
  const ParamProfile* profile = Find(param);
  return profile != nullptr && profile->wire_tainted;
}

bool StaticPriorReport::IsNeverRead(const std::string& param) const {
  const ParamProfile* profile = Find(param);
  return profile != nullptr && profile->in_schema &&
         profile->read_sites.empty();
}

double StaticPriorReport::PriorityOf(const std::string& param) const {
  const ParamProfile* profile = Find(param);
  return profile == nullptr ? kPriorityLocal : profile->priority;
}

std::vector<std::string> StaticPriorReport::WireTaintedParams() const {
  std::vector<std::string> out;
  for (const auto& [name, profile] : params) {
    if (profile.wire_tainted) out.push_back(name);
  }
  return out;
}

void StaticAnalyzer::AddSource(const std::string& path,
                               std::string_view content) {
  sources_.emplace_back(path, std::string(content));
}

int StaticAnalyzer::AddTree(const std::string& root) {
  int added = 0;
  for (const char* subdir : {"src/apps", "src/conf"}) {
    fs::path dir = fs::path(root) / subdir;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    std::vector<fs::path> files;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) continue;
      std::ostringstream buf;
      buf << in.rdbuf();
      // Store paths relative to the root so reports are tree-relative.
      std::string rel = fs::relative(file, root, ec).string();
      if (ec || rel.empty()) rel = file.string();
      AddSource(rel, buf.str());
      ++added;
    }
  }
  return added;
}

StaticPriorReport StaticAnalyzer::Analyze(const ConfSchema* schema) const {
  ProgramModel program;
  for (const auto& [path, content] : sources_) {
    program.Merge(ExtractTu(path, content));
  }
  // Classes declared externally initialized behave as node classes for the
  // taint pass (their methods are genuine cross-node surfaces) even though
  // they lack the in-constructor bracket that normally reveals them.
  std::set<std::string> external_init = program.ExternallyInitializedClasses();
  program.node_classes.insert(external_init.begin(), external_init.end());
  program.Resolve();

  TaintReport taint = RunTaintPass(program);

  StaticPriorReport report;
  report.files_scanned = static_cast<int>(sources_.size());
  report.unresolved_reads = program.unresolved_reads;
  report.protocol_surfaces = taint.protocol_surfaces;

  // Read-site inventory.
  for (const ReadSite* site : program.AllReadSites()) {
    ParamProfile& profile = report.params[site->param];
    profile.param = site->param;
    profile.read_sites.push_back(
        {site->file, site->line, site->function, site->enclosing_class});
    ++report.read_sites_per_app[AppOfPath(site->file)];
  }

  // Taint verdicts.
  for (const auto& [param, verdict] : taint.params) {
    ParamProfile& profile = report.params[param];
    profile.param = param;
    profile.wire_tainted = verdict.wire_tainted;
    profile.taint_reasons = verdict.reasons;
  }

  // Schema cross-checks.
  if (schema != nullptr) {
    for (const ParamSpec& spec : schema->params()) {
      ParamProfile& profile = report.params[spec.name];
      profile.param = spec.name;
      profile.in_schema = true;
      if (profile.read_sites.empty()) {
        report.never_read.push_back(spec.name);
      }
    }
    for (auto& [param, profile] : report.params) {
      if (!profile.in_schema && !profile.read_sites.empty()) {
        const SiteRef& site = profile.read_sites.front();
        report.errors.push_back(
            {DriftKind::kReadNotInSchema, param,
             "parameter `" + param + "` is read at " + site.file + ":" +
                 std::to_string(site.line) + " (" + site.function +
                 ") but is not registered in ConfSchema",
             site.file, site.line});
      }
    }
  }

  // Annotation drift: a constructor that reads configuration (or clones a
  // node ref) without any init bracket — no NodeInitScope/init_scope_/
  // ZC_ANNOTATION_SITE in the body, no NodeInitScope member in the class,
  // and no `zebralint(external-init)` suppression.
  for (const TuModel& tu : program.tus) {
    for (const FunctionModel& fn : tu.functions) {
      if (!fn.is_constructor) continue;
      bool reads_config = false;
      for (const ReadSite& site : fn.read_sites) {
        if (!site.param.empty()) reads_config = true;
      }
      if (!reads_config && !fn.uses_ref_to_clone) continue;
      if (fn.has_init_bracket) continue;
      if (program.classes_with_scope_member.count(fn.cls)) continue;
      if (external_init.count(fn.cls)) continue;
      report.errors.push_back(
          {DriftKind::kAnnotationDrift, fn.qualified,
           "constructor " + fn.qualified + " reads configuration at " +
               fn.file + ":" + std::to_string(fn.line) +
               " without a ZC_ANNOTATION_SITE / NodeInitScope bracket "
               "(annotation drift; suppress with `zebralint(external-init): " +
               fn.cls + " <why>` if node init happens elsewhere)",
           fn.file, fn.line});
    }
  }

  // Priorities.
  for (auto& [param, profile] : report.params) {
    if (profile.in_schema && profile.read_sites.empty()) {
      profile.priority = kPriorityNeverRead;
    } else if (profile.wire_tainted) {
      profile.priority = kPriorityWire;
    } else {
      profile.priority = kPriorityLocal;
    }
  }

  std::sort(report.never_read.begin(), report.never_read.end());
  return report;
}

std::string ReportToJson(const StaticPriorReport& report) {
  std::ostringstream out;
  out << "{\n  \"files_scanned\": " << report.files_scanned
      << ",\n  \"unresolved_reads\": " << report.unresolved_reads
      << ",\n  \"read_sites_per_app\": {";
  bool first = true;
  for (const auto& [app, count] : report.read_sites_per_app) {
    if (!first) out << ", ";
    first = false;
    JsonEscape(out, app);
    out << ": " << count;
  }
  out << "},\n  \"params\": [\n";
  first = true;
  for (const auto& [name, profile] : report.params) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"name\": ";
    JsonEscape(out, name);
    out << ", \"in_schema\": " << (profile.in_schema ? "true" : "false")
        << ", \"read_sites\": " << profile.read_sites.size()
        << ", \"wire_tainted\": " << (profile.wire_tainted ? "true" : "false")
        << ", \"priority\": " << profile.priority << ", \"sites\": [";
    for (size_t i = 0; i < profile.read_sites.size(); ++i) {
      if (i > 0) out << ", ";
      const SiteRef& site = profile.read_sites[i];
      JsonEscape(out, site.file + ":" + std::to_string(site.line));
    }
    out << "], \"reasons\": [";
    for (size_t i = 0; i < profile.taint_reasons.size(); ++i) {
      if (i > 0) out << ", ";
      JsonEscape(out, profile.taint_reasons[i]);
    }
    out << "]}";
  }
  out << "\n  ],\n  \"never_read\": [";
  for (size_t i = 0; i < report.never_read.size(); ++i) {
    if (i > 0) out << ", ";
    JsonEscape(out, report.never_read[i]);
  }
  out << "],\n  \"errors\": [\n";
  for (size_t i = 0; i < report.errors.size(); ++i) {
    if (i > 0) out << ",\n";
    const DriftFinding& finding = report.errors[i];
    out << "    {\"kind\": ";
    JsonEscape(out, finding.kind == DriftKind::kReadNotInSchema
                        ? "read-not-in-schema"
                        : "annotation-drift");
    out << ", \"subject\": ";
    JsonEscape(out, finding.subject);
    out << ", \"message\": ";
    JsonEscape(out, finding.message);
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::string ReportToText(const StaticPriorReport& report) {
  std::ostringstream out;
  out << "zebralint: scanned " << report.files_scanned << " files, "
      << report.params.size() << " parameters profiled\n";
  out << "read sites per app:\n";
  for (const auto& [app, count] : report.read_sites_per_app) {
    out << "  " << app << ": " << count << "\n";
  }
  int wire = 0, local = 0;
  for (const auto& [name, profile] : report.params) {
    if (profile.read_sites.empty()) continue;
    (profile.wire_tainted ? wire : local)++;
  }
  out << "wire-tainted: " << wire << "  node-local: " << local
      << "  never-read (prune set): " << report.never_read.size()
      << "  unresolved reads: " << report.unresolved_reads << "\n";
  out << "\nWIRE-TAINTED PARAMETERS\n";
  for (const auto& [name, profile] : report.params) {
    if (!profile.wire_tainted) continue;
    out << "  " << name << "  (" << profile.read_sites.size()
        << " read sites)\n";
    for (const std::string& reason : profile.taint_reasons) {
      out << "      - " << reason << "\n";
    }
  }
  out << "\nNODE-LOCAL PARAMETERS\n";
  for (const auto& [name, profile] : report.params) {
    if (profile.wire_tainted || profile.read_sites.empty()) continue;
    out << "  " << name << "  (" << profile.read_sites.size()
        << " read sites)\n";
  }
  if (!report.never_read.empty()) {
    out << "\nNEVER-READ SCHEMA PARAMETERS (statically pruned)\n";
    for (const std::string& name : report.never_read) {
      out << "  " << name << "\n";
    }
  }
  if (!report.errors.empty()) {
    out << "\nERRORS\n";
    for (const DriftFinding& finding : report.errors) {
      out << "  " << finding.message << "\n";
    }
  }
  return out.str();
}

}  // namespace analysis
}  // namespace zebra
