#include "src/analysis/static_prior.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <tuple>

#include "src/common/strings.h"

namespace zebra {
namespace analysis {

namespace {

namespace fs = std::filesystem;

// App attribution from a path: the component after "apps/", else "conf" for
// the configuration library, else the first path component.
std::string AppOfPath(const std::string& path) {
  size_t pos = path.find("apps/");
  if (pos != std::string::npos) {
    size_t start = pos + 5;
    size_t end = path.find('/', start);
    if (end != std::string::npos) return path.substr(start, end - start);
  }
  if (path.find("/conf/") != std::string::npos ||
      path.rfind("conf/", 0) == 0) {
    return "conf";
  }
  return "other";
}

void JsonEscape(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out << ' ';
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

std::string HexU64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llx", static_cast<unsigned long long>(v));
  return buf;
}

}  // namespace

double SpectrumPriority(bool wire_tainted, SinkMask sink_mask) {
  if (!wire_tainted) {
    // Node-local band: persistence-fed parameters lead the locals — their
    // effects at least reach durable state — but never touch the wire band.
    return kPriorityLocal + ((sink_mask & kSinkPersistence) ? 0.05 : 0.0);
  }
  // Wire band: kPriorityWire floor plus per-sink-type bonuses. Timer and
  // deadline flows rank highest (ZebraConf's canonical het-unsafe shape is a
  // node timing out on a peer whose interval differs), then protocol errors
  // and guards (directly observable divergence), then generic wire traffic.
  double priority = kPriorityWire;
  if (sink_mask & kSinkTimerDeadline) priority += 0.4;
  if (sink_mask & kSinkProtocolError) priority += 0.2;
  if (sink_mask & kSinkGuard) priority += 0.15;
  if (sink_mask & kSinkCrossNode) priority += 0.1;
  if (sink_mask & kSinkWireEncode) priority += 0.05;
  return priority;  // bounded below kPriorityWireCeiling
}

const ParamProfile* StaticPriorReport::Find(const std::string& param) const {
  auto it = params.find(param);
  return it == params.end() ? nullptr : &it->second;
}

bool StaticPriorReport::IsWireTainted(const std::string& param) const {
  const ParamProfile* profile = Find(param);
  return profile != nullptr && profile->wire_tainted;
}

bool StaticPriorReport::IsNeverRead(const std::string& param) const {
  const ParamProfile* profile = Find(param);
  return profile != nullptr && profile->in_schema &&
         profile->read_sites.empty();
}

double StaticPriorReport::PriorityOf(const std::string& param) const {
  const ParamProfile* profile = Find(param);
  return profile == nullptr ? kPriorityLocal : profile->priority;
}

std::vector<std::string> StaticPriorReport::WireTaintedParams() const {
  std::vector<std::string> out;
  for (const auto& [name, profile] : params) {
    if (profile.wire_tainted) out.push_back(name);
  }
  return out;
}

std::vector<std::vector<std::string>> StaticPriorReport::CouplingSetsAmong(
    const std::set<std::string>& restrict_to) const {
  std::vector<std::vector<std::string>> out;
  std::set<std::vector<std::string>> seen;
  for (const auto& members : coupling_sets) {
    std::vector<std::string> present;
    for (const std::string& param : members) {
      if (restrict_to.count(param)) present.push_back(param);
    }
    if (present.size() < 2) continue;
    if (seen.insert(present).second) out.push_back(std::move(present));
  }
  return out;
}

StaticAnalyzer::StaticAnalyzer() = default;
StaticAnalyzer::~StaticAnalyzer() = default;

void StaticAnalyzer::AddSource(const std::string& path,
                               std::string_view content) {
  sources_.emplace_back(path, std::string(content));
}

int StaticAnalyzer::AddTree(const std::string& root) {
  int added = 0;
  for (const char* subdir : {"src/apps", "src/conf"}) {
    fs::path dir = fs::path(root) / subdir;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) continue;
    std::vector<fs::path> files;
    for (fs::recursive_directory_iterator it(dir, ec), end; it != end;
         it.increment(ec)) {
      if (ec) break;
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(it->path());
    }
    std::sort(files.begin(), files.end());
    for (const fs::path& file : files) {
      std::ifstream in(file, std::ios::binary);
      if (!in) continue;
      std::ostringstream buf;
      buf << in.rdbuf();
      // Store paths relative to the root so reports are tree-relative.
      std::string rel = fs::relative(file, root, ec).string();
      if (ec || rel.empty()) rel = file.string();
      AddSource(rel, buf.str());
      ++added;
    }
  }
  return added;
}

bool StaticAnalyzer::EnableSummaryCache(const std::string& path) {
  owned_cache_ = std::make_unique<SummaryCache>();
  cache_path_ = path;
  return owned_cache_->LoadFromFile(path);
}

void StaticAnalyzer::UseSummaryCache(SummaryCache* cache) {
  external_cache_ = cache;
}

StaticPriorReport StaticAnalyzer::Analyze(const ConfSchema* schema) const {
  SummaryCache* cache =
      external_cache_ != nullptr ? external_cache_ : owned_cache_.get();
  stats_ = AnalyzeStats{};
  stats_.tus_total = static_cast<int>(sources_.size());

  // Stage 1: per-TU models — borrowed from the summary cache when the
  // content hash matches, from a full lex + extract otherwise. Cached models
  // are shared, not copied: on a large tree, copying every unchanged TU back
  // into the program used to dominate incremental runs.
  ProgramModel program;
  std::vector<uint64_t> content_hashes(sources_.size(), 0);
  std::vector<const SummaryCache::TuEntry*> cache_hits(sources_.size(),
                                                       nullptr);
  for (size_t i = 0; i < sources_.size(); ++i) {
    const auto& [path, content] = sources_[i];
    content_hashes[i] = HashContent64(content);
    const SummaryCache::TuEntry* entry =
        cache != nullptr ? cache->Lookup(path, content_hashes[i]) : nullptr;
    if (entry != nullptr) {
      cache_hits[i] = entry;
      program.MergeShared(entry->model);
      ++stats_.tus_from_cache;
    } else {
      program.Merge(ExtractTu(path, content));
      ++stats_.tus_parsed;
    }
  }

  // The table-hash gate runs BEFORE Resolve: cached summaries (and the
  // resolved read sites stored inside them) are valid only under the table
  // hash they were computed with — a constant or type harvested from one
  // file changes what every other file's statements mean. Resolving first
  // could also write into a *shared* cached model under foreign tables. On
  // mismatch the cached models are unusable (they carry no tokens to
  // recompute from), so degrade to a full cold re-parse: slower, never
  // different. When the hash matches, Resolve is a no-op on cached TUs by
  // construction — identical tables yield the identical resolution already
  // stored — so sharing them stays safe.
  std::set<std::string> external_init = program.ExternallyInitializedClasses();
  for (const std::string& cls : external_init) {
    program.node_classes.InsertOwned(cls);
  }
  uint64_t table_hash = ProgramTableHash(program);
  if (cache != nullptr && stats_.tus_from_cache > 0 &&
      cache->table_hash() != table_hash) {
    stats_.table_hash_invalidated = true;
    stats_.tus_from_cache = 0;
    stats_.tus_parsed = static_cast<int>(sources_.size());
    program = ProgramModel();
    for (const auto& [path, content] : sources_) {
      program.Merge(ExtractTu(path, content));
    }
    external_init = program.ExternallyInitializedClasses();
    for (const std::string& cls : external_init) {
      program.node_classes.InsertOwned(cls);
    }
    table_hash = ProgramTableHash(program);
    std::fill(cache_hits.begin(), cache_hits.end(), nullptr);
  }
  program.Resolve();

  // Stage 2: statement facts, borrowed per TU from surviving cache hits.
  std::vector<const std::vector<std::vector<StmtFacts>>*> cached_tu_facts(
      program.tus.size(), nullptr);
  bool any_cached_facts = false;
  for (size_t i = 0; i < cache_hits.size() && i < cached_tu_facts.size();
       ++i) {
    if (cache_hits[i] != nullptr) {
      cached_tu_facts[i] = &cache_hits[i]->fn_facts;
      any_cached_facts = true;
    }
  }
  ProgramFacts facts = BuildProgramFacts(
      program, any_cached_facts ? &cached_tu_facts : nullptr,
      &stats_.facts_computed, &stats_.facts_from_cache, &table_hash);
  FlowGraph graph = BuildFlowGraph(facts);

  // Refresh the cache with the newly parsed TUs' summaries, then persist.
  // TUs served from the cache are already stored verbatim — re-Putting them
  // would only copy every model back in.
  if (cache != nullptr) {
    cache->set_table_hash(facts.table_hash);
    size_t cursor = 0;  // facts.functions is in (tu, fn) order
    for (size_t t = 0; t < program.tus.size(); ++t) {
      const TuModel& tu = *program.tus[t];
      if (cache_hits[t] != nullptr) {
        cursor += tu.functions.size();
        continue;
      }
      std::vector<std::vector<StmtFacts>> fn_facts;
      fn_facts.reserve(tu.functions.size());
      for (size_t f = 0; f < tu.functions.size(); ++f, ++cursor) {
        fn_facts.push_back(*facts.functions[cursor].stmts);
      }
      cache->Put(tu.file, content_hashes[t], tu, std::move(fn_facts));
    }
    if (!cache_path_.empty()) cache->SaveToFile(cache_path_);
    stats_.summary_load_failures = cache->stats().load_failures;
  }

  StaticPriorReport report;
  report.files_scanned = static_cast<int>(sources_.size());
  report.unresolved_reads = program.unresolved_reads;
  report.protocol_surfaces = graph.protocol_surfaces;
  report.coupling_sets = graph.coupling_sets;
  report.coupling_sets_dropped = graph.coupling_sets_dropped;
  report.graph_nodes = graph.node_count;
  report.graph_edges = graph.edge_count;
  report.table_hash = facts.table_hash;

  // Read-site inventory.
  for (const ReadSite* site : program.AllReadSites()) {
    ParamProfile& profile = report.params[site->param];
    profile.param = site->param;
    profile.read_sites.push_back(
        {site->file, site->line, site->function, site->enclosing_class});
    ++report.read_sites_per_app[AppOfPath(site->file)];
  }
  // Stable site order (and thus stable drift messages and surface hashes)
  // regardless of the order sources were fed in.
  for (auto& [param, profile] : report.params) {
    std::sort(profile.read_sites.begin(), profile.read_sites.end(),
              [](const SiteRef& a, const SiteRef& b) {
                return std::tie(a.file, a.line, a.function, a.enclosing_class) <
                       std::tie(b.file, b.line, b.function, b.enclosing_class);
              });
    uint64_t h = kFnv64Seed;
    for (const SiteRef& site : profile.read_sites) {
      h = HashFnv64(
          site.file + ":" + std::to_string(site.line) + ":" + site.function,
          h);
    }
    profile.surface_hash = h;
  }

  // Flow verdicts.
  for (const auto& [param, flow] : graph.params) {
    ParamProfile& profile = report.params[param];
    profile.param = param;
    profile.wire_tainted = flow.wire_tainted;
    profile.taint_reasons = flow.reasons;
    profile.sink_mask = flow.sink_mask;
    profile.wire_paths = flow.wire_paths;
  }

  // Schema cross-checks.
  if (schema != nullptr) {
    for (const ParamSpec& spec : schema->params()) {
      ParamProfile& profile = report.params[spec.name];
      profile.param = spec.name;
      profile.in_schema = true;
      if (profile.read_sites.empty()) {
        report.never_read.push_back(spec.name);
      }
    }
    for (auto& [param, profile] : report.params) {
      if (!profile.in_schema && !profile.read_sites.empty()) {
        const SiteRef& site = profile.read_sites.front();
        report.errors.push_back(
            {DriftKind::kReadNotInSchema, param,
             "parameter `" + param + "` is read at " + site.file + ":" +
                 std::to_string(site.line) + " (" + site.function +
                 ") but is not registered in ConfSchema",
             site.file, site.line});
      }
    }
  }

  // Annotation drift: a constructor that reads configuration (or clones a
  // node ref) without any init bracket — no NodeInitScope/init_scope_/
  // ZC_ANNOTATION_SITE in the body, no NodeInitScope member in the class,
  // and no `zebralint(external-init)` suppression.
  for (const std::shared_ptr<TuModel>& tu : program.tus) {
    for (const FunctionModel& fn : tu->functions) {
      if (!fn.is_constructor) continue;
      bool reads_config = false;
      for (const ReadSite& site : fn.read_sites) {
        if (!site.param.empty()) reads_config = true;
      }
      if (!reads_config && !fn.uses_ref_to_clone) continue;
      if (fn.has_init_bracket) continue;
      if (program.classes_with_scope_member.count(fn.cls)) continue;
      if (external_init.count(fn.cls)) continue;
      report.errors.push_back(
          {DriftKind::kAnnotationDrift, fn.qualified,
           "constructor " + fn.qualified + " reads configuration at " +
               fn.file + ":" + std::to_string(fn.line) +
               " without a ZC_ANNOTATION_SITE / NodeInitScope bracket "
               "(annotation drift; suppress with `zebralint(external-init): " +
               fn.cls + " <why>` if node init happens elsewhere)",
           fn.file, fn.line});
    }
  }

  // Priorities: the sink-type spectrum.
  for (auto& [param, profile] : report.params) {
    if (profile.in_schema && profile.read_sites.empty()) {
      profile.priority = kPriorityNeverRead;
    } else {
      profile.priority = SpectrumPriority(profile.wire_tainted,
                                          profile.sink_mask);
    }
  }

  std::sort(report.never_read.begin(), report.never_read.end());
  return report;
}

std::string ReportToJson(const StaticPriorReport& report) {
  std::ostringstream out;
  out << "{\n  \"files_scanned\": " << report.files_scanned
      << ",\n  \"unresolved_reads\": " << report.unresolved_reads
      << ",\n  \"graph_nodes\": " << report.graph_nodes
      << ",\n  \"graph_edges\": " << report.graph_edges
      << ",\n  \"table_hash\": \"" << HexU64(report.table_hash)
      << "\",\n  \"read_sites_per_app\": {";
  bool first = true;
  for (const auto& [app, count] : report.read_sites_per_app) {
    if (!first) out << ", ";
    first = false;
    JsonEscape(out, app);
    out << ": " << count;
  }
  out << "},\n  \"params\": [\n";
  first = true;
  for (const auto& [name, profile] : report.params) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"name\": ";
    JsonEscape(out, name);
    out << ", \"in_schema\": " << (profile.in_schema ? "true" : "false")
        << ", \"read_sites\": " << profile.read_sites.size()
        << ", \"wire_tainted\": " << (profile.wire_tainted ? "true" : "false")
        << ", \"priority\": " << profile.priority << ", \"surface\": \""
        << HexU64(profile.surface_hash) << "\", \"sink_types\": [";
    std::vector<std::string> sink_names = SinkMaskNames(profile.sink_mask);
    for (size_t i = 0; i < sink_names.size(); ++i) {
      if (i > 0) out << ", ";
      JsonEscape(out, sink_names[i]);
    }
    out << "], \"sites\": [";
    for (size_t i = 0; i < profile.read_sites.size(); ++i) {
      if (i > 0) out << ", ";
      const SiteRef& site = profile.read_sites[i];
      JsonEscape(out, site.file + ":" + std::to_string(site.line));
    }
    out << "], \"reasons\": [";
    for (size_t i = 0; i < profile.taint_reasons.size(); ++i) {
      if (i > 0) out << ", ";
      JsonEscape(out, profile.taint_reasons[i]);
    }
    out << "]}";
  }
  out << "\n  ],\n  \"coupling_sets\": [";
  for (size_t i = 0; i < report.coupling_sets.size(); ++i) {
    if (i > 0) out << ", ";
    out << "[";
    for (size_t j = 0; j < report.coupling_sets[i].size(); ++j) {
      if (j > 0) out << ", ";
      JsonEscape(out, report.coupling_sets[i][j]);
    }
    out << "]";
  }
  out << "],\n  \"never_read\": [";
  for (size_t i = 0; i < report.never_read.size(); ++i) {
    if (i > 0) out << ", ";
    JsonEscape(out, report.never_read[i]);
  }
  out << "],\n  \"errors\": [\n";
  for (size_t i = 0; i < report.errors.size(); ++i) {
    if (i > 0) out << ",\n";
    const DriftFinding& finding = report.errors[i];
    out << "    {\"kind\": ";
    JsonEscape(out, finding.kind == DriftKind::kReadNotInSchema
                        ? "read-not-in-schema"
                        : "annotation-drift");
    out << ", \"subject\": ";
    JsonEscape(out, finding.subject);
    out << ", \"message\": ";
    JsonEscape(out, finding.message);
    out << "}";
  }
  out << "\n  ]\n}\n";
  return out.str();
}

std::string ReportToText(const StaticPriorReport& report) {
  std::ostringstream out;
  out << "zebralint: scanned " << report.files_scanned << " files, "
      << report.params.size() << " parameters profiled\n";
  out << "flow graph: " << report.graph_nodes << " nodes, "
      << report.graph_edges << " edges\n";
  out << "read sites per app:\n";
  for (const auto& [app, count] : report.read_sites_per_app) {
    out << "  " << app << ": " << count << "\n";
  }
  int wire = 0, local = 0;
  for (const auto& [name, profile] : report.params) {
    if (profile.read_sites.empty()) continue;
    (profile.wire_tainted ? wire : local)++;
  }
  out << "wire-tainted: " << wire << "  node-local: " << local
      << "  never-read (prune set): " << report.never_read.size()
      << "  unresolved reads: " << report.unresolved_reads << "\n";
  out << "\nWIRE-TAINTED PARAMETERS\n";
  for (const auto& [name, profile] : report.params) {
    if (!profile.wire_tainted) continue;
    out << "  " << name << "  (" << profile.read_sites.size()
        << " read sites, priority " << profile.priority << ")";
    std::vector<std::string> sink_names = SinkMaskNames(profile.sink_mask);
    if (!sink_names.empty()) {
      out << "  [";
      for (size_t i = 0; i < sink_names.size(); ++i) {
        if (i > 0) out << " ";
        out << sink_names[i];
      }
      out << "]";
    }
    out << "\n";
    for (const std::string& reason : profile.taint_reasons) {
      out << "      - " << reason << "\n";
    }
  }
  out << "\nNODE-LOCAL PARAMETERS\n";
  for (const auto& [name, profile] : report.params) {
    if (profile.wire_tainted || profile.read_sites.empty()) continue;
    out << "  " << name << "  (" << profile.read_sites.size()
        << " read sites)\n";
  }
  if (!report.coupling_sets.empty()) {
    out << "\nCOUPLING SETS (same sink statement or wire path)\n";
    for (const auto& members : report.coupling_sets) {
      out << " ";
      for (const std::string& param : members) {
        out << " " << param;
      }
      out << "\n";
    }
  }
  if (!report.never_read.empty()) {
    out << "\nNEVER-READ SCHEMA PARAMETERS (statically pruned)\n";
    for (const std::string& name : report.never_read) {
      out << "  " << name << "\n";
    }
  }
  if (!report.errors.empty()) {
    out << "\nERRORS\n";
    for (const DriftFinding& finding : report.errors) {
      out << "  " << finding.message << "\n";
    }
  }
  return out.str();
}

}  // namespace analysis
}  // namespace zebra
