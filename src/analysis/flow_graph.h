// zebralint's config-flow graph: the interprocedural layer between the
// per-TU extractor and the StaticPriorReport.
//
// Nodes are configuration parameters, the locals/fields assigned from them,
// functions, and *typed* sink statements; edges are assignments, calls, and
// summary-propagated flows. The graph is built in two stages:
//
//   1. BuildProgramFacts — per-statement facts (reads, callees, sink signals,
//      assignment targets) recomputed from each function's retained token
//      range. Facts depend only on the function's tokens plus the merged
//      program tables (param constants, var/return types, node classes), so
//      they are summary-cacheable per TU: the summary cache stores them
//      keyed by (content hash, table hash) and unchanged TUs skip lexing and
//      fact recomputation entirely (see summary_cache.h).
//   2. BuildFlowGraph — the program-wide fixpoint over those facts: function
//      sink summaries, protocol-surface closure, taint propagation through
//      locals and helpers. Wire-taint verdicts are exactly the R1a–R1e / R2 /
//      R3 rules documented in taint_pass.h; the graph *refines* them with
//
//        * sink typing  — every sink a parameter reaches is classified
//          (wire-encode, cross-node call, protocol error, comparison guard,
//          persistence, timer/deadline), turning the binary wire/local
//          verdict into a priority spectrum (a parameter guarding a deadline
//          outranks one merely copied into a frame);
//        * coupling     — parameters that reach the same sink statement, or
//          whose reads live in the same protocol surface (the same wire
//          path), form coupling sets that seed pairwise combination plans in
//          TestGenerator.
//
// Everything is deterministic: functions are processed in (TU, definition)
// order, reasons and coupling sets are emitted in sorted order, and no
// container is keyed by pointer value — byte-identical inputs produce
// byte-identical reports (the golden-file self-scan test locks this in).

#ifndef SRC_ANALYSIS_FLOW_GRAPH_H_
#define SRC_ANALYSIS_FLOW_GRAPH_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/analysis/read_site_extractor.h"

namespace zebra {
namespace analysis {

// Typed sinks, as a bitmask so per-function summaries union cheaply in the
// fixpoint and serialize as one integer in the summary cache.
enum SinkType : uint8_t {
  kSinkWireEncode = 1 << 0,     // wire primitive call (EncodeFrame, ...)
  kSinkCrossNode = 1 << 1,      // method call on a node-class receiver
  kSinkProtocolError = 1 << 2,  // throw of a protocol-visible error
  kSinkGuard = 1 << 3,          // comparison guarding observable behavior
  kSinkPersistence = 1 << 4,    // persistence-flavored callee
  kSinkTimerDeadline = 1 << 5,  // timer/deadline/heartbeat-flavored flow
};
using SinkMask = uint8_t;

// Stable short names ("wire-encode", "timer-deadline", ...) for reports.
std::vector<std::string> SinkMaskNames(SinkMask mask);

// True when `name` matches a protocol-surface name pattern (send/recv/
// handle/...). Exposed so the extractor can stamp FunctionModel::
// name_is_protocol once at extraction time instead of every graph build.
bool MatchesProtocolName(const std::string& name);

// Per-statement facts, recomputed from the retained token range (or loaded
// from the summary cache). `used_locals` is `idents` filtered to the
// enclosing function's assignment-target set — the only identifiers the
// local-taint propagation can ever look up — which keeps cached facts small
// without changing any verdict.
//
// The string collections are sorted, deduplicated vectors rather than sets:
// after fact construction they are only ever iterated, and a warm (fully
// cached) analysis walks every statement's collections on every run — vector
// locality there is worth the one-time sort at build time.
struct StmtFacts {
  std::vector<std::string> direct_params;  // params read in this statement
  int first_line = 0;
  std::vector<std::string> callees;
  std::vector<std::string> cross_node_methods;  // methods called on node objs
  bool has_wire_primitive = false;
  bool has_protocol_throw = false;
  bool has_comparison = false;   // relational/equality operator present
  bool has_persistence = false;  // persistence-flavored callee
  bool has_timer = false;        // timer/deadline-flavored callee
  std::string assign_target;     // lhs of the first top-level '='
  std::vector<std::string> used_locals;  // idents ∩ fn assignment targets

  // Pattern-derived callee classification, precomputed here because the name
  // patterns are static: the fixpoint seed and rule R1d would otherwise
  // re-match every callee name on every analysis, which dominates a warm
  // (fully cached) graph build.
  SinkMask protocol_callee_mask = 0;   // union over protocol-named callees
  std::string first_protocol_callee;   // first (set order) such callee
  bool first_protocol_is_timer = false;
};

// One function's facts: a borrowed FunctionModel plus its statement facts,
// tagged with the deterministic (tu, fn) position used for all iteration.
// `stmts` points either at `computed` (freshly built) or into the summary
// cache (borrowed, no copy) — consumers read through the pointer.
struct FnFacts {
  const FunctionModel* fn = nullptr;
  size_t tu_index = 0;
  size_t fn_index = 0;
  const std::vector<StmtFacts>* stmts = nullptr;
  std::vector<StmtFacts> computed;  // backing storage when recomputed
};

// The whole program's facts, in deterministic order.
struct ProgramFacts {
  const ProgramModel* program = nullptr;
  std::vector<FnFacts> functions;  // (tu_index, fn_index) ascending
  // FNV-1a over the merged program tables (param constants, node classes,
  // var/return types). Summary-cached facts are only valid under the table
  // hash they were computed with: a new param constant can resolve a read in
  // an untouched TU, so a table change invalidates every cached summary.
  uint64_t table_hash = 0;
};

// Computes per-statement facts for one function against the merged tables.
// Exposed so the summary cache can recompute facts for just the changed TUs.
std::vector<StmtFacts> BuildFnFacts(const ProgramModel& program,
                                    const FunctionModel& fn);

// Hash of the merged program tables (see ProgramFacts::table_hash).
uint64_t ProgramTableHash(const ProgramModel& program);

// Builds facts for every function. `cached_tus`, when non-null, is aligned
// with program.tus: entry t (if non-null) holds per-function statement facts
// for that TU straight from the summary cache — those functions borrow the
// cached facts and skip recomputation. `facts_computed`/`facts_cached`
// (optional) count how each function was obtained. `table_hash`, when
// non-null, is a precomputed ProgramTableHash(program) — callers that already
// hashed the tables (the summary-cache gate) pass it to avoid a second full
// walk of the merged maps.
ProgramFacts BuildProgramFacts(
    const ProgramModel& program,
    const std::vector<const std::vector<std::vector<StmtFacts>>*>* cached_tus =
        nullptr,
    int* facts_computed = nullptr, int* facts_cached = nullptr,
    const uint64_t* table_hash = nullptr);

// One parameter's flow summary.
struct ParamFlow {
  std::string param;
  bool wire_tainted = false;
  std::vector<std::string> reasons;  // deterministic order, capped at 8
  SinkMask sink_mask = 0;            // union of all sink types reached
  // Sink statements reached ("file:line"), for coupling and reports.
  std::set<std::string> sink_keys;
  // Protocol surfaces whose bodies read this parameter (wire paths).
  std::set<std::string> wire_paths;
};

struct FlowGraph {
  // Keyed lookups only (taint is a hash hit per edge); consumers that need
  // order copy into the sorted report map, so determinism is preserved.
  std::unordered_map<std::string, ParamFlow> params;
  std::set<std::string> protocol_surfaces;  // qualified function names

  // Parameters that reach the same sink statement or the same wire path,
  // deduplicated, each set sorted, the list of sets sorted. Only sets of
  // 2..kMaxCouplingSetSize parameters are kept: singletons carry no pairwise
  // signal and huge sets (every param read in one surface) are too coarse to
  // seed combination plans.
  std::vector<std::vector<std::string>> coupling_sets;
  int coupling_sets_dropped = 0;  // sets over the size cap

  // Graph shape, for reports and the bench.
  int64_t node_count = 0;
  int64_t edge_count = 0;
};

inline constexpr int kMaxCouplingSetSize = 8;

// Runs the program-wide fixpoint over the facts.
FlowGraph BuildFlowGraph(const ProgramFacts& facts);

}  // namespace analysis
}  // namespace zebra

#endif  // SRC_ANALYSIS_FLOW_GRAPH_H_
