#include "src/analysis/flow_graph.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <unordered_map>
#include <unordered_set>

#include "src/common/strings.h"

namespace zebra {
namespace analysis {

namespace {

const char* const kWirePrimitives[] = {
    "EncodeFrame",     "DecodeFrame",      "EncryptPayload",
    "DecryptPayload",  "CompressPayload",  "DecompressPayload",
    "ComputeChecksum", "WireToken",        "RequireMatchingTokens",
    "SimulatePacedWait", "RpcGate",        "RpcLongOperation",
};

const char* const kProtocolErrors[] = {
    "RpcError",      "HandshakeError", "TimeoutError",
    "DecodeError",   "ChecksumError",  "LimitError",
};

// Lower-case substrings that mark a function name as protocol-flavored.
const char* const kProtocolNamePatterns[] = {
    "heartbeat", "handshake", "liveness", "stale", "token",
};

// Timer/deadline flavor: a subset of the protocol patterns plus explicit
// timing vocabulary. Purely a sink-type annotation — never a taint source.
const char* const kTimerNamePatterns[] = {
    "heartbeat", "liveness", "stale",  "timeout", "deadline",
    "interval",  "timer",    "expiry", "pacedwait",
};

// Persistence flavor (journal/edit-log/snapshot writes). Annotation only.
const char* const kPersistenceNamePatterns[] = {
    "persist", "journal", "fsync", "flush", "checkpoint", "snapshot",
    "editlog", "writetodisk",
};

bool IsWirePrimitive(const std::string& name) {
  for (const char* p : kWirePrimitives) {
    if (name == p) return true;
  }
  return false;
}

bool IsProtocolError(const std::string& name) {
  for (const char* p : kProtocolErrors) {
    if (name == p) return true;
  }
  return false;
}

bool MatchesAny(const std::string& name, const char* const* patterns,
                size_t count) {
  // Lowercase into a stack buffer — this runs for every call token during
  // fact building and for every function name in the surface seed, where a
  // heap-allocating Lower() copy is measurable. Identifiers longer than the
  // buffer are truncated for matching; C++ identifiers that long do not
  // occur, and the patterns are all far shorter than the buffer.
  char low[96];
  size_t n = std::min(name.size(), sizeof(low) - 1);
  for (size_t i = 0; i < n; ++i) {
    low[i] = static_cast<char>(
        std::tolower(static_cast<unsigned char>(name[i])));
  }
  low[n] = '\0';
  std::string_view low_view(low, n);
  for (size_t i = 0; i < count; ++i) {
    if (low_view.find(patterns[i]) != std::string_view::npos) return true;
  }
  return false;
}


bool MatchesTimerName(const std::string& name) {
  return MatchesAny(name, kTimerNamePatterns, std::size(kTimerNamePatterns));
}

bool MatchesPersistenceName(const std::string& name) {
  return MatchesAny(name, kPersistenceNamePatterns,
                    std::size(kPersistenceNamePatterns));
}

std::string Loc(const FunctionModel& fn, int line) {
  return fn.file + ":" + std::to_string(line);
}

bool IsGetMethod(const std::string& s) {
  return s == "Get" || s == "GetBool" || s == "GetInt" || s == "GetDouble";
}

// Config accessor names must never resolve through the bare-name function
// index: `conf().GetInt(...)` would otherwise alias KvStore::Get and friends.
bool ResolvableCallee(const std::string& s) { return !IsGetMethod(s); }

bool IsComparisonPunct(const Token& tk) {
  return tk.Is("<") || tk.Is(">") || tk.Is("<=") || tk.Is(">=") ||
         tk.Is("==") || tk.Is("!=");
}

// Analyzes one statement's token range. `idents` collects every identifier
// used; the caller filters it down to StmtFacts::used_locals once the
// function's assignment-target set is known.
StmtFacts AnalyzeStatement(const ProgramModel& program,
                           const FunctionModel& fn, size_t begin, size_t end,
                           std::set<std::string>* idents) {
  StmtFacts facts;
  const auto& toks = fn.tokens;
  bool saw_throw = false;
  int depth = 0;
  for (size_t k = begin; k < end && k < toks.size(); ++k) {
    const Token& tk = toks[k];
    if (facts.first_line == 0 && tk.line > 0) facts.first_line = tk.line;

    if (tk.kind == TokenKind::kPunct) {
      if (tk.Is("(") || tk.Is("[")) ++depth;
      if (tk.Is(")") || tk.Is("]")) --depth;
      if (IsComparisonPunct(tk)) facts.has_comparison = true;
      // First top-level assignment: the token to the left is the target.
      if (tk.Is("=") && depth == 0 && facts.assign_target.empty() &&
          k > begin && toks[k - 1].IsIdent()) {
        facts.assign_target = toks[k - 1].text;
      }
      continue;
    }
    if (!tk.IsIdent()) continue;
    idents->insert(tk.text);

    if (tk.Is("throw")) saw_throw = true;
    if (saw_throw && IsProtocolError(tk.text)) facts.has_protocol_throw = true;

    bool is_call = k + 1 < toks.size() && toks[k + 1].Is("(");
    if (!is_call) continue;

    if (IsWirePrimitive(tk.text)) facts.has_wire_primitive = true;
    if (MatchesTimerName(tk.text)) facts.has_timer = true;
    if (MatchesPersistenceName(tk.text)) facts.has_persistence = true;
    facts.callees.push_back(tk.text);

    // Member-init-list shape `member_(expr)` at depth 0 acts as an
    // assignment into `member_`.
    if (depth == 0 && facts.assign_target.empty() && k == begin &&
        (k + 1 >= toks.size() || !toks[k].Is("if"))) {
      // Only treat it as init-list assignment when the statement IS the
      // call (ctor init entries); ordinary calls are still recorded above.
      if (!fn.statements.empty() && tk.text.back() == '_') {
        facts.assign_target = tk.text;
      }
    }

    // Read site: [.|->] Get*( ARG ...
    if (IsGetMethod(tk.text) && k > begin &&
        (toks[k - 1].Is(".") || toks[k - 1].Is("->")) &&
        k + 2 < toks.size()) {
      const Token& arg = toks[k + 2];
      if (arg.kind == TokenKind::kString) {
        facts.direct_params.push_back(arg.text);
      } else if (arg.IsIdent()) {
        const std::string_view* constant =
            program.param_constants.Find(arg.text);
        if (constant != nullptr) {
          facts.direct_params.emplace_back(*constant);
        }
      }
    }

    // Cross-node call: receiver typed as a node class (or a chained call
    // returning one). `this->Foo()` is node-local by construction.
    if (k > begin && (toks[k - 1].Is("->") || toks[k - 1].Is("."))) {
      std::string receiver_type;
      if (k >= 2) {
        const Token& recv = toks[k - 2];
        if (recv.IsIdent() && !recv.Is("this")) {
          const std::string_view* type = program.var_types.Find(recv.text);
          if (type != nullptr) receiver_type = std::string(*type);
        } else if (recv.Is(")")) {
          // Chained: CALLEE(...)->Method(). Walk back to the matching '('.
          int d = 0;
          for (size_t q = k - 2;; --q) {
            if (toks[q].Is(")")) ++d;
            if (toks[q].Is("(") && --d == 0) {
              if (q > 0 && toks[q - 1].IsIdent()) {
                const std::string_view* ret =
                    program.fn_return_types.Find(toks[q - 1].text);
                if (ret != nullptr) {
                  receiver_type = std::string(*ret);
                }
              }
              break;
            }
            if (q == 0) break;
          }
        }
      }
      if (!receiver_type.empty() && program.node_classes.count(receiver_type)) {
        facts.cross_node_methods.push_back(tk.text);
      }
    }
  }
  // Canonicalize the collections: sorted + deduplicated, the order every
  // consumer observes (and the summary cache persists).
  auto canon = [](std::vector<std::string>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  canon(&facts.direct_params);
  canon(&facts.callees);
  // Classify callees against the static name patterns once, at fact-build
  // time (sorted order, matching the loops that consume these fields).
  for (const std::string& callee : facts.callees) {
    if (!ResolvableCallee(callee)) continue;
    if (!MatchesProtocolName(callee)) continue;
    bool timer = MatchesTimerName(callee);
    facts.protocol_callee_mask |=
        timer ? kSinkTimerDeadline : kSinkCrossNode;
    if (facts.first_protocol_callee.empty()) {
      facts.first_protocol_callee = callee;
      facts.first_protocol_is_timer = timer;
    }
  }
  return facts;
}

// (first char, length) pre-filter over a name set. Callee lists are full of
// names that no rule can match (std:: helpers, container methods); rejecting
// them with two array ops avoids hashing the string at all. Conservative:
// MayContain can report false positives, never false negatives.
struct NameFilter {
  std::array<uint64_t, 256> mask{};

  void Add(const std::string& s) {
    if (s.empty()) return;
    mask[static_cast<unsigned char>(s[0])] |=
        1ull << std::min<size_t>(s.size(), 63);
  }
  bool MayContain(const std::string& s) const {
    if (s.empty()) return false;
    return (mask[static_cast<unsigned char>(s[0])] &
            (1ull << std::min<size_t>(s.size(), 63))) != 0;
  }
};

// Index of defined functions by bare and qualified name, in (tu, fn) order.
// Unordered on purpose: the index is lookup-only (never iterated), and the
// two fixpoints plus R1c/R3 hit it once per (statement, callee) pair.
struct FunctionIndex {
  std::unordered_map<std::string, std::vector<size_t>> by_name;

  explicit FunctionIndex(const ProgramFacts& facts) {
    for (size_t i = 0; i < facts.functions.size(); ++i) {
      const FunctionModel* fn = facts.functions[i].fn;
      by_name[fn->name].push_back(i);
      by_name[fn->qualified].push_back(i);
    }
  }

  const std::vector<size_t>* Lookup(const std::string& name) const {
    auto it = by_name.find(name);
    return it == by_name.end() ? nullptr : &it->second;
  }
};

void HashString(uint64_t* h, std::string_view s) {
  *h = HashFnv64(s, *h);
  *h = HashFnv64(std::string_view("\x1f", 1), *h);
}

}  // namespace

bool MatchesProtocolName(const std::string& name) {
  return MatchesAny(name, kProtocolNamePatterns,
                    std::size(kProtocolNamePatterns));
}

std::vector<std::string> SinkMaskNames(SinkMask mask) {
  std::vector<std::string> names;
  if (mask & kSinkWireEncode) names.push_back("wire-encode");
  if (mask & kSinkCrossNode) names.push_back("cross-node");
  if (mask & kSinkProtocolError) names.push_back("protocol-error");
  if (mask & kSinkGuard) names.push_back("guard");
  if (mask & kSinkPersistence) names.push_back("persistence");
  if (mask & kSinkTimerDeadline) names.push_back("timer-deadline");
  return names;
}

std::vector<StmtFacts> BuildFnFacts(const ProgramModel& program,
                                    const FunctionModel& fn) {
  std::vector<StmtFacts> stmts;
  stmts.reserve(fn.statements.size());
  std::vector<std::set<std::string>> idents_per_stmt;
  idents_per_stmt.reserve(fn.statements.size());
  std::set<std::string> assign_targets;
  for (const auto& [b, e] : fn.statements) {
    std::set<std::string> idents;
    stmts.push_back(AnalyzeStatement(program, fn, b, e, &idents));
    idents_per_stmt.push_back(std::move(idents));
    if (!stmts.back().assign_target.empty()) {
      assign_targets.insert(stmts.back().assign_target);
    }
  }
  // Keep only the identifiers local-taint propagation can look up: the
  // function's own assignment targets.
  for (size_t s = 0; s < stmts.size(); ++s) {
    for (const std::string& ident : idents_per_stmt[s]) {
      if (assign_targets.count(ident)) stmts[s].used_locals.push_back(ident);
    }
  }
  return stmts;
}

uint64_t ProgramTableHash(const ProgramModel& program) {
  uint64_t h = kFnv64Seed;
  for (const auto& [name, value] : program.param_constants.entries()) {
    HashString(&h, name);
    HashString(&h, value);
  }
  for (std::string_view cls : program.node_classes.keys()) HashString(&h, cls);
  for (const auto& [name, type] : program.var_types.entries()) {
    HashString(&h, name);
    HashString(&h, type);
  }
  for (const auto& [name, type] : program.fn_return_types.entries()) {
    HashString(&h, name);
    HashString(&h, type);
  }
  for (std::string_view cls : program.classes_with_scope_member.keys()) {
    HashString(&h, cls);
  }
  return h;
}

ProgramFacts BuildProgramFacts(
    const ProgramModel& program,
    const std::vector<const std::vector<std::vector<StmtFacts>>*>* cached_tus,
    int* facts_computed, int* facts_cached, const uint64_t* table_hash) {
  ProgramFacts facts;
  facts.program = &program;
  facts.table_hash =
      table_hash != nullptr ? *table_hash : ProgramTableHash(program);
  for (size_t t = 0; t < program.tus.size(); ++t) {
    const TuModel& tu = *program.tus[t];
    const std::vector<std::vector<StmtFacts>>* tu_cache =
        cached_tus != nullptr && t < cached_tus->size() ? (*cached_tus)[t]
                                                        : nullptr;
    for (size_t f = 0; f < tu.functions.size(); ++f) {
      const FunctionModel& fn = tu.functions[f];
      FnFacts entry;
      entry.fn = &fn;
      entry.tu_index = t;
      entry.fn_index = f;
      if (tu_cache != nullptr && f < tu_cache->size()) {
        // Borrow straight from the summary cache — stable storage, no copy.
        entry.stmts = &(*tu_cache)[f];
        if (facts_cached != nullptr) ++*facts_cached;
      } else {
        entry.computed = BuildFnFacts(program, fn);
        if (facts_computed != nullptr) ++*facts_computed;
      }
      facts.functions.push_back(std::move(entry));
    }
  }
  // Point recomputed entries at their own storage only after the vector has
  // stopped reallocating (a push_back would invalidate earlier pointers).
  for (FnFacts& entry : facts.functions) {
    if (entry.stmts == nullptr) entry.stmts = &entry.computed;
  }
  return facts;
}

FlowGraph BuildFlowGraph(const ProgramFacts& facts) {
  FlowGraph graph;
  const ProgramModel& program = *facts.program;
  const size_t fn_count = facts.functions.size();
  FunctionIndex index(facts);
  NameFilter index_filter;
  for (const auto& [name, defs] : index.by_name) index_filter.Add(name);

  // Resolve every function's callee list to definition indices once: the two
  // fixpoints below revisit these edges every iteration, and repeated map
  // lookups dominate the graph build on a warm (fully cached) analysis.
  // Flat CSR layout: one shared data vector plus per-function [begin, end)
  // offsets — the fixpoints sweep these edges repeatedly, and per-function
  // heap vectors cost both allocation and locality.
  std::vector<size_t> callee_defs_data;
  callee_defs_data.reserve(fn_count * 4);
  std::vector<std::pair<uint32_t, uint32_t>> callee_defs(fn_count);
  for (size_t i = 0; i < fn_count; ++i) {
    const uint32_t begin = static_cast<uint32_t>(callee_defs_data.size());
    for (const std::string& callee : facts.functions[i].fn->callees) {
      if (!index_filter.MayContain(callee) || !ResolvableCallee(callee)) {
        continue;
      }
      const auto* defs = index.Lookup(callee);
      if (!defs) continue;
      callee_defs_data.insert(callee_defs_data.end(), defs->begin(),
                              defs->end());
    }
    callee_defs[i] = {begin, static_cast<uint32_t>(callee_defs_data.size())};
  }
  auto callee_defs_of = [&](size_t i) {
    struct Span {
      const size_t* b;
      const size_t* e;
      const size_t* begin() const { return b; }
      const size_t* end() const { return e; }
    };
    const size_t* base = callee_defs_data.data();
    return Span{base + callee_defs[i].first, base + callee_defs[i].second};
  };

  // Seed a flow node for every resolved read site so node-local parameters
  // appear in the report with an empty reason list. The site list is walked
  // once and reused for the edge count below.
  const std::vector<const ReadSite*> all_sites = program.AllReadSites();
  graph.params.reserve(all_sites.size());
  for (const ReadSite* site : all_sites) {
    graph.params[site->param].param = site->param;
  }

  // Direct reads per function, and the program-wide set of methods observed
  // being called on node-class objects.
  // Sorted unique pointers into each function's own ReadSite storage — a
  // warm analysis rebuilds this for every function on every run, so no
  // string copies.
  std::vector<std::vector<const std::string*>> direct_reads(fn_count);
  std::unordered_set<std::string> cross_node_called;  // membership only
  int64_t call_edges = 0;
  for (size_t i = 0; i < fn_count; ++i) {
    const FnFacts& ff = facts.functions[i];
    for (const StmtFacts& st : *ff.stmts) {
      for (const std::string& method : st.cross_node_methods) {
        cross_node_called.insert(method);
      }
      call_edges += static_cast<int64_t>(st.callees.size());
    }
    std::vector<const std::string*>& reads = direct_reads[i];
    for (const ReadSite& site : ff.fn->read_sites) {
      if (!site.param.empty()) reads.push_back(&site.param);
    }
    std::sort(reads.begin(), reads.end(),
              [](const std::string* a, const std::string* b) {
                return *a < *b;
              });
    reads.erase(std::unique(reads.begin(), reads.end(),
                            [](const std::string* a, const std::string* b) {
                              return *a == *b;
                            }),
                reads.end());
  }

  // R3 helper-read index: name -> (param, defining function) pairs, in
  // (definition, read) order. Most callees define no direct reads, so R3's
  // per-statement scan becomes one lookup instead of a definitions walk.
  std::unordered_map<std::string,
                     std::vector<std::pair<const std::string*, size_t>>>
      name_r3;
  for (const auto& [name, defs] : index.by_name) {
    for (size_t def : defs) {
      for (const std::string* p : direct_reads[def]) {
        name_r3[name].emplace_back(p, def);
      }
    }
  }

  // Function sink summaries (fixpoint): which *taint-relevant* sink types
  // does the body reach? The mask is nonzero exactly when the old boolean
  // pass said "reaches a wire sink" — guard/persistence/timer annotations
  // never enter the seed, so wire-taint verdicts are unchanged; the mask
  // merely types what is reached for the priority spectrum.
  std::vector<SinkMask> reach_mask(fn_count, 0);
  for (size_t i = 0; i < fn_count; ++i) {
    const FnFacts& ff = facts.functions[i];
    SinkMask m = 0;
    for (const StmtFacts& st : *ff.stmts) {
      if (st.has_wire_primitive) m |= kSinkWireEncode;
      if (!st.cross_node_methods.empty()) m |= kSinkCrossNode;
      if (st.has_protocol_throw) m |= kSinkProtocolError;
      m |= st.protocol_callee_mask;  // precomputed at fact-build time
    }
    reach_mask[i] = m;
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (size_t i = 0; i < fn_count; ++i) {
      for (size_t def : callee_defs_of(i)) {
        SinkMask merged = reach_mask[i] | reach_mask[def];
        if (merged != reach_mask[i]) {
          reach_mask[i] = merged;
          changed = true;
        }
      }
    }
  }

  // Per-name R1c verdict: the reach mask of the first sink-reaching
  // definition under that name, if any. Collapses R1c's per-statement inner
  // definition loop to a single lookup.
  std::unordered_map<std::string, SinkMask> first_sink_reach;
  first_sink_reach.reserve(index.by_name.size());
  for (const auto& [name, defs] : index.by_name) {
    for (size_t def : defs) {
      if (reach_mask[def] != 0) {
        first_sink_reach.emplace(name, reach_mask[def]);
        break;
      }
    }
  }

  // Protocol surfaces: node-class methods called cross-node, name-pattern
  // functions, plus everything they transitively invoke (within the corpus).
  std::vector<char> is_surface(fn_count, 0);
  for (size_t i = 0; i < fn_count; ++i) {
    const FunctionModel* fn = facts.functions[i].fn;
    if (!fn->cls.empty() && program.node_classes.count(fn->cls) &&
        !fn->is_constructor && cross_node_called.count(fn->name)) {
      is_surface[i] = 1;
    }
    if (fn->name_is_protocol) is_surface[i] = 1;
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (size_t i = 0; i < fn_count; ++i) {
      if (!is_surface[i]) continue;
      for (size_t def : callee_defs_of(i)) {
        if (facts.functions[def].fn->is_constructor) continue;
        if (!is_surface[def]) {
          is_surface[def] = 1;
          changed = true;
        }
      }
    }
  }
  for (size_t i = 0; i < fn_count; ++i) {
    if (is_surface[i]) {
      graph.protocol_surfaces.insert(facts.functions[i].fn->qualified);
    }
  }

  int64_t taint_edges = 0;
  // `make_reason` is only invoked when the reason will actually be stored:
  // popular parameters hit the 8-reason cap early, and building the (multi-
  // concatenation) strings for discarded reasons is pure waste on warm runs.
  const std::string no_sink_key;
  auto taint = [&graph, &taint_edges](const std::string& param, SinkMask mask,
                                      const std::string& sink_key,
                                      auto&& make_reason) {
    auto it = graph.params.find(param);
    if (it == graph.params.end()) return;
    it->second.wire_tainted = true;
    it->second.sink_mask |= mask;
    if (!sink_key.empty()) it->second.sink_keys.insert(sink_key);
    ++taint_edges;
    if (it->second.reasons.size() < 8) {
      it->second.reasons.push_back(make_reason());
    }
  };

  // Coupling accumulators: params reaching the same sink statement, and
  // params read within the same protocol surface (the same wire path).
  std::map<std::string, std::set<std::string>> sink_groups;
  std::set<std::string> sink_keys_seen;

  // R2: every read inside a protocol surface is wire-tainted. Deterministic
  // (tu, fn) iteration — never over a pointer-keyed container.
  for (size_t i = 0; i < fn_count; ++i) {
    if (!is_surface[i]) continue;
    const FunctionModel* fn = facts.functions[i].fn;
    for (const std::string* param : direct_reads[i]) {
      taint(*param, kSinkCrossNode | reach_mask[i], no_sink_key, [&] {
        return "R2 read inside protocol surface " + fn->qualified + " (" +
               Loc(*fn, fn->line) + ")";
      });
      graph.params[*param].wire_paths.insert(fn->qualified);
    }
    if (direct_reads[i].size() >= 2) {
      auto& group = sink_groups["surface " + fn->qualified];
      for (const std::string* param : direct_reads[i]) group.insert(*param);
    }
  }

  // R1 + R3: statement-level co-occurrence with local-taint propagation.
  //
  // The statement parameter set is a small sorted vector of pointers into the
  // facts' stable string storage (direct_params, local-taint slots, read-site
  // params all outlive the loop): a warm analysis runs this loop over every
  // statement on every invocation, and per-statement std::set/std::map
  // construction with string copies used to dominate it. Each entry remembers
  // *how* the parameter arrived (direct read / tainted local / R3 helper) so
  // origin strings are only materialized for actual sink statements.
  struct StmtParam {
    const std::string* param;
    uint8_t kind;  // 0 = read here, 1 = via local, 2 = via helper (R3)
    const std::string* local = nullptr;  // kind 1: the local's name
    size_t helper_def = 0;               // kind 2: defining function index
  };
  std::vector<StmtParam> stmt_params;  // reused across statements
  // Keeps the vector sorted by parameter name, first occurrence winning —
  // the same order and origin-priority the old set/map pair produced.
  auto add_param = [&stmt_params](const std::string& p, uint8_t kind,
                                  const std::string* local, size_t def) {
    size_t lo = 0;
    while (lo < stmt_params.size() && *stmt_params[lo].param < p) ++lo;
    if (lo < stmt_params.size() && *stmt_params[lo].param == p) return;
    stmt_params.insert(stmt_params.begin() + lo,
                       StmtParam{&p, kind, local, def});
  };
  for (size_t i = 0; i < fn_count; ++i) {
    const FnFacts& ff = facts.functions[i];
    const FunctionModel* fn = ff.fn;
    // Tainted locals: name -> sorted unique params (pointers into stable
    // facts storage, see above).
    std::map<std::string, std::vector<const std::string*>> local_taint;
    for (const StmtFacts& st : *ff.stmts) {
      // Sink classification first — it needs only the statement facts. The
      // per-statement parameter set (and the origin strings that explain it)
      // is built lazily below: most statements have no sink, no assignment
      // target, and no persistence flavor, and building those maps anyway
      // used to dominate the warm graph build. The reason string keeps the
      // historical one-sink-per-statement form; the mask records every type.
      const char* sink_rule = nullptr;  // reason prefix, built lazily
      const std::string* sink_arg = nullptr;  // appended verbatim if set
      SinkMask mask = 0;
      if (st.has_wire_primitive) {
        sink_rule = "R1a wire primitive";
        mask |= kSinkWireEncode;
      }
      if (!st.cross_node_methods.empty()) {
        if (sink_rule == nullptr) {
          sink_rule = "R1b cross-node call ";
          sink_arg = &st.cross_node_methods.front();
        }
        mask |= kSinkCrossNode;
      }
      if (st.has_protocol_throw) {
        if (sink_rule == nullptr) sink_rule = "R1e protocol error throw";
        mask |= kSinkProtocolError;
      }
      if (sink_rule == nullptr) {
        for (const std::string& callee : st.callees) {
          if (!ResolvableCallee(callee)) continue;
          if (index_filter.MayContain(callee)) {
            auto reach_it = first_sink_reach.find(callee);
            if (reach_it != first_sink_reach.end()) {
              sink_rule = "R1c sink-reaching callee ";
              sink_arg = &callee;
              mask |= reach_it->second;
              break;
            }
          }
          // R1d via the facts' precomputed classification: the first
          // protocol-named callee wins unless an earlier callee (set order)
          // already matched R1c above — callees past it are never examined,
          // exactly like the original per-callee pattern matching.
          if (callee == st.first_protocol_callee) {
            sink_rule = "R1d protocol-named callee ";
            sink_arg = &callee;
            mask |= st.first_protocol_is_timer ? kSinkTimerDeadline
                                               : kSinkCrossNode;
            break;
          }
        }
      }

      const bool want_params =
          (sink_rule != nullptr || !st.assign_target.empty() ||
           st.has_persistence) &&
          !(st.direct_params.empty() && st.used_locals.empty() &&
            st.callees.empty());
      stmt_params.clear();
      if (want_params) {
        // Statement parameter set: direct reads, tainted locals used, and
        // the direct reads of locally defined callees (R3's generalization —
        // the DfsDataWireConfig helper pattern).
        for (const std::string& p : st.direct_params) {
          add_param(p, 0, nullptr, 0);
        }
        for (const std::string& ident : st.used_locals) {
          auto it = local_taint.find(ident);
          if (it == local_taint.end()) continue;
          for (const std::string* p : it->second) {
            add_param(*p, 1, &ident, 0);
          }
        }
        for (const std::string& callee : st.callees) {
          if (!index_filter.MayContain(callee) || !ResolvableCallee(callee)) {
            continue;
          }
          auto r3_it = name_r3.find(callee);
          if (r3_it == name_r3.end()) continue;
          for (const auto& [p, def] : r3_it->second) {
            add_param(*p, 2, nullptr, def);
          }
        }
      }

      if (sink_rule != nullptr) {
        // Annotation types: never part of the taint decision, but they type
        // the sink for the priority spectrum.
        if (st.has_timer) mask |= kSinkTimerDeadline;
        if (st.has_comparison) mask |= kSinkGuard;
        if (st.has_persistence) mask |= kSinkPersistence;
        std::string sink_key =
            fn->file + ":" + std::to_string(st.first_line);
        sink_keys_seen.insert(sink_key);
        for (const StmtParam& sp : stmt_params) {
          taint(*sp.param, mask, sink_key, [&] {
            std::string reason(sink_rule);
            if (sink_arg != nullptr) reason += *sink_arg;
            reason += ", ";
            switch (sp.kind) {
              case 0: reason += "read here"; break;
              case 1: reason += "via local `" + *sp.local + "`"; break;
              default:
                reason += "via helper " +
                          facts.functions[sp.helper_def].fn->qualified +
                          " (R3)";
            }
            reason += " in " + fn->qualified + " (" + sink_key + ")";
            return reason;
          });
        }
        if (stmt_params.size() >= 2) {
          auto& group = sink_groups[sink_key];
          for (const StmtParam& sp : stmt_params) group.insert(*sp.param);
        }
      } else if (st.has_persistence) {
        // Persistence-flavored statements annotate their parameters without
        // ever tainting them: a param flushed into a local journal is more
        // interesting than an unused one, but it is not wire-visible.
        for (const StmtParam& sp : stmt_params) {
          auto it = graph.params.find(*sp.param);
          if (it != graph.params.end()) it->second.sink_mask |= kSinkPersistence;
        }
      }

      // Propagate into the assignment target (or init-list member): merge
      // the statement's params (already sorted unique) into the slot.
      if (!st.assign_target.empty() && !stmt_params.empty()) {
        auto& slot = local_taint[st.assign_target];
        for (const StmtParam& sp : stmt_params) {
          auto pos = slot.begin();
          while (pos != slot.end() && **pos < *sp.param) ++pos;
          if (pos == slot.end() || **pos != *sp.param) {
            slot.insert(pos, sp.param);
          }
        }
      }
    }
  }

  // Canonicalize coupling sets: sorted members, deduplicated, size-capped,
  // the final list sorted — byte-stable across runs.
  std::set<std::vector<std::string>> canonical;
  for (const auto& [key, members] : sink_groups) {
    if (members.size() < 2) continue;
    if (members.size() > static_cast<size_t>(kMaxCouplingSetSize)) {
      ++graph.coupling_sets_dropped;
      continue;
    }
    canonical.insert(
        std::vector<std::string>(members.begin(), members.end()));
  }
  graph.coupling_sets.assign(canonical.begin(), canonical.end());

  graph.node_count = static_cast<int64_t>(graph.params.size()) +
                     static_cast<int64_t>(fn_count) +
                     static_cast<int64_t>(sink_keys_seen.size());
  graph.edge_count =
      static_cast<int64_t>(all_sites.size()) + call_edges +
      taint_edges;
  return graph;
}

}  // namespace analysis
}  // namespace zebra
