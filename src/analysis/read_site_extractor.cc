#include "src/analysis/read_site_extractor.h"

#include "src/analysis/flow_graph.h"

#include <algorithm>
#include <cctype>

namespace zebra {
namespace analysis {

namespace {

bool IsUpperInitial(const std::string& s) {
  return !s.empty() && std::isupper(static_cast<unsigned char>(s[0]));
}

// Keywords that can precede '(' without being a call or function name.
bool IsControlKeyword(const std::string& s) {
  return s == "if" || s == "for" || s == "while" || s == "switch" ||
         s == "return" || s == "sizeof" || s == "catch" || s == "new" ||
         s == "delete" || s == "throw" || s == "static_cast" ||
         s == "dynamic_cast" || s == "reinterpret_cast" || s == "const_cast" ||
         s == "alignof" || s == "decltype" || s == "noexcept" ||
         s == "static_assert" || s == "defined" || s == "assert";
}

bool IsTypeNoise(const std::string& s) {
  return s == "const" || s == "constexpr" || s == "inline" || s == "static" ||
         s == "virtual" || s == "explicit" || s == "friend" ||
         s == "volatile" || s == "mutable" || s == "typename" ||
         s == "unsigned" || s == "signed" || s == "struct" || s == "class";
}

const std::string kGetMethods[] = {"Get", "GetBool", "GetInt", "GetDouble"};

bool IsGetMethod(const std::string& s) {
  for (const auto& m : kGetMethods) {
    if (s == m) return true;
  }
  return false;
}

// Marker identifiers that count as a node-init annotation bracket.
bool IsInitBracketIdent(const std::string& s) {
  return s == "NodeInitScope" || s == "init_scope_" ||
         s == "ZC_ANNOTATION_SITE";
}

// Finds the matching close for tokens[open] (one of "(", "{", "[").
// Returns the index of the closer, or tokens.size() if unbalanced.
size_t MatchingClose(const std::vector<Token>& tokens, size_t open) {
  const std::string& o = tokens[open].text;
  std::string c = o == "(" ? ")" : (o == "{" ? "}" : "]");
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].kind != TokenKind::kPunct) continue;
    if (tokens[i].text == o) {
      ++depth;
    } else if (tokens[i].text == c) {
      if (--depth == 0) return i;
    }
  }
  return tokens.size();
}

struct Scope {
  enum Kind { kNamespace, kClass } kind;
  std::string name;   // class name for kClass
  size_t close;       // token index of the scope's closing '}'
};

}  // namespace

TuModel ExtractTu(std::string file, std::string_view source) {
  TuModel tu;
  tu.file = std::move(file);
  tu.markers = CollectLintMarkers(source);
  std::vector<Token> toks = LexCpp(source);
  const size_t n = toks.size();

  std::vector<Scope> scopes;
  auto current_class = [&]() -> std::string {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kClass) return it->name;
    }
    return "";
  };

  // Pass A: declaration harvest over the whole token stream. This does not
  // depend on scope structure except for class-member attribution, which is
  // reconstructed again (cheaply) in pass B; here a simple heuristic
  // suffices: `Type [*|&] name` pairs with Type upper-case initial.
  for (size_t i = 0; i + 1 < n; ++i) {
    const Token& t = toks[i];

    // Param constant: ... char kFoo [ ] = "name" ;
    if (t.Is("char") && toks[i + 1].IsIdent()) {
      size_t j = i + 2;
      if (j + 1 < n && toks[j].Is("[") && toks[j + 1].Is("]")) j += 2;
      if (j + 1 < n && toks[j].Is("=") &&
          toks[j + 1].kind == TokenKind::kString) {
        tu.param_constants[toks[i + 1].text] = toks[j + 1].text;
      }
      continue;
    }

    // Type map: IDENT(Upper) [*|&] IDENT — declaration-shaped pairs.
    if (t.IsIdent() && IsUpperInitial(t.text) && !IsControlKeyword(t.text)) {
      size_t j = i + 1;
      bool ptr_or_ref = false;
      while (j < n && (toks[j].Is("*") || toks[j].Is("&") ||
                       toks[j].Is("const"))) {
        ptr_or_ref = ptr_or_ref || toks[j].Is("*") || toks[j].Is("&");
        ++j;
      }
      if (j < n && toks[j].IsIdent() && !IsTypeNoise(toks[j].text) &&
          !IsControlKeyword(toks[j].text)) {
        // Avoid qualified names (A::B) and call shapes (Type name( handled
        // below as a possible function — still a fine type binding for
        // parameters, so keep it).
        bool qualified_left = i > 0 && toks[i - 1].Is("::");
        bool template_left = i > 0 && toks[i - 1].Is("<");
        if (!qualified_left && !template_left) {
          // Value members like `NodeInitScope init_scope_;` matter too, so
          // record both pointer/ref and value declarations.
          (void)ptr_or_ref;
          tu.var_types.emplace(toks[j].text, t.text);
        }
      }
    }
  }

  // Pass B: scope-aware walk — classes, functions, read sites, call facts.
  for (size_t i = 0; i < n; ++i) {
    // Pop finished scopes.
    while (!scopes.empty() && i > scopes.back().close) scopes.pop_back();

    const Token& t = toks[i];

    // namespace NAME { ... }   (also anonymous: namespace { ... })
    if (t.Is("namespace")) {
      size_t j = i + 1;
      if (j < n && toks[j].IsIdent()) ++j;
      if (j < n && toks[j].Is("{")) {
        size_t close = MatchingClose(toks, j);
        scopes.push_back({Scope::kNamespace, "", close});
        i = j;  // descend
      }
      continue;
    }

    // class/struct NAME ... { ... }  (skip forward declarations)
    if ((t.Is("class") || t.Is("struct")) && i + 1 < n &&
        toks[i + 1].IsIdent()) {
      std::string name = toks[i + 1].text;
      size_t j = i + 2;
      // Skip "final" and base-class list up to '{' or ';'.
      while (j < n && !toks[j].Is("{") && !toks[j].Is(";")) ++j;
      if (j < n && toks[j].Is("{")) {
        size_t close = MatchingClose(toks, j);
        scopes.push_back({Scope::kClass, name, close});
        // Scan class body (shallow) for a NodeInitScope member.
        for (size_t k = j + 1; k < close; ++k) {
          if (toks[k].Is("NodeInitScope") && k + 1 < close &&
              toks[k + 1].IsIdent() && k + 2 < close &&
              toks[k + 2].Is(";")) {
            tu.classes_with_scope_member.insert(name);
          }
        }
        i = j;  // descend into the class body
      }
      continue;
    }

    // Candidate function definition: IDENT '(' at namespace/class scope.
    if (!t.IsIdent() || IsControlKeyword(t.text) || IsTypeNoise(t.text)) {
      continue;
    }
    if (i + 1 >= n || !toks[i + 1].Is("(")) continue;

    size_t close_paren = MatchingClose(toks, i + 1);
    if (close_paren >= n) continue;

    // After the parameter list: qualifiers, then '{' (def), ':' (ctor init
    // list), or something else (declaration / expression — skip).
    size_t j = close_paren + 1;
    while (j < n && (toks[j].Is("const") || toks[j].Is("noexcept") ||
                     toks[j].Is("override") || toks[j].Is("final"))) {
      ++j;
    }
    bool has_init_list = j < n && toks[j].Is(":") &&
                         !(j + 1 < n && toks[j + 1].Is(":"));
    size_t body_open = n;
    size_t init_begin = n, init_end = n;
    if (j < n && toks[j].Is("{")) {
      body_open = j;
    } else if (has_init_list) {
      // Walk the member-init list to the body '{' at paren depth 0.
      init_begin = j + 1;
      int depth = 0;
      for (size_t k = j + 1; k < n; ++k) {
        if (toks[k].kind != TokenKind::kPunct) continue;
        if (toks[k].Is("(") || toks[k].Is("[")) ++depth;
        if (toks[k].Is(")") || toks[k].Is("]")) --depth;
        if (toks[k].Is("{") && depth == 0) {
          body_open = k;
          init_end = k;
          break;
        }
        // Brace-init members: Foo{...} inside the list.
        if (toks[k].Is("{") && depth > 0) ++depth;
        if (toks[k].Is("}")) --depth;
      }
    }
    if (body_open >= n) continue;

    size_t body_close = MatchingClose(toks, body_open);
    if (body_close >= n) continue;

    // Resolve the function's name and class.
    FunctionModel fn;
    fn.name = t.text;
    fn.file = tu.file;
    fn.line = t.line;
    if (i >= 2 && toks[i - 1].Is("::") && toks[i - 2].IsIdent()) {
      fn.cls = toks[i - 2].text;  // out-of-line member: Class::Name(
    } else {
      fn.cls = current_class();  // inline member or free function
    }
    fn.is_constructor = !fn.cls.empty() && fn.cls == fn.name;
    fn.qualified = fn.cls.empty() ? fn.name : fn.cls + "::" + fn.name;

    // Return type: nearest identifier to the left of the name, skipping
    // qualifiers, '*', '&', and '::' chains. Constructors have none.
    if (!fn.is_constructor) {
      size_t k = i;
      if (k >= 2 && toks[k - 1].Is("::")) k -= 2;  // hop over Class::
      while (k > 0) {
        const Token& p = toks[k - 1];
        if (p.Is("*") || p.Is("&") || IsTypeNoise(p.text)) {
          --k;
          continue;
        }
        if (p.IsIdent()) {
          fn.return_type = p.text;
        }
        break;
      }
      if (!fn.return_type.empty()) {
        tu.fn_return_types.emplace(fn.name, fn.return_type);
        tu.fn_return_types.emplace(fn.qualified, fn.return_type);
      }
    }

    // Parameter types also feed the var-type map (already captured by pass A
    // for `Type* name` shapes).

    // Body tokens: member-init list (if any) + braces..body.
    if (init_begin < init_end) {
      fn.tokens.insert(fn.tokens.end(), toks.begin() + init_begin,
                       toks.begin() + init_end);
      // Split the init list on top-level ','.
      int depth = 0;
      size_t stmt_start = 0;
      for (size_t k = 0; k < fn.tokens.size(); ++k) {
        const Token& tk = fn.tokens[k];
        if (tk.kind == TokenKind::kPunct) {
          if (tk.Is("(") || tk.Is("{") || tk.Is("[")) ++depth;
          if (tk.Is(")") || tk.Is("}") || tk.Is("]")) --depth;
          if (tk.Is(",") && depth == 0) {
            fn.statements.emplace_back(stmt_start, k);
            stmt_start = k + 1;
          }
        }
      }
      fn.statements.emplace_back(stmt_start, fn.tokens.size());
    }
    size_t body_tok_base = fn.tokens.size();
    fn.tokens.insert(fn.tokens.end(), toks.begin() + body_open,
                     toks.begin() + body_close + 1);

    // Split the body on ';' at paren depth 0. Brace depth is deliberately
    // ignored so `if (...) { throw X(...); }` glues the condition and the
    // throw into adjacent statements while keeping each ';' unit intact.
    {
      int depth = 0;
      size_t stmt_start = body_tok_base + 1;  // skip opening '{'
      for (size_t k = body_tok_base; k < fn.tokens.size(); ++k) {
        const Token& tk = fn.tokens[k];
        if (tk.kind != TokenKind::kPunct) continue;
        if (tk.Is("(") || tk.Is("[")) ++depth;
        if (tk.Is(")") || tk.Is("]")) --depth;
        if (tk.Is(";") && depth == 0) {
          if (k > stmt_start) fn.statements.emplace_back(stmt_start, k);
          stmt_start = k + 1;
        }
      }
      if (fn.tokens.size() > stmt_start + 1) {
        fn.statements.emplace_back(stmt_start, fn.tokens.size() - 1);
      }
    }

    // Per-function facts: read sites, callees, annotation brackets.
    for (size_t k = 0; k < fn.tokens.size(); ++k) {
      const Token& tk = fn.tokens[k];
      if (!tk.IsIdent()) continue;

      if (IsInitBracketIdent(tk.text)) fn.has_init_bracket = true;
      if (tk.text == "AnnotatedRefToClone" || tk.text == "RefToClone") {
        fn.uses_ref_to_clone = true;
      }

      bool is_call = k + 1 < fn.tokens.size() && fn.tokens[k + 1].Is("(");
      if (is_call && !IsControlKeyword(tk.text)) {
        fn.callees.push_back(tk.text);
      }

      // Read site: [.|->] Get*( first-arg ...
      if (is_call && IsGetMethod(tk.text) && k > 0 &&
          (fn.tokens[k - 1].Is(".") || fn.tokens[k - 1].Is("->"))) {
        ReadSite site;
        site.method = tk.text;
        site.file = tu.file;
        site.line = tk.line;
        site.function = fn.qualified;
        site.enclosing_class = fn.cls;
        if (k >= 2) {
          site.accessor = fn.tokens[k - 2].text;
        }
        // First argument: single identifier or string literal; anything more
        // complex is an unresolved (dynamic) read.
        if (k + 2 < fn.tokens.size()) {
          const Token& arg = fn.tokens[k + 2];
          const Token* after =
              k + 3 < fn.tokens.size() ? &fn.tokens[k + 3] : nullptr;
          bool simple = after && (after->Is(",") || after->Is(")"));
          if (arg.kind == TokenKind::kString && simple) {
            site.arg_token = arg.text;
            site.arg_is_literal = true;
            site.param = arg.text;
          } else if (arg.IsIdent() && simple) {
            site.arg_token = arg.text;
          } else {
            ++tu.unresolved_reads;
            continue;
          }
        }
        fn.read_sites.push_back(std::move(site));
      }
    }

    // Harvest node classes: init_scope_(kApp, this, "ClassName", ...) or
    // NodeInitScope scope(kApp, this, "ClassName", ...) — the first string
    // literal inside the bracket call's argument list. ZC_ANNOTATION_SITE is
    // deliberately excluded: it also brackets conf hooks inside the
    // Configuration library itself, which is not a node type.
    for (size_t k = 0; k + 1 < fn.tokens.size(); ++k) {
      if (!fn.tokens[k].IsIdent() ||
          (!fn.tokens[k].Is("NodeInitScope") &&
           !fn.tokens[k].Is("init_scope_"))) {
        continue;
      }
      // Find the '(' that starts the argument list (possibly after a
      // variable name for `NodeInitScope scope(...)`).
      size_t p = k + 1;
      if (p < fn.tokens.size() && fn.tokens[p].IsIdent()) ++p;
      if (p >= fn.tokens.size() || !fn.tokens[p].Is("(")) continue;
      int depth = 0;
      bool found_literal = false;
      for (size_t q = p; q < fn.tokens.size(); ++q) {
        if (fn.tokens[q].Is("(")) ++depth;
        if (fn.tokens[q].Is(")") && --depth == 0) break;
        if (fn.tokens[q].kind == TokenKind::kString) {
          tu.node_classes.insert(fn.tokens[q].text);
          found_literal = true;
          break;
        }
      }
      if (found_literal && !fn.cls.empty()) tu.node_classes.insert(fn.cls);
    }

    std::sort(fn.callees.begin(), fn.callees.end());
    fn.callees.erase(std::unique(fn.callees.begin(), fn.callees.end()),
                     fn.callees.end());
    fn.name_is_protocol = MatchesProtocolName(fn.name);
    tu.functions.push_back(std::move(fn));
    i = body_close;  // resume after the function body
  }

  return tu;
}

void ProgramModel::Merge(TuModel tu) {
  MergeShared(std::make_shared<TuModel>(std::move(tu)));
}

void MergedTable::Seal() const {
  if (sealed_) return;
  // Stable sort + keep-first dedup reproduces std::map::emplace merge
  // semantics: first appended occurrence of a key wins.
  std::stable_sort(entries_.begin(), entries_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.first < b.first;
                   });
  entries_.erase(std::unique(entries_.begin(), entries_.end(),
                             [](const Entry& a, const Entry& b) {
                               return a.first == b.first;
                             }),
                 entries_.end());
  sealed_ = true;
}

void MergedSet::Seal() const {
  if (sealed_) return;
  std::sort(keys_.begin(), keys_.end());
  keys_.erase(std::unique(keys_.begin(), keys_.end()), keys_.end());
  sealed_ = true;
}

void ProgramModel::MergeShared(std::shared_ptr<TuModel> tu) {
  param_constants.AppendFrom(tu->param_constants);
  node_classes.AppendFrom(tu->node_classes);
  var_types.AppendFrom(tu->var_types);
  fn_return_types.AppendFrom(tu->fn_return_types);
  classes_with_scope_member.AppendFrom(tu->classes_with_scope_member);
  markers.insert(markers.end(), tu->markers.begin(), tu->markers.end());
  unresolved_reads += tu->unresolved_reads;
  tus.push_back(std::move(tu));
}

void ProgramModel::Resolve() {
  for (const std::shared_ptr<TuModel>& tu : tus) {
    for (FunctionModel& fn : tu->functions) {
      for (ReadSite& site : fn.read_sites) {
        if (site.arg_is_literal || !site.param.empty()) continue;
        const std::string_view* value = param_constants.Find(site.arg_token);
        if (value != nullptr) {
          site.param = std::string(*value);
        } else {
          ++unresolved_reads;
        }
      }
    }
  }
}

std::vector<const ReadSite*> ProgramModel::AllReadSites() const {
  std::vector<const ReadSite*> sites;
  for (const std::shared_ptr<TuModel>& tu : tus) {
    for (const FunctionModel& fn : tu->functions) {
      for (const ReadSite& site : fn.read_sites) {
        if (!site.param.empty()) sites.push_back(&site);
      }
    }
  }
  return sites;
}

std::set<std::string> ProgramModel::ExternallyInitializedClasses() const {
  std::set<std::string> classes;
  for (const LintMarker& marker : markers) {
    if (marker.tag != "external-init") continue;
    // The class name is the first whitespace-delimited word of the argument.
    std::string word = marker.argument;
    size_t sp = word.find_first_of(" \t");
    if (sp != std::string::npos) word = word.substr(0, sp);
    if (!word.empty()) classes.insert(word);
  }
  return classes;
}

}  // namespace analysis
}  // namespace zebra
