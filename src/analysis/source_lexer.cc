#include "src/analysis/source_lexer.h"

#include <cctype>

namespace zebra {
namespace analysis {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators the analyzer cares about keeping whole. Longest
// match first within each leading character.
const char* const kPuncts[] = {
    "::", "->", "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "...",
};

size_t MatchPunct(std::string_view source, size_t pos) {
  for (const char* punct : kPuncts) {
    std::string_view p(punct);
    if (source.substr(pos, p.size()) == p) {
      return p.size();
    }
  }
  return 1;
}

}  // namespace

std::vector<Token> LexCpp(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto advance_line = [&](char c) {
    if (c == '\n') {
      ++line;
    }
  };

  while (i < n) {
    char c = source[i];

    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') {
        ++i;
      }
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        advance_line(source[i]);
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }

    // Preprocessor directive: drop to end of line (honoring continuations).
    if (c == '#' && (tokens.empty() || tokens.back().line != line ||
                     true /* column-0 heuristic not needed */)) {
      while (i < n) {
        if (source[i] == '\\' && i + 1 < n && source[i + 1] == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (source[i] == '\n') {
          break;
        }
        ++i;
      }
      continue;
    }

    // String literal (handles escapes; raw strings handled crudely but
    // safely: R"( ... )" with empty delimiter).
    if (c == '"' || (c == 'R' && i + 1 < n && source[i + 1] == '"')) {
      Token token;
      token.kind = TokenKind::kString;
      token.line = line;
      if (c == 'R') {
        // Raw string: R"delim( ... )delim"
        size_t paren = source.find('(', i + 2);
        if (paren == std::string_view::npos) {
          ++i;
          continue;
        }
        std::string delim(source.substr(i + 2, paren - (i + 2)));
        std::string closer = ")" + delim + "\"";
        size_t end = source.find(closer, paren + 1);
        if (end == std::string_view::npos) {
          end = n;
        }
        token.text = std::string(source.substr(paren + 1, end - paren - 1));
        for (char rc : source.substr(i, end - i)) {
          advance_line(rc);
        }
        i = (end == n) ? n : end + closer.size();
      } else {
        ++i;  // opening quote
        std::string value;
        while (i < n && source[i] != '"') {
          if (source[i] == '\\' && i + 1 < n) {
            value.push_back(source[i + 1]);
            i += 2;
            continue;
          }
          advance_line(source[i]);
          value.push_back(source[i]);
          ++i;
        }
        ++i;  // closing quote
        token.text = std::move(value);
      }
      tokens.push_back(std::move(token));
      continue;
    }

    // Character literal.
    if (c == '\'') {
      Token token;
      token.kind = TokenKind::kChar;
      token.line = line;
      ++i;
      std::string value;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\\' && i + 1 < n) {
          value.push_back(source[i + 1]);
          i += 2;
          continue;
        }
        value.push_back(source[i]);
        ++i;
      }
      ++i;
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }

    // Number (digits plus the usual suffix/infix soup; precision is not
    // needed, only that the blob stays one token).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token token;
      token.kind = TokenKind::kNumber;
      token.line = line;
      size_t start = i;
      while (i < n && (IsIdentChar(source[i]) || source[i] == '.' ||
                       ((source[i] == '+' || source[i] == '-') && i > start &&
                        (source[i - 1] == 'e' || source[i - 1] == 'E')))) {
        ++i;
      }
      token.text = std::string(source.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }

    // Identifier / keyword.
    if (IsIdentStart(c)) {
      Token token;
      token.kind = TokenKind::kIdentifier;
      token.line = line;
      size_t start = i;
      while (i < n && IsIdentChar(source[i])) {
        ++i;
      }
      token.text = std::string(source.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }

    // Punctuator.
    Token token;
    token.kind = TokenKind::kPunct;
    token.line = line;
    size_t len = MatchPunct(source, i);
    token.text = std::string(source.substr(i, len));
    i += len;
    tokens.push_back(std::move(token));
  }

  return tokens;
}

std::vector<LintMarker> CollectLintMarkers(std::string_view source) {
  std::vector<LintMarker> markers;
  constexpr std::string_view kPrefix = "zebralint(";
  int line = 1;
  for (size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '\n') {
      ++line;
      continue;
    }
    if (source.compare(i, kPrefix.size(), kPrefix) != 0) {
      continue;
    }
    size_t tag_start = i + kPrefix.size();
    size_t tag_end = source.find(')', tag_start);
    if (tag_end == std::string_view::npos) {
      continue;
    }
    LintMarker marker;
    marker.tag = std::string(source.substr(tag_start, tag_end - tag_start));
    marker.line = line;
    size_t rest = tag_end + 1;
    if (rest < source.size() && source[rest] == ':') {
      ++rest;
    }
    size_t eol = source.find('\n', rest);
    if (eol == std::string_view::npos) {
      eol = source.size();
    }
    std::string argument(source.substr(rest, eol - rest));
    // Trim.
    size_t first = argument.find_first_not_of(" \t");
    size_t last = argument.find_last_not_of(" \t\r");
    marker.argument = first == std::string::npos
                          ? ""
                          : argument.substr(first, last - first + 1);
    markers.push_back(std::move(marker));
    i = tag_end;
  }
  return markers;
}

}  // namespace analysis
}  // namespace zebra
