#include "src/analysis/source_lexer.h"

#include <cctype>

namespace zebra {
namespace analysis {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Multi-character punctuators the analyzer cares about keeping whole. Longest
// match first within each leading character.
const char* const kPuncts[] = {
    "::", "->", "<<=", ">>=", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "++", "--", "...",
};

size_t MatchPunct(std::string_view source, size_t pos) {
  for (const char* punct : kPuncts) {
    std::string_view p(punct);
    if (source.substr(pos, p.size()) == p) {
      return p.size();
    }
  }
  return 1;
}

// Backslash-newline splice (physical line continuation). Splicing happens
// before tokenization in real C++, so it may appear mid-identifier, inside a
// string literal, or between tokens; everywhere it contributes one physical
// line and zero characters. Returns the spliced length (2, or 3 for \r\n).
bool IsSplice(std::string_view source, size_t pos, size_t* len) {
  if (pos + 1 >= source.size() || source[pos] != '\\') {
    return false;
  }
  if (source[pos + 1] == '\n') {
    *len = 2;
    return true;
  }
  if (pos + 2 < source.size() && source[pos + 1] == '\r' &&
      source[pos + 2] == '\n') {
    *len = 3;
    return true;
  }
  return false;
}

// Recognizes a string-literal introducer at `pos`: an optional encoding
// prefix (u8, u, U, L), an optional R (raw string), then the opening quote.
// Only called at token boundaries, so an identifier merely *ending* in one of
// the prefixes is never mistaken for an introducer. Sets *prefix_len to the
// number of characters before the quote and *raw accordingly.
bool MatchStringIntro(std::string_view source, size_t pos, size_t* prefix_len,
                      bool* raw) {
  size_t p = pos;
  for (std::string_view enc : {"u8", "u", "U", "L"}) {
    if (source.substr(p, enc.size()) == enc) {
      p += enc.size();
      break;
    }
  }
  *raw = p < source.size() && source[p] == 'R';
  if (*raw) {
    ++p;
  }
  if (p >= source.size() || source[p] != '"') {
    return false;
  }
  *prefix_len = p - pos;
  return true;
}

}  // namespace

std::vector<Token> LexCpp(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  size_t i = 0;
  const size_t n = source.size();

  auto advance_line = [&](char c) {
    if (c == '\n') {
      ++line;
    }
  };

  while (i < n) {
    char c = source[i];

    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Line continuation between tokens: consume, count the physical line.
    {
      size_t splice_len = 0;
      if (IsSplice(source, i, &splice_len)) {
        ++line;
        i += splice_len;
        continue;
      }
    }

    // Line comment (a trailing splice continues the comment).
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      while (i < n && source[i] != '\n') {
        size_t splice_len = 0;
        if (IsSplice(source, i, &splice_len)) {
          ++line;
          i += splice_len;
          continue;
        }
        ++i;
      }
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(source[i] == '*' && source[i + 1] == '/')) {
        advance_line(source[i]);
        ++i;
      }
      i = (i + 1 < n) ? i + 2 : n;
      continue;
    }

    // Preprocessor directive: drop to end of line (honoring continuations).
    if (c == '#' && (tokens.empty() || tokens.back().line != line ||
                     true /* column-0 heuristic not needed */)) {
      while (i < n) {
        size_t splice_len = 0;
        if (IsSplice(source, i, &splice_len)) {
          ++line;
          i += splice_len;
          continue;
        }
        if (source[i] == '\n') {
          break;
        }
        ++i;
      }
      continue;
    }

    // String literal: optional encoding prefix, optional raw marker. The old
    // lexer only recognized unprefixed R"..." — u8R/uR/UR/LR raw strings fell
    // into the identifier path and their bodies were then lexed as code,
    // fabricating tokens (and read sites) out of literal text.
    {
      size_t prefix_len = 0;
      bool raw = false;
      if (MatchStringIntro(source, i, &prefix_len, &raw)) {
        Token token;
        token.kind = TokenKind::kString;
        token.line = line;
        if (raw) {
          // Raw string: [prefix]R"delim( ... )delim". No escapes, no
          // splicing inside — the body is taken verbatim.
          size_t delim_start = i + prefix_len + 1;  // past the opening quote
          size_t paren = source.find('(', delim_start);
          if (paren == std::string_view::npos) {
            ++i;
            continue;
          }
          std::string delim(source.substr(delim_start, paren - delim_start));
          std::string closer = ")" + delim + "\"";
          size_t end = source.find(closer, paren + 1);
          if (end == std::string_view::npos) {
            end = n;
          }
          token.text = std::string(source.substr(paren + 1, end - paren - 1));
          for (char rc : source.substr(i, end - i)) {
            advance_line(rc);
          }
          i = (end == n) ? n : end + closer.size();
        } else {
          i += prefix_len + 1;  // prefix and opening quote
          std::string value;
          while (i < n && source[i] != '"') {
            if (source[i] == '\\' && i + 1 < n) {
              size_t splice_len = 0;
              if (IsSplice(source, i, &splice_len)) {
                ++line;
                i += splice_len;
                continue;
              }
              value.push_back(source[i + 1]);
              i += 2;
              continue;
            }
            advance_line(source[i]);
            value.push_back(source[i]);
            ++i;
          }
          ++i;  // closing quote
          token.text = std::move(value);
        }
        tokens.push_back(std::move(token));
        continue;
      }
    }

    // Character literal.
    if (c == '\'') {
      Token token;
      token.kind = TokenKind::kChar;
      token.line = line;
      ++i;
      std::string value;
      while (i < n && source[i] != '\'') {
        if (source[i] == '\\' && i + 1 < n) {
          size_t splice_len = 0;
          if (IsSplice(source, i, &splice_len)) {
            ++line;
            i += splice_len;
            continue;
          }
          value.push_back(source[i + 1]);
          i += 2;
          continue;
        }
        value.push_back(source[i]);
        ++i;
      }
      ++i;
      token.text = std::move(value);
      tokens.push_back(std::move(token));
      continue;
    }

    // Number (digits plus the usual suffix/infix soup; precision is not
    // needed, only that the blob stays one token, even across a splice).
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token token;
      token.kind = TokenKind::kNumber;
      token.line = line;
      std::string text;
      while (i < n) {
        size_t splice_len = 0;
        if (IsSplice(source, i, &splice_len)) {
          ++line;
          i += splice_len;
          continue;
        }
        char nc = source[i];
        if (!(IsIdentChar(nc) || nc == '.' ||
              ((nc == '+' || nc == '-') && !text.empty() &&
               (text.back() == 'e' || text.back() == 'E')))) {
          break;
        }
        text.push_back(nc);
        ++i;
      }
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }

    // Identifier / keyword. A splice mid-identifier joins the halves into one
    // token (the old lexer split them, fabricating two bogus identifiers).
    if (IsIdentStart(c)) {
      Token token;
      token.kind = TokenKind::kIdentifier;
      token.line = line;
      std::string text;
      while (i < n) {
        size_t splice_len = 0;
        if (IsSplice(source, i, &splice_len)) {
          ++line;
          i += splice_len;
          continue;
        }
        if (!IsIdentChar(source[i])) {
          break;
        }
        text.push_back(source[i]);
        ++i;
      }
      token.text = std::move(text);
      tokens.push_back(std::move(token));
      continue;
    }

    // Punctuator.
    Token token;
    token.kind = TokenKind::kPunct;
    token.line = line;
    size_t len = MatchPunct(source, i);
    token.text = std::string(source.substr(i, len));
    i += len;
    tokens.push_back(std::move(token));
  }

  return tokens;
}

std::vector<LintMarker> CollectLintMarkers(std::string_view source) {
  std::vector<LintMarker> markers;
  constexpr std::string_view kPrefix = "zebralint(";
  int line = 1;
  for (size_t i = 0; i < source.size(); ++i) {
    if (source[i] == '\n') {
      ++line;
      continue;
    }
    if (source.compare(i, kPrefix.size(), kPrefix) != 0) {
      continue;
    }
    size_t tag_start = i + kPrefix.size();
    size_t tag_end = source.find(')', tag_start);
    if (tag_end == std::string_view::npos) {
      continue;
    }
    LintMarker marker;
    marker.tag = std::string(source.substr(tag_start, tag_end - tag_start));
    marker.line = line;
    size_t rest = tag_end + 1;
    if (rest < source.size() && source[rest] == ':') {
      ++rest;
    }
    size_t eol = source.find('\n', rest);
    if (eol == std::string_view::npos) {
      eol = source.size();
    }
    std::string argument(source.substr(rest, eol - rest));
    // Trim.
    size_t first = argument.find_first_not_of(" \t");
    size_t last = argument.find_last_not_of(" \t\r");
    marker.argument = first == std::string::npos
                          ? ""
                          : argument.substr(first, last - first + 1);
    markers.push_back(std::move(marker));
    i = tag_end;
  }
  return markers;
}

}  // namespace analysis
}  // namespace zebra
