// SummaryCache: persistent per-TU analysis summaries for incremental
// zebralint runs.
//
// Lexing and extraction dominate a cold self-scan; both are pure functions of
// one file's bytes. The cache therefore keys each TU by the FNV-1a hash of
// its content and stores
//
//   * the token-free TuModel — every field downstream passes consume
//     (read sites with the *unresolved* argument token, callees, annotation
//     flags, constant/type tables, markers) except the token stream itself,
//   * the per-function statement facts (flow_graph.h StmtFacts), which are
//     the only thing the flow graph ever derives from tokens.
//
// Statement facts additionally depend on the merged program tables (a new
// param constant in file A can resolve a read in untouched file B), so the
// whole cache is tagged with ProgramTableHash: summaries are served only
// under the same table hash; a mismatch degrades to a full re-parse — the
// cache can make analysis faster, never different.
//
// File format follows the RunCache v2 discipline: a magic line, line-oriented
// records, and a trailing "C <fnv64 hex>" whole-file checksum. Any defect —
// bad magic, torn write, checksum mismatch, malformed record — rejects the
// file wholesale: the cache stays empty, Stats::load_failures increments, and
// analysis proceeds cold. Corruption must never produce a wrong prior.

#ifndef SRC_ANALYSIS_SUMMARY_CACHE_H_
#define SRC_ANALYSIS_SUMMARY_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/flow_graph.h"
#include "src/analysis/read_site_extractor.h"

namespace zebra {
namespace analysis {

class SummaryCache {
 public:
  struct TuEntry {
    uint64_t content_hash = 0;
    // Token-free: tokens/statements of every function empty. Resolved param
    // names are KEPT — they are valid exactly when the table hash matches,
    // which is the only condition under which the entry is ever served. Held
    // by shared pointer so ProgramModel::MergeShared can borrow it without
    // copying; served models are never mutated (see MergeShared's contract).
    std::shared_ptr<TuModel> model;
    // Parallel to model->functions.
    std::vector<std::vector<StmtFacts>> fn_facts;
  };

  struct Stats {
    // Corrupt/truncated cache files rejected by LoadFromFile. Mirrors
    // RunCache::Stats::load_failures: a health signal, never cleared.
    int64_t load_failures = 0;
  };

  // Table hash the stored summaries were computed under.
  uint64_t table_hash() const { return table_hash_; }
  void set_table_hash(uint64_t hash) { table_hash_ = hash; }

  // Returns the entry for `path` iff its content hash matches, else null.
  const TuEntry* Lookup(const std::string& path, uint64_t content_hash) const;

  // Replaces the entry for `path`. `model` is stripped of tokens/statements
  // before storage.
  void Put(const std::string& path, uint64_t content_hash, const TuModel& model,
           std::vector<std::vector<StmtFacts>> fn_facts);

  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }

  // Persistence. Load replaces the current contents; a failed load leaves the
  // cache empty and increments load_failures (except for a missing file — the
  // normal cold-start case). Both return false on failure.
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

  const Stats& stats() const { return stats_; }

 private:
  std::map<std::string, TuEntry> entries_;  // path -> entry, sorted for saves
  uint64_t table_hash_ = 0;
  Stats stats_;
};

}  // namespace analysis
}  // namespace zebra

#endif  // SRC_ANALYSIS_SUMMARY_CACHE_H_
