// zebralint's top layer: runs the extractor and taint pass over a source
// tree (or in-memory fixtures), cross-checks the result against ConfSchema,
// and packages everything as a StaticPriorReport — the static signal the
// dynamic campaign consumes.
//
// The report plays two roles, mirroring ZebraConf §8's "static analysis can
// shrink the dynamic search space" remark:
//   * pruning  — schema parameters with zero read sites cannot influence any
//     behavior, so TestGenerator drops them before enumeration (a Table-5
//     style stage with its own instance count);
//   * ranking  — wire-tainted parameters are tested first; they are where
//     het-unsafe behavior can live, so true detections surface earlier.
//
// It also carries the lint findings proper (schema/annotation drift) for the
// `zebralint --check` CI gate.

#ifndef SRC_ANALYSIS_STATIC_PRIOR_H_
#define SRC_ANALYSIS_STATIC_PRIOR_H_

#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/taint_pass.h"
#include "src/conf/conf_schema.h"

namespace zebra {
namespace analysis {

// Priority bands used by TestGenerator. Larger runs earlier.
inline constexpr double kPriorityWire = 2.0;
inline constexpr double kPriorityLocal = 1.0;
inline constexpr double kPriorityNeverRead = 0.0;

struct SiteRef {
  std::string file;
  int line = 0;
  std::string function;
  std::string enclosing_class;
};

struct ParamProfile {
  std::string param;
  std::vector<SiteRef> read_sites;
  bool in_schema = false;
  bool wire_tainted = false;
  std::vector<std::string> taint_reasons;
  double priority = kPriorityLocal;
};

enum class DriftKind {
  kReadNotInSchema,   // a read site names a parameter the schema lacks
  kAnnotationDrift,   // a constructor reads config without an init bracket
};

struct DriftFinding {
  DriftKind kind;
  std::string subject;  // parameter name or Class::Class
  std::string message;
  std::string file;
  int line = 0;
};

struct StaticPriorReport {
  // Every parameter that is in the schema or has a resolved read site.
  std::map<std::string, ParamProfile> params;

  // Hard findings: `zebralint --check` fails when non-empty.
  std::vector<DriftFinding> errors;

  // Schema parameters with zero read sites — the static prune set. A
  // warning, not an error: unread parameters are legitimate (and are exactly
  // what pruning removes).
  std::vector<std::string> never_read;

  std::set<std::string> protocol_surfaces;
  std::map<std::string, int> read_sites_per_app;  // "minidfs" -> count
  int files_scanned = 0;
  int unresolved_reads = 0;

  bool HasErrors() const { return !errors.empty(); }

  const ParamProfile* Find(const std::string& param) const;
  bool IsWireTainted(const std::string& param) const;
  bool IsNeverRead(const std::string& param) const;
  // kPriorityLocal for parameters the analysis has never heard of, so a
  // missing profile never prunes anything.
  double PriorityOf(const std::string& param) const;

  std::vector<std::string> WireTaintedParams() const;
};

// Front end. Feed sources (from disk or as fixture strings), then Analyze.
class StaticAnalyzer {
 public:
  // Registers an in-memory source (tests use this with synthetic paths like
  // "src/apps/minidfs/data_node.cc" — app attribution comes from the path).
  void AddSource(const std::string& path, std::string_view content);

  // Scans `root`/src/apps and `root`/src/conf recursively for .h/.cc files.
  // Returns the number of files read.
  int AddTree(const std::string& root);

  // Runs extraction + taint + schema cross-checks. `schema` may be null
  // (analysis-only mode: no prune set, no read-not-in-schema findings).
  StaticPriorReport Analyze(const ConfSchema* schema) const;

 private:
  std::vector<std::pair<std::string, std::string>> sources_;  // path, content
};

// Report serialization for the zebralint CLI.
std::string ReportToJson(const StaticPriorReport& report);
std::string ReportToText(const StaticPriorReport& report);

}  // namespace analysis
}  // namespace zebra

#endif  // SRC_ANALYSIS_STATIC_PRIOR_H_
