// zebralint's top layer: runs the extractor and config-flow graph over a
// source tree (or in-memory fixtures), cross-checks the result against
// ConfSchema, and packages everything as a StaticPriorReport — the static
// signal the dynamic campaign consumes.
//
// The report plays three roles, mirroring ZebraConf §8's "static analysis can
// shrink the dynamic search space" remark:
//   * pruning  — schema parameters with zero read sites cannot influence any
//     behavior, so TestGenerator drops them before enumeration (a Table-5
//     style stage with its own instance count);
//   * ranking  — wire-tainted parameters are tested first, ordered by the
//     sink-type spectrum (a parameter guarding a deadline outranks one merely
//     copied into a frame), so true detections surface earlier;
//   * coupling — parameters reaching the same sink statement or wire path
//     seed pairwise combination plans in TestGenerator.
//
// It also carries the lint findings proper (schema/annotation drift) for the
// `zebralint --check` CI gate, and — via EnableSummaryCache — supports
// incremental re-analysis: unchanged TUs are served from a checksummed
// summary cache so touching one file re-parses only that file.
//
// Serialization is deterministic: params, sites, reasons, sink types, and
// coupling sets are all emitted in stable sorted order, so byte-identical
// trees produce byte-identical reports (golden-file tested).

#ifndef SRC_ANALYSIS_STATIC_PRIOR_H_
#define SRC_ANALYSIS_STATIC_PRIOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "src/analysis/flow_graph.h"
#include "src/analysis/summary_cache.h"
#include "src/analysis/taint_pass.h"
#include "src/conf/conf_schema.h"

namespace zebra {
namespace analysis {

// Priority bands used by TestGenerator. Larger runs earlier. Sink typing
// refines the wire band into a spectrum: kPriorityWire is the wire-tainted
// *floor*, with per-sink-type bonuses stacked on top (timer/deadline flows
// highest — a misaligned deadline guard is the classic het-unsafe failure),
// bounded below kPriorityWireCeiling. Node-local parameters sit at
// kPriorityLocal, with a small bump when they feed persistence sinks.
inline constexpr double kPriorityWire = 2.0;
inline constexpr double kPriorityLocal = 1.0;
inline constexpr double kPriorityNeverRead = 0.0;
inline constexpr double kPriorityWireCeiling = 3.0;

// The spectrum refinement for a parameter with the given verdict.
double SpectrumPriority(bool wire_tainted, SinkMask sink_mask);

struct SiteRef {
  std::string file;
  int line = 0;
  std::string function;
  std::string enclosing_class;
};

struct ParamProfile {
  std::string param;
  std::vector<SiteRef> read_sites;  // sorted by (file, line, function)
  bool in_schema = false;
  bool wire_tainted = false;
  std::vector<std::string> taint_reasons;
  double priority = kPriorityLocal;

  // Flow-graph refinements.
  SinkMask sink_mask = 0;               // union of sink types reached
  std::set<std::string> wire_paths;     // protocol surfaces reading this param
  // FNV-1a over the sorted "file:line:function" read sites — the read
  // surface fingerprint `zebralint --diff` compares across revisions.
  uint64_t surface_hash = 0;
};

enum class DriftKind {
  kReadNotInSchema,   // a read site names a parameter the schema lacks
  kAnnotationDrift,   // a constructor reads config without an init bracket
};

struct DriftFinding {
  DriftKind kind;
  std::string subject;  // parameter name or Class::Class
  std::string message;
  std::string file;
  int line = 0;
};

// How the inputs were obtained — the incremental-analysis accounting the
// bench and the summary-cache tests assert on.
struct AnalyzeStats {
  int tus_total = 0;
  int tus_parsed = 0;       // full lex + extract
  int tus_from_cache = 0;   // served by the summary cache
  int facts_computed = 0;   // functions whose statement facts were recomputed
  int facts_from_cache = 0;
  // The merged table hash differed from the cache's: every summary was
  // discarded and the analysis ran cold (correctness over speed).
  bool table_hash_invalidated = false;
  // Corrupt/truncated summary-cache files rejected at load (mirrors
  // RunCache's cache_load_failures discipline).
  int64_t summary_load_failures = 0;
};

struct StaticPriorReport {
  // Every parameter that is in the schema or has a resolved read site.
  std::map<std::string, ParamProfile> params;

  // Hard findings: `zebralint --check` fails when non-empty.
  std::vector<DriftFinding> errors;

  // Schema parameters with zero read sites — the static prune set. A
  // warning, not an error: unread parameters are legitimate (and are exactly
  // what pruning removes).
  std::vector<std::string> never_read;

  std::set<std::string> protocol_surfaces;
  std::map<std::string, int> read_sites_per_app;  // "minidfs" -> count

  // Parameters reaching the same sink statement or wire path: each set
  // sorted, the list sorted, sizes in [2, kMaxCouplingSetSize]. Seeds
  // TestGenerator's pairwise combination plans.
  std::vector<std::vector<std::string>> coupling_sets;
  int coupling_sets_dropped = 0;

  int files_scanned = 0;
  int unresolved_reads = 0;
  int64_t graph_nodes = 0;
  int64_t graph_edges = 0;
  uint64_t table_hash = 0;

  bool HasErrors() const { return !errors.empty(); }

  const ParamProfile* Find(const std::string& param) const;
  bool IsWireTainted(const std::string& param) const;
  bool IsNeverRead(const std::string& param) const;
  // kPriorityLocal for parameters the analysis has never heard of, so a
  // missing profile never prunes anything.
  double PriorityOf(const std::string& param) const;

  std::vector<std::string> WireTaintedParams() const;

  // Coupling sets restricted to parameters of `params` (those a given app
  // actually read in its pre-run), preserving report order.
  std::vector<std::vector<std::string>> CouplingSetsAmong(
      const std::set<std::string>& params) const;
};

// Front end. Feed sources (from disk or as fixture strings), then Analyze.
class StaticAnalyzer {
 public:
  StaticAnalyzer();
  ~StaticAnalyzer();

  // Registers an in-memory source (tests use this with synthetic paths like
  // "src/apps/minidfs/data_node.cc" — app attribution comes from the path).
  void AddSource(const std::string& path, std::string_view content);

  // Scans `root`/src/apps and `root`/src/conf recursively for .h/.cc files.
  // Returns the number of files read.
  int AddTree(const std::string& root);

  // Incremental mode: load per-TU summaries from `path` (if present), serve
  // unchanged TUs from them during Analyze, and rewrite the file afterwards.
  // A corrupt file degrades to a cold analysis (AnalyzeStats counts it).
  // Returns true when an existing valid cache was loaded.
  bool EnableSummaryCache(const std::string& path);

  // Incremental mode without persistence: share an external in-memory cache
  // (bench and tests). The caller keeps ownership.
  void UseSummaryCache(SummaryCache* cache);

  // Runs extraction + flow graph + schema cross-checks. `schema` may be null
  // (analysis-only mode: no prune set, no read-not-in-schema findings).
  StaticPriorReport Analyze(const ConfSchema* schema) const;

  // Accounting for the most recent Analyze call.
  const AnalyzeStats& stats() const { return stats_; }

 private:
  std::vector<std::pair<std::string, std::string>> sources_;  // path, content
  SummaryCache* external_cache_ = nullptr;
  std::unique_ptr<SummaryCache> owned_cache_;
  std::string cache_path_;
  mutable AnalyzeStats stats_;
};

// Report serialization for the zebralint CLI. Byte-stable: the same report
// always serializes to the same bytes.
std::string ReportToJson(const StaticPriorReport& report);
std::string ReportToText(const StaticPriorReport& report);

}  // namespace analysis
}  // namespace zebra

#endif  // SRC_ANALYSIS_STATIC_PRIOR_H_
