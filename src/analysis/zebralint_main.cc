// zebralint CLI: static config-flow report + CI drift gate.
//
//   zebralint [--root DIR] [--json] [--check] [--no-schema]
//
// Scans DIR/src/apps and DIR/src/conf (DIR defaults to the source tree this
// binary was built from), cross-checks against the full registered schema,
// and prints a text (default) or JSON report. With --check the exit code is
// nonzero when schema or annotation drift is found, so CI can gate on it.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/analysis/static_prior.h"
#include "src/testkit/full_schema.h"

#ifndef ZEBRALINT_SOURCE_ROOT
#define ZEBRALINT_SOURCE_ROOT "."
#endif

namespace {

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--root DIR] [--json] [--check] [--no-schema]\n"
               "  --root DIR   source tree to scan (default: %s)\n"
               "  --json       emit the JSON report instead of text\n"
               "  --check      exit 1 on schema/annotation drift (CI gate)\n"
               "  --no-schema  skip ConfSchema cross-checks\n",
               argv0, ZEBRALINT_SOURCE_ROOT);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ZEBRALINT_SOURCE_ROOT;
  bool json = false;
  bool check = false;
  bool use_schema = true;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--no-schema") == 0) {
      use_schema = false;
    } else {
      return Usage(argv[0]);
    }
  }

  zebra::analysis::StaticAnalyzer analyzer;
  int files = analyzer.AddTree(root);
  if (files == 0) {
    std::fprintf(stderr, "zebralint: no sources found under %s/src\n",
                 root.c_str());
    return 2;
  }

  const zebra::ConfSchema* schema =
      use_schema ? &zebra::FullSchema() : nullptr;
  zebra::analysis::StaticPriorReport report = analyzer.Analyze(schema);

  std::string out = json ? zebra::analysis::ReportToJson(report)
                         : zebra::analysis::ReportToText(report);
  std::fputs(out.c_str(), stdout);

  if (check && report.HasErrors()) {
    std::fprintf(stderr, "zebralint: %zu drift error(s) found\n",
                 report.errors.size());
    return 1;
  }
  return 0;
}
