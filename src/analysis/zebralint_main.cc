// zebralint CLI: static config-flow report + CI drift gate + prior diffing.
//
//   zebralint [--root DIR] [--json] [--check] [--no-schema]
//             [--summary-cache FILE] [--diff OLD_PRIOR.json] [--stats]
//
// Scans DIR/src/apps and DIR/src/conf (DIR defaults to the source tree this
// binary was built from), cross-checks against the full registered schema,
// and prints a text (default) or JSON report. With --check the exit code is
// nonzero when schema or annotation drift is found, so CI can gate on it.
//
// --summary-cache enables incremental analysis: per-TU summaries are loaded
// from FILE (when present and valid) and rewritten afterwards, so re-running
// after touching one file re-parses only that file.
//
// --diff compares the fresh analysis against a previously saved
// `zebralint --json` artifact and prints a StaticPriorDiff (text, or JSON
// with --json) instead of the full report. With --check the exit code is
// nonzero when the diff is non-empty — the CI smoke gate asserts an empty
// diff on an unchanged tree. The JSON diff's "impacted" list feeds
// `full_campaign --impacted-only`.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/analysis/prior_diff.h"
#include "src/analysis/static_prior.h"
#include "src/testkit/full_schema.h"

#ifndef ZEBRALINT_SOURCE_ROOT
#define ZEBRALINT_SOURCE_ROOT "."
#endif

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--root DIR] [--json] [--check] [--no-schema]\n"
      "          [--summary-cache FILE] [--diff OLD_PRIOR.json] [--stats]\n"
      "  --root DIR            source tree to scan (default: %s)\n"
      "  --json                emit JSON instead of text (report or diff)\n"
      "  --check               exit 1 on drift — or, with --diff, on a\n"
      "                        non-empty diff (CI gates)\n"
      "  --no-schema           skip ConfSchema cross-checks\n"
      "  --summary-cache FILE  incremental analysis: load/store per-TU\n"
      "                        summaries (corrupt files degrade to cold)\n"
      "  --diff FILE           diff against a saved `zebralint --json`\n"
      "                        artifact instead of printing the report\n"
      "  --stats               print analysis accounting to stderr\n",
      argv0, ZEBRALINT_SOURCE_ROOT);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ZEBRALINT_SOURCE_ROOT;
  std::string cache_path;
  std::string diff_path;
  bool json = false;
  bool check = false;
  bool use_schema = true;
  bool stats = false;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--no-schema") == 0) {
      use_schema = false;
    } else if (std::strcmp(argv[i], "--summary-cache") == 0 && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (std::strcmp(argv[i], "--diff") == 0 && i + 1 < argc) {
      diff_path = argv[++i];
    } else if (std::strcmp(argv[i], "--stats") == 0) {
      stats = true;
    } else {
      return Usage(argv[0]);
    }
  }

  zebra::analysis::StaticAnalyzer analyzer;
  int files = analyzer.AddTree(root);
  if (files == 0) {
    std::fprintf(stderr, "zebralint: no sources found under %s/src\n",
                 root.c_str());
    return 2;
  }
  if (!cache_path.empty()) {
    analyzer.EnableSummaryCache(cache_path);
  }

  const zebra::ConfSchema* schema =
      use_schema ? &zebra::FullSchema() : nullptr;
  zebra::analysis::StaticPriorReport report = analyzer.Analyze(schema);

  if (stats) {
    const zebra::analysis::AnalyzeStats& s = analyzer.stats();
    std::fprintf(stderr,
                 "zebralint: %d TUs (%d parsed, %d from cache), "
                 "%d facts computed, %d from cache%s%s\n",
                 s.tus_total, s.tus_parsed, s.tus_from_cache, s.facts_computed,
                 s.facts_from_cache,
                 s.table_hash_invalidated ? ", table hash invalidated" : "",
                 s.summary_load_failures > 0 ? ", cache load failure" : "");
  }

  if (!diff_path.empty()) {
    zebra::analysis::StaticPriorDiff diff;
    std::string error;
    if (!zebra::analysis::DiffAgainstFile(diff_path, report, &diff, &error)) {
      std::fprintf(stderr, "zebralint: %s\n", error.c_str());
      return 2;
    }
    std::string out = json ? zebra::analysis::DiffToJson(diff)
                           : zebra::analysis::DiffToText(diff);
    std::fputs(out.c_str(), stdout);
    if (check && !diff.Empty()) {
      std::fprintf(stderr, "zebralint: static prior changed (%zu impacted)\n",
                   diff.ImpactedParams().size());
      return 1;
    }
    return 0;
  }

  std::string out = json ? zebra::analysis::ReportToJson(report)
                         : zebra::analysis::ReportToText(report);
  std::fputs(out.c_str(), stdout);

  if (check && report.HasErrors()) {
    std::fprintf(stderr, "zebralint: %zu drift error(s) found\n",
                 report.errors.size());
    return 1;
  }
  return 0;
}
