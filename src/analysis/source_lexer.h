// zebralint's lexical front end: a minimal C++ tokenizer (no libclang).
//
// The analyzer never needs a full parse — every property it extracts (read
// sites, call sites, constant tables, annotation brackets) is visible at the
// token level once comments, preprocessor lines, and literals are normalized.
// The lexer therefore produces a flat token stream with line numbers, plus the
// `// zebralint(tag): ...` suppression markers that live *inside* comments and
// must be harvested before the comments are dropped.

#ifndef SRC_ANALYSIS_SOURCE_LEXER_H_
#define SRC_ANALYSIS_SOURCE_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace zebra {
namespace analysis {

enum class TokenKind {
  kIdentifier,  // identifiers and keywords
  kString,      // string literal, text holds the unquoted contents
  kChar,        // character literal
  kNumber,      // numeric literal
  kPunct,       // one operator/punctuator per token ("::", "->", "==", ...)
};

struct Token {
  TokenKind kind = TokenKind::kPunct;
  std::string text;
  int line = 0;

  bool Is(std::string_view t) const { return text == t; }
  bool IsIdent() const { return kind == TokenKind::kIdentifier; }
};

// Tokenizes C++ source. Comments and preprocessor directives are dropped;
// adjacent string literals are NOT merged (call sites never need it). The
// lexer is total: unknown bytes become single-character punctuators.
std::vector<Token> LexCpp(std::string_view source);

// A `zebralint(tag): argument` marker found in a comment, e.g.
//   // zebralint(external-init): TaskManager is bracketed at call sites
struct LintMarker {
  std::string tag;       // "external-init"
  std::string argument;  // free text after the colon
  int line = 0;
};

// Harvests markers from comments (runs on the raw source, before LexCpp
// consumers drop comments).
std::vector<LintMarker> CollectLintMarkers(std::string_view source);

}  // namespace analysis
}  // namespace zebra

#endif  // SRC_ANALYSIS_SOURCE_LEXER_H_
