// zebralint's taint pass: classifies every configuration parameter with at
// least one read site as WIRE-TAINTED (its value can influence bytes, tokens,
// timing, or errors observed by another node) or NODE-LOCAL (it only shapes
// state private to the reading node).
//
// This is the static realization of ZebraConf's core observation: a
// heterogeneous-unsafe parameter must have a read site whose value escapes
// the node through a protocol surface. The pass is per translation unit plus
// a small program-wide fixpoint over function summaries:
//
//   R1 (statement co-occurrence) — a statement that reads a parameter (or
//      uses a local previously assigned from one) and also
//        a. calls a wire primitive (EncodeFrame, WireToken, RpcGate, ...),
//        b. calls a method on a node-class-typed receiver (a cross-node
//           call in the simulator's object model),
//        c. calls a function whose own body reaches a wire sink
//           (summary-propagated),
//        d. calls a function whose name matches a protocol pattern
//           (heartbeat/handshake/liveness/stale/token/wire), or
//        e. throws a protocol-visible error (RpcError, HandshakeError, ...)
//      taints that parameter. Because statements are split on ';' at paren
//      depth 0, an `if (x > limit) { throw LimitError(...); }` keeps the
//      guard and the throw together — a cheap control-dependence edge.
//   R2 (protocol surface) — every parameter read inside a function that is
//      itself a protocol surface (called cross-node, or name-matching, or
//      transitively invoked from one) is tainted: its value shapes the
//      behavior a *remote* caller observes.
//   R3 (helper propagation) — when a sink statement calls a locally defined
//      helper, the parameters that helper reads directly are tainted (the
//      DfsDataWireConfig pattern: a struct-builder whose fields feed the
//      wire).
//
// Everything else stays node-local. Each verdict carries human-readable
// reasons with file:line so `zebralint` reports are auditable.

#ifndef SRC_ANALYSIS_TAINT_PASS_H_
#define SRC_ANALYSIS_TAINT_PASS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/analysis/read_site_extractor.h"

namespace zebra {
namespace analysis {

struct TaintVerdict {
  bool wire_tainted = false;
  std::vector<std::string> reasons;  // "R1a wire primitive ... (file:line)"
};

struct TaintReport {
  // Parameter name -> verdict, for every parameter with a resolved read site.
  std::map<std::string, TaintVerdict> params;

  // Functions classified as protocol surfaces (qualified names), for report
  // output and tests.
  std::set<std::string> protocol_surfaces;

  bool IsWireTainted(const std::string& param) const {
    auto it = params.find(param);
    return it != params.end() && it->second.wire_tainted;
  }
};

// Runs the taint pass over a resolved ProgramModel.
TaintReport RunTaintPass(const ProgramModel& program);

}  // namespace analysis
}  // namespace zebra

#endif  // SRC_ANALYSIS_TAINT_PASS_H_
