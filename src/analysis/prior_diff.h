// StaticPriorDiff: what changed between two zebralint reports.
//
// `zebralint --diff old_prior.json` re-analyzes the tree and compares the
// fresh report against a previously saved `zebralint --json` artifact. The
// diff is the incremental-retesting primitive: a parameter whose verdict or
// read surface is untouched cannot have gained new heterogeneous behavior
// from this code change, so `full_campaign --impacted-only diff.json`
// restricts the dynamic phase to tests whose recorded read traces intersect
// the impacted parameters (and is provably identical to a full campaign
// restricted to those tests — CI-gated).
//
// The parser reads exactly the JSON ReportToJson emits — it is a snapshot
// loader for our own artifact, not a general JSON parser — and fails closed:
// a malformed file yields a parse error, never a silently empty diff.

#ifndef SRC_ANALYSIS_PRIOR_DIFF_H_
#define SRC_ANALYSIS_PRIOR_DIFF_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/static_prior.h"

namespace zebra {
namespace analysis {

// The per-parameter fields of a saved report that the diff compares.
struct PriorSnapshot {
  struct Param {
    bool in_schema = false;
    bool wire_tainted = false;
    int read_sites = 0;
    uint64_t surface_hash = 0;
  };
  std::map<std::string, Param> params;
};

// Parses a `zebralint --json` artifact. Returns false (and leaves *out
// empty) on any malformation.
bool ParsePriorJson(const std::string& json, PriorSnapshot* out);

struct StaticPriorDiff {
  std::vector<std::string> added;     // profiled now, absent from the old report
  std::vector<std::string> removed;   // in the old report, gone now
  std::vector<std::string> retainted; // wire-taint verdict flipped (either way)
  // Read surface (the file:line:function site fingerprint) changed — the
  // parameter is read from different places than before. Disjoint from
  // `retainted` only when the verdict held; a param may appear in both.
  std::vector<std::string> read_surface_changed;

  bool Empty() const {
    return added.empty() && removed.empty() && retainted.empty() &&
           read_surface_changed.empty();
  }

  // Union of all four lists, sorted, deduplicated: the parameters whose
  // static profile this code change touched.
  std::vector<std::string> ImpactedParams() const;
};

// Compares a fresh report against a parsed snapshot. All lists sorted.
StaticPriorDiff DiffAgainstSnapshot(const PriorSnapshot& old_snapshot,
                                    const StaticPriorReport& current);

// Serialization (byte-stable, like the report itself).
std::string DiffToJson(const StaticPriorDiff& diff);
std::string DiffToText(const StaticPriorDiff& diff);

// Convenience: loads `path`, parses it, diffs `current` against it. Returns
// false on I/O or parse failure.
bool DiffAgainstFile(const std::string& path, const StaticPriorReport& current,
                     StaticPriorDiff* out, std::string* error);

// Loads the impacted-parameter list from a `zebralint --diff --json`
// artifact (a DiffToJson file). Returns false on failure.
bool LoadImpactedParams(const std::string& path,
                        std::vector<std::string>* params, std::string* error);

}  // namespace analysis
}  // namespace zebra

#endif  // SRC_ANALYSIS_PRIOR_DIFF_H_
