// RunCache: memoized unit-test execution results.
//
// RunUnitTest is a pure function of the (test id, TestPlan, trial) triple —
// all nondeterminism is injected through the RNG seeded from exactly that
// triple (see test_context.h). The campaign nevertheless re-executes
// bitwise-identical runs all the time:
//
//   * bisection re-probes: a failing pool half of size one is re-run by
//     TestRunner::Verify with the very same single-parameter plan,
//   * homogeneous controls: instances of the same parameter share distinct
//     values, so Verify issues the same homogeneous control plan repeatedly,
//   * first_trials repeats and hypothesis-testing rounds of *deterministic*
//     tests: different trial numbers, provably identical results (the body
//     never consumed the per-trial RNG),
//   * pre-run baselines: every re-dispatch or repeated campaign pre-runs the
//     test with the same empty plan.
//
// The cache keys results by a canonical fingerprint of the triple and serves
// repeats without executing. Executions that provably never observed the
// trial number are additionally stored under a trial-wildcard key, so later
// trials of the same (test, plan) hit as well. Serving from cache never
// changes campaign results: the stored TestResult is exactly what a real run
// would return. Stage counters (executed_runs and friends) are incremented by
// the call sites *before* RunUnitTest, so Table-5 accounting is identical
// with the cache on or off; only wall-clock (and the run-duration profile)
// shrinks.
//
// Ownership: one cache per process, installed via SetGlobalRunCache (RAII:
// ScopedRunCache). Campaign owns a cache when CampaignOptions.enable_run_cache
// is set; parallel-scheduler workers each own a per-process cache that
// persists across the work units they execute. Not thread-safe — unit-test
// executions are serialized by design (ConfAgent sessions are exclusive).

#ifndef SRC_TESTKIT_RUN_CACHE_H_
#define SRC_TESTKIT_RUN_CACHE_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/testkit/test_execution.h"

namespace zebra {

class RunCache {
 public:
  struct Stats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t entries = 0;

    double HitRate() const {
      return hits + misses == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(hits + misses);
    }
  };

  // Returns the cached result for the triple, or nullptr. A trial-wildcard
  // entry (stored by a trial-insensitive execution) matches any trial.
  // Counts a hit or a miss.
  const TestResult* Lookup(const std::string& test_id, const std::string& plan_text,
                           uint64_t trial);

  // Stores the result of a real execution. `trial_insensitive` executions are
  // stored under the wildcard key as well, so every future trial hits.
  void Insert(const std::string& test_id, const std::string& plan_text,
              uint64_t trial, bool trial_insensitive, const TestResult& result);

  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_.hits = stats_.misses = 0; }

 private:
  static std::string ExactKey(const std::string& test_id, const std::string& plan_text,
                              uint64_t trial);
  static std::string WildcardKey(const std::string& test_id,
                                 const std::string& plan_text);

  std::unordered_map<std::string, TestResult> entries_;
  Stats stats_;
};

// Process-global cache consulted by RunUnitTest; nullptr disables memoization
// (the default). The cache outlives the installation window; the installer
// retains ownership.
void SetGlobalRunCache(RunCache* cache);
RunCache* GlobalRunCache();

// RAII installation, exception-safe around a campaign run.
class ScopedRunCache {
 public:
  explicit ScopedRunCache(RunCache* cache) : previous_(GlobalRunCache()) {
    SetGlobalRunCache(cache);
  }
  ~ScopedRunCache() { SetGlobalRunCache(previous_); }
  ScopedRunCache(const ScopedRunCache&) = delete;
  ScopedRunCache& operator=(const ScopedRunCache&) = delete;

 private:
  RunCache* previous_;
};

}  // namespace zebra

#endif  // SRC_TESTKIT_RUN_CACHE_H_
