// RunCache: memoized unit-test execution results.
//
// RunUnitTest is a pure function of the (test id, TestPlan, trial) triple —
// all nondeterminism is injected through the RNG seeded from exactly that
// triple (see test_context.h). The campaign nevertheless re-executes
// bitwise-identical runs all the time:
//
//   * bisection re-probes: a failing pool half of size one is re-run by
//     TestRunner::Verify with the very same single-parameter plan,
//   * homogeneous controls: instances of the same parameter share distinct
//     values, so Verify issues the same homogeneous control plan repeatedly,
//   * first_trials repeats and hypothesis-testing rounds of *deterministic*
//     tests: different trial numbers, provably identical results (the body
//     never consumed the per-trial RNG),
//   * pre-run baselines: every re-dispatch or repeated campaign pre-runs the
//     test with the same empty plan.
//
// The cache keys results by a canonical fingerprint of the triple and serves
// repeats without executing. Executions that provably never observed the
// trial number are additionally stored under a trial-wildcard key, so later
// trials of the same (test, plan) hit as well.
//
// Keys are 128-bit FNV-1a digests (common/strings.h Digest128) of the legacy
// string keys — test id, plan fingerprint, and trial joined with '\x1f', plus
// the tagged canonical/trace namespaces. The digest is derived by folding the
// key *components* (the digest of a concatenation is the fold of its pieces),
// so the hot path never materializes a key string; the string form survives
// only in the checksummed persistence format. 128 bits makes an accidental
// collision negligible, and the insert path still compares the stored legacy
// string against the incoming one, so even the negligible case is detected
// (Stats::key_collisions), evicted, and re-executed — never served wrong.
// LoadFromFile gates every persisted key on the hashed and legacy derivations
// agreeing, proving the two lookups stay interchangeable.
//
// On top of exact matching sits the observational-equivalence layer (see
// plan_equiv.h). Trial-insensitive executions are additionally indexed by
//   * their canonical plan fingerprint (override entries no targeted conf
//     ever reads dropped, entries sorted), and
//   * the trace of (entity, param, value-served) observations they actually
//     made,
// so a later plan that is observationally identical reuses the result even
// when its description differs. Serving through either key is gated on trace
// validation: the stored execution's *observed* trace must be byte-identical
// to the trace the current plan *predicts*, which proves by induction over
// the read sequence that the stored execution is the one this plan would
// have produced. Mispredictions (the pre-run promise was broken) are counted
// and fall back to real execution — never trusted.
//
// Serving from cache never changes campaign results: the stored TestResult is
// exactly what a real run would return. Stage counters (executed_runs and
// friends) are incremented by the call sites *before* RunUnitTest, so Table-5
// accounting is identical with the cache on or off; only wall-clock (and the
// run-duration profile) shrinks.
//
// Growth is bounded: Limits sets an entry and/or byte budget enforced by LRU
// eviction. Evicting can only turn future hits into misses (re-executions),
// never change a served result, so findings are budget-invariant.
//
// Ownership: one cache per thread of execution, installed via
// SetGlobalRunCache (RAII: ScopedRunCache; the installed pointer is
// thread-local). Campaign owns a cache when CampaignOptions.enable_run_cache
// is set; parallel-scheduler workers each own a per-process cache that
// persists across the work units they execute; the thread-pool scheduler
// installs one *shared* cache on every worker thread, so a result computed
// by one worker is served to all. All public methods are internally
// synchronized (a single mutex — the cache is consulted once per unit-test
// execution, so contention is negligible next to a run). The
// pointer-returning Lookup is only safe when the caller serializes all
// access (single-threaded harnesses and tests); concurrent callers use
// LookupShared, whose returned shared_ptr stays valid past any other
// thread's insert-triggered eviction without copying the result.

#ifndef SRC_TESTKIT_RUN_CACHE_H_
#define SRC_TESTKIT_RUN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/strings.h"
#include "src/testkit/test_execution.h"

namespace zebra {

class ReadSurface;

// The equivalence-layer context for one lookup/insert: the unit's pre-run
// ReadSurface and the plan being run (neither owned; `plan` is dereferenced
// only during Lookup, so the caller may move the plan away afterwards).
// RunCache derives the canonical fingerprint and predicted trace lazily —
// only once the exact keys have missed, so exact hits pay nothing for the
// layer — and caches them here so the matching Insert can validate the
// pre-run promise without recomputing. An empty canonical fingerprint is
// meaningful (the plan collapsed to the homogeneous baseline).
struct EquivQuery {
  const ReadSurface* surface = nullptr;
  const TestPlan* plan = nullptr;

  // Filled by RunCache::Lookup on the first exact miss.
  bool computed = false;
  std::string canonical_fingerprint;
  bool plan_canonicalized = false;  // canonical form differs from the plan's own
  bool has_trace = false;
  std::string predicted_trace;
};

class RunCache {
 public:
  struct Limits {
    int64_t max_entries = 0;  // 0 = unbounded
    int64_t max_bytes = 0;    // 0 = unbounded (approximate resident bytes)
  };

  struct Stats {
    int64_t hits = 0;    // exact (test, plan, trial) or trial-wildcard serves
    int64_t misses = 0;
    int64_t entries = 0;
    int64_t bytes = 0;   // approximate resident bytes across all entries

    // Observational-equivalence accounting.
    int64_t equiv_hits = 0;            // serves via canonical or trace key
    int64_t canonicalized_plans = 0;   // plans rewritten to a smaller canonical form
    int64_t mispredictions = 0;        // predicted trace != observed/stored trace
    int64_t evictions = 0;             // LRU evictions under Limits

    // Two distinct legacy keys digesting to the same 128-bit key (insert- or
    // load-time cross-check). The colliding entry is dropped — a future miss
    // and re-execution, never a wrong serve. Expected to stay 0 forever; the
    // counter exists so "forever" is observable.
    int64_t key_collisions = 0;

    // Corrupt/truncated cache files rejected by LoadFromFile. Deliberately
    // NOT cleared by ResetStats: load failures are a per-process health
    // signal (surfaced as CampaignReport::cache_load_failures), not a
    // per-campaign counter.
    int64_t load_failures = 0;

    double HitRate() const {
      return hits + misses == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(hits + misses);
    }
  };

  RunCache() = default;
  explicit RunCache(Limits limits) : limits_(limits) {}

  // Returns the cached result for the triple, or nullptr. A trial-wildcard
  // entry (stored by a trial-insensitive execution) matches any trial; when
  // `equiv` carries a surface and plan, the canonical-fingerprint and
  // predicted-trace keys are consulted next — each serve gated on trace
  // validation — and finally this test's stored traces are scanned for one
  // the plan provably reproduces (restriction matching). Counts a hit, an
  // equiv hit, or a miss. Single-threaded callers only (see file comment).
  const TestResult* Lookup(const std::string& test_id, const std::string& plan_text,
                           uint64_t trial, EquivQuery* equiv = nullptr);

  // Copy-out variant, safe under concurrent mutation: the result is copied
  // into `out` while the lock is held, so no pointer into the LRU escapes.
  // Returns true on a hit.
  bool Lookup(const std::string& test_id, const std::string& plan_text,
              uint64_t trial, EquivQuery* equiv, TestResult* out);

  // Shared-ownership variant, safe under concurrent mutation *without* the
  // deep copy: the returned pointer shares ownership of the immutable cache
  // payload, so it stays valid even if another thread's insert evicts the
  // entry right after the lock is released. This is what RunUnitTest uses.
  std::shared_ptr<const TestResult> LookupShared(const std::string& test_id,
                                                 const std::string& plan_text,
                                                 uint64_t trial,
                                                 EquivQuery* equiv = nullptr);

  // Stores the result of a real execution. `trial_insensitive` executions are
  // stored under the wildcard key as well, so every future trial hits, and
  // additionally under their observed trace. When `equiv` carries the
  // predictions the preceding Lookup derived and the prediction held, the
  // result is also indexed by the canonical fingerprint; a broken prediction
  // counts a misprediction and skips the canonical index. The shared-pointer
  // overload stores the caller's result without copying it (every key alias
  // shares one payload); the by-value overload is a convenience that wraps
  // its argument.
  void Insert(const std::string& test_id, const std::string& plan_text,
              uint64_t trial, bool trial_insensitive,
              std::shared_ptr<const TestResult> result,
              const EquivQuery* equiv = nullptr,
              const std::string* observed_trace = nullptr);
  void Insert(const std::string& test_id, const std::string& plan_text,
              uint64_t trial, bool trial_insensitive, const TestResult& result,
              const EquivQuery* equiv = nullptr,
              const std::string* observed_trace = nullptr);

  // Test-only: inserts `result` under a forced 128-bit key with the given
  // legacy string, bypassing key derivation. Returns false when the insert
  // was rejected (same digest already present with a different legacy key —
  // the collision path under test).
  bool InsertAliasForTesting(Digest128 key, std::string legacy_key,
                             const TestResult& result);

  // By value: a reference into the struct would race with concurrent
  // updates. The copy is a consistent snapshot taken under the lock.
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }
  void ResetStats() {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.hits = stats_.misses = 0;
    stats_.equiv_hits = stats_.canonicalized_plans = stats_.mispredictions = 0;
  }

  Limits limits() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return limits_;
  }
  void set_limits(Limits limits) {
    std::lock_guard<std::mutex> lock(mutex_);
    limits_ = limits;
    EnforceLimits();
  }

  // Persistence, for warm-starting repeated campaign invocations. The file
  // round-trips every entry (including the full SessionReport — warm-started
  // pre-runs feed test generation) in recency order under its legacy string
  // key, and ends with a whole-file checksum line so a torn write (crash
  // mid-save, disk full) cannot masquerade as a valid cache. Load replaces
  // the current contents and re-derives each 128-bit key twice — from the
  // whole string and from its parsed components (the hot path's derivation) —
  // rejecting the file if they ever disagree: the gate that proves hashed
  // and legacy lookups stay interchangeable. Stats are not persisted. Both
  // return false on I/O or parse failure; a failed load leaves the cache
  // empty — never half-loaded, never throwing — logs a warning, and
  // increments Stats::load_failures (except for a missing file, which is the
  // normal cold-start case). A warm start is an optimization, so corruption
  // degrades to a cold start, not a crash.
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

  // Legacy string keys: the persistence format, and the ground truth the
  // digests are defined over. Public so tests can prove the hashed/legacy
  // equivalence directly; campaign code never builds these on the hot path.
  static std::string ExactKey(const std::string& test_id, const std::string& plan_text,
                              uint64_t trial);
  static std::string WildcardKey(const std::string& test_id,
                                 const std::string& plan_text);
  static std::string CanonicalKey(const std::string& test_id,
                                  const std::string& canonical_fingerprint);
  static std::string TraceKey(const std::string& test_id, const std::string& trace);

  // Component-folded digests of exactly the strings above, no allocation.
  static Digest128 ExactRunKey(const std::string& test_id,
                               const std::string& plan_text, uint64_t trial);
  static Digest128 WildcardRunKey(const std::string& test_id,
                                  const std::string& plan_text);
  static Digest128 CanonicalRunKey(const std::string& test_id,
                                   const std::string& canonical_fingerprint);
  static Digest128 TraceRunKey(const std::string& test_id,
                               const std::string& trace);

  // Re-derives a persisted key's digest through the component folds above by
  // parsing the legacy shape. Returns false for a shape SaveToFile never
  // emits. LoadFromFile's hashed/legacy agreement gate.
  static bool DeriveComponentDigest(const std::string& key, Digest128* out);

 private:
  // One stored execution, shared by every key alias pointing at it (exact,
  // wildcard, canonical, trace): inserting under four keys costs one payload
  // allocation, and LookupShared serves by refcount bump instead of deep
  // copy. Immutable once inserted — that immutability is what makes sharing
  // across worker threads safe.
  struct Entry {
    std::shared_ptr<const TestResult> result;
    std::string observed_trace;  // empty when recorded without a surface
  };

  struct Node {
    Digest128 key;
    std::string legacy_key;  // persistence form; also the collision check
    std::shared_ptr<const Entry> entry;
  };
  using LruList = std::list<Node>;

  struct KeyHash {
    size_t operator()(const Digest128& key) const {
      return static_cast<size_t>(key.lo);
    }
  };

  static int64_t EntryBytes(const std::string& legacy_key, const Entry& entry);

  // Returns the node for `key` and marks it most-recently-used.
  Node* Touch(Digest128 key);

  // `legacy_key` is built lazily by `make_legacy` only when the key is
  // actually inserted (the common duplicate-alias case pays nothing).
  template <typename MakeLegacy>
  bool InsertEntry(Digest128 key, MakeLegacy&& make_legacy,
                   const std::shared_ptr<const Entry>& entry);
  bool InsertEntryWithLegacy(Digest128 key, std::string legacy_key,
                             const std::shared_ptr<const Entry>& entry);
  void EnforceLimits();

  // The full lookup sequence (exact -> wildcard -> equivalence layers).
  // Caller holds mutex_; the returned entry pointer is valid only until
  // release (share the payload before unlocking).
  const Entry* LookupLocked(const std::string& test_id,
                            const std::string& plan_text, uint64_t trial,
                            EquivQuery* equiv);

  // Restriction matching: scans this test's trace-indexed entries for one
  // whose *observed* elements all re-derive identically under `plan` (see
  // PlanReproducesObservedTrace). Sufficient even for executions that
  // stopped early, so this is what collapses failing-path re-runs. Any
  // matching entry is provably the execution `plan` would produce, so first
  // match serves.
  const Entry* MatchByRestriction(const std::string& test_id, const TestPlan& plan,
                                  const std::string& predicted_trace);

  LruList lru_;  // front = most recently used
  std::unordered_map<Digest128, LruList::iterator, KeyHash> index_;
  // Trace-key registry per test, in insertion order; evicted keys are skipped
  // lazily (they no longer resolve through index_).
  std::unordered_map<std::string, std::vector<Digest128>> trace_keys_by_test_;
  Limits limits_;
  Stats stats_;
  // Guards every member above. Held for whole operations (lookup + LRU splice,
  // insert + eviction), so invariants like stats_.bytes == sum(EntryBytes)
  // hold at every release point.
  mutable std::mutex mutex_;
};

// Ambient cache consulted by RunUnitTest; nullptr disables memoization (the
// default). The installed pointer is thread-local, so each worker thread
// chooses its own cache — which may be the same shared RunCache object on
// every worker (the thread-pool scheduler does exactly that). The cache
// outlives the installation window; the installer retains ownership.
void SetGlobalRunCache(RunCache* cache);
RunCache* GlobalRunCache();

// RAII installation, exception-safe around a campaign run.
class ScopedRunCache {
 public:
  explicit ScopedRunCache(RunCache* cache) : previous_(GlobalRunCache()) {
    SetGlobalRunCache(cache);
  }
  ~ScopedRunCache() { SetGlobalRunCache(previous_); }
  ScopedRunCache(const ScopedRunCache&) = delete;
  ScopedRunCache& operator=(const ScopedRunCache&) = delete;

 private:
  RunCache* previous_;
};

}  // namespace zebra

#endif  // SRC_TESTKIT_RUN_CACHE_H_
