// MiniDFS corpus: whole-system unit tests in the style of HDFS's
// MiniDFSCluster tests. Every Figure 2 pattern appears here: a unit-test
// Configuration shared across nodes, nodes creating sub-configurations,
// tests calling node internals from the test thread, tests that start no
// nodes, seeded nondeterminism, and the seeded false-positive sources.

#include <string>
#include <vector>

#include "src/apps/minidfs/balancer.h"
#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_client.h"
#include "src/apps/minidfs/dfs_params.h"
#include "src/apps/minidfs/journal_node.h"
#include "src/apps/minidfs/mover.h"
#include "src/apps/minidfs/name_node.h"
#include "src/apps/minidfs/secondary_name_node.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

namespace {

constexpr char kApp[] = "minidfs";

void TestWriteReadSmallFile(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn1, &dn2}, conf);

  // Long enough that per-chunk checksumming spans several chunks (so that
  // bytes-per-checksum disagreements actually change the frame layout).
  std::string data;
  for (int i = 0; i < 20; ++i) {
    data += "hello heterogeneous world of configurations #" + std::to_string(i) + "; ";
  }
  client.WriteFile("/f1", data);
  ctx.CheckEq(client.ReadFile("/f1"), data, "read-back contents");
}

void TestDataNodeRegistration(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  ctx.CheckEq(nn.NumRegisteredDataNodes(), 1, "registered DataNodes");
}

void TestPipelineReplication(TestContext& ctx) {
  Configuration conf;
  conf.SetInt(kDfsReplication, 2);
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn1, &dn2}, conf);

  client.WriteFile("/rep", "abcabcabc");
  ctx.Check(dn1.BlockCount() > 0, "first replica stored");
  ctx.Check(dn2.BlockCount() > 0, "second replica stored");
}

void TestHeartbeatLiveness(TestContext& ctx) {
  Configuration conf;
  conf.SetInt(kDfsHeartbeatRecheck, 10000);
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn1, &dn2}, conf);

  ctx.cluster().AdvanceTime(130000);
  ctx.CheckEq(client.NumLiveDataNodes(), 2, "live DataNodes after heartbeats");
}

void TestDeadNodeDetection(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn1, &dn2}, conf);

  dn2.Stop();
  // The user computes the expected detection latency from *their* copy of the
  // configuration — the inconsistency the paper reports for
  // dfs.namenode.heartbeat.recheck-interval.
  int64_t recheck = conf.GetInt(kDfsHeartbeatRecheck, kDfsHeartbeatRecheckDefault);
  int64_t heartbeat_s = conf.GetInt(kDfsHeartbeatInterval, kDfsHeartbeatIntervalDefault);
  int64_t wait_ms = 2 * recheck + 10 * heartbeat_s * 1000 + recheck + 1000;
  ctx.cluster().AdvanceTime(wait_ms);
  ctx.CheckEq(client.NumDeadDataNodes(), 1, "dead DataNodes after silence");
}

void TestStaleNodeReporting(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn1, &dn2}, conf);

  dn2.Stop();
  int64_t stale_ms = conf.GetInt(kDfsStaleInterval, kDfsStaleIntervalDefault);
  ctx.cluster().AdvanceTime(stale_ms + 3000);
  ctx.CheckEq(client.NumStaleDataNodes(), 1, "stale DataNodes after silence");
}

void TestBalancerCongestion(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  Balancer balancer(&ctx.cluster(), &nn, conf);

  // The HDFS unit test that reports timeout (100 s) when the Balancer's and
  // the DataNodes' max.concurrent.moves disagree.
  BalanceResult result = balancer.RunMoves(&dn1, 150, 100000);
  ctx.CheckEq(result.completed_moves, 150, "balancing moves completed");
}

void TestBalancerUpgradeDomains(TestContext& ctx) {
  Configuration conf;
  conf.SetInt(kDfsReplication, 2);
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn0(&ctx.cluster(), &nn, conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn0, &dn1, &dn2}, conf);
  Balancer balancer(&ctx.cluster(), &nn, conf);

  client.WriteFile("/dom", "zzzz");  // one block, replicas on dn0 and dn1
  uint64_t block = nn.BlocksOf("/dom").front();
  balancer.RunDomainMoves({block}, &dn1, &dn2, 30000);
  ctx.CheckEq(nn.TotalBlocks(), 1, "block survived rebalancing");
}

void TestBalancerBandwidthThrottling(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  Balancer balancer(&ctx.cluster(), &nn, conf);

  int64_t total = dn1.BalanceBandwidthPerSec() * 5;
  int64_t max_delay = balancer.RunThrottledTransfer(&dn1, &dn2, total);
  ctx.Check(max_delay <= 2000, "progress reports delivered promptly");
}

void TestFsLimitsComponentLength(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);

  // Build a name exactly at the limit the *user's* configuration documents.
  int64_t limit = conf.GetInt(kDfsMaxComponentLength, kDfsMaxComponentLengthDefault);
  std::string name(static_cast<size_t>(limit), 'a');
  client.WriteFile("/" + name, "x");
  ctx.Check(nn.FileExists("/" + name), "file created at limit length");
}

void TestFsLimitsDirectoryItems(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);

  int64_t limit = conf.GetInt(kDfsMaxDirectoryItems, kDfsMaxDirectoryItemsDefault);
  int64_t to_create = limit < 8 ? limit : 8;
  for (int64_t i = 0; i < to_create; ++i) {
    client.WriteFile("/dir/f" + std::to_string(i), "x");
  }
  ctx.CheckEq(nn.TotalBlocks(), static_cast<int>(to_create), "files created");
}

void TestIncrementalBlockReportVisibility(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn1, &dn2}, conf);

  client.WriteFile("/del", "data");
  ctx.CheckEq(client.TotalBlocks(), 1, "block present before delete");
  client.DeleteFile("/del");
  // The user expects deletions to become visible per *their* configuration.
  int64_t interval =
      conf.GetInt(kDfsIncrementalBrInterval, kDfsIncrementalBrIntervalDefault);
  if (interval > 0) {
    ctx.cluster().AdvanceTime(interval + 100);
  }
  ctx.CheckEq(client.TotalBlocks(), 0, "block gone after delete");
}

void TestFsckOverHttp(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);

  client.WriteFile("/fsck", "check me");
  std::string status = client.Fsck();
  ctx.Check(StartsWith(status, "Status: HEALTHY"), "fsck reports healthy");
}

void TestSlowReadSocketTimeout(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);

  client.WriteFile("/slow", "slow data");
  std::string data = client.ReadFileSlow("/slow", 5000);
  ctx.CheckEq(data, std::string("slow data"), "slow read contents");
}

void TestSnapshotDiffDescendant(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);

  nn.AllowSnapshot("/snap");
  client.WriteFile("/snap/sub/f", "v1");
  int diff = client.SnapshotDiff("/snap", "/snap/sub");
  ctx.Check(diff >= 1, "snapshot diff computed");
}

void TestCorruptBlockReporting(TestContext& ctx) {
  Configuration conf;
  conf.SetInt(kDfsReplication, 1);
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);

  for (int i = 0; i < 12; ++i) {
    std::string path = "/corrupt/f" + std::to_string(i);
    client.WriteFile(path, "x");
    client.ReportBadBlock(nn.BlocksOf(path).front());
  }
  int64_t expected_limit =
      conf.GetInt(kDfsMaxCorruptFileBlocks, kDfsMaxCorruptFileBlocksDefault);
  int expected = static_cast<int>(expected_limit < 12 ? expected_limit : 12);
  ctx.CheckEq(static_cast<int>(client.ListCorruptBlocks().size()), expected,
              "corrupt blocks returned");
}

void TestReservedSpaceReporting(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn1, &dn2}, conf);

  int64_t expected = 2 * conf.GetInt(kDfsDuReserved, kDfsDuReservedDefault);
  ctx.CheckEq(client.TotalReservedBytes(), expected, "cluster reserved bytes");
}

void TestPipelineRecoveryReplaceDatanode(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn1, &dn2}, conf);

  client.WriteFileWithPipelineFailure("/recover", "pipeline data");
  ctx.Check(nn.FileExists("/recover"), "file exists after pipeline recovery");
}

void TestTailEditsInProgress(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  JournalNode jn(&ctx.cluster(), conf);

  jn.AppendEdits(5);
  int edits = nn.TailEdits(&jn);
  ctx.Check(edits == 0 || edits == 5, "tailing returned a consistent edit count");
}

void TestSecondaryCheckpointImageMatch(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  SecondaryNameNode snn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);

  client.WriteFile("/img/a", "alpha");
  client.WriteFile("/img/b", "beta");
  snn.DoCheckpoint();
  // Overly strict: comparing the on-disk image *lengths* first (the seeded
  // false-positive pattern of §7.1) before the meaningful content check.
  ctx.CheckEq(nn.SaveImage().size(), snn.ImageBytes().size(),
              "checkpoint image file lengths");
  ctx.Check(nn.CanonicalImage() == snn.CanonicalImage(),
            "checkpoint image contents match");
}

void TestDataNodeScannerInternal(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);

  // The seeded false-positive pattern: poking DataNode-private state with the
  // *client's* configuration object — only possible inside a unit test.
  dn.TriggerScanForTest(conf);
  ctx.Check(true, "scanner triggered");
}

void TestFlakyReplicationMonitor(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn1, &dn2}, conf);

  client.WriteFile("/flaky", "racy");
  ctx.cluster().AdvanceTime(5000);
  // Seeded nondeterminism: the replication monitor loses a (simulated) race
  // in ~30% of trials regardless of configuration.
  ctx.MaybeFlakyFail(0.3, "replication monitor observed a transient under-replication");
  ctx.CheckEq(client.ReadFile("/flaky"), std::string("racy"), "read-back");
}

void TestClientRetriesRead(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);

  conf.GetInt(kDfsClientRetries, kDfsClientRetriesDefault);
  conf.GetInt(kDfsStreamBufferSize, kDfsStreamBufferSizeDefault);
  client.WriteFile("/retry", "retry me");
  ctx.CheckEq(client.ReadFile("/retry"), std::string("retry me"), "read-back");
}

void TestMoverStorageMigration(TestContext& ctx) {
  Configuration conf;
  conf.SetInt(kDfsReplication, 1);
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn1, &dn2}, conf);
  Mover mover(&ctx.cluster(), &nn, conf);

  // Collect all blocks currently hosted on dn1 and migrate them to dn2
  // (a storage-tier change).
  std::vector<uint64_t> on_dn1;
  for (int i = 0; i < 6; ++i) {
    std::string path = "/tier/f" + std::to_string(i);
    client.WriteFile(path, "tiered");
    for (uint64_t block : nn.BlocksOf(path)) {
      for (uint64_t location : nn.LocationsOf(block)) {
        if (location == dn1.id()) {
          on_dn1.push_back(block);
        }
      }
    }
  }
  MoveResult result = mover.MigrateBlocks(on_dn1, &dn1, &dn2, 60000);
  ctx.CheckEq(result.migrated_blocks, static_cast<int>(on_dn1.size()),
              "all blocks migrated");
  for (uint64_t block : on_dn1) {
    ctx.Check(dn2.HasBlock(block), "migrated replica present on target");
  }
}

void TestMetricsSubsystemLazyConf(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);
  client.WriteFile("/metrics", "observed");

  // A metrics helper lazily creates its own Configuration object outside any
  // node initialization function. ConfAgent cannot map it to an entity
  // (Observation 3), so the parameters it reads are excluded from
  // heterogeneous testing of this unit test.
  Configuration metrics_conf;
  metrics_conf.GetInt(kDfsStreamBufferSize, kDfsStreamBufferSizeDefault);
  metrics_conf.Get(kDfsChecksumType, kDfsChecksumTypeDefault);
  ctx.CheckEq(client.ReadFile("/metrics"), std::string("observed"), "read-back");
}

void TestSafemodeExitAfterReports(TestContext& ctx) {
  Configuration conf;
  conf.SetInt(kDfsReplication, 1);
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);
  for (int i = 0; i < 4; ++i) {
    client.WriteFile("/safe/f" + std::to_string(i), "x");
  }

  // Simulated NameNode restart: the namespace is known, replica locations
  // are not, and mutations are refused until DataNodes report.
  NameNode restarted(&ctx.cluster(), conf);
  DataNode dn2(&ctx.cluster(), &restarted, conf);
  restarted.EnterSafeMode(4);
  ctx.Check(restarted.InSafeMode(), "restarted NameNode starts in safe mode");
  dn.ReRegister(&restarted);
  dn.SendFullBlockReport(&restarted);
  ctx.Check(!restarted.InSafeMode(), "block reports lift safe mode");
}

void TestConcurrentClientsWorkload(TestContext& ctx) {
  Configuration conf;
  conf.SetInt(kDfsReplication, 2);
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DataNode dn3(&ctx.cluster(), &nn, conf);
  // Two independent clients (both on the unit test's configuration) mixing
  // writes and reads across a shared namespace.
  DfsClient alice(&ctx.cluster(), &nn, {&dn1, &dn2, &dn3}, conf);
  DfsClient bob(&ctx.cluster(), &nn, {&dn1, &dn2, &dn3}, conf);

  for (int i = 0; i < 6; ++i) {
    alice.WriteFile("/shared/a" + std::to_string(i), "alice-" + std::to_string(i));
    bob.WriteFile("/shared/b" + std::to_string(i), "bob-" + std::to_string(i));
  }
  for (int i = 0; i < 6; ++i) {
    ctx.CheckEq(bob.ReadFile("/shared/a" + std::to_string(i)),
                "alice-" + std::to_string(i), "cross-client read");
  }
  ctx.CheckEq(nn.TotalBlocks(), 12, "all blocks tracked");
}

void TestDataNodeRestartReRegisters(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  {
    DataNode transient(&ctx.cluster(), &nn, conf);
    ctx.CheckEq(nn.NumRegisteredDataNodes(), 2, "two DataNodes registered");
    transient.Stop();
  }
  // A "restarted" DataNode registers anew (it may reuse the old node's
  // identity, as a restarted process reuses its address).
  DataNode restarted(&ctx.cluster(), &nn, conf);
  ctx.Check(nn.NumRegisteredDataNodes() >= 2, "restart re-registers");
  ctx.cluster().AdvanceTime(10000);
  ctx.Check(nn.NumLiveDataNodes() >= 2, "live nodes keep heartbeating");
}

void TestBlockIdUtilsNoNodes(TestContext& ctx) {
  // A classic function-level unit test: starts no nodes; pre-running filters
  // it out of heterogeneous testing entirely.
  ctx.CheckEq(Fnv1a64("block-1"), Fnv1a64("block-1"), "hash is deterministic");
  ctx.Check(Fnv1a64("block-1") != Fnv1a64("block-2"), "hashes differ");
}

void TestPathUtilsNoNodes(TestContext& ctx) {
  Configuration conf;
  conf.Set("dfs.test.path", "/a/b/c");
  std::vector<std::string> parts = StrSplit(conf.Get("dfs.test.path"), '/');
  ctx.CheckEq(static_cast<int>(parts.size()), 4, "path component count");
}

}  // namespace

void RegisterMiniDfsCorpus(UnitTestRegistry& registry) {
  registry.Add(kApp, "TestWriteReadSmallFile", TestWriteReadSmallFile);
  registry.Add(kApp, "TestDataNodeRegistration", TestDataNodeRegistration);
  registry.Add(kApp, "TestPipelineReplication", TestPipelineReplication);
  registry.Add(kApp, "TestHeartbeatLiveness", TestHeartbeatLiveness);
  registry.Add(kApp, "TestDeadNodeDetection", TestDeadNodeDetection);
  registry.Add(kApp, "TestStaleNodeReporting", TestStaleNodeReporting);
  registry.Add(kApp, "TestBalancerCongestion", TestBalancerCongestion);
  registry.Add(kApp, "TestBalancerUpgradeDomains", TestBalancerUpgradeDomains);
  registry.Add(kApp, "TestBalancerBandwidthThrottling", TestBalancerBandwidthThrottling);
  registry.Add(kApp, "TestFsLimitsComponentLength", TestFsLimitsComponentLength);
  registry.Add(kApp, "TestFsLimitsDirectoryItems", TestFsLimitsDirectoryItems);
  registry.Add(kApp, "TestIncrementalBlockReportVisibility",
               TestIncrementalBlockReportVisibility);
  registry.Add(kApp, "TestFsckOverHttp", TestFsckOverHttp);
  registry.Add(kApp, "TestSlowReadSocketTimeout", TestSlowReadSocketTimeout);
  registry.Add(kApp, "TestSnapshotDiffDescendant", TestSnapshotDiffDescendant);
  registry.Add(kApp, "TestCorruptBlockReporting", TestCorruptBlockReporting);
  registry.Add(kApp, "TestReservedSpaceReporting", TestReservedSpaceReporting);
  registry.Add(kApp, "TestPipelineRecoveryReplaceDatanode",
               TestPipelineRecoveryReplaceDatanode);
  registry.Add(kApp, "TestTailEditsInProgress", TestTailEditsInProgress);
  registry.Add(kApp, "TestSecondaryCheckpointImageMatch",
               TestSecondaryCheckpointImageMatch);
  registry.Add(kApp, "TestDataNodeScannerInternal", TestDataNodeScannerInternal);
  registry.Add(kApp, "TestFlakyReplicationMonitor", TestFlakyReplicationMonitor);
  registry.Add(kApp, "TestClientRetriesRead", TestClientRetriesRead);
  registry.Add(kApp, "TestMoverStorageMigration", TestMoverStorageMigration);
  registry.Add(kApp, "TestSafemodeExitAfterReports", TestSafemodeExitAfterReports);
  registry.Add(kApp, "TestConcurrentClientsWorkload", TestConcurrentClientsWorkload);
  registry.Add(kApp, "TestDataNodeRestartReRegisters", TestDataNodeRestartReRegisters);
  registry.Add(kApp, "TestMetricsSubsystemLazyConf", TestMetricsSubsystemLazyConf);
  registry.Add(kApp, "TestBlockIdUtilsNoNodes", TestBlockIdUtilsNoNodes);
  registry.Add(kApp, "TestPathUtilsNoNodes", TestPathUtilsNoNodes);
}

}  // namespace zebra
