// "apptools" corpus: the Hadoop-Tools analog. These tests have no parameters
// of their own (Table 1) — they exercise the shared appcommon parameters by
// running tools against MiniDFS clusters, the way Hadoop Tools tests do.

#include "src/apps/appcommon/common_params.h"
#include "src/apps/appcommon/rpc_gate.h"
#include "src/apps/apptools/dfs_tools.h"
#include "src/apps/minidfs/data_node.h"
#include "src/apps/minidfs/dfs_client.h"
#include "src/apps/minidfs/name_node.h"
#include "src/common/strings.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

namespace {

constexpr char kApp[] = "apptools";

void TestDistCpSmall(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn1(&ctx.cluster(), &nn, conf);
  DataNode dn2(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn1, &dn2}, conf);

  client.WriteFile("/src/one", "tool payload");
  client.WriteFile("/src/two", "second file");
  DistCpTool distcp(&ctx.cluster(), &nn, {&dn1, &dn2}, conf);
  ctx.CheckEq(distcp.Copy({"/src/one", "/src/two"}, "/dst/"), 2, "files copied");
  ctx.CheckEq(client.ReadFile("/dst/one"), std::string("tool payload"),
              "copied contents");
}

void TestArchiveLongOperation(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);

  for (int i = 0; i < 10; ++i) {
    client.WriteFile("/arch/f" + std::to_string(i), "member");
  }
  // Archiving scans the namespace server-side (10 members x 500 ms); the
  // tool waits under its RPC timeout while the NameNode paces from its own.
  HadoopArchiveTool har(&ctx.cluster(), &nn, {&dn}, conf);
  std::vector<std::string> sources;
  for (int i = 0; i < 10; ++i) {
    sources.push_back("/arch/f" + std::to_string(i));
  }
  size_t bytes = har.Archive(sources, "/out/all.har");
  ctx.CheckEq(static_cast<int>(bytes), 60, "archive payload size");
  ctx.CheckEq(static_cast<int>(har.ListMembers("/out/all.har").size()), 10,
              "archive index entries");
}

void TestIpcKeepaliveAcrossNodes(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);

  // Repeated tool RPCs keep the shared IPC component busy across nodes.
  client.WriteFile("/ka", "x");
  ctx.CheckEq(client.ReadFile("/ka"), std::string("x"), "keepalive round-trip");
  ctx.CheckEq(client.NumLiveDataNodes(), 1, "DataNode alive");
}

void TestConfShellParseNoNodes(TestContext& ctx) {
  Configuration conf;
  conf.Set("tool.flag", "true");
  ctx.Check(conf.GetBool("tool.flag", false), "flag parsed");
  int64_t parsed = 0;
  ctx.Check(ParseInt64(" 42 ", &parsed) && parsed == 42, "int parsed with spaces");
}

void TestFlakyToolRetry(TestContext& ctx) {
  Configuration conf;
  NameNode nn(&ctx.cluster(), conf);
  DataNode dn(&ctx.cluster(), &nn, conf);
  DfsClient client(&ctx.cluster(), &nn, {&dn}, conf);

  client.WriteFile("/tool", "retry");
  ctx.MaybeFlakyFail(0.3, "tool lost its connection and gave up before retrying");
  ctx.CheckEq(client.ReadFile("/tool"), std::string("retry"), "tool output");
}

}  // namespace

void RegisterAppToolsCorpus(UnitTestRegistry& registry) {
  registry.Add(kApp, "TestDistCpSmall", TestDistCpSmall);
  registry.Add(kApp, "TestArchiveLongOperation", TestArchiveLongOperation);
  registry.Add(kApp, "TestIpcKeepaliveAcrossNodes", TestIpcKeepaliveAcrossNodes);
  registry.Add(kApp, "TestConfShellParseNoNodes", TestConfShellParseNoNodes);
  registry.Add(kApp, "TestFlakyToolRetry", TestFlakyToolRetry);
}

}  // namespace zebra
