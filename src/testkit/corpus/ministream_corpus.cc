// MiniStream corpus. Flink quirk reproduced throughout: these unit tests
// inline (copy!) the TaskManager initialization code into each test body
// instead of calling a node init function, so the ConfAgent annotations
// (NodeInitScope + refToCloneConf) appear once per copy — which is exactly
// why Flink needed the most annotation lines in the paper's Table 4 (§7.2:
// "it required additional effort on our part to identify and annotate the
// copied initialization code").

#include <memory>

#include "src/apps/ministream/job_manager.h"
#include "src/apps/ministream/stream_params.h"
#include "src/apps/ministream/task_manager.h"
#include "src/runtime/node_init.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

namespace {

constexpr char kApp[] = "ministream";

void TestTaskManagerRegistration(TestContext& ctx) {
  Configuration conf;
  JobManager jm(&ctx.cluster(), conf);
  // Inlined TaskManager bring-up (copied, Flink-style).
  std::unique_ptr<TaskManager> tm1;
  {
    NodeInitScope scope(kApp, &tm1, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    tm1 = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }
  std::unique_ptr<TaskManager> tm2;
  {
    NodeInitScope scope(kApp, &tm2, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    tm2 = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }

  jm.RegisterTaskManager(tm1.get());
  jm.RegisterTaskManager(tm2.get());
  ctx.CheckEq(jm.NumTaskManagers(), 2, "registered TaskManagers");
}

void TestJobSubmissionSlots(TestContext& ctx) {
  Configuration conf;
  JobManager jm(&ctx.cluster(), conf);
  // Another copy of the inlined bring-up.
  std::unique_ptr<TaskManager> tm1;
  {
    NodeInitScope scope(kApp, &tm1, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    tm1 = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }
  std::unique_ptr<TaskManager> tm2;
  {
    NodeInitScope scope(kApp, &tm2, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    tm2 = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }
  jm.RegisterTaskManager(tm1.get());
  jm.RegisterTaskManager(tm2.get());

  jm.SubmitJob(2);
  ctx.CheckEq(tm1->DeployedTasks() + tm2->DeployedTasks(), 2, "tasks deployed");
}

void TestDataExchange(TestContext& ctx) {
  Configuration conf;
  std::unique_ptr<TaskManager> sender;
  {
    NodeInitScope scope(kApp, &sender, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    sender = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }
  std::unique_ptr<TaskManager> receiver;
  {
    NodeInitScope scope(kApp, &receiver, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    receiver = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }

  sender->SendRecords(receiver.get(), {"r1", "r2", "r3"});
  ctx.CheckEq(static_cast<int>(receiver->received_records().size()), 3,
              "records received");
  ctx.CheckEq(receiver->received_records().front(), std::string("r1"),
              "first record intact");
}

void TestParallelismDefaults(TestContext& ctx) {
  Configuration conf;
  JobManager jm(&ctx.cluster(), conf);
  std::unique_ptr<TaskManager> tm;
  {
    NodeInitScope scope(kApp, &tm, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    tm = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }
  jm.RegisterTaskManager(tm.get());

  int parallelism =
      static_cast<int>(conf.GetInt(kStreamParallelism, kStreamParallelismDefault));
  jm.SubmitJob(parallelism);
  ctx.CheckEq(tm->DeployedTasks(), parallelism, "default-parallelism job deployed");
}

void TestTwoJobsSequential(TestContext& ctx) {
  Configuration conf;
  JobManager jm(&ctx.cluster(), conf);
  std::unique_ptr<TaskManager> tm1;
  {
    NodeInitScope scope(kApp, &tm1, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    tm1 = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }
  std::unique_ptr<TaskManager> tm2;
  {
    NodeInitScope scope(kApp, &tm2, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    tm2 = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }
  jm.RegisterTaskManager(tm1.get());
  jm.RegisterTaskManager(tm2.get());

  // Two back-to-back jobs; the JobManager's slot bookkeeping spreads them.
  jm.SubmitJob(1);
  jm.SubmitJob(1);
  ctx.CheckEq(tm1->DeployedTasks() + tm2->DeployedTasks(), 2, "both jobs deployed");
}

void TestLargeRecordExchange(TestContext& ctx) {
  Configuration conf;
  std::unique_ptr<TaskManager> sender;
  {
    NodeInitScope scope(kApp, &sender, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    sender = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }
  std::unique_ptr<TaskManager> receiver;
  {
    NodeInitScope scope(kApp, &receiver, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    receiver = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }

  std::vector<std::string> records;
  for (int i = 0; i < 100; ++i) {
    records.push_back("record-" + std::to_string(i));
  }
  sender->SendRecords(receiver.get(), records);
  ctx.CheckEq(static_cast<int>(receiver->received_records().size()), 100,
              "all records received");
  ctx.CheckEq(receiver->received_records().back(), std::string("record-99"),
              "ordering preserved");
}

void TestJobManagerStandalone(TestContext& ctx) {
  Configuration conf;
  JobManager jm(&ctx.cluster(), conf);
  ctx.CheckEq(jm.NumTaskManagers(), 0, "fresh JobManager has no TaskManagers");
}

void TestOperatorChainNoNodes(TestContext& ctx) {
  // Operator-graph arithmetic; no nodes started.
  int operators = 5;
  int chainable = 3;
  ctx.CheckEq(operators - chainable + 1, 3, "chained operator count");
}

void TestFlakyCheckpointBarrier(TestContext& ctx) {
  Configuration conf;
  std::unique_ptr<TaskManager> tm1;
  {
    NodeInitScope scope(kApp, &tm1, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    tm1 = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }
  std::unique_ptr<TaskManager> tm2;
  {
    NodeInitScope scope(kApp, &tm2, "TaskManager", __FILE__, __LINE__);
    Configuration tm_conf = AnnotatedRefToClone(kApp, conf, __FILE__, __LINE__);
    tm2 = std::make_unique<TaskManager>(&ctx.cluster(), tm_conf);
    scope.Finish();
  }

  tm1->SendRecords(tm2.get(), {"barrier-1"});
  ctx.MaybeFlakyFail(0.3, "checkpoint barrier overtaken by records");
  ctx.CheckEq(static_cast<int>(tm2->received_records().size()), 1, "barrier delivered");
}

}  // namespace

void RegisterMiniStreamCorpus(UnitTestRegistry& registry) {
  registry.Add(kApp, "TestTaskManagerRegistration", TestTaskManagerRegistration);
  registry.Add(kApp, "TestJobSubmissionSlots", TestJobSubmissionSlots);
  registry.Add(kApp, "TestDataExchange", TestDataExchange);
  registry.Add(kApp, "TestParallelismDefaults", TestParallelismDefaults);
  registry.Add(kApp, "TestTwoJobsSequential", TestTwoJobsSequential);
  registry.Add(kApp, "TestLargeRecordExchange", TestLargeRecordExchange);
  registry.Add(kApp, "TestJobManagerStandalone", TestJobManagerStandalone);
  registry.Add(kApp, "TestOperatorChainNoNodes", TestOperatorChainNoNodes);
  registry.Add(kApp, "TestFlakyCheckpointBarrier", TestFlakyCheckpointBarrier);
}

}  // namespace zebra
