// MiniYARN corpus: container allocation, NodeManager liveness, delegation
// tokens, and the timeline service.

#include "src/apps/miniyarn/app_history_server.h"
#include "src/apps/miniyarn/application.h"
#include "src/apps/miniyarn/node_manager.h"
#include "src/apps/miniyarn/resource_manager.h"
#include "src/apps/miniyarn/yarn_client.h"
#include "src/apps/miniyarn/yarn_params.h"
#include "src/common/strings.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

namespace {

constexpr char kApp[] = "miniyarn";

void TestContainerAllocationAtMax(TestContext& ctx) {
  Configuration conf;
  ResourceManager rm(&ctx.cluster(), conf);
  NodeManager nm1(&ctx.cluster(), &rm, conf);
  NodeManager nm2(&ctx.cluster(), &rm, conf);
  YarnClient client(&ctx.cluster(), &rm, conf);

  // Applications routinely request the documented scheduler maximum.
  uint64_t container = client.RequestMaxContainer();
  ctx.Check(container > 0, "container allocated at the scheduler maximum");
}

void TestContainerWithinLimits(TestContext& ctx) {
  Configuration conf;
  ResourceManager rm(&ctx.cluster(), conf);
  NodeManager nm(&ctx.cluster(), &rm, conf);
  YarnClient client(&ctx.cluster(), &rm, conf);

  ctx.Check(client.RequestContainer(512, 1) > 0, "small container allocated");
}

void TestNodeManagerRegistration(TestContext& ctx) {
  Configuration conf;
  ResourceManager rm(&ctx.cluster(), conf);
  NodeManager nm1(&ctx.cluster(), &rm, conf);
  NodeManager nm2(&ctx.cluster(), &rm, conf);

  ctx.CheckEq(rm.NumRegisteredNodeManagers(), 2, "registered NodeManagers");
  // Both NodeManagers heartbeat at the RM-provided interval; heterogeneous
  // values of the interval parameter are harmless because only the RM's copy
  // is ever consulted (the §7.3 embed-in-communication pattern).
  ctx.cluster().AdvanceTime(5000);
  ctx.CheckEq(nm1.effective_heartbeat_interval_ms(),
              nm2.effective_heartbeat_interval_ms(),
              "RM-provided heartbeat intervals agree");
}

void TestTokenExpiryMonotonic(TestContext& ctx) {
  Configuration conf;
  ResourceManager rm1(&ctx.cluster(), conf);
  ResourceManager rm2(&ctx.cluster(), conf);
  YarnClient client(&ctx.cluster(), &rm1, conf);

  DelegationToken first = client.GetDelegationTokenFrom(&rm1);
  ctx.cluster().AdvanceTime(50);
  DelegationToken second = client.GetDelegationTokenFrom(&rm2);
  ctx.Check(second.expiry_ms >= first.expiry_ms,
            "newer token must not expire before the older token");
}

void TestTimelinePublish(TestContext& ctx) {
  Configuration conf;
  conf.SetBool(kYarnTimelineEnabled, true);
  ResourceManager rm(&ctx.cluster(), conf);
  AppHistoryServer ahs(&ctx.cluster(), conf);
  YarnClient client(&ctx.cluster(), &rm, conf);

  bool sent = client.PublishTimelineEvent(&ahs, "app-started");
  if (sent) {
    ctx.CheckEq(ahs.NumTimelineEvents(), 1, "timeline event stored");
  }
}

void TestTimelineWebQuery(TestContext& ctx) {
  Configuration conf;
  conf.SetBool(kYarnTimelineEnabled, true);
  ResourceManager rm(&ctx.cluster(), conf);
  AppHistoryServer ahs(&ctx.cluster(), conf);
  YarnClient client(&ctx.cluster(), &rm, conf);

  std::string reply = client.QueryTimelineWeb(&ahs);
  ctx.Check(StartsWith(reply, "timeline-events="), "web query answered");
}

void TestHeterogeneousNodeCapacities(TestContext& ctx) {
  Configuration conf;
  ResourceManager rm(&ctx.cluster(), conf);
  NodeManager nm1(&ctx.cluster(), &rm, conf);
  NodeManager nm2(&ctx.cluster(), &rm, conf);
  YarnClient client(&ctx.cluster(), &rm, conf);

  // Capacity parameters are heterogeneous by design: allocation succeeds
  // regardless of each node's advertised size.
  ctx.Check(client.RequestContainer(1024, 1) > 0, "first container");
  ctx.Check(client.RequestContainer(1024, 1) > 0, "second container");
}

void TestRmWorkPreservingRecovery(TestContext& ctx) {
  Configuration conf;
  ResourceManager rm(&ctx.cluster(), conf);
  NodeManager nm(&ctx.cluster(), &rm, conf);

  // Simulated RM restart: the NodeManager re-syncs. With mismatched
  // work-preserving flags the resync loses container state in ~60% of runs.
  rm.RecoverNodeManager(nm.id(), nm.conf(), ctx.rng());
  ctx.CheckEq(rm.NumRegisteredNodeManagers(), 1, "NodeManager survived recovery");
}

void TestMetricsPublisherLazyConf(TestContext& ctx) {
  Configuration conf;
  ResourceManager rm(&ctx.cluster(), conf);
  NodeManager nm(&ctx.cluster(), &rm, conf);

  // A JMX-style metrics publisher builds its own Configuration lazily, after
  // the cluster is up — unmappable by ConfAgent (Observation 3).
  Configuration metrics_conf;
  metrics_conf.GetInt(kYarnLogRetainSeconds, kYarnLogRetainSecondsDefault);
  metrics_conf.GetInt(kYarnMaxAllocMb, kYarnMaxAllocMbDefault);
  ctx.CheckEq(rm.NumRegisteredNodeManagers(), 1, "NodeManager registered");
}

void TestApplicationLifecycle(TestContext& ctx) {
  Configuration conf;
  conf.SetBool(kYarnTimelineEnabled, true);
  ResourceManager rm(&ctx.cluster(), conf);
  NodeManager nm(&ctx.cluster(), &rm, conf);
  AppHistoryServer ahs(&ctx.cluster(), conf);
  AppManager apps(&ctx.cluster(), &rm);

  uint64_t app = apps.SubmitApplication("pipeline", 2, 1024, 1);
  ctx.CheckEq(apps.NumRunning(), 1, "application running");
  bool published = apps.PublishHistory(app, &ahs, conf);
  if (published) {
    ctx.CheckEq(ahs.NumTimelineEvents(), 2, "lifecycle events stored");
  }
  apps.CompleteApplication(app);
  ctx.CheckEq(apps.NumCompletedRetained(), 1, "completed app retained");
}

void TestManyContainersWorkload(TestContext& ctx) {
  Configuration conf;
  conf.SetInt(kYarnNmMemoryMb, 4096);
  ResourceManager rm(&ctx.cluster(), conf);
  NodeManager nm1(&ctx.cluster(), &rm, conf);
  NodeManager nm2(&ctx.cluster(), &rm, conf);
  YarnClient client(&ctx.cluster(), &rm, conf);

  // Fill the cluster with minimum-sized containers.
  int64_t min_alloc = conf.GetInt(kYarnMinAllocMb, kYarnMinAllocMbDefault);
  int allocated = 0;
  for (int i = 0; i < 8; ++i) {
    if (client.RequestContainer(min_alloc, 1) > 0) {
      ++allocated;
    }
  }
  ctx.CheckEq(allocated, 8, "cluster fits eight minimum containers");
  ctx.cluster().AdvanceTime(3000);  // heartbeats keep flowing under load
}

void TestSchedulerQueueParsingNoNodes(TestContext& ctx) {
  std::vector<std::string> queues = StrSplit("root.default,root.batch", ',');
  ctx.CheckEq(static_cast<int>(queues.size()), 2, "queue list parsed");
}

void TestFlakyNodeManagerReconnect(TestContext& ctx) {
  Configuration conf;
  ResourceManager rm(&ctx.cluster(), conf);
  NodeManager nm(&ctx.cluster(), &rm, conf);

  ctx.cluster().AdvanceTime(3000);
  ctx.MaybeFlakyFail(0.3, "NodeManager reconnect raced with the liveness monitor");
  ctx.CheckEq(rm.NumRegisteredNodeManagers(), 1, "NodeManager still registered");
}

}  // namespace

void RegisterMiniYarnCorpus(UnitTestRegistry& registry) {
  registry.Add(kApp, "TestContainerAllocationAtMax", TestContainerAllocationAtMax);
  registry.Add(kApp, "TestContainerWithinLimits", TestContainerWithinLimits);
  registry.Add(kApp, "TestNodeManagerRegistration", TestNodeManagerRegistration);
  registry.Add(kApp, "TestTokenExpiryMonotonic", TestTokenExpiryMonotonic);
  registry.Add(kApp, "TestTimelinePublish", TestTimelinePublish);
  registry.Add(kApp, "TestTimelineWebQuery", TestTimelineWebQuery);
  registry.Add(kApp, "TestHeterogeneousNodeCapacities", TestHeterogeneousNodeCapacities);
  registry.Add(kApp, "TestRmWorkPreservingRecovery", TestRmWorkPreservingRecovery);
  registry.Add(kApp, "TestMetricsPublisherLazyConf", TestMetricsPublisherLazyConf);
  registry.Add(kApp, "TestApplicationLifecycle", TestApplicationLifecycle);
  registry.Add(kApp, "TestManyContainersWorkload", TestManyContainersWorkload);
  registry.Add(kApp, "TestSchedulerQueueParsingNoNodes", TestSchedulerQueueParsingNoNodes);
  registry.Add(kApp, "TestFlakyNodeManagerReconnect", TestFlakyNodeManagerReconnect);
}

}  // namespace zebra
