// MiniKV corpus: region-server row operations, the thrift gateway, and the
// REST server.

#include "src/apps/minikv/kv_params.h"
#include "src/apps/minikv/kv_store.h"
#include "src/apps/minikv/thrift_server.h"
#include "src/common/strings.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

namespace {

constexpr char kApp[] = "minikv";

void TestPutGet(TestContext& ctx) {
  Configuration conf;
  HMaster master(&ctx.cluster(), conf);
  HRegionServer rs1(&ctx.cluster(), &master, conf);
  HRegionServer rs2(&ctx.cluster(), &master, conf);
  KvClient client(&ctx.cluster(), &master, conf);

  client.CreateTable("t");
  client.Put("t", "row1", "value1");
  ctx.CheckEq(client.Get("t", "row1"), std::string("value1"), "round-trip value");
}

void TestThriftAdminCreateTable(TestContext& ctx) {
  Configuration conf;
  HMaster master(&ctx.cluster(), conf);
  HRegionServer rs(&ctx.cluster(), &master, conf);
  ThriftServer thrift(&ctx.cluster(), &master, conf);
  ThriftAdmin admin(&thrift, conf);

  admin.CreateTable("thrift_t");
  ctx.CheckEq(admin.NumTables(), 1, "tables visible through thrift");
}

void TestRestStatus(TestContext& ctx) {
  Configuration conf;
  HMaster master(&ctx.cluster(), conf);
  RESTServer rest(&ctx.cluster(), &master, conf);

  ctx.Check(StartsWith(rest.Status(), "rest-ok"), "REST status served");
}

void TestRegionDistribution(TestContext& ctx) {
  Configuration conf;
  HMaster master(&ctx.cluster(), conf);
  HRegionServer rs1(&ctx.cluster(), &master, conf);
  HRegionServer rs2(&ctx.cluster(), &master, conf);
  HRegionServer rs3(&ctx.cluster(), &master, conf);
  KvClient client(&ctx.cluster(), &master, conf);

  client.CreateTable("dist");
  for (int i = 0; i < 10; ++i) {
    client.Put("dist", "row" + std::to_string(i), "v");
  }
  ctx.CheckEq(rs1.NumRows() + rs2.NumRows() + rs3.NumRows(), 10, "rows stored");
}

void TestClientRetriesConfig(TestContext& ctx) {
  Configuration conf;
  HMaster master(&ctx.cluster(), conf);
  HRegionServer rs(&ctx.cluster(), &master, conf);
  KvClient client(&ctx.cluster(), &master, conf);

  client.CreateTable("cfg");
  client.Put("cfg", "k", "v");
  ctx.CheckEq(client.Get("cfg", "k"), std::string("v"), "value after retries config");
}

void TestThriftBulkAdministration(TestContext& ctx) {
  Configuration conf;
  HMaster master(&ctx.cluster(), conf);
  HRegionServer rs(&ctx.cluster(), &master, conf);
  ThriftServer thrift(&ctx.cluster(), &master, conf);
  ThriftAdmin admin(&thrift, conf);

  for (int i = 0; i < 5; ++i) {
    admin.CreateTable("bulk_" + std::to_string(i));
  }
  ctx.CheckEq(admin.NumTables(), 5, "all tables created over thrift");
}

void TestMixedGatewayAccess(TestContext& ctx) {
  // Data written through the native client is visible through the thrift and
  // REST gateways.
  Configuration conf;
  HMaster master(&ctx.cluster(), conf);
  HRegionServer rs1(&ctx.cluster(), &master, conf);
  HRegionServer rs2(&ctx.cluster(), &master, conf);
  ThriftServer thrift(&ctx.cluster(), &master, conf);
  RESTServer rest(&ctx.cluster(), &master, conf);
  KvClient client(&ctx.cluster(), &master, conf);
  ThriftAdmin admin(&thrift, conf);

  client.CreateTable("native");
  admin.CreateTable("gateway");
  client.Put("native", "row", "value");
  ctx.CheckEq(admin.NumTables(), 2, "both tables visible over thrift");
  ctx.CheckEq(rest.Status(), std::string("rest-ok tables=2"), "REST sees both");
  ctx.CheckEq(client.Get("native", "row"), std::string("value"), "native read");
}

void TestRegionSplitMathNoNodes(TestContext& ctx) {
  int64_t region_size = 512;
  int64_t max_size = 1024;
  ctx.Check(region_size < max_size, "region below split threshold");
}

void TestFlakyMasterFailover(TestContext& ctx) {
  Configuration conf;
  HMaster master(&ctx.cluster(), conf);
  HRegionServer rs(&ctx.cluster(), &master, conf);
  KvClient client(&ctx.cluster(), &master, conf);

  client.CreateTable("ha");
  ctx.MaybeFlakyFail(0.3, "master failover left the region transiently unassigned");
  client.Put("ha", "k", "v");
  ctx.CheckEq(client.Get("ha", "k"), std::string("v"), "value after failover");
}

}  // namespace

void RegisterMiniKvCorpus(UnitTestRegistry& registry) {
  registry.Add(kApp, "TestPutGet", TestPutGet);
  registry.Add(kApp, "TestThriftAdminCreateTable", TestThriftAdminCreateTable);
  registry.Add(kApp, "TestRestStatus", TestRestStatus);
  registry.Add(kApp, "TestRegionDistribution", TestRegionDistribution);
  registry.Add(kApp, "TestClientRetriesConfig", TestClientRetriesConfig);
  registry.Add(kApp, "TestThriftBulkAdministration", TestThriftBulkAdministration);
  registry.Add(kApp, "TestMixedGatewayAccess", TestMixedGatewayAccess);
  registry.Add(kApp, "TestRegionSplitMathNoNodes", TestRegionSplitMathNoNodes);
  registry.Add(kApp, "TestFlakyMasterFailover", TestFlakyMasterFailover);
}

}  // namespace zebra
