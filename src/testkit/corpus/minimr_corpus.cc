// MiniMR corpus: word-count jobs exercising partitioning, shuffle wire
// formats, committer algorithms, and output naming.

#include <string>
#include <vector>

#include "src/apps/minimr/job_history_server.h"
#include "src/apps/minimr/map_task.h"
#include "src/apps/minimr/mr_job.h"
#include "src/apps/minimr/mr_params.h"
#include "src/common/rng.h"
#include "src/common/strings.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

namespace {

constexpr char kApp[] = "minimr";

const std::vector<std::string>& SampleRecords() {
  static const std::vector<std::string>* kRecords = new std::vector<std::string>{
      "alpha beta alpha", "beta gamma", "alpha delta gamma gamma"};
  return *kRecords;
}

void CheckWordCounts(TestContext& ctx, const WordCountResult& result) {
  ctx.CheckEq(result.counts.at("alpha"), 3, "count of 'alpha'");
  ctx.CheckEq(result.counts.at("beta"), 2, "count of 'beta'");
  ctx.CheckEq(result.counts.at("gamma"), 3, "count of 'gamma'");
  ctx.CheckEq(result.counts.at("delta"), 1, "count of 'delta'");
}

void TestWordCountBasic(TestContext& ctx) {
  Configuration conf;
  WordCountResult result = RunWordCountJob(ctx.cluster(), conf, SampleRecords());
  CheckWordCounts(ctx, result);
}

void TestWordCountMultiReduce(TestContext& ctx) {
  Configuration conf;
  conf.SetInt(kMrJobReduces, 2);
  WordCountResult result = RunWordCountJob(ctx.cluster(), conf, SampleRecords());
  CheckWordCounts(ctx, result);
  // The user expects one part file per reducer *their* configuration says ran.
  int expected_files = static_cast<int>(conf.GetInt(kMrJobReduces, kMrJobReducesDefault));
  ctx.CheckEq(static_cast<int>(result.output_files.size()), expected_files,
              "output part files");
}

void TestOutputFileNames(TestContext& ctx) {
  Configuration conf;
  WordCountResult result = RunWordCountJob(ctx.cluster(), conf, SampleRecords());
  // End users derive the expected file names from *their* configuration —
  // the inconsistency Table 3 reports for fileoutputformat.compress.
  bool expect_compressed = conf.GetBool(kMrOutputCompress, kMrOutputCompressDefault);
  for (const std::string& name : result.output_files) {
    ctx.CheckEq(EndsWith(name, ".rle"), expect_compressed,
                "output file suffix for " + name);
  }
}

void TestCommitterV1Job(TestContext& ctx) {
  Configuration conf;
  conf.SetInt(kMrCommitterVersion, 1);
  WordCountResult result = RunWordCountJob(ctx.cluster(), conf, SampleRecords());
  CheckWordCounts(ctx, result);
  ctx.Check(result.store.temporary.empty(), "no staged output after job commit");
}

void TestShuffleEncryption(TestContext& ctx) {
  Configuration conf;
  conf.SetBool(kMrEncryptedIntermediate, true);
  WordCountResult result = RunWordCountJob(ctx.cluster(), conf, SampleRecords());
  CheckWordCounts(ctx, result);
}

void TestCompressedShuffle(TestContext& ctx) {
  Configuration conf;
  conf.SetBool(kMrMapOutputCompress, true);
  WordCountResult result = RunWordCountJob(ctx.cluster(), conf, SampleRecords());
  CheckWordCounts(ctx, result);
}

void TestHistoryServerQuery(TestContext& ctx) {
  Configuration conf;
  JobHistoryServer history(&ctx.cluster(), conf);
  history.RecordJob("job-1");
  history.RecordJob("job-2");
  ctx.CheckEq(history.NumJobs(conf), 2, "recorded jobs");
}

void TestMapperPartitionCount(TestContext& ctx) {
  Configuration conf;
  MapTask map(&ctx.cluster(), conf, 0);
  map.Run({"one two three"});
  // The user's expectation comes from their own copy of job.reduces.
  int expected = static_cast<int>(conf.GetInt(kMrJobReduces, kMrJobReducesDefault));
  ctx.CheckEq(map.NumPartitions(), expected, "partitions produced by the mapper");
}

void TestSpeculativeExecutionFlaky(TestContext& ctx) {
  Configuration conf;
  conf.GetBool(kMrMapSpeculative, kMrMapSpeculativeDefault);
  WordCountResult result = RunWordCountJob(ctx.cluster(), conf, SampleRecords());
  ctx.MaybeFlakyFail(0.25, "speculative attempt committed out of order");
  CheckWordCounts(ctx, result);
}

void TestSingleMapperManyReducers(TestContext& ctx) {
  Configuration conf;
  conf.SetInt(kMrJobMaps, 1);
  conf.SetInt(kMrJobReduces, 4);
  WordCountResult result = RunWordCountJob(ctx.cluster(), conf, SampleRecords());
  CheckWordCounts(ctx, result);
  int expected_files =
      static_cast<int>(conf.GetInt(kMrJobReduces, kMrJobReducesDefault));
  ctx.CheckEq(static_cast<int>(result.output_files.size()), expected_files,
              "one part file per reducer");
}

void TestEmptyInputJob(TestContext& ctx) {
  Configuration conf;
  WordCountResult result = RunWordCountJob(ctx.cluster(), conf, {});
  ctx.Check(result.counts.empty(), "no counts from empty input");
  ctx.Check(!result.output_files.empty(), "committer still produces part files");
}

void TestChainedJobs(TestContext& ctx) {
  // Job 1 counts words; job 2 re-counts job 1's rendered output lines —
  // a two-stage pipeline over the same cluster substrate.
  Configuration conf;
  WordCountResult first = RunWordCountJob(ctx.cluster(), conf, SampleRecords());

  std::vector<std::string> second_input;
  for (const auto& [word, count] : first.counts) {
    second_input.push_back(word + " appeared");
  }
  WordCountResult second = RunWordCountJob(ctx.cluster(), conf, second_input);
  ctx.CheckEq(second.counts.at("appeared"), static_cast<int>(first.counts.size()),
              "every distinct word produced one 'appeared' token");
}

void TestPartitionerNoNodes(TestContext& ctx) {
  // Pure partitioner math; no nodes started.
  uint64_t h1 = Fnv1a64("alpha") % 4;
  uint64_t h2 = Fnv1a64("alpha") % 4;
  ctx.CheckEq(static_cast<int>(h1), static_cast<int>(h2), "stable partitioning");
}

}  // namespace

void RegisterMiniMrCorpus(UnitTestRegistry& registry) {
  registry.Add(kApp, "TestWordCountBasic", TestWordCountBasic);
  registry.Add(kApp, "TestWordCountMultiReduce", TestWordCountMultiReduce);
  registry.Add(kApp, "TestOutputFileNames", TestOutputFileNames);
  registry.Add(kApp, "TestCommitterV1Job", TestCommitterV1Job);
  registry.Add(kApp, "TestShuffleEncryption", TestShuffleEncryption);
  registry.Add(kApp, "TestCompressedShuffle", TestCompressedShuffle);
  registry.Add(kApp, "TestHistoryServerQuery", TestHistoryServerQuery);
  registry.Add(kApp, "TestMapperPartitionCount", TestMapperPartitionCount);
  registry.Add(kApp, "TestSpeculativeExecutionFlaky", TestSpeculativeExecutionFlaky);
  registry.Add(kApp, "TestSingleMapperManyReducers", TestSingleMapperManyReducers);
  registry.Add(kApp, "TestEmptyInputJob", TestEmptyInputJob);
  registry.Add(kApp, "TestChainedJobs", TestChainedJobs);
  registry.Add(kApp, "TestPartitionerNoNodes", TestPartitionerNoNodes);
}

}  // namespace zebra
