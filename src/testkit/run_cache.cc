#include "src/testkit/run_cache.h"

#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/conf/plan_equiv.h"

namespace zebra {

namespace {

thread_local RunCache* g_run_cache = nullptr;

// File-format escaping: entries are one logical value per line; only the
// newline and the escape character itself need protection (cache keys carry
// '\x1f'/'\x1e' separators, which are line-safe bytes).
std::string EscapeLine(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeLine(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      ++i;
      out += text[i] == 'n' ? '\n' : text[i];
    } else {
      out += text[i];
    }
  }
  return out;
}

// SessionReport round-trip. Warm-started cache entries feed TestGenerator's
// pre-run consumption, so every field must survive. The blob is a small
// tag-prefixed line format; entities and parameter names never contain
// spaces, values (the tail of each line) may.
std::string SerializeSessionReport(const SessionReport& report) {
  std::ostringstream out;
  for (const auto& [type, count] : report.node_counts) {
    out << "node " << count << ' ' << type << '\n';
  }
  for (const auto& [entity, params] : report.reads) {
    for (const std::string& param : params) {
      out << "read " << entity << ' ' << param << '\n';
    }
  }
  for (const std::string& param : report.uncertain_params) {
    out << "uncertain " << param << '\n';
  }
  for (const std::string& element : report.trace_elements) {
    out << "trace " << element << '\n';
  }
  out << "counters " << report.conf_objects_created << ' ' << report.clones << ' '
      << report.ref_to_clones << ' ' << report.uncertain_conf_count << ' '
      << report.override_hits << '\n';
  out << "flags " << (report.conf_sharing_detected ? 1 : 0) << ' '
      << (report.any_conf_usage ? 1 : 0) << '\n';
  return out.str();
}

bool DeserializeSessionReport(const std::string& blob, SessionReport* report) {
  std::istringstream in(blob);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    size_t space = line.find(' ');
    if (space == std::string::npos) {
      return false;
    }
    std::string tag = line.substr(0, space);
    std::string rest = line.substr(space + 1);
    if (tag == "node") {
      size_t s = rest.find(' ');
      if (s == std::string::npos) {
        return false;
      }
      int64_t count = 0;
      if (!ParseInt64(rest.substr(0, s), &count)) {
        return false;
      }
      report->node_counts[rest.substr(s + 1)] = static_cast<int>(count);
    } else if (tag == "read") {
      size_t s = rest.find(' ');
      if (s == std::string::npos) {
        return false;
      }
      report->reads[rest.substr(0, s)].insert(rest.substr(s + 1));
    } else if (tag == "uncertain") {
      report->uncertain_params.insert(rest);
    } else if (tag == "trace") {
      report->trace_elements.insert(rest);
    } else if (tag == "counters") {
      std::istringstream fields(rest);
      if (!(fields >> report->conf_objects_created >> report->clones >>
            report->ref_to_clones >> report->uncertain_conf_count >>
            report->override_hits)) {
        return false;
      }
    } else if (tag == "flags") {
      int sharing = 0;
      int usage = 0;
      std::istringstream fields(rest);
      if (!(fields >> sharing >> usage)) {
        return false;
      }
      report->conf_sharing_detected = sharing != 0;
      report->any_conf_usage = usage != 0;
    } else {
      return false;
    }
  }
  return true;
}

// v2 added the trailing "C <fnv64 hex>" whole-file checksum line. v1 files
// (no checksum) are rejected as corrupt: the cache is an optimization, so a
// one-time cold start on upgrade is cheaper than trusting an unverifiable
// file. The hash-keyed index did not bump the version: keys are persisted in
// their legacy string form, so v2 files round-trip unchanged.
constexpr char kCacheFileMagic[] = "zebra-run-cache-v2";

// One-byte separators folded into key digests (string_view avoids the
// char overload ambiguity and keeps the fold identical to hashing the
// concatenated string).
constexpr std::string_view kSep = "\x1f";
constexpr std::string_view kSepStar = "\x1f*";
constexpr std::string_view kCanonicalTag = "C\x1f";
constexpr std::string_view kTraceTag = "T\x1f";

}  // namespace

void SetGlobalRunCache(RunCache* cache) { g_run_cache = cache; }

RunCache* GlobalRunCache() { return g_run_cache; }

// '\x1f' (unit separator) cannot appear in test ids or plan fingerprints, so
// the concatenation is injective; the full string defines the key — the
// 128-bit digests below are digests *of these strings*, derived without
// materializing them. The equivalence namespaces get a distinct tag prefix
// so a canonical fingerprint can never collide with a plan fingerprint of
// the same text.
std::string RunCache::ExactKey(const std::string& test_id, const std::string& plan_text,
                               uint64_t trial) {
  return test_id + '\x1f' + plan_text + '\x1f' + std::to_string(trial);
}

std::string RunCache::WildcardKey(const std::string& test_id,
                                  const std::string& plan_text) {
  return test_id + '\x1f' + plan_text + "\x1f*";
}

std::string RunCache::CanonicalKey(const std::string& test_id,
                                   const std::string& canonical_fingerprint) {
  return std::string("C\x1f") + test_id + '\x1f' + canonical_fingerprint + "\x1f*";
}

std::string RunCache::TraceKey(const std::string& test_id, const std::string& trace) {
  return std::string("T\x1f") + test_id + '\x1f' + trace + "\x1f*";
}

// The component folds. FNV chains over concatenation, so each of these is
// byte-for-byte the digest of the matching legacy string above — the
// equivalence LoadFromFile's gate verifies on every persisted key.
Digest128 RunCache::ExactRunKey(const std::string& test_id,
                                const std::string& plan_text, uint64_t trial) {
  Digest128 digest = HashFnv128(test_id);
  digest = HashFnv128(kSep, digest);
  digest = HashFnv128(plan_text, digest);
  digest = HashFnv128(kSep, digest);
  return HashFnv128Decimal(trial, digest);
}

Digest128 RunCache::WildcardRunKey(const std::string& test_id,
                                   const std::string& plan_text) {
  Digest128 digest = HashFnv128(test_id);
  digest = HashFnv128(kSep, digest);
  digest = HashFnv128(plan_text, digest);
  return HashFnv128(kSepStar, digest);
}

Digest128 RunCache::CanonicalRunKey(const std::string& test_id,
                                    const std::string& canonical_fingerprint) {
  Digest128 digest = HashFnv128(kCanonicalTag);
  digest = HashFnv128(test_id, digest);
  digest = HashFnv128(kSep, digest);
  digest = HashFnv128(canonical_fingerprint, digest);
  return HashFnv128(kSepStar, digest);
}

Digest128 RunCache::TraceRunKey(const std::string& test_id,
                                const std::string& trace) {
  Digest128 digest = HashFnv128(kTraceTag);
  digest = HashFnv128(test_id, digest);
  digest = HashFnv128(kSep, digest);
  digest = HashFnv128(trace, digest);
  return HashFnv128(kSepStar, digest);
}

int64_t RunCache::EntryBytes(const std::string& legacy_key, const Entry& entry) {
  const TestResult& result = *entry.result;
  const SessionReport& report = result.report;
  int64_t bytes = static_cast<int64_t>(sizeof(Node) + legacy_key.size() +
                                       entry.observed_trace.size() +
                                       result.failure.size());
  for (const auto& [type, count] : report.node_counts) {
    bytes += static_cast<int64_t>(type.size()) + 8;
  }
  for (const auto& [entity, params] : report.reads) {
    bytes += static_cast<int64_t>(entity.size());
    for (const std::string& param : params) {
      bytes += static_cast<int64_t>(param.size());
    }
  }
  for (const std::string& param : report.uncertain_params) {
    bytes += static_cast<int64_t>(param.size());
  }
  for (const std::string& element : report.trace_elements) {
    bytes += static_cast<int64_t>(element.size());
  }
  return bytes;
}

RunCache::Node* RunCache::Touch(Digest128 key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return &lru_.front();
}

template <typename MakeLegacy>
bool RunCache::InsertEntry(Digest128 key, MakeLegacy&& make_legacy,
                           const std::shared_ptr<const Entry>& entry) {
  auto it = index_.find(key);
  if (it != index_.end()) {
    // First result wins; identical by construction — unless the legacy keys
    // differ, which means two distinct runs digested to the same 128 bits.
    // Drop the stored entry too: neither logical key may be served through
    // an ambiguous digest (a re-execution is cheap, a wrong serve is not).
    if (it->second->legacy_key != make_legacy()) {
      ++stats_.key_collisions;
      stats_.bytes -= EntryBytes(it->second->legacy_key, *it->second->entry);
      lru_.erase(it->second);
      index_.erase(it);
      --stats_.entries;
    }
    return false;
  }
  return InsertEntryWithLegacy(key, make_legacy(), entry);
}

bool RunCache::InsertEntryWithLegacy(Digest128 key, std::string legacy_key,
                                     const std::shared_ptr<const Entry>& entry) {
  stats_.bytes += EntryBytes(legacy_key, *entry);
  lru_.push_front(Node{key, std::move(legacy_key), entry});
  index_[key] = lru_.begin();
  ++stats_.entries;
  EnforceLimits();
  return true;
}

const RunCache::Entry* RunCache::MatchByRestriction(
    const std::string& test_id, const TestPlan& plan,
    const std::string& predicted_trace) {
  // Newest-first, bounded: the runs restriction matching exists to collapse
  // (bisection re-probes, early-stopped failing paths) are re-queried shortly
  // after they were stored, so scanning the most recent candidates catches
  // them while keeping per-miss cost independent of corpus size. A candidate
  // beyond the cap only costs a re-execution, never a wrong serve.
  constexpr int kMaxCandidates = 64;
  auto keys_it = trace_keys_by_test_.find(test_id);
  if (keys_it == trace_keys_by_test_.end()) {
    return nullptr;
  }
  const std::vector<Digest128>& keys = keys_it->second;
  int scanned = 0;
  for (auto key = keys.rbegin(); key != keys.rend() && scanned < kMaxCandidates;
       ++key) {
    auto it = index_.find(*key);
    if (it == index_.end()) {
      continue;  // evicted since registration
    }
    ++scanned;
    const Entry& entry = *it->second->entry;
    if (PlanReproducesObservedTrace(plan, entry.observed_trace, predicted_trace)) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return lru_.front().entry.get();
    }
  }
  return nullptr;
}

void RunCache::EnforceLimits() {
  while (!lru_.empty() &&
         ((limits_.max_entries > 0 && stats_.entries > limits_.max_entries) ||
          (limits_.max_bytes > 0 && stats_.bytes > limits_.max_bytes))) {
    const Node& node = lru_.back();
    stats_.bytes -= EntryBytes(node.legacy_key, *node.entry);
    index_.erase(node.key);
    lru_.pop_back();
    --stats_.entries;
    ++stats_.evictions;
  }
}

const TestResult* RunCache::Lookup(const std::string& test_id,
                                   const std::string& plan_text, uint64_t trial,
                                   EquivQuery* equiv) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = LookupLocked(test_id, plan_text, trial, equiv);
  return entry == nullptr ? nullptr : entry->result.get();
}

bool RunCache::Lookup(const std::string& test_id, const std::string& plan_text,
                      uint64_t trial, EquivQuery* equiv, TestResult* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = LookupLocked(test_id, plan_text, trial, equiv);
  if (entry == nullptr) {
    return false;
  }
  *out = *entry->result;
  return true;
}

std::shared_ptr<const TestResult> RunCache::LookupShared(
    const std::string& test_id, const std::string& plan_text, uint64_t trial,
    EquivQuery* equiv) {
  std::lock_guard<std::mutex> lock(mutex_);
  const Entry* entry = LookupLocked(test_id, plan_text, trial, equiv);
  // Refcount bump under the lock; the payload is immutable and outlives any
  // eviction, so the caller's pointer is safe without a copy.
  return entry == nullptr ? nullptr : entry->result;
}

const RunCache::Entry* RunCache::LookupLocked(const std::string& test_id,
                                              const std::string& plan_text,
                                              uint64_t trial, EquivQuery* equiv) {
  if (Node* node = Touch(WildcardRunKey(test_id, plan_text))) {
    ++stats_.hits;
    return node->entry.get();
  }
  if (Node* node = Touch(ExactRunKey(test_id, plan_text, trial))) {
    ++stats_.hits;
    return node->entry.get();
  }
  if (equiv != nullptr && equiv->surface != nullptr && equiv->plan != nullptr) {
    // Derive the equivalence keys only now, past the exact fast path, so
    // exact hits pay nothing for the layer.
    if (!equiv->computed) {
      CanonicalPlan canonical = equiv->surface->Canonicalize(*equiv->plan);
      equiv->canonical_fingerprint = std::move(canonical.fingerprint);
      equiv->plan_canonicalized = canonical.changed;
      equiv->has_trace =
          equiv->surface->PredictTrace(*equiv->plan, &equiv->predicted_trace);
      equiv->computed = true;
      if (equiv->plan_canonicalized) {
        ++stats_.canonicalized_plans;
      }
    }
    // Canonical-fingerprint index: same canonical form implies the same
    // served value at every promised read. Serving is still gated on the
    // stored execution's observed trace matching this plan's prediction —
    // if the pre-run promise was broken (a value-gated read appeared), the
    // traces differ and the serve is refused.
    if (Node* node =
            Touch(CanonicalRunKey(test_id, equiv->canonical_fingerprint))) {
      if (equiv->has_trace &&
          node->entry->observed_trace == equiv->predicted_trace) {
        ++stats_.equiv_hits;
        return node->entry.get();
      }
      ++stats_.mispredictions;
    }
    if (equiv->has_trace) {
      // Trace index fast path: the key *is* the stored execution's observed
      // trace, so a hit is self-validating — predicted == observed by key
      // equality.
      if (Node* node = Touch(TraceRunKey(test_id, equiv->predicted_trace))) {
        ++stats_.equiv_hits;
        return node->entry.get();
      }
      // Restriction matching: the full-trace key misses whenever the stored
      // execution stopped early (its observed trace is a strict prefix of
      // any full prediction), so scan this test's stored traces for one this
      // plan reproduces element for element.
      if (const Entry* entry = MatchByRestriction(test_id, *equiv->plan,
                                                  equiv->predicted_trace)) {
        ++stats_.equiv_hits;
        return entry;
      }
    }
  }
  ++stats_.misses;
  return nullptr;
}

void RunCache::Insert(const std::string& test_id, const std::string& plan_text,
                      uint64_t trial, bool trial_insensitive,
                      std::shared_ptr<const TestResult> result,
                      const EquivQuery* equiv,
                      const std::string* observed_trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto entry = std::make_shared<Entry>();
  entry->result = std::move(result);
  if (observed_trace != nullptr) {
    entry->observed_trace = *observed_trace;
  }
  InsertEntry(ExactRunKey(test_id, plan_text, trial),
              [&] { return ExactKey(test_id, plan_text, trial); }, entry);
  if (!trial_insensitive) {
    // Trial-sensitive executions are never shared across trials or plans:
    // the RNG seed folds in the plan description, so different descriptions
    // legitimately diverge.
    return;
  }
  InsertEntry(WildcardRunKey(test_id, plan_text),
              [&] { return WildcardKey(test_id, plan_text); }, entry);
  if (observed_trace == nullptr || observed_trace->empty()) {
    return;
  }
  // Index by what the execution actually observed — always truthful, and
  // deliberately not gated on `equiv`: the pre-run baseline executes before
  // the unit's ReadSurface exists, yet must be reachable by plans that later
  // collapse to it.
  Digest128 trace_key = TraceRunKey(test_id, *observed_trace);
  if (InsertEntry(trace_key, [&] { return TraceKey(test_id, *observed_trace); },
                  entry)) {
    trace_keys_by_test_[test_id].push_back(trace_key);
  }
  if (equiv == nullptr || !equiv->computed) {
    return;
  }
  if (equiv->has_trace && equiv->predicted_trace != *observed_trace) {
    // The pre-run promise was broken for this plan: a value-gated read
    // appeared or a promised read vanished. The canonical index would
    // conflate this run with plans it is not equivalent to, so skip it.
    ++stats_.mispredictions;
    return;
  }
  InsertEntry(CanonicalRunKey(test_id, equiv->canonical_fingerprint),
              [&] { return CanonicalKey(test_id, equiv->canonical_fingerprint); },
              entry);
}

void RunCache::Insert(const std::string& test_id, const std::string& plan_text,
                      uint64_t trial, bool trial_insensitive,
                      const TestResult& result, const EquivQuery* equiv,
                      const std::string* observed_trace) {
  Insert(test_id, plan_text, trial, trial_insensitive,
         std::make_shared<const TestResult>(result), equiv, observed_trace);
}

bool RunCache::InsertAliasForTesting(Digest128 key, std::string legacy_key,
                                     const TestResult& result) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto entry = std::make_shared<Entry>();
  entry->result = std::make_shared<const TestResult>(result);
  return InsertEntry(key, [&] { return legacy_key; }, entry);
}

bool RunCache::SaveToFile(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  // Every content line folds into a running digest; the trailing checksum
  // line lets LoadFromFile reject a torn or bit-flipped file wholesale.
  uint64_t digest = kFnv64Seed;
  auto emit = [&out, &digest](const std::string& line) {
    digest = HashFnv64(line, digest);
    out << line << '\n';
  };
  emit(kCacheFileMagic);
  emit(Int64ToString(static_cast<int64_t>(lru_.size())));
  // Front-to-back = most-to-least recent; LoadFromFile rebuilds in order.
  // Keys persist in their legacy string form, so the format is independent
  // of the in-memory digest scheme.
  for (const Node& node : lru_) {
    const Entry& entry = *node.entry;
    emit("K " + EscapeLine(node.legacy_key));
    emit(std::string("P ") + (entry.result->passed ? "1" : "0"));
    emit("F " + EscapeLine(entry.result->failure));
    emit("T " + EscapeLine(entry.observed_trace));
    emit("R " + EscapeLine(SerializeSessionReport(entry.result->report)));
  }
  out << "C " << HashToHex(digest) << '\n';
  return static_cast<bool>(out);
}

// Re-derives a persisted key's digest through the same component folds the
// hot path uses (parsing the legacy shape: tagged canonical/trace keys, then
// exact/wildcard). Returns false for a shape SaveToFile never emits.
bool RunCache::DeriveComponentDigest(const std::string& key, Digest128* out) {
  auto ends_with_sep_star = [&key] {
    return key.size() >= 2 && key[key.size() - 2] == '\x1f' && key.back() == '*';
  };
  if (key.size() >= 2 && (key[0] == 'C' || key[0] == 'T') && key[1] == '\x1f') {
    size_t id_end = key.find('\x1f', 2);
    if (id_end == std::string::npos || !ends_with_sep_star() ||
        id_end + 1 > key.size() - 2) {
      return false;
    }
    const std::string test_id = key.substr(2, id_end - 2);
    const std::string payload =
        key.substr(id_end + 1, key.size() - 2 - (id_end + 1));
    *out = key[0] == 'C' ? CanonicalRunKey(test_id, payload)
                         : TraceRunKey(test_id, payload);
    return true;
  }
  size_t id_end = key.find('\x1f');
  size_t tail_sep = key.rfind('\x1f');
  if (id_end == std::string::npos || tail_sep == id_end) {
    return false;
  }
  const std::string test_id = key.substr(0, id_end);
  const std::string plan_text =
      key.substr(id_end + 1, tail_sep - id_end - 1);
  const std::string tail = key.substr(tail_sep + 1);
  if (tail == "*") {
    *out = WildcardRunKey(test_id, plan_text);
    return true;
  }
  int64_t trial = 0;
  if (!ParseInt64(tail, &trial) || trial < 0) {
    return false;
  }
  *out = ExactRunKey(test_id, plan_text, static_cast<uint64_t>(trial));
  return true;
}

bool RunCache::LoadFromFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ifstream in(path);
  if (!in) {
    return false;  // missing file: the normal cold start, not a failure
  }
  lru_.clear();
  index_.clear();
  trace_keys_by_test_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;

  // Any defect — bad magic, torn tail, checksum mismatch, unparseable entry,
  // hashed/legacy key divergence — lands here: the cache degrades to empty
  // (a cold start) instead of throwing or keeping a half-loaded state.
  auto reject = [this, &path](const char* why) {
    ZLOG_WARN << "run cache: ignoring " << path << " (" << why
              << "); starting cold";
    lru_.clear();
    index_.clear();
    trace_keys_by_test_.clear();
    stats_.entries = 0;
    stats_.bytes = 0;
    ++stats_.load_failures;
    return false;
  };

  uint64_t digest = kFnv64Seed;
  std::string line;
  auto next_line = [&in, &line, &digest]() {
    if (!std::getline(in, line)) {
      return false;
    }
    digest = HashFnv64(line, digest);
    return true;
  };

  if (!next_line() || line != kCacheFileMagic) {
    return reject("not a run-cache file or unsupported version");
  }
  int64_t count = 0;
  if (!next_line() || !ParseInt64(line, &count) || count < 0) {
    return reject("corrupt entry count");
  }
  auto read_field = [&next_line, &line](char tag, std::string* value) {
    if (!next_line() || line.size() < 2 || line[0] != tag || line[1] != ' ') {
      return false;
    }
    *value = UnescapeLine(line.substr(2));
    return true;
  };
  for (int64_t i = 0; i < count; ++i) {
    std::string key;
    std::string passed;
    auto result = std::make_shared<TestResult>();
    auto entry = std::make_shared<Entry>();
    std::string blob;
    if (!read_field('K', &key) || !read_field('P', &passed) ||
        !read_field('F', &result->failure) ||
        !read_field('T', &entry->observed_trace) || !read_field('R', &blob) ||
        !DeserializeSessionReport(blob, &result->report)) {
      return reject("truncated or corrupt entry");
    }
    result->passed = passed == "1";
    entry->result = std::move(result);
    // The hashed/legacy agreement gate: the digest of the whole persisted
    // string must equal the digest the hot path would fold from its
    // components. A divergence means the two lookup schemes would disagree
    // at runtime, so the file is rejected wholesale.
    const Digest128 whole_key = HashFnv128(key);
    Digest128 component_key;
    if (!DeriveComponentDigest(key, &component_key) ||
        component_key != whole_key) {
      return reject("hashed/legacy key divergence");
    }
    if (auto existing = index_.find(whole_key); existing != index_.end()) {
      if (existing->second->legacy_key == key) {
        continue;  // duplicate record; first (most recent) wins
      }
      // A 128-bit collision inside one file: drop both sides, as at insert.
      ++stats_.key_collisions;
      stats_.bytes -=
          EntryBytes(existing->second->legacy_key, *existing->second->entry);
      lru_.erase(existing->second);
      index_.erase(existing);
      --stats_.entries;
      continue;
    }
    // File order is most-to-least recent; append keeps it.
    stats_.bytes += EntryBytes(key, *entry);
    lru_.push_back(Node{whole_key, key, std::move(entry)});
    auto it = std::prev(lru_.end());
    index_[whole_key] = it;
    ++stats_.entries;
    // Re-register trace-indexed entries ("T\x1f" + test_id + '\x1f' + ...)
    // for restriction matching.
    if (key.rfind("T\x1f", 0) == 0) {
      size_t id_end = key.find('\x1f', 2);
      if (id_end != std::string::npos) {
        trace_keys_by_test_[key.substr(2, id_end - 2)].push_back(whole_key);
      }
    }
  }
  // The checksum line covers everything above it (it is not folded into the
  // digest itself).
  uint64_t content_digest = digest;
  if (!std::getline(in, line) || line != "C " + HashToHex(content_digest)) {
    return reject("checksum mismatch (torn or tampered file)");
  }
  EnforceLimits();
  return true;
}

}  // namespace zebra
