#include "src/testkit/run_cache.h"

namespace zebra {

namespace {
RunCache* g_run_cache = nullptr;
}  // namespace

void SetGlobalRunCache(RunCache* cache) { g_run_cache = cache; }

RunCache* GlobalRunCache() { return g_run_cache; }

// '\x1f' (unit separator) cannot appear in test ids or plan descriptions, so
// the concatenation is injective; the full string is the key — no hash
// collisions can alias two distinct runs.
std::string RunCache::ExactKey(const std::string& test_id, const std::string& plan_text,
                               uint64_t trial) {
  return test_id + '\x1f' + plan_text + '\x1f' + std::to_string(trial);
}

std::string RunCache::WildcardKey(const std::string& test_id,
                                  const std::string& plan_text) {
  return test_id + '\x1f' + plan_text + "\x1f*";
}

const TestResult* RunCache::Lookup(const std::string& test_id,
                                   const std::string& plan_text, uint64_t trial) {
  auto it = entries_.find(WildcardKey(test_id, plan_text));
  if (it == entries_.end()) {
    it = entries_.find(ExactKey(test_id, plan_text, trial));
  }
  if (it == entries_.end()) {
    ++stats_.misses;
    return nullptr;
  }
  ++stats_.hits;
  return &it->second;
}

void RunCache::Insert(const std::string& test_id, const std::string& plan_text,
                      uint64_t trial, bool trial_insensitive,
                      const TestResult& result) {
  if (entries_.emplace(ExactKey(test_id, plan_text, trial), result).second) {
    ++stats_.entries;
  }
  if (trial_insensitive &&
      entries_.emplace(WildcardKey(test_id, plan_text), result).second) {
    ++stats_.entries;
  }
}

}  // namespace zebra
