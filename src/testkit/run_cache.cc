#include "src/testkit/run_cache.h"

#include <fstream>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/conf/plan_equiv.h"

namespace zebra {

namespace {

thread_local RunCache* g_run_cache = nullptr;

// File-format escaping: entries are one logical value per line; only the
// newline and the escape character itself need protection (cache keys carry
// '\x1f'/'\x1e' separators, which are line-safe bytes).
std::string EscapeLine(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string UnescapeLine(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      ++i;
      out += text[i] == 'n' ? '\n' : text[i];
    } else {
      out += text[i];
    }
  }
  return out;
}

// SessionReport round-trip. Warm-started cache entries feed TestGenerator's
// pre-run consumption, so every field must survive. The blob is a small
// tag-prefixed line format; entities and parameter names never contain
// spaces, values (the tail of each line) may.
std::string SerializeSessionReport(const SessionReport& report) {
  std::ostringstream out;
  for (const auto& [type, count] : report.node_counts) {
    out << "node " << count << ' ' << type << '\n';
  }
  for (const auto& [entity, params] : report.reads) {
    for (const std::string& param : params) {
      out << "read " << entity << ' ' << param << '\n';
    }
  }
  for (const std::string& param : report.uncertain_params) {
    out << "uncertain " << param << '\n';
  }
  for (const std::string& element : report.trace_elements) {
    out << "trace " << element << '\n';
  }
  out << "counters " << report.conf_objects_created << ' ' << report.clones << ' '
      << report.ref_to_clones << ' ' << report.uncertain_conf_count << ' '
      << report.override_hits << '\n';
  out << "flags " << (report.conf_sharing_detected ? 1 : 0) << ' '
      << (report.any_conf_usage ? 1 : 0) << '\n';
  return out.str();
}

bool DeserializeSessionReport(const std::string& blob, SessionReport* report) {
  std::istringstream in(blob);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    size_t space = line.find(' ');
    if (space == std::string::npos) {
      return false;
    }
    std::string tag = line.substr(0, space);
    std::string rest = line.substr(space + 1);
    if (tag == "node") {
      size_t s = rest.find(' ');
      if (s == std::string::npos) {
        return false;
      }
      int64_t count = 0;
      if (!ParseInt64(rest.substr(0, s), &count)) {
        return false;
      }
      report->node_counts[rest.substr(s + 1)] = static_cast<int>(count);
    } else if (tag == "read") {
      size_t s = rest.find(' ');
      if (s == std::string::npos) {
        return false;
      }
      report->reads[rest.substr(0, s)].insert(rest.substr(s + 1));
    } else if (tag == "uncertain") {
      report->uncertain_params.insert(rest);
    } else if (tag == "trace") {
      report->trace_elements.insert(rest);
    } else if (tag == "counters") {
      std::istringstream fields(rest);
      if (!(fields >> report->conf_objects_created >> report->clones >>
            report->ref_to_clones >> report->uncertain_conf_count >>
            report->override_hits)) {
        return false;
      }
    } else if (tag == "flags") {
      int sharing = 0;
      int usage = 0;
      std::istringstream fields(rest);
      if (!(fields >> sharing >> usage)) {
        return false;
      }
      report->conf_sharing_detected = sharing != 0;
      report->any_conf_usage = usage != 0;
    } else {
      return false;
    }
  }
  return true;
}

// v2 added the trailing "C <fnv64 hex>" whole-file checksum line. v1 files
// (no checksum) are rejected as corrupt: the cache is an optimization, so a
// one-time cold start on upgrade is cheaper than trusting an unverifiable
// file.
constexpr char kCacheFileMagic[] = "zebra-run-cache-v2";

}  // namespace

void SetGlobalRunCache(RunCache* cache) { g_run_cache = cache; }

RunCache* GlobalRunCache() { return g_run_cache; }

// '\x1f' (unit separator) cannot appear in test ids or plan fingerprints, so
// the concatenation is injective; the full string is the key — no hash
// collisions can alias two distinct runs. The equivalence namespaces get a
// distinct tag prefix so a canonical fingerprint can never collide with a
// plan fingerprint of the same text.
std::string RunCache::ExactKey(const std::string& test_id, const std::string& plan_text,
                               uint64_t trial) {
  return test_id + '\x1f' + plan_text + '\x1f' + std::to_string(trial);
}

std::string RunCache::WildcardKey(const std::string& test_id,
                                  const std::string& plan_text) {
  return test_id + '\x1f' + plan_text + "\x1f*";
}

std::string RunCache::CanonicalKey(const std::string& test_id,
                                   const std::string& canonical_fingerprint) {
  return std::string("C\x1f") + test_id + '\x1f' + canonical_fingerprint + "\x1f*";
}

std::string RunCache::TraceKey(const std::string& test_id, const std::string& trace) {
  return std::string("T\x1f") + test_id + '\x1f' + trace + "\x1f*";
}

int64_t RunCache::EntryBytes(const std::string& key, const Entry& entry) {
  const SessionReport& report = entry.result.report;
  int64_t bytes = static_cast<int64_t>(sizeof(Entry) + key.size() +
                                       entry.observed_trace.size() +
                                       entry.result.failure.size());
  for (const auto& [type, count] : report.node_counts) {
    bytes += static_cast<int64_t>(type.size()) + 8;
  }
  for (const auto& [entity, params] : report.reads) {
    bytes += static_cast<int64_t>(entity.size());
    for (const std::string& param : params) {
      bytes += static_cast<int64_t>(param.size());
    }
  }
  for (const std::string& param : report.uncertain_params) {
    bytes += static_cast<int64_t>(param.size());
  }
  for (const std::string& element : report.trace_elements) {
    bytes += static_cast<int64_t>(element.size());
  }
  return bytes;
}

RunCache::Entry* RunCache::Touch(const std::string& key) {
  auto it = index_.find(key);
  if (it == index_.end()) {
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  return &lru_.front().second;
}

bool RunCache::InsertEntry(std::string key, const Entry& entry) {
  if (index_.count(key) > 0) {
    return false;  // first result wins; identical by construction anyway
  }
  stats_.bytes += EntryBytes(key, entry);
  lru_.emplace_front(std::move(key), entry);
  index_[lru_.front().first] = lru_.begin();
  ++stats_.entries;
  EnforceLimits();
  return true;
}

RunCache::Entry* RunCache::MatchByRestriction(const std::string& test_id,
                                              const TestPlan& plan,
                                              const std::string& predicted_trace) {
  // Newest-first, bounded: the runs restriction matching exists to collapse
  // (bisection re-probes, early-stopped failing paths) are re-queried shortly
  // after they were stored, so scanning the most recent candidates catches
  // them while keeping per-miss cost independent of corpus size. A candidate
  // beyond the cap only costs a re-execution, never a wrong serve.
  constexpr int kMaxCandidates = 64;
  auto keys_it = trace_keys_by_test_.find(test_id);
  if (keys_it == trace_keys_by_test_.end()) {
    return nullptr;
  }
  const std::vector<std::string>& keys = keys_it->second;
  int scanned = 0;
  for (auto key = keys.rbegin(); key != keys.rend() && scanned < kMaxCandidates;
       ++key) {
    auto it = index_.find(*key);
    if (it == index_.end()) {
      continue;  // evicted since registration
    }
    ++scanned;
    Entry& entry = it->second->second;
    if (PlanReproducesObservedTrace(plan, entry.observed_trace, predicted_trace)) {
      lru_.splice(lru_.begin(), lru_, it->second);
      return &lru_.front().second;
    }
  }
  return nullptr;
}

void RunCache::EnforceLimits() {
  while (!lru_.empty() &&
         ((limits_.max_entries > 0 && stats_.entries > limits_.max_entries) ||
          (limits_.max_bytes > 0 && stats_.bytes > limits_.max_bytes))) {
    const auto& [key, entry] = lru_.back();
    stats_.bytes -= EntryBytes(key, entry);
    index_.erase(key);
    lru_.pop_back();
    --stats_.entries;
    ++stats_.evictions;
  }
}

const TestResult* RunCache::Lookup(const std::string& test_id,
                                   const std::string& plan_text, uint64_t trial,
                                   EquivQuery* equiv) {
  std::lock_guard<std::mutex> lock(mutex_);
  return LookupLocked(test_id, plan_text, trial, equiv);
}

bool RunCache::Lookup(const std::string& test_id, const std::string& plan_text,
                      uint64_t trial, EquivQuery* equiv, TestResult* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  const TestResult* result = LookupLocked(test_id, plan_text, trial, equiv);
  if (result == nullptr) {
    return false;
  }
  *out = *result;
  return true;
}

const TestResult* RunCache::LookupLocked(const std::string& test_id,
                                         const std::string& plan_text,
                                         uint64_t trial, EquivQuery* equiv) {
  if (Entry* entry = Touch(WildcardKey(test_id, plan_text))) {
    ++stats_.hits;
    return &entry->result;
  }
  if (Entry* entry = Touch(ExactKey(test_id, plan_text, trial))) {
    ++stats_.hits;
    return &entry->result;
  }
  if (equiv != nullptr && equiv->surface != nullptr && equiv->plan != nullptr) {
    // Derive the equivalence keys only now, past the exact fast path, so
    // exact hits pay nothing for the layer.
    if (!equiv->computed) {
      CanonicalPlan canonical = equiv->surface->Canonicalize(*equiv->plan);
      equiv->canonical_fingerprint = std::move(canonical.fingerprint);
      equiv->plan_canonicalized = canonical.changed;
      equiv->has_trace =
          equiv->surface->PredictTrace(*equiv->plan, &equiv->predicted_trace);
      equiv->computed = true;
      if (equiv->plan_canonicalized) {
        ++stats_.canonicalized_plans;
      }
    }
    // Canonical-fingerprint index: same canonical form implies the same
    // served value at every promised read. Serving is still gated on the
    // stored execution's observed trace matching this plan's prediction —
    // if the pre-run promise was broken (a value-gated read appeared), the
    // traces differ and the serve is refused.
    if (Entry* entry = Touch(CanonicalKey(test_id, equiv->canonical_fingerprint))) {
      if (equiv->has_trace && entry->observed_trace == equiv->predicted_trace) {
        ++stats_.equiv_hits;
        return &entry->result;
      }
      ++stats_.mispredictions;
    }
    if (equiv->has_trace) {
      // Trace index fast path: the key *is* the stored execution's observed
      // trace, so a hit is self-validating — predicted == observed by key
      // equality.
      if (Entry* entry = Touch(TraceKey(test_id, equiv->predicted_trace))) {
        ++stats_.equiv_hits;
        return &entry->result;
      }
      // Restriction matching: the full-trace key misses whenever the stored
      // execution stopped early (its observed trace is a strict prefix of
      // any full prediction), so scan this test's stored traces for one this
      // plan reproduces element for element.
      if (Entry* entry = MatchByRestriction(test_id, *equiv->plan,
                                            equiv->predicted_trace)) {
        ++stats_.equiv_hits;
        return &entry->result;
      }
    }
  }
  ++stats_.misses;
  return nullptr;
}

void RunCache::Insert(const std::string& test_id, const std::string& plan_text,
                      uint64_t trial, bool trial_insensitive,
                      const TestResult& result, const EquivQuery* equiv,
                      const std::string* observed_trace) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry entry;
  entry.result = result;
  if (observed_trace != nullptr) {
    entry.observed_trace = *observed_trace;
  }
  InsertEntry(ExactKey(test_id, plan_text, trial), entry);
  if (!trial_insensitive) {
    // Trial-sensitive executions are never shared across trials or plans:
    // the RNG seed folds in the plan description, so different descriptions
    // legitimately diverge.
    return;
  }
  InsertEntry(WildcardKey(test_id, plan_text), entry);
  if (observed_trace == nullptr || observed_trace->empty()) {
    return;
  }
  // Index by what the execution actually observed — always truthful, and
  // deliberately not gated on `equiv`: the pre-run baseline executes before
  // the unit's ReadSurface exists, yet must be reachable by plans that later
  // collapse to it.
  if (InsertEntry(TraceKey(test_id, *observed_trace), entry)) {
    trace_keys_by_test_[test_id].push_back(TraceKey(test_id, *observed_trace));
  }
  if (equiv == nullptr || !equiv->computed) {
    return;
  }
  if (equiv->has_trace && equiv->predicted_trace != *observed_trace) {
    // The pre-run promise was broken for this plan: a value-gated read
    // appeared or a promised read vanished. The canonical index would
    // conflate this run with plans it is not equivalent to, so skip it.
    ++stats_.mispredictions;
    return;
  }
  InsertEntry(CanonicalKey(test_id, equiv->canonical_fingerprint), entry);
}

bool RunCache::SaveToFile(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return false;
  }
  // Every content line folds into a running digest; the trailing checksum
  // line lets LoadFromFile reject a torn or bit-flipped file wholesale.
  uint64_t digest = kFnv64Seed;
  auto emit = [&out, &digest](const std::string& line) {
    digest = HashFnv64(line, digest);
    out << line << '\n';
  };
  emit(kCacheFileMagic);
  emit(Int64ToString(static_cast<int64_t>(lru_.size())));
  // Front-to-back = most-to-least recent; LoadFromFile rebuilds in order.
  for (const auto& [key, entry] : lru_) {
    emit("K " + EscapeLine(key));
    emit(std::string("P ") + (entry.result.passed ? "1" : "0"));
    emit("F " + EscapeLine(entry.result.failure));
    emit("T " + EscapeLine(entry.observed_trace));
    emit("R " + EscapeLine(SerializeSessionReport(entry.result.report)));
  }
  out << "C " << HashToHex(digest) << '\n';
  return static_cast<bool>(out);
}

bool RunCache::LoadFromFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ifstream in(path);
  if (!in) {
    return false;  // missing file: the normal cold start, not a failure
  }
  lru_.clear();
  index_.clear();
  trace_keys_by_test_.clear();
  stats_.entries = 0;
  stats_.bytes = 0;

  // Any defect — bad magic, torn tail, checksum mismatch, unparseable entry —
  // lands here: the cache degrades to empty (a cold start) instead of
  // throwing or keeping a half-loaded state.
  auto reject = [this, &path](const char* why) {
    ZLOG_WARN << "run cache: ignoring " << path << " (" << why
              << "); starting cold";
    lru_.clear();
    index_.clear();
    trace_keys_by_test_.clear();
    stats_.entries = 0;
    stats_.bytes = 0;
    ++stats_.load_failures;
    return false;
  };

  uint64_t digest = kFnv64Seed;
  std::string line;
  auto next_line = [&in, &line, &digest]() {
    if (!std::getline(in, line)) {
      return false;
    }
    digest = HashFnv64(line, digest);
    return true;
  };

  if (!next_line() || line != kCacheFileMagic) {
    return reject("not a run-cache file or unsupported version");
  }
  int64_t count = 0;
  if (!next_line() || !ParseInt64(line, &count) || count < 0) {
    return reject("corrupt entry count");
  }
  auto read_field = [&next_line, &line](char tag, std::string* value) {
    if (!next_line() || line.size() < 2 || line[0] != tag || line[1] != ' ') {
      return false;
    }
    *value = UnescapeLine(line.substr(2));
    return true;
  };
  for (int64_t i = 0; i < count; ++i) {
    std::string key;
    std::string passed;
    Entry entry;
    std::string blob;
    if (!read_field('K', &key) || !read_field('P', &passed) ||
        !read_field('F', &entry.result.failure) ||
        !read_field('T', &entry.observed_trace) || !read_field('R', &blob) ||
        !DeserializeSessionReport(blob, &entry.result.report)) {
      return reject("truncated or corrupt entry");
    }
    entry.result.passed = passed == "1";
    // File order is most-to-least recent; append keeps it.
    stats_.bytes += EntryBytes(key, entry);
    lru_.emplace_back(std::move(key), entry);
    auto it = std::prev(lru_.end());
    index_[it->first] = it;
    ++stats_.entries;
    // Re-register trace-indexed entries ("T\x1f" + test_id + '\x1f' + ...)
    // for restriction matching.
    if (it->first.rfind("T\x1f", 0) == 0) {
      size_t id_end = it->first.find('\x1f', 2);
      if (id_end != std::string::npos) {
        trace_keys_by_test_[it->first.substr(2, id_end - 2)].push_back(it->first);
      }
    }
  }
  // The checksum line covers everything above it (it is not folded into the
  // digest itself).
  uint64_t content_digest = digest;
  if (!std::getline(in, line) || line != "C " + HashToHex(content_digest)) {
    return reject("checksum mismatch (torn or tampered file)");
  }
  EnforceLimits();
  return true;
}

}  // namespace zebra
