#include "src/testkit/test_execution.h"

#include <unistd.h>

#include <chrono>

#include "src/common/logging.h"
#include "src/testkit/run_cache.h"

namespace zebra {

namespace {
std::vector<double>* g_duration_collector = nullptr;
int64_t g_synthetic_run_latency_us = 0;
}  // namespace

void SetRunDurationCollector(std::vector<double>* collector) {
  g_duration_collector = collector;
}

void SetSyntheticRunLatencyUs(int64_t micros) {
  g_synthetic_run_latency_us = micros < 0 ? 0 : micros;
}

int64_t SyntheticRunLatencyUs() { return g_synthetic_run_latency_us; }

TestResult RunUnitTest(const UnitTestDef& test, TestPlan plan, uint64_t trial) {
  const std::string plan_text = plan.Describe();

  // Memoization: identical (test, plan, trial) triples are reproducible by
  // construction, so a cached result is exactly what a fresh execution would
  // return. Cache hits record no duration — nothing actually ran.
  RunCache* cache = GlobalRunCache();
  if (cache != nullptr) {
    if (const TestResult* cached = cache->Lookup(test.id, plan_text, trial)) {
      return *cached;
    }
  }

  auto start = std::chrono::steady_clock::now();
  if (g_synthetic_run_latency_us > 0) {
    ::usleep(static_cast<useconds_t>(g_synthetic_run_latency_us));
  }
  TestResult result;
  // Fold the plan into the trial seed: in a real system, nondeterminism is
  // independent across runs with different configurations; re-running the
  // same (test, plan, trial) triple stays reproducible.
  uint64_t effective_trial = HashCombine(trial, Fnv1a64(plan_text));
  ConfAgentSession session(std::move(plan));
  TestContext context(test.id, effective_trial);
  try {
    test.body(context);
    result.passed = true;
  } catch (const std::exception& e) {
    result.passed = false;
    result.failure = e.what();
    ZLOG_DEBUG << test.id << " failed: " << e.what();
  }
  result.report = session.End();
  if (g_duration_collector != nullptr) {
    g_duration_collector->push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  if (cache != nullptr) {
    cache->Insert(test.id, plan_text, trial,
                  /*trial_insensitive=*/!context.TrialSensitive(), result);
  }
  return result;
}

}  // namespace zebra
