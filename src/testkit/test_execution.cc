#include "src/testkit/test_execution.h"

#include <chrono>

#include "src/common/logging.h"

namespace zebra {

namespace {
std::vector<double>* g_duration_collector = nullptr;
}  // namespace

void SetRunDurationCollector(std::vector<double>* collector) {
  g_duration_collector = collector;
}

TestResult RunUnitTest(const UnitTestDef& test, TestPlan plan, uint64_t trial) {
  auto start = std::chrono::steady_clock::now();
  TestResult result;
  // Fold the plan into the trial seed: in a real system, nondeterminism is
  // independent across runs with different configurations; re-running the
  // same (test, plan, trial) triple stays reproducible.
  uint64_t effective_trial = HashCombine(trial, Fnv1a64(plan.Describe()));
  ConfAgentSession session(std::move(plan));
  try {
    TestContext context(test.id, effective_trial);
    test.body(context);
    result.passed = true;
  } catch (const std::exception& e) {
    result.passed = false;
    result.failure = e.what();
    ZLOG_DEBUG << test.id << " failed: " << e.what();
  }
  result.report = session.End();
  if (g_duration_collector != nullptr) {
    g_duration_collector->push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  return result;
}

}  // namespace zebra
