#include "src/testkit/test_execution.h"

#include <unistd.h>

#include <atomic>
#include <chrono>

#include "src/common/logging.h"
#include "src/conf/plan_equiv.h"
#include "src/testkit/run_cache.h"

namespace zebra {

namespace {
// Thread-local: each thread-pool worker owns its installation window, just
// as each forked worker owns its process-global copy.
thread_local std::vector<double>* g_duration_collector = nullptr;
// Process-wide bench knob, set before any worker starts; atomic so worker
// threads may read it while a bench harness toggles between regimes.
std::atomic<int64_t> g_synthetic_run_latency_us{0};
}  // namespace

void SetRunDurationCollector(std::vector<double>* collector) {
  g_duration_collector = collector;
}

void SetSyntheticRunLatencyUs(int64_t micros) {
  g_synthetic_run_latency_us.store(micros < 0 ? 0 : micros,
                                   std::memory_order_relaxed);
}

int64_t SyntheticRunLatencyUs() {
  return g_synthetic_run_latency_us.load(std::memory_order_relaxed);
}

std::shared_ptr<const TestResult> RunUnitTestShared(const UnitTestDef& test,
                                                    const TestPlan& plan,
                                                    uint64_t trial) {
  // Two distinct identities: DescribeSeed() (the hash of Describe()) seeds
  // the per-trial RNG (stable by contract — changing it would re-roll seeded
  // nondeterminism campaign-wide), while Fingerprint() additionally covers
  // extra_overrides and is the cache identity, so plans differing only in
  // dependency overrides never alias. Both are memoized on the plan, so a
  // caller re-running the same plan object pays for them once.
  const std::string& plan_fp = plan.Fingerprint();

  // Memoization: identical (test, plan, trial) triples are reproducible by
  // construction, so a cached result is exactly what a fresh execution would
  // return. Cache hits record no duration — nothing actually ran. With a
  // pre-run ReadSurface installed, the lookup extends to observationally
  // equivalent plans (see run_cache.h for the validation contract).
  RunCache* cache = GlobalRunCache();
  EquivQuery equiv;
  EquivQuery* equiv_query = nullptr;
  if (cache != nullptr) {
    if (const ReadSurface* surface = GlobalReadSurface();
        surface != nullptr && surface->usable()) {
      equiv.surface = surface;
      equiv.plan = &plan;
      equiv_query = &equiv;
    }
    // Shared lookup: the payload's ownership is shared out under the cache
    // lock, so the result stays valid past any other worker's insert without
    // a deep copy.
    if (std::shared_ptr<const TestResult> cached =
            cache->LookupShared(test.id, plan_fp, trial, equiv_query)) {
      return cached;
    }
  }

  auto start = std::chrono::steady_clock::now();
  if (int64_t latency_us = SyntheticRunLatencyUs(); latency_us > 0) {
    ::usleep(static_cast<useconds_t>(latency_us));
  }
  auto result = std::make_shared<TestResult>();
  // Fold the plan into the trial seed: in a real system, nondeterminism is
  // independent across runs with different configurations; re-running the
  // same (test, plan, trial) triple stays reproducible.
  uint64_t effective_trial = HashCombine(trial, plan.DescribeSeed());
  ConfAgentSession session(&plan);
  TestContext context(test.id, effective_trial);
  try {
    test.body(context);
    result->passed = true;
  } catch (const std::exception& e) {
    result->passed = false;
    result->failure = e.what();
    ZLOG_DEBUG << test.id << " failed: " << e.what();
  }
  result->report = session.End();
  if (g_duration_collector != nullptr) {
    g_duration_collector->push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count());
  }
  if (cache != nullptr) {
    const std::string observed_trace = ObservedTraceText(result->report);
    // The cache shares this exact payload across its key aliases — the
    // insert allocates no TestResult copy.
    cache->Insert(test.id, plan_fp, trial,
                  /*trial_insensitive=*/!context.TrialSensitive(), result,
                  equiv_query, &observed_trace);
  }
  return result;
}

TestResult RunUnitTest(const UnitTestDef& test, const TestPlan& plan, uint64_t trial) {
  return *RunUnitTestShared(test, plan, trial);
}

}  // namespace zebra
