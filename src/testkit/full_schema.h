// Aggregated configuration schema across all mini-applications.

#ifndef SRC_TESTKIT_FULL_SCHEMA_H_
#define SRC_TESTKIT_FULL_SCHEMA_H_

#include "src/conf/conf_schema.h"

namespace zebra {

// The full schema (lazily built process-wide singleton).
const ConfSchema& FullSchema();

}  // namespace zebra

#endif  // SRC_TESTKIT_FULL_SCHEMA_H_
