// The corpus registry: every whole-system unit test of the mini-applications,
// addressable by id, grouped by application (paper Table 1's test counts).

#ifndef SRC_TESTKIT_UNIT_TEST_REGISTRY_H_
#define SRC_TESTKIT_UNIT_TEST_REGISTRY_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/testkit/test_context.h"

namespace zebra {

struct UnitTestDef {
  std::string id;   // "<app>.TestName"
  std::string app;  // owning application
  std::function<void(TestContext&)> body;
};

class UnitTestRegistry {
 public:
  void Add(std::string app, std::string name, std::function<void(TestContext&)> body);

  const std::vector<UnitTestDef>& tests() const { return tests_; }
  std::vector<const UnitTestDef*> ForApp(const std::string& app) const;
  const UnitTestDef* Find(const std::string& id) const;
  std::map<std::string, int> CountsByApp() const;

 private:
  std::vector<UnitTestDef> tests_;
};

// Per-application corpus registration (defined in corpus/*.cc).
void RegisterMiniDfsCorpus(UnitTestRegistry& registry);
void RegisterMiniMrCorpus(UnitTestRegistry& registry);
void RegisterMiniYarnCorpus(UnitTestRegistry& registry);
void RegisterMiniStreamCorpus(UnitTestRegistry& registry);
void RegisterMiniKvCorpus(UnitTestRegistry& registry);
void RegisterAppToolsCorpus(UnitTestRegistry& registry);

// The full corpus (lazily built process-wide singleton).
const UnitTestRegistry& FullCorpus();

}  // namespace zebra

#endif  // SRC_TESTKIT_UNIT_TEST_REGISTRY_H_
