// Ground truth for the evaluation: which parameters were *seeded* as
// heterogeneous-unsafe in the mini-applications (mirroring the paper's
// Table 3 one-for-one, 41 parameters), and which parameters are seeded
// false-positive sources (mirroring §7.1's FP mechanisms).
//
// The ZebraConf pipeline never reads this table; it exists so the evaluation
// benches can score the pipeline's report (true positives / false positives /
// false negatives) against known truth — something the original paper could
// only approximate by manual analysis.

#ifndef SRC_TESTKIT_GROUND_TRUTH_H_
#define SRC_TESTKIT_GROUND_TRUTH_H_

#include <map>
#include <string>

namespace zebra {

// Parameter -> the paper's "why parameter is heterogeneous unsafe" line.
const std::map<std::string, std::string>& ExpectedUnsafeParams();

// Parameter -> the false-positive mechanism a failing report would have.
const std::map<std::string, std::string>& KnownFalsePositiveSources();

// Extension beyond the paper's 41: parameters whose heterogeneous failure is
// *probabilistic* (manifests only in a fraction of runs), reproducing the §5
// false-negative discussion. Not counted toward the Table 3 score.
const std::map<std::string, std::string>& ProbabilisticUnsafeParams();

bool IsExpectedUnsafe(const std::string& param);

}  // namespace zebra

#endif  // SRC_TESTKIT_GROUND_TRUTH_H_
