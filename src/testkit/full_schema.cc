#include "src/testkit/full_schema.h"

#include "src/apps/appcommon/common_schema.h"
#include "src/apps/minidfs/dfs_schema.h"
#include "src/apps/minikv/kv_schema.h"
#include "src/apps/minimr/mr_schema.h"
#include "src/apps/ministream/stream_schema.h"
#include "src/apps/miniyarn/yarn_schema.h"

namespace zebra {

const ConfSchema& FullSchema() {
  static const ConfSchema* schema = [] {
    auto* s = new ConfSchema();
    RegisterCommonSchema(*s);
    RegisterMiniDfsSchema(*s);
    RegisterMiniMrSchema(*s);
    RegisterMiniYarnSchema(*s);
    RegisterMiniStreamSchema(*s);
    RegisterMiniKvSchema(*s);
    return s;
  }();
  return *schema;
}

}  // namespace zebra
