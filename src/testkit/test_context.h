// TestContext and TestFailure: the execution context handed to every corpus
// unit test.
//
// A corpus test is the analog of a JUnit whole-system test: it builds a
// mini-cluster, drives it, and asserts on observable state. Assertions throw
// TestFailure; application errors (zebra::Error subclasses) escape the body
// directly. The harness converts either into a failed TestResult.
//
// Nondeterminism is injected exclusively through the per-trial RNG, seeded
// from (test id, trial number): the same trial of the same test always
// behaves identically, while different trials of a flaky test vary — which is
// what TestRunner's hypothesis testing needs to observe.

#ifndef SRC_TESTKIT_TEST_CONTEXT_H_
#define SRC_TESTKIT_TEST_CONTEXT_H_

#include <string>

#include "src/common/error.h"
#include "src/common/rng.h"
#include "src/runtime/cluster.h"

namespace zebra {

class TestFailure : public Error {
 public:
  explicit TestFailure(const std::string& message)
      : Error("AssertionFailed: " + message) {}
};

class TestContext {
 public:
  TestContext(std::string test_id, uint64_t trial)
      : test_id_(std::move(test_id)),
        trial_(trial),
        rng_(HashCombine(Fnv1a64(test_id_), trial)) {}

  TestContext(const TestContext&) = delete;
  TestContext& operator=(const TestContext&) = delete;

  const std::string& test_id() const { return test_id_; }
  uint64_t trial() const {
    trial_observed_ = true;
    return trial_;
  }

  // True if this execution could depend on the trial number: the body either
  // drew from the per-trial RNG or read trial() directly. When false, the run
  // cache may reuse the result across trials (the test is deterministic).
  bool TrialSensitive() const { return trial_observed_ || rng_.draws() > 0; }

  Cluster& cluster() { return cluster_; }
  Rng& rng() { return rng_; }

  void Check(bool condition, const std::string& message) const {
    if (!condition) {
      throw TestFailure(test_id_ + ": " + message);
    }
  }

  template <typename A, typename B>
  void CheckEq(const A& actual, const B& expected, const std::string& what) const {
    if (!(actual == expected)) {
      throw TestFailure(test_id_ + ": " + what + " (actual " + ToText(actual) +
                        ", expected " + ToText(expected) + ")");
    }
  }

  // Fails this trial with probability `p` (the seeded-flaky-test helper).
  void MaybeFlakyFail(double p, const std::string& message) {
    if (rng_.NextBool(p)) {
      throw TestFailure(test_id_ + ": " + message);
    }
  }

 private:
  template <typename T>
  static std::string ToText(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else {
      return std::to_string(value);
    }
  }

  std::string test_id_;
  uint64_t trial_;
  mutable bool trial_observed_ = false;
  Cluster cluster_;
  Rng rng_;
};

}  // namespace zebra

#endif  // SRC_TESTKIT_TEST_CONTEXT_H_
