// RunUnitTest: executes one corpus unit test under a ConfAgent session with a
// given test plan, converting assertion failures and application errors into
// a TestResult (the atomic operation everything in the ZebraConf pipeline is
// built from).

#ifndef SRC_TESTKIT_TEST_EXECUTION_H_
#define SRC_TESTKIT_TEST_EXECUTION_H_

#include <string>
#include <vector>

#include "src/conf/conf_agent.h"
#include "src/conf/test_plan.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

struct TestResult {
  bool passed = false;
  std::string failure;    // first failure message (empty when passed)
  SessionReport report;   // what ConfAgent observed during the run
};

// Runs `test` with `plan` injected through ConfAgent. `trial` seeds the
// test-local RNG, so re-running with a different trial re-rolls any seeded
// nondeterminism. Exactly one execution may run at a time (ConfAgent sessions
// are serialized).
TestResult RunUnitTest(const UnitTestDef& test, TestPlan plan, uint64_t trial);

// Installs a collector that receives the wall-clock duration (seconds) of
// every subsequent RunUnitTest call; pass nullptr to uninstall. Used by the
// campaign to feed the fleet cost model. Not thread-safe — executions are
// serialized anyway (ConfAgent sessions are exclusive).
void SetRunDurationCollector(std::vector<double>* collector);

}  // namespace zebra

#endif  // SRC_TESTKIT_TEST_EXECUTION_H_
