// RunUnitTest: executes one corpus unit test under a ConfAgent session with a
// given test plan, converting assertion failures and application errors into
// a TestResult (the atomic operation everything in the ZebraConf pipeline is
// built from).

#ifndef SRC_TESTKIT_TEST_EXECUTION_H_
#define SRC_TESTKIT_TEST_EXECUTION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/conf/conf_agent.h"
#include "src/conf/test_plan.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

struct TestResult {
  bool passed = false;
  std::string failure;    // first failure message (empty when passed)
  SessionReport report;   // what ConfAgent observed during the run
};

// Runs `test` with `plan` injected through ConfAgent. `trial` seeds the
// test-local RNG, so re-running with a different trial re-rolls any seeded
// nondeterminism. Exactly one execution may run at a time (ConfAgent sessions
// are serialized). The plan is borrowed for the duration of the call and not
// mutated.
TestResult RunUnitTest(const UnitTestDef& test, const TestPlan& plan, uint64_t trial);

// Allocation-lean variant: a run-cache hit returns the cached payload by
// refcount bump (no TestResult deep copy), and a real execution's result is
// inserted into the cache and returned through the same shared payload. The
// pointee is immutable and safe to share across threads; it is never null.
// Campaign hot paths that only inspect `passed`/`failure` use this.
std::shared_ptr<const TestResult> RunUnitTestShared(const UnitTestDef& test,
                                                    const TestPlan& plan,
                                                    uint64_t trial);

// Installs a collector that receives the wall-clock duration (seconds) of
// every subsequent *real* RunUnitTest execution (run-cache hits execute
// nothing and record nothing); pass nullptr to uninstall. Used by the
// campaign to feed the fleet cost model.
//
// Ownership and process model: the collector pointer is process-global state.
// Exactly one campaign engine per process may install it at a time, and the
// installer must uninstall (nullptr) before the pointed-to vector dies.
// Under the parallel scheduler this is naturally safe: each forked worker is
// its own process with its own copy of the global, and installs a collector
// scoped to the work unit it is executing (see parallel_scheduler.cc), so
// fleet-model inputs are per-run-accurate across the pool. Not thread-safe —
// executions are serialized anyway (ConfAgent sessions are exclusive).
void SetRunDurationCollector(std::vector<double>* collector);

// Simulated per-run harness latency, in microseconds (default 0 = off).
// The paper's unit-test runs cost seconds of wall-clock each, dominated by
// harness waits (startup, RPC timeouts) rather than CPU; our miniature runs
// cost microseconds. Benchmarks set a nonzero latency to restore the paper's
// cost shape — every *real* execution sleeps this long inside its timed
// window, while run-cache hits (which execute nothing) skip it. Sleeping
// (not spinning) is deliberate: it models waits, which parallel worker
// processes overlap even on a single CPU, exactly as the paper's containers
// overlap I/O-bound test runs. Process-global; forked workers inherit the
// value set before the fork. Never set this in correctness tests.
void SetSyntheticRunLatencyUs(int64_t micros);
int64_t SyntheticRunLatencyUs();

}  // namespace zebra

#endif  // SRC_TESTKIT_TEST_EXECUTION_H_
