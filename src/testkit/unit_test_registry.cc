#include "src/testkit/unit_test_registry.h"

#include "src/common/error.h"

namespace zebra {

void UnitTestRegistry::Add(std::string app, std::string name,
                           std::function<void(TestContext&)> body) {
  UnitTestDef def;
  def.id = app + "." + name;
  def.app = std::move(app);
  def.body = std::move(body);
  if (Find(def.id) != nullptr) {
    throw InternalError("duplicate unit test registered: " + def.id);
  }
  tests_.push_back(std::move(def));
}

std::vector<const UnitTestDef*> UnitTestRegistry::ForApp(const std::string& app) const {
  std::vector<const UnitTestDef*> result;
  for (const UnitTestDef& test : tests_) {
    if (test.app == app) {
      result.push_back(&test);
    }
  }
  return result;
}

const UnitTestDef* UnitTestRegistry::Find(const std::string& id) const {
  for (const UnitTestDef& test : tests_) {
    if (test.id == id) {
      return &test;
    }
  }
  return nullptr;
}

std::map<std::string, int> UnitTestRegistry::CountsByApp() const {
  std::map<std::string, int> counts;
  for (const UnitTestDef& test : tests_) {
    counts[test.app] += 1;
  }
  return counts;
}

const UnitTestRegistry& FullCorpus() {
  static const UnitTestRegistry* registry = [] {
    auto* r = new UnitTestRegistry();
    RegisterMiniDfsCorpus(*r);
    RegisterMiniMrCorpus(*r);
    RegisterMiniYarnCorpus(*r);
    RegisterMiniStreamCorpus(*r);
    RegisterMiniKvCorpus(*r);
    RegisterAppToolsCorpus(*r);
    return r;
  }();
  return *registry;
}

}  // namespace zebra
