#include "src/testkit/ground_truth.h"

namespace zebra {

const std::map<std::string, std::string>& ExpectedUnsafeParams() {
  static const auto* kTable = new std::map<std::string, std::string>{
      // Flink analog
      {"akka.ssl.enabled", "TaskManager fails to connect to ResourceManager."},
      {"taskmanager.data.ssl.enabled",
       "TaskManager fails to decode peer message due to invalid SSL/TLS record."},
      {"taskmanager.numberOfTaskSlots",
       "JobManager fails to allocate slot from TaskManager."},
      // Hadoop Common analog
      {"hadoop.rpc.protection", "RPC client fails to connect to RPC servers."},
      {"ipc.client.rpc-timeout.ms", "Socket connection timeouts."},
      // HBase analog
      {"hbase.regionserver.thrift.compact",
       "Thrift Admin fails to communicate with Thrift Server."},
      {"hbase.regionserver.thrift.framed",
       "Thrift Admin fails to communicate with Thrift Server."},
      // HDFS analog
      {"dfs.block.access.token.enable", "DataNode fails to register block pools."},
      {"dfs.bytes-per-checksum", "Checksum verification fails on DataNode."},
      {"dfs.blockreport.incremental.intervalMsec",
       "End users may observe inconsistent number of blocks."},
      {"dfs.checksum.type", "Checksum verification fails on DataNode."},
      {"dfs.client.block.write.replace-datanode-on-failure.enable",
       "NameNode reports Exception when Client tries to find additional DataNode."},
      {"dfs.client.socket-timeout", "Socket connection timeouts."},
      {"dfs.datanode.balance.bandwidthPerSec",
       "Balancer timeouts because DataNode fails to reply in time."},
      {"dfs.datanode.balance.max.concurrent.moves",
       "Balancer becomes 10x slower due to DataNode congestion control."},
      {"dfs.datanode.du.reserved",
       "End users may observe inconsistent size of reserved space."},
      {"dfs.data.transfer.protection",
       "Sasl handshake fails between Client and DataNode."},
      {"dfs.encrypt.data.transfer",
       "DataNode fails to re-compute encryption key as block key is missing."},
      {"dfs.ha.tail-edits.in-progress",
       "JournalNode declines NameNode's request to fetch journaled edits."},
      {"dfs.heartbeat.interval",
       "NameNode falsely identifies alive DataNode as crashed."},
      {"dfs.http.policy", "Tool DFSck fails to connect to HTTP server."},
      {"dfs.namenode.fs-limits.max-component-length",
       "Length of component name path exceeds maximum limit on NameNode."},
      {"dfs.namenode.fs-limits.max-directory-items",
       "Directory item number exceeds maximum limit on NameNode."},
      {"dfs.namenode.heartbeat.recheck-interval",
       "End users may observe inconsistent number of dead DataNodes."},
      {"dfs.namenode.max-corrupt-file-blocks-returned",
       "End users may observe inconsistent number of corrupted blocks."},
      {"dfs.namenode.snapshotdiff.allow.snap-root-descendant",
       "NameNode declines Client's request to do snapshot."},
      {"dfs.namenode.stale.datanode.interval",
       "End users may observe inconsistent number of stale DataNodes."},
      {"dfs.namenode.upgrade.domain.factor",
       "Balancer hangs because of block placement policy violation on NameNode."},
      // MapReduce analog
      {"mapreduce.fileoutputcommitter.algorithm.version",
       "Different Mapper/Reducer output commit dirs cause Hadoop Archive error."},
      {"mapreduce.job.encrypted-intermediate-data",
       "Reducer fails during shuffling due to checksum error."},
      {"mapreduce.job.maps", "Reducer fails when copying Mapper output."},
      {"mapreduce.job.reduces", "Reducer fails when copying Mapper output."},
      {"mapreduce.map.output.compress",
       "Reducer fails during shuffling due to incorrect header."},
      {"mapreduce.map.output.compress.codec",
       "Reducer fails during shuffling due to incorrect header."},
      {"mapreduce.output.fileoutputformat.compress",
       "End users may observe inconsistent names of output files."},
      {"mapreduce.shuffle.ssl.enabled",
       "NodeManager's Pluggable Shuffle fails to decode messages."},
      // YARN analog
      {"yarn.http.policy", "Client fails to connect with Timeline web services."},
      {"yarn.resourcemanager.delegation.token.renew-interval",
       "End users may observe newer tokens expire earlier than prior tokens."},
      {"yarn.scheduler.maximum-allocation-mb",
       "ResourceManager disallows value decreasement."},
      {"yarn.scheduler.maximum-allocation-vcores",
       "ResourceManager disallows value decreasement."},
      {"yarn.timeline-service.enabled", "Client fails to connect to Timeline Server."},
  };
  return *kTable;
}

const std::map<std::string, std::string>& KnownFalsePositiveSources() {
  static const auto* kTable = new std::map<std::string, std::string>{
      {"dfs.datanode.scan.period.hours",
       "unit test manipulates DataNode-private state with the client's conf "
       "(setting cannot happen in a real distributed system)"},
      {"dfs.image.compress",
       "overly strict assertion: test compares checkpoint image lengths, but the "
       "decompressed contents are identical"},
      {"ipc.ping.interval",
       "nodes share the IPC component, which reads from both its own and external "
       "configuration objects (violates the no-shared-objects assumption)"},
      {"ipc.client.connect.max.retries",
       "nodes share the IPC component, which reads from both its own and external "
       "configuration objects (violates the no-shared-objects assumption)"},
  };
  return *kTable;
}

const std::map<std::string, std::string>& ProbabilisticUnsafeParams() {
  static const auto* kTable = new std::map<std::string, std::string>{
      {"yarn.resourcemanager.work-preserving-recovery.enabled",
       "RM recovery resync loses container state in ~60% of runs when the "
       "NodeManager's flag disagrees (a single first trial can miss it — §5)"},
  };
  return *kTable;
}

bool IsExpectedUnsafe(const std::string& param) {
  return ExpectedUnsafeParams().count(param) > 0;
}

}  // namespace zebra
