// Watchdog deadline policy shared by the campaign runners (see
// docs/ROBUSTNESS.md).
//
// A worker that hangs — a deadlocked unit test, a stuck syscall, a livelocked
// mini-cluster — produces no EOF, so the crash-recovery path never fires and
// a blocking read would stall the whole campaign forever. Instead the parent
// gives every dispatch a deadline derived from what completions it has
// actually observed:
//
//   deadline = floor + multiplier * p95(observed completion seconds)
//
// The p95 term adapts to the workload (units legitimately vary by orders of
// magnitude across apps); the floor covers the cold start before any
// completion has been observed and absorbs scheduling noise. A worker past
// its deadline is SIGKILLed and its unit re-queued — at most one deadline +
// backoff of delay per hang, never an indefinite stall.

#ifndef SRC_CORE_WATCHDOG_H_
#define SRC_CORE_WATCHDOG_H_

#include <algorithm>
#include <utility>
#include <vector>

namespace zebra {

// 95th percentile of the observed completion times, or 0.0 with no samples.
// Kept separate from the deadline formula so the no-samples case degrades
// through the additive term — the deadline below can never drop under the
// configured floor, no matter what the sample set looks like. (Taken by
// value: selection is destructive.)
inline double Percentile95(std::vector<double> samples) {
  if (samples.empty()) {
    return 0.0;
  }
  size_t rank = (samples.size() * 95 + 99) / 100;  // ceil(0.95 * n), 1-based
  rank = rank > 0 ? rank - 1 : 0;
  std::nth_element(samples.begin(), samples.begin() + rank, samples.end());
  return samples[rank];
}

// Returns the deadline in seconds for the next dispatch, or 0 when the
// watchdog is disabled (floor_seconds <= 0). With zero completed samples
// (cold start, or every dispatch so far crashed) the p95 term is 0 and the
// deadline is exactly the configured floor — never 0, which would instantly
// expire every lease.
inline double WatchdogDeadlineSeconds(double floor_seconds, double multiplier,
                                      std::vector<double> samples) {
  if (floor_seconds <= 0.0) {
    return 0.0;
  }
  if (multiplier <= 0.0) {
    return floor_seconds;
  }
  return floor_seconds + multiplier * Percentile95(std::move(samples));
}

}  // namespace zebra

#endif  // SRC_CORE_WATCHDOG_H_
