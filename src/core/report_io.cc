#include "src/core/report_io.h"

#include <algorithm>

#include "src/common/error.h"
#include "src/common/strings.h"
#include "src/conf/conf_file.h"

namespace zebra {

std::string EscapeReportText(const std::string& text) {
  std::string escaped;
  for (char c : text) {
    if (c == '\n') {
      escaped += "\\n";
    } else if (c == '\\') {
      escaped += "\\\\";
    } else {
      escaped += c;
    }
  }
  return escaped;
}

std::string UnescapeReportText(const std::string& text) {
  std::string plain;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      ++i;
      plain += text[i] == 'n' ? '\n' : text[i];
    } else {
      plain += text[i];
    }
  }
  return plain;
}

namespace {

int64_t RequireInt(const std::map<std::string, std::string>& properties,
                   const std::string& key) {
  auto it = properties.find(key);
  int64_t value = 0;
  if (it == properties.end() || !ParseInt64(it->second, &value)) {
    throw Error("report deserialization: missing or malformed key " + key);
  }
  return value;
}

std::string GetOr(const std::map<std::string, std::string>& properties,
                  const std::string& key, const std::string& fallback) {
  auto it = properties.find(key);
  return it == properties.end() ? fallback : it->second;
}

}  // namespace

std::string SerializeReport(const CampaignReport& report) {
  std::map<std::string, std::string> properties;
  std::vector<std::string> apps;
  for (const auto& [app, counts] : report.per_app) {
    apps.push_back(app);
    std::string prefix = "app." + app + ".";
    properties[prefix + "original"] = Int64ToString(counts.original);
    properties[prefix + "after_static"] = Int64ToString(counts.after_static);
    properties[prefix + "after_prerun"] = Int64ToString(counts.after_prerun);
    properties[prefix + "after_uncertainty"] = Int64ToString(counts.after_uncertainty);
    properties[prefix + "executed_runs"] = Int64ToString(counts.executed_runs);
    properties[prefix + "tests_total"] = Int64ToString(counts.tests_total);
    properties[prefix + "tests_with_nodes"] = Int64ToString(counts.tests_with_nodes);
  }
  properties["apps"] = StrJoin(apps, ",");

  for (const auto& [app, sharing] : report.sharing) {
    std::string prefix = "sharing." + app + ".";
    properties[prefix + "with_conf_usage"] = Int64ToString(sharing.tests_with_conf_usage);
    properties[prefix + "with_sharing"] = Int64ToString(sharing.tests_with_sharing);
  }

  std::vector<std::string> params;
  for (const auto& [param, finding] : report.findings) {
    params.push_back(param);
    std::string prefix = "finding." + param + ".";
    properties[prefix + "app"] = finding.owning_app;
    properties[prefix + "p_value"] = DoubleToString(finding.best_p_value);
    properties[prefix + "witnesses"] =
        StrJoin(std::vector<std::string>(finding.witness_tests.begin(),
                                         finding.witness_tests.end()),
                ",");
    properties[prefix + "failure"] = EscapeReportText(finding.example_failure);
  }
  properties["findings"] = StrJoin(params, ",");

  properties["first_trial_candidates"] = Int64ToString(report.first_trial_candidates);
  properties["filtered_by_hypothesis"] = Int64ToString(report.filtered_by_hypothesis);
  properties["total_unit_test_runs"] = Int64ToString(report.total_unit_test_runs);
  properties["wall_seconds"] = DoubleToString(report.wall_seconds);
  properties["cache_hits"] = Int64ToString(report.cache_hits);
  properties["cache_misses"] = Int64ToString(report.cache_misses);
  properties["equiv_hits"] = Int64ToString(report.equiv_hits);
  properties["canonicalized_plans"] = Int64ToString(report.canonicalized_plans);
  properties["mispredictions"] = Int64ToString(report.mispredictions);
  properties["cache_evictions"] = Int64ToString(report.cache_evictions);
  properties["runs_to_first_detection"] = Int64ToString(report.runs_to_first_detection);
  if (!report.first_detection_param.empty()) {
    properties["first_detection_param"] = report.first_detection_param;
  }
  properties["run_count"] = Int64ToString(
      static_cast<int64_t>(report.run_durations_seconds.size()));
  double total_run_seconds = 0;
  for (double duration : report.run_durations_seconds) {
    total_run_seconds += duration;
  }
  properties["run_seconds_total"] = DoubleToString(total_run_seconds);
  return RenderProperties(properties);
}

CampaignReport DeserializeReport(const std::string& text) {
  std::map<std::string, std::string> properties = ParseProperties(text);
  CampaignReport report;

  for (const std::string& app : StrSplit(GetOr(properties, "apps", ""), ',')) {
    if (app.empty()) {
      continue;
    }
    std::string prefix = "app." + app + ".";
    AppStageCounts counts;
    counts.original = RequireInt(properties, prefix + "original");
    counts.after_prerun = RequireInt(properties, prefix + "after_prerun");
    counts.after_uncertainty = RequireInt(properties, prefix + "after_uncertainty");
    counts.executed_runs = RequireInt(properties, prefix + "executed_runs");
    counts.tests_total = static_cast<int>(RequireInt(properties, prefix + "tests_total"));
    counts.tests_with_nodes =
        static_cast<int>(RequireInt(properties, prefix + "tests_with_nodes"));
    // Absent in pre-zebralint serializations: no static prior means the
    // static stage equals the original enumeration.
    int64_t after_static = counts.original;
    ParseInt64(GetOr(properties, prefix + "after_static",
                     Int64ToString(counts.original)),
               &after_static);
    counts.after_static = after_static;
    report.per_app[app] = counts;

    std::string sharing_prefix = "sharing." + app + ".";
    if (properties.count(sharing_prefix + "with_conf_usage") > 0) {
      SharingStats sharing;
      sharing.tests_with_conf_usage = static_cast<int>(
          RequireInt(properties, sharing_prefix + "with_conf_usage"));
      sharing.tests_with_sharing = static_cast<int>(
          RequireInt(properties, sharing_prefix + "with_sharing"));
      report.sharing[app] = sharing;
    }
  }

  for (const std::string& param : StrSplit(GetOr(properties, "findings", ""), ',')) {
    if (param.empty()) {
      continue;
    }
    std::string prefix = "finding." + param + ".";
    ParamFinding finding;
    finding.param = param;
    finding.owning_app = GetOr(properties, prefix + "app", "unknown");
    double p_value = 1.0;
    ParseDouble(GetOr(properties, prefix + "p_value", "1"), &p_value);
    finding.best_p_value = p_value;
    for (const std::string& witness :
         StrSplit(GetOr(properties, prefix + "witnesses", ""), ',')) {
      if (!witness.empty()) {
        finding.witness_tests.insert(witness);
      }
    }
    finding.example_failure =
        UnescapeReportText(GetOr(properties, prefix + "failure", ""));
    report.findings[param] = std::move(finding);
  }

  report.first_trial_candidates =
      static_cast<int>(RequireInt(properties, "first_trial_candidates"));
  report.filtered_by_hypothesis =
      static_cast<int>(RequireInt(properties, "filtered_by_hypothesis"));
  report.total_unit_test_runs = RequireInt(properties, "total_unit_test_runs");
  double wall = 0;
  ParseDouble(GetOr(properties, "wall_seconds", "0"), &wall);
  report.wall_seconds = wall;
  ParseInt64(GetOr(properties, "cache_hits", "0"), &report.cache_hits);
  ParseInt64(GetOr(properties, "cache_misses", "0"), &report.cache_misses);
  // Absent in pre-equivalence serializations: the layer did not exist.
  ParseInt64(GetOr(properties, "equiv_hits", "0"), &report.equiv_hits);
  ParseInt64(GetOr(properties, "canonicalized_plans", "0"),
             &report.canonicalized_plans);
  ParseInt64(GetOr(properties, "mispredictions", "0"), &report.mispredictions);
  ParseInt64(GetOr(properties, "cache_evictions", "0"), &report.cache_evictions);
  ParseInt64(GetOr(properties, "runs_to_first_detection", "0"),
             &report.runs_to_first_detection);
  report.first_detection_param = GetOr(properties, "first_detection_param", "");

  // Run durations are summarized: reconstruct a flat profile so downstream
  // fleet estimates stay usable.
  int64_t run_count = RequireInt(properties, "run_count");
  double run_seconds_total = 0;
  ParseDouble(GetOr(properties, "run_seconds_total", "0"), &run_seconds_total);
  if (run_count > 0) {
    report.run_durations_seconds.assign(
        static_cast<size_t>(run_count),
        run_seconds_total / static_cast<double>(run_count));
  }
  return report;
}

CampaignReport MergeReports(const std::vector<CampaignReport>& reports) {
  CampaignReport merged;

  // Canonical shard order: rank shards by their smallest app name so the
  // merge is independent of arrival order. runs_to_first_detection then
  // counts every execution of canonically-earlier shards plus the detecting
  // shard's own count ("as if the shards ran back-to-back").
  std::vector<const CampaignReport*> canonical;
  canonical.reserve(reports.size());
  for (const CampaignReport& report : reports) {
    canonical.push_back(&report);
  }
  auto min_app = [](const CampaignReport* report) {
    return report->per_app.empty() ? std::string() : report->per_app.begin()->first;
  };
  std::stable_sort(canonical.begin(), canonical.end(),
                   [&](const CampaignReport* a, const CampaignReport* b) {
                     return min_app(a) < min_app(b);
                   });
  int64_t executed_before = 0;
  for (const CampaignReport* report : canonical) {
    if (merged.runs_to_first_detection == 0 && report->runs_to_first_detection > 0) {
      merged.runs_to_first_detection =
          executed_before + report->runs_to_first_detection;
      merged.first_detection_param = report->first_detection_param;
    }
    executed_before += report->TotalExecuted();
  }

  for (const CampaignReport& report : reports) {
    for (const auto& [app, counts] : report.per_app) {
      if (merged.per_app.count(app) > 0) {
        throw Error("MergeReports: application " + app + " appears in two shards");
      }
      merged.per_app[app] = counts;
    }
    for (const auto& [param, finding] : report.findings) {
      ParamFinding& target = merged.findings[param];
      if (target.param.empty()) {
        target = finding;
      } else {
        target.witness_tests.insert(finding.witness_tests.begin(),
                                    finding.witness_tests.end());
        target.best_p_value = std::min(target.best_p_value, finding.best_p_value);
        if (target.example_failure.empty()) {
          target.example_failure = finding.example_failure;
        }
      }
    }
    merged.first_trial_candidates += report.first_trial_candidates;
    merged.filtered_by_hypothesis += report.filtered_by_hypothesis;
    merged.total_unit_test_runs += report.total_unit_test_runs;
    merged.cache_hits += report.cache_hits;
    merged.cache_misses += report.cache_misses;
    merged.equiv_hits += report.equiv_hits;
    merged.canonicalized_plans += report.canonicalized_plans;
    merged.mispredictions += report.mispredictions;
    merged.cache_evictions += report.cache_evictions;
    merged.wall_seconds = std::max(merged.wall_seconds, report.wall_seconds);
    merged.run_durations_seconds.insert(merged.run_durations_seconds.end(),
                                        report.run_durations_seconds.begin(),
                                        report.run_durations_seconds.end());
    for (const auto& [app, sharing] : report.sharing) {
      merged.sharing[app] = sharing;
    }
  }
  return merged;
}

}  // namespace zebra
