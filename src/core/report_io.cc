#include "src/core/report_io.h"

#include <algorithm>
#include <cstdio>

#include "src/common/error.h"
#include "src/common/strings.h"
#include "src/conf/conf_file.h"

namespace zebra {

std::string EscapeReportText(const std::string& text) {
  std::string escaped;
  for (char c : text) {
    if (c == '\n') {
      escaped += "\\n";
    } else if (c == '\\') {
      escaped += "\\\\";
    } else {
      escaped += c;
    }
  }
  return escaped;
}

std::string UnescapeReportText(const std::string& text) {
  std::string plain;
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\\' && i + 1 < text.size()) {
      ++i;
      plain += text[i] == 'n' ? '\n' : text[i];
    } else {
      plain += text[i];
    }
  }
  return plain;
}

namespace {

int64_t RequireInt(const std::map<std::string, std::string>& properties,
                   const std::string& key) {
  auto it = properties.find(key);
  int64_t value = 0;
  if (it == properties.end() || !ParseInt64(it->second, &value)) {
    throw Error("report deserialization: missing or malformed key " + key);
  }
  return value;
}

std::string GetOr(const std::map<std::string, std::string>& properties,
                  const std::string& key, const std::string& fallback) {
  auto it = properties.find(key);
  return it == properties.end() ? fallback : it->second;
}

std::string Double17(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string SerializeUnitResult(size_t unit_index, const UnitWorkResult& unit) {
  std::map<std::string, std::string> properties;
  properties["unit"] = Int64ToString(static_cast<int64_t>(unit_index));
  properties["app"] = unit.app;
  properties["test_id"] = unit.test_id;
  properties["prerun_executions"] = Int64ToString(unit.prerun_executions);
  properties["after_prerun"] = Int64ToString(unit.after_prerun);
  properties["after_uncertainty"] = Int64ToString(unit.after_uncertainty);
  properties["executed_runs"] = Int64ToString(unit.executed_runs);
  properties["runs_to_first_confirmation"] =
      Int64ToString(unit.runs_to_first_confirmation);
  properties["any_conf_usage"] = unit.any_conf_usage ? "1" : "0";
  properties["conf_sharing_detected"] = unit.conf_sharing_detected ? "1" : "0";
  properties["started_any_node"] = unit.started_any_node ? "1" : "0";
  properties["first_trial_candidates"] = Int64ToString(unit.first_trial_candidates);
  properties["filtered_by_hypothesis"] = Int64ToString(unit.filtered_by_hypothesis);
  properties["cache_hits"] = Int64ToString(unit.cache_hits);
  properties["cache_misses"] = Int64ToString(unit.cache_misses);
  properties["equiv_hits"] = Int64ToString(unit.equiv_hits);
  properties["canonicalized_plans"] = Int64ToString(unit.canonicalized_plans);
  properties["mispredictions"] = Int64ToString(unit.mispredictions);
  properties["cache_evictions"] = Int64ToString(unit.cache_evictions);
  properties["coupling_runs"] = Int64ToString(unit.coupling_runs);
  properties["coupling_confirmations"] =
      Int64ToString(unit.coupling_confirmations);
  properties["dynamic_phase_skipped"] = unit.dynamic_phase_skipped ? "1" : "0";
  properties["params_tested"] = StrJoin(unit.params_tested, ",");

  properties["confirmations"] =
      Int64ToString(static_cast<int64_t>(unit.confirmations.size()));
  for (size_t i = 0; i < unit.confirmations.size(); ++i) {
    const UnitConfirmation& confirmation = unit.confirmations[i];
    std::string prefix = "confirmation." + std::to_string(i) + ".";
    properties[prefix + "param"] = confirmation.param;
    properties[prefix + "p_value"] = Double17(confirmation.p_value);
    properties[prefix + "failure"] = EscapeReportText(confirmation.witness_failure);
  }

  std::vector<std::string> durations;
  durations.reserve(unit.run_durations.size());
  for (double duration : unit.run_durations) {
    durations.push_back(Double17(duration));
  }
  properties["durations"] = StrJoin(durations, ",");
  return RenderProperties(properties);
}

bool ParseUnitResult(const std::string& text, size_t* unit_index,
                     UnitWorkResult* unit) {
  std::map<std::string, std::string> properties;
  try {
    properties = ParseProperties(text);
  } catch (const Error&) {
    return false;
  }
  auto get = [&](const std::string& key) -> const std::string& {
    static const std::string kEmpty;
    auto it = properties.find(key);
    return it == properties.end() ? kEmpty : it->second;
  };
  auto get_int = [&](const std::string& key, int64_t* out) {
    return ParseInt64(get(key), out);
  };

  int64_t index = -1;
  if (!get_int("unit", &index) || index < 0) {
    return false;
  }
  *unit_index = static_cast<size_t>(index);
  unit->app = get("app");
  unit->test_id = get("test_id");
  int64_t candidates = 0;
  int64_t filtered = 0;
  if (!get_int("prerun_executions", &unit->prerun_executions) ||
      !get_int("after_prerun", &unit->after_prerun) ||
      !get_int("after_uncertainty", &unit->after_uncertainty) ||
      !get_int("executed_runs", &unit->executed_runs) ||
      !get_int("runs_to_first_confirmation", &unit->runs_to_first_confirmation) ||
      !get_int("first_trial_candidates", &candidates) ||
      !get_int("filtered_by_hypothesis", &filtered) ||
      !get_int("cache_hits", &unit->cache_hits) ||
      !get_int("cache_misses", &unit->cache_misses) ||
      !get_int("equiv_hits", &unit->equiv_hits) ||
      !get_int("canonicalized_plans", &unit->canonicalized_plans) ||
      !get_int("mispredictions", &unit->mispredictions) ||
      !get_int("cache_evictions", &unit->cache_evictions)) {
    return false;
  }
  unit->first_trial_candidates = static_cast<int>(candidates);
  unit->filtered_by_hypothesis = static_cast<int>(filtered);
  unit->any_conf_usage = get("any_conf_usage") == "1";
  unit->conf_sharing_detected = get("conf_sharing_detected") == "1";
  unit->started_any_node = get("started_any_node") == "1";
  // Absent in pre-coupling serializations: the add-on did not exist.
  ParseInt64(get("coupling_runs"), &unit->coupling_runs);
  ParseInt64(get("coupling_confirmations"), &unit->coupling_confirmations);
  unit->dynamic_phase_skipped = get("dynamic_phase_skipped") == "1";

  for (const std::string& param : StrSplit(get("params_tested"), ',')) {
    if (!param.empty()) {
      unit->params_tested.push_back(param);
    }
  }

  int64_t confirmations = 0;
  if (!get_int("confirmations", &confirmations) || confirmations < 0) {
    return false;
  }
  for (int64_t i = 0; i < confirmations; ++i) {
    std::string prefix = "confirmation." + std::to_string(i) + ".";
    UnitConfirmation confirmation;
    confirmation.param = get(prefix + "param");
    if (confirmation.param.empty() ||
        !ParseDouble(get(prefix + "p_value"), &confirmation.p_value)) {
      return false;
    }
    confirmation.witness_failure = UnescapeReportText(get(prefix + "failure"));
    unit->confirmations.push_back(std::move(confirmation));
  }

  for (const std::string& duration_text : StrSplit(get("durations"), ',')) {
    if (duration_text.empty()) {
      continue;
    }
    double duration = 0;
    if (!ParseDouble(duration_text, &duration)) {
      return false;
    }
    unit->run_durations.push_back(duration);
  }
  return true;
}

std::string SerializeReport(const CampaignReport& report) {
  std::map<std::string, std::string> properties;
  std::vector<std::string> apps;
  for (const auto& [app, counts] : report.per_app) {
    apps.push_back(app);
    std::string prefix = "app." + app + ".";
    properties[prefix + "original"] = Int64ToString(counts.original);
    properties[prefix + "after_static"] = Int64ToString(counts.after_static);
    properties[prefix + "after_prerun"] = Int64ToString(counts.after_prerun);
    properties[prefix + "after_uncertainty"] = Int64ToString(counts.after_uncertainty);
    properties[prefix + "executed_runs"] = Int64ToString(counts.executed_runs);
    properties[prefix + "tests_total"] = Int64ToString(counts.tests_total);
    properties[prefix + "tests_with_nodes"] = Int64ToString(counts.tests_with_nodes);
  }
  properties["apps"] = StrJoin(apps, ",");

  for (const auto& [app, sharing] : report.sharing) {
    std::string prefix = "sharing." + app + ".";
    properties[prefix + "with_conf_usage"] = Int64ToString(sharing.tests_with_conf_usage);
    properties[prefix + "with_sharing"] = Int64ToString(sharing.tests_with_sharing);
  }

  std::vector<std::string> params;
  for (const auto& [param, finding] : report.findings) {
    params.push_back(param);
    std::string prefix = "finding." + param + ".";
    properties[prefix + "app"] = finding.owning_app;
    // Full precision, like the unit-result wire format: the sharded merge
    // path round-trips findings through this serialization, and the
    // cross-backend determinism contract compares p-values bitwise.
    properties[prefix + "p_value"] = Double17(finding.best_p_value);
    properties[prefix + "witnesses"] =
        StrJoin(std::vector<std::string>(finding.witness_tests.begin(),
                                         finding.witness_tests.end()),
                ",");
    properties[prefix + "failure"] = EscapeReportText(finding.example_failure);
  }
  properties["findings"] = StrJoin(params, ",");

  properties["first_trial_candidates"] = Int64ToString(report.first_trial_candidates);
  properties["filtered_by_hypothesis"] = Int64ToString(report.filtered_by_hypothesis);
  properties["total_unit_test_runs"] = Int64ToString(report.total_unit_test_runs);
  properties["wall_seconds"] = DoubleToString(report.wall_seconds);
  properties["cache_hits"] = Int64ToString(report.cache_hits);
  properties["cache_misses"] = Int64ToString(report.cache_misses);
  properties["equiv_hits"] = Int64ToString(report.equiv_hits);
  properties["canonicalized_plans"] = Int64ToString(report.canonicalized_plans);
  properties["mispredictions"] = Int64ToString(report.mispredictions);
  properties["cache_evictions"] = Int64ToString(report.cache_evictions);
  properties["coupling_runs"] = Int64ToString(report.coupling_runs);
  properties["coupling_confirmations"] =
      Int64ToString(report.coupling_confirmations);
  properties["units_skipped"] = Int64ToString(report.units_skipped);
  properties["hung_workers"] = Int64ToString(report.hung_workers);
  properties["requeued_units"] = Int64ToString(report.requeued_units);
  properties["resumed_units"] = Int64ToString(report.resumed_units);
  properties["cache_load_failures"] = Int64ToString(report.cache_load_failures);
  properties["journal_append_failures"] =
      Int64ToString(report.journal_append_failures);
  properties["agent_disconnects"] = Int64ToString(report.agent_disconnects);
  properties["expired_leases"] = Int64ToString(report.expired_leases);
  properties["duplicate_results"] = Int64ToString(report.duplicate_results);
  if (!report.poisoned_units.empty()) {
    properties["poisoned_units"] = StrJoin(report.poisoned_units, ",");
  }
  properties["runs_to_first_detection"] = Int64ToString(report.runs_to_first_detection);
  if (!report.first_detection_param.empty()) {
    properties["first_detection_param"] = report.first_detection_param;
  }
  properties["run_count"] = Int64ToString(
      static_cast<int64_t>(report.run_durations_seconds.size()));
  double total_run_seconds = 0;
  for (double duration : report.run_durations_seconds) {
    total_run_seconds += duration;
  }
  properties["run_seconds_total"] = DoubleToString(total_run_seconds);
  return RenderProperties(properties);
}

CampaignReport DeserializeReport(const std::string& text) {
  std::map<std::string, std::string> properties = ParseProperties(text);
  CampaignReport report;

  for (const std::string& app : StrSplit(GetOr(properties, "apps", ""), ',')) {
    if (app.empty()) {
      continue;
    }
    std::string prefix = "app." + app + ".";
    AppStageCounts counts;
    counts.original = RequireInt(properties, prefix + "original");
    counts.after_prerun = RequireInt(properties, prefix + "after_prerun");
    counts.after_uncertainty = RequireInt(properties, prefix + "after_uncertainty");
    counts.executed_runs = RequireInt(properties, prefix + "executed_runs");
    counts.tests_total = static_cast<int>(RequireInt(properties, prefix + "tests_total"));
    counts.tests_with_nodes =
        static_cast<int>(RequireInt(properties, prefix + "tests_with_nodes"));
    // Absent in pre-zebralint serializations: no static prior means the
    // static stage equals the original enumeration.
    int64_t after_static = counts.original;
    ParseInt64(GetOr(properties, prefix + "after_static",
                     Int64ToString(counts.original)),
               &after_static);
    counts.after_static = after_static;
    report.per_app[app] = counts;

    std::string sharing_prefix = "sharing." + app + ".";
    if (properties.count(sharing_prefix + "with_conf_usage") > 0) {
      SharingStats sharing;
      sharing.tests_with_conf_usage = static_cast<int>(
          RequireInt(properties, sharing_prefix + "with_conf_usage"));
      sharing.tests_with_sharing = static_cast<int>(
          RequireInt(properties, sharing_prefix + "with_sharing"));
      report.sharing[app] = sharing;
    }
  }

  for (const std::string& param : StrSplit(GetOr(properties, "findings", ""), ',')) {
    if (param.empty()) {
      continue;
    }
    std::string prefix = "finding." + param + ".";
    ParamFinding finding;
    finding.param = param;
    finding.owning_app = GetOr(properties, prefix + "app", "unknown");
    double p_value = 1.0;
    ParseDouble(GetOr(properties, prefix + "p_value", "1"), &p_value);
    finding.best_p_value = p_value;
    for (const std::string& witness :
         StrSplit(GetOr(properties, prefix + "witnesses", ""), ',')) {
      if (!witness.empty()) {
        finding.witness_tests.insert(witness);
      }
    }
    finding.example_failure =
        UnescapeReportText(GetOr(properties, prefix + "failure", ""));
    report.findings[param] = std::move(finding);
  }

  report.first_trial_candidates =
      static_cast<int>(RequireInt(properties, "first_trial_candidates"));
  report.filtered_by_hypothesis =
      static_cast<int>(RequireInt(properties, "filtered_by_hypothesis"));
  report.total_unit_test_runs = RequireInt(properties, "total_unit_test_runs");
  double wall = 0;
  ParseDouble(GetOr(properties, "wall_seconds", "0"), &wall);
  report.wall_seconds = wall;
  ParseInt64(GetOr(properties, "cache_hits", "0"), &report.cache_hits);
  ParseInt64(GetOr(properties, "cache_misses", "0"), &report.cache_misses);
  // Absent in pre-equivalence serializations: the layer did not exist.
  ParseInt64(GetOr(properties, "equiv_hits", "0"), &report.equiv_hits);
  ParseInt64(GetOr(properties, "canonicalized_plans", "0"),
             &report.canonicalized_plans);
  ParseInt64(GetOr(properties, "mispredictions", "0"), &report.mispredictions);
  ParseInt64(GetOr(properties, "cache_evictions", "0"), &report.cache_evictions);
  // Absent in pre-coupling serializations.
  ParseInt64(GetOr(properties, "coupling_runs", "0"), &report.coupling_runs);
  ParseInt64(GetOr(properties, "coupling_confirmations", "0"),
             &report.coupling_confirmations);
  ParseInt64(GetOr(properties, "units_skipped", "0"), &report.units_skipped);
  // Absent in pre-fault-tolerance serializations.
  ParseInt64(GetOr(properties, "hung_workers", "0"), &report.hung_workers);
  ParseInt64(GetOr(properties, "requeued_units", "0"), &report.requeued_units);
  ParseInt64(GetOr(properties, "resumed_units", "0"), &report.resumed_units);
  ParseInt64(GetOr(properties, "cache_load_failures", "0"),
             &report.cache_load_failures);
  ParseInt64(GetOr(properties, "journal_append_failures", "0"),
             &report.journal_append_failures);
  // Absent in pre-fabric serializations.
  ParseInt64(GetOr(properties, "agent_disconnects", "0"),
             &report.agent_disconnects);
  ParseInt64(GetOr(properties, "expired_leases", "0"), &report.expired_leases);
  ParseInt64(GetOr(properties, "duplicate_results", "0"),
             &report.duplicate_results);
  for (const std::string& unit :
       StrSplit(GetOr(properties, "poisoned_units", ""), ',')) {
    if (!unit.empty()) {
      report.poisoned_units.push_back(unit);
    }
  }
  ParseInt64(GetOr(properties, "runs_to_first_detection", "0"),
             &report.runs_to_first_detection);
  report.first_detection_param = GetOr(properties, "first_detection_param", "");

  // Run durations are summarized: reconstruct a flat profile so downstream
  // fleet estimates stay usable.
  int64_t run_count = RequireInt(properties, "run_count");
  double run_seconds_total = 0;
  ParseDouble(GetOr(properties, "run_seconds_total", "0"), &run_seconds_total);
  if (run_count > 0) {
    report.run_durations_seconds.assign(
        static_cast<size_t>(run_count),
        run_seconds_total / static_cast<double>(run_count));
  }
  return report;
}

CampaignReport MergeReports(const std::vector<CampaignReport>& reports) {
  CampaignReport merged;

  // Canonical shard order: rank shards by their smallest app name so the
  // merge is independent of arrival order. runs_to_first_detection then
  // counts every execution of canonically-earlier shards plus the detecting
  // shard's own count ("as if the shards ran back-to-back").
  std::vector<const CampaignReport*> canonical;
  canonical.reserve(reports.size());
  for (const CampaignReport& report : reports) {
    canonical.push_back(&report);
  }
  auto min_app = [](const CampaignReport* report) {
    return report->per_app.empty() ? std::string() : report->per_app.begin()->first;
  };
  std::stable_sort(canonical.begin(), canonical.end(),
                   [&](const CampaignReport* a, const CampaignReport* b) {
                     return min_app(a) < min_app(b);
                   });
  int64_t executed_before = 0;
  for (const CampaignReport* report : canonical) {
    if (merged.runs_to_first_detection == 0 && report->runs_to_first_detection > 0) {
      merged.runs_to_first_detection =
          executed_before + report->runs_to_first_detection;
      merged.first_detection_param = report->first_detection_param;
    }
    executed_before += report->TotalExecuted();
  }

  for (const CampaignReport& report : reports) {
    for (const auto& [app, counts] : report.per_app) {
      if (merged.per_app.count(app) > 0) {
        throw Error("MergeReports: application " + app + " appears in two shards");
      }
      merged.per_app[app] = counts;
    }
    for (const auto& [param, finding] : report.findings) {
      ParamFinding& target = merged.findings[param];
      if (target.param.empty()) {
        target = finding;
      } else {
        target.witness_tests.insert(finding.witness_tests.begin(),
                                    finding.witness_tests.end());
        target.best_p_value = std::min(target.best_p_value, finding.best_p_value);
        if (target.example_failure.empty()) {
          target.example_failure = finding.example_failure;
        }
      }
    }
    merged.first_trial_candidates += report.first_trial_candidates;
    merged.filtered_by_hypothesis += report.filtered_by_hypothesis;
    merged.total_unit_test_runs += report.total_unit_test_runs;
    merged.cache_hits += report.cache_hits;
    merged.cache_misses += report.cache_misses;
    merged.equiv_hits += report.equiv_hits;
    merged.canonicalized_plans += report.canonicalized_plans;
    merged.mispredictions += report.mispredictions;
    merged.cache_evictions += report.cache_evictions;
    merged.coupling_runs += report.coupling_runs;
    merged.coupling_confirmations += report.coupling_confirmations;
    merged.units_skipped += report.units_skipped;
    merged.hung_workers += report.hung_workers;
    merged.requeued_units += report.requeued_units;
    merged.resumed_units += report.resumed_units;
    merged.cache_load_failures += report.cache_load_failures;
    merged.journal_append_failures += report.journal_append_failures;
    merged.agent_disconnects += report.agent_disconnects;
    merged.expired_leases += report.expired_leases;
    merged.duplicate_results += report.duplicate_results;
    merged.poisoned_units.insert(merged.poisoned_units.end(),
                                 report.poisoned_units.begin(),
                                 report.poisoned_units.end());
    merged.wall_seconds = std::max(merged.wall_seconds, report.wall_seconds);
    merged.run_durations_seconds.insert(merged.run_durations_seconds.end(),
                                        report.run_durations_seconds.begin(),
                                        report.run_durations_seconds.end());
    for (const auto& [app, sharing] : report.sharing) {
      merged.sharing[app] = sharing;
    }
  }
  return merged;
}

}  // namespace zebra
