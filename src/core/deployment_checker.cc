#include "src/core/deployment_checker.h"

namespace zebra {

DeploymentChecker::DeploymentChecker(const CampaignReport& report) {
  for (const auto& [param, finding] : report.findings) {
    std::string reason = finding.example_failure.empty()
                             ? "confirmed heterogeneous-unsafe by campaign"
                             : finding.example_failure;
    unsafe_params_[param] = reason;
  }
}

DeploymentChecker::DeploymentChecker(std::map<std::string, std::string> unsafe_params)
    : unsafe_params_(std::move(unsafe_params)) {}

DeploymentVerdict DeploymentChecker::Check(const ConfFileSet& proposal) const {
  DeploymentVerdict verdict;
  for (const std::string& param : proposal.HeterogeneousParams()) {
    auto it = unsafe_params_.find(param);
    if (it == unsafe_params_.end()) {
      verdict.unknown_heterogeneous.insert(param);
      continue;
    }
    DeploymentWarning warning;
    warning.param = param;
    warning.reason = it->second;
    warning.values = proposal.ValuesOf(param);
    verdict.warnings.push_back(std::move(warning));
    verdict.safe = false;
  }
  return verdict;
}

}  // namespace zebra
