// Deterministic fault-injection harness for the campaign runners.
//
// The paper's real campaigns survive on container-level isolation: a test
// that crashes, hangs, or corrupts its output takes down one container, not
// the campaign (§4, §7). Our runners reproduce that with process isolation —
// and this header is how the recovery paths are *tested* rather than trusted
// on inspection. A FaultPlan injects faults at chosen (worker, unit, attempt)
// coordinates inside scheduler workers:
//
//   kCrash        worker _Exits instead of executing the unit
//   kHang         worker blocks forever (exercises the watchdog deadline)
//   kGarbledFrame worker writes a corrupt response frame, then exits
//   kSlowWorker   worker sleeps `slow_seconds` before executing normally
//
// Plans are deterministic two ways: explicit specs pin exact coordinates, and
// the seeded random mode derives each coin flip from a stable hash of
// (seed, kind, test id, attempt) — deliberately *not* the worker index, so a
// random plan replays identically regardless of how units land on workers.
//
// Every fault plan must leave findings, Table-5 stage counts, and
// runs_to_first_detection bitwise-identical to the uninterrupted sequential
// campaign (CI-gated; see tests/fault_tolerance_test.cc): faults change how
// often units re-run, never what the campaign concludes.

#ifndef SRC_CORE_FAULT_INJECTION_H_
#define SRC_CORE_FAULT_INJECTION_H_

#include <cstdint>
#include <string>
#include <vector>

namespace zebra {

enum class FaultKind {
  kCrash,
  kHang,
  kGarbledFrame,
  kSlowWorker,
};

// One injection site. Wildcards widen the match: an empty test_id matches
// every unit, worker = -1 every worker, attempt = -1 every dispatch attempt.
struct FaultSpec {
  FaultKind kind = FaultKind::kCrash;
  std::string test_id;        // unit-test id, empty = any
  int worker = -1;            // worker index (shard index for the sharded
                              // runner), -1 = any
  int attempt = 0;            // 0-based dispatch attempt, -1 = any
  double slow_seconds = 0.1;  // kSlowWorker only: pre-execution sleep
};

struct FaultPlan {
  std::vector<FaultSpec> specs;

  // Seeded random mode: independently of `specs`, each (kind, test id,
  // attempt) coordinate fires with the matching rate, decided by a stable
  // hash folded from `seed`. 0 disables a kind.
  uint64_t seed = 0;
  double crash_rate = 0.0;
  double hang_rate = 0.0;
  double garble_rate = 0.0;

  bool empty() const {
    return specs.empty() && crash_rate == 0.0 && hang_rate == 0.0 &&
           garble_rate == 0.0;
  }

  // Returns true — filling *out — when a fault of any kind fires at this
  // coordinate. Explicit specs win over random mode; the first matching spec
  // decides, so order plans from most to least specific.
  bool Decide(int worker, const std::string& test_id, int attempt,
              FaultSpec* out) const;

  // Decide() restricted to one kind (the sharded runner checks kinds at
  // different points of the shard lifecycle).
  bool DecideKind(FaultKind kind, int worker, const std::string& test_id,
                  int attempt, FaultSpec* out) const;
};

// --- Network fault plane (distributed fabric) -------------------------------
//
// The distributed backend (distributed_campaign.h / campaign_agent.h) adds a
// transport between the scheduler and its workers, and with it a new class of
// failures the single-box runners cannot see. NetFaultPlan injects those at
// (agent, unit, attempt) coordinates inside the agent process:
//
//   kAgentCrash           agent process _Exits before executing the unit
//   kConnectionDrop       agent executes the unit, then severs the connection
//                         without sending the result (lease expires, requeue)
//   kGarbledFrame         agent writes junk bytes instead of a frame, then
//                         exits (coordinator sees FabricRead::kGarbled)
//   kDelayedHeartbeat     agent suppresses heartbeats for delay_seconds
//                         (exercises the lease heartbeat timeout)
//   kStaleDuplicateResult agent sends the result frame twice (the second copy
//                         must be idempotently dropped by the coordinator)
//   kEpochDesync          agent discards its acknowledged snapshot epoch and
//                         refuses the dispatched unit with kSnapshotNack, as
//                         if a delta arrived against an epoch it never applied
//                         (coordinator must requeue the unit and fall back to
//                         a full snapshot resend)
//
// Same determinism contract as FaultPlan: explicit specs pin coordinates, and
// the seeded random mode hashes (seed, kind, test id, attempt) — not the
// agent index — so a random plan replays identically at any fleet shape.
// Every net fault plan must leave the folded report bitwise-identical to the
// uninterrupted sequential campaign (tests/distributed_campaign_test.cc).

enum class NetFaultKind {
  kAgentCrash,
  kConnectionDrop,
  kGarbledFrame,
  kDelayedHeartbeat,
  kStaleDuplicateResult,
  kEpochDesync,
};

// One network injection site. Wildcards as in FaultSpec: empty test_id
// matches every unit, agent = -1 every agent, attempt = -1 every attempt.
struct NetFaultSpec {
  NetFaultKind kind = NetFaultKind::kAgentCrash;
  std::string test_id;         // unit-test id, empty = any
  int agent = -1;              // agent index, -1 = any
  int attempt = 0;             // 0-based dispatch attempt, -1 = any
  double delay_seconds = 0.5;  // kDelayedHeartbeat only: suppression window
};

struct NetFaultPlan {
  std::vector<NetFaultSpec> specs;

  // Seeded random mode, mirroring FaultPlan: each (kind, test id, attempt)
  // coordinate fires with the matching rate. 0 disables a kind. Heartbeat
  // delay, duplicate-result, and epoch desync have no random mode — their
  // interesting coordinates are timing- or state-specific, so pin them with
  // explicit specs.
  uint64_t seed = 0;
  double agent_crash_rate = 0.0;
  double connection_drop_rate = 0.0;
  double garble_rate = 0.0;
  double duplicate_rate = 0.0;

  bool empty() const {
    return specs.empty() && agent_crash_rate == 0.0 &&
           connection_drop_rate == 0.0 && garble_rate == 0.0 &&
           duplicate_rate == 0.0;
  }

  // Returns true — filling *out — when a network fault fires at this
  // coordinate. Explicit specs win over random mode, in plan order.
  bool Decide(int agent, const std::string& test_id, int attempt,
              NetFaultSpec* out) const;
};

}  // namespace zebra

#endif  // SRC_CORE_FAULT_INJECTION_H_
