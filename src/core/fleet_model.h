// Fleet cost model: translates a campaign's per-run durations into the
// machine-time accounting the paper reports ("all tests can finish within
// 4,652 machine hours ... we used up to 100 machines [with] 20 Docker
// containers each").
//
// Test instances are embarrassingly parallel; the model schedules the
// measured run durations onto machines x containers-per-machine slots with
// the LPT (longest processing time first) greedy heuristic, which is within
// 4/3 of the optimal makespan.

#ifndef SRC_CORE_FLEET_MODEL_H_
#define SRC_CORE_FLEET_MODEL_H_

#include <cstdint>
#include <vector>

namespace zebra {

struct FleetEstimate {
  int machines = 0;
  int containers_per_machine = 0;
  int64_t runs = 0;
  double total_cpu_seconds = 0.0;      // sum of run durations
  double machine_seconds = 0.0;        // makespan x machines
  double makespan_seconds = 0.0;       // wall-clock on the fleet
  double utilization = 0.0;            // cpu / (makespan x slots)
};

// Schedules `run_durations_seconds` onto machines x containers slots with the
// LPT heuristic. machines and containers must be >= 1.
FleetEstimate EstimateFleet(const std::vector<double>& run_durations_seconds,
                            int machines, int containers_per_machine);

}  // namespace zebra

#endif  // SRC_CORE_FLEET_MODEL_H_
