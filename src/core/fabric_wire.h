// Fabric wire protocol: the framed TCP transport between the distributed
// campaign coordinator (distributed_campaign.h) and its per-host agents
// (campaign_agent.h).
//
// This generalizes the worker_ipc pipe framing for a transport that can
// garble as well as die. A pipe between a parent and its forked child either
// delivers bytes in order or EOFs; a TCP connection across a fleet can
// additionally deliver corrupted application state after a half-close, a
// proxy hiccup, or a buggy peer — and an agent that reconnects mid-stream
// must never be able to splice half a frame into the next one. So every
// frame carries a fixed binary header:
//
//   bytes  0-3   magic "ZFAB"
//   bytes  4-7   protocol version (u32 LE)        kFabricProtocolVersion
//   bytes  8-11  message type     (u32 LE)        FabricMsg
//   bytes 12-19  payload size     (u64 LE)
//   bytes 20-27  payload checksum (u64 LE)        FNV-1a of the payload bytes
//
// ReadFabricFrame distinguishes a *clean* EOF on a frame boundary (peer shut
// down, FabricRead::kEof) from everything the coordinator must treat as a
// broken peer: bad magic, unknown version, an absurd size, a checksum
// mismatch, or bytes ending mid-frame (kGarbled), and a plain read error
// (kError). The callers retire the connection on anything but kOk — a frame
// is either bitwise intact or the peer is dead; there is no "partially
// trusted" state (docs/ROBUSTNESS.md, failure matrix).
//
// Writers must run under ScopedIgnoreSigPipe (worker_ipc.h): a send on a
// connection whose peer died surfaces as a WriteFabricFrame return-value
// failure the caller can requeue on, never as process death.

#ifndef SRC_CORE_FABRIC_WIRE_H_
#define SRC_CORE_FABRIC_WIRE_H_

#include <cstdint>
#include <string>

namespace zebra {

inline constexpr uint32_t kFabricProtocolVersion = 1;

// Largest payload a well-formed peer ever sends (a serialized UnitWorkResult
// is a few KB; the globally-unsafe set a few hundred bytes). A size field
// beyond this is a garbled header, not a giant frame — without the cap a
// single corrupt length byte would ask the reader to allocate gigabytes.
inline constexpr uint64_t kFabricMaxPayload = 64ull * 1024 * 1024;

enum class FabricMsg : uint32_t {
  kHello = 1,      // agent -> coord: version / schema hash / threads / index
  kWelcome = 2,    // coord -> agent: admitted; heartbeat interval
  kReject = 3,     // coord -> agent: version or schema-hash mismatch
  kDispatch = 4,   // coord -> agent: "<unit> <attempt>\n<unsafe csv>"
  kResult = 5,     // agent -> coord: "<attempt>\n" + SerializeUnitResult
  kHeartbeat = 6,  // agent -> coord: empty payload; renews every lease
  kShutdown = 7,   // coord -> agent: campaign over, send stats and exit
  kStats = 8,      // agent -> coord: cache counters, sent once at shutdown
};

enum class FabricRead {
  kOk,       // *type / *payload filled, checksum verified
  kEof,      // clean EOF on a frame boundary (peer closed)
  kGarbled,  // bad magic/version/size/checksum, or EOF mid-frame
  kError,    // read(2) failed
};

// Writes one frame (header + payload), retrying EINTR and short writes.
// Returns false on any write error (EPIPE after the peer died, typically).
bool WriteFabricFrame(int fd, FabricMsg type, const std::string& payload);

// Reads one frame. On kOk fills *type and *payload (zero-length payloads are
// valid — heartbeats are empty). Any other status means the connection is
// unusable and must be retired.
FabricRead ReadFabricFrame(int fd, FabricMsg* type, std::string* payload);

// --- TCP plumbing -----------------------------------------------------------

// Binds and listens on host:port (port 0 = ephemeral; *bound_port receives
// the actual port). Returns the listening fd, or -1 on failure.
int ListenTcp(const std::string& host, uint16_t port, uint16_t* bound_port);

// Accepts one connection (EINTR-safe, TCP_NODELAY set — dispatch/result
// frames are small and latency-bound). Returns -1 on failure.
int AcceptTcp(int listen_fd);

// Connects to host:port, retrying until `timeout_seconds` elapses (an agent
// may race the coordinator's listen in --connect mode). Returns -1 on
// timeout or unresolvable address.
int ConnectTcp(const std::string& host, uint16_t port, double timeout_seconds);

// Parses "host:port" ("127.0.0.1:9009", ":9009" = INADDR_ANY). Returns false
// on a malformed address or port.
bool ParseHostPort(const std::string& address, std::string* host,
                   uint16_t* port);

}  // namespace zebra

#endif  // SRC_CORE_FABRIC_WIRE_H_
