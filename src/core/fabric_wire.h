// Fabric wire protocol: the framed TCP transport between the distributed
// campaign coordinator (distributed_campaign.h) and its per-host agents
// (campaign_agent.h).
//
// This generalizes the worker_ipc pipe framing for a transport that can
// garble as well as die. A pipe between a parent and its forked child either
// delivers bytes in order or EOFs; a TCP connection across a fleet can
// additionally deliver corrupted application state after a half-close, a
// proxy hiccup, or a buggy peer — and an agent that reconnects mid-stream
// must never be able to splice half a frame into the next one. So every
// frame carries a fixed binary header:
//
//   bytes  0-3   magic "ZFAB"
//   bytes  4-7   protocol version (u32 LE)        kFabricProtocolVersion
//   bytes  8-11  message type     (u32 LE)        FabricMsg
//   bytes 12-19  payload size     (u64 LE)
//   bytes 20-27  payload checksum (u64 LE)        FNV-1a of the payload bytes
//
// ReadFabricFrame distinguishes a *clean* EOF on a frame boundary (peer shut
// down, FabricRead::kEof) from everything the coordinator must treat as a
// broken peer: bad magic, an absurd size, a checksum mismatch, or bytes
// ending mid-frame (kGarbled), and a plain read error (kError). A frame
// whose magic is intact but whose version differs is reported separately
// (kVersionMismatch) so the handshake can refuse an old peer with a named
// kReject instead of a silent drop; everywhere else it retires the
// connection exactly like kGarbled. The callers retire the connection on
// anything but kOk — a frame is either bitwise intact or the peer is dead;
// there is no "partially trusted" state (docs/ROBUSTNESS.md, failure
// matrix).
//
// Version 2 (the batched data plane) added kDispatchBatch / kResultBatch /
// kSnapshotNack and sends header+payload with one writev(2) per frame. A v1
// peer's frames surface as kVersionMismatch and are refused at the
// handshake; past the handshake both ends are proven same-version.
//
// Writers must run under ScopedIgnoreSigPipe (worker_ipc.h): a send on a
// connection whose peer died surfaces as a WriteFabricFrame return-value
// failure the caller can requeue on, never as process death.

#ifndef SRC_CORE_FABRIC_WIRE_H_
#define SRC_CORE_FABRIC_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace zebra {

// Version 2: batched frames (kDispatchBatch/kResultBatch), snapshot delta
// encoding with epoch acknowledgement (kSnapshotNack), vectored frame
// writes. v1 peers are refused at the handshake.
inline constexpr uint32_t kFabricProtocolVersion = 2;

// Largest payload a well-formed peer ever sends (a batched frame carries at
// most a few hundred serialized UnitWorkResults, each a few KB). A size
// field beyond this is a garbled header, not a giant frame — without the cap
// a single corrupt length byte would ask the reader to allocate gigabytes.
inline constexpr uint64_t kFabricMaxPayload = 64ull * 1024 * 1024;

enum class FabricMsg : uint32_t {
  kHello = 1,      // agent -> coord: version / schema hash / threads / index
  kWelcome = 2,    // coord -> agent: admitted; heartbeat interval
  kReject = 3,     // coord -> agent: version or schema-hash mismatch
  kDispatch = 4,   // v1 relic: one unit per frame; v2 peers never send it
  kResult = 5,     // v1 relic: one result per frame; v2 peers never send it
  kHeartbeat = 6,  // agent -> coord: empty payload; renews every lease
  kShutdown = 7,   // coord -> agent: campaign over, send stats and exit
  kStats = 8,      // agent -> coord: cache counters, sent once at shutdown
  // --- v2 data plane ---------------------------------------------------------
  kDispatchBatch = 9,   // coord -> agent: snapshot epoch section + N units
  kResultBatch = 10,    // agent -> coord: N completed results in one frame
  kSnapshotNack = 11,   // agent -> coord: epoch mismatch; units need redispatch
};

enum class FabricRead {
  kOk,               // *type / *payload filled, checksum verified
  kEof,              // clean EOF on a frame boundary (peer closed)
  kGarbled,          // bad magic/size/checksum, or EOF mid-frame
  kVersionMismatch,  // intact magic, different protocol version — an old (or
                     // future) peer; refuse at the handshake, retire elsewhere
  kError,            // read(2) failed
};

// Writes one frame (header + payload) with a single writev(2) call where the
// kernel allows, retrying EINTR and short writes. Returns false on any write
// error (EPIPE after the peer died, typically).
bool WriteFabricFrame(int fd, FabricMsg type, const std::string& payload);

// Reads one frame. On kOk fills *type and *payload (zero-length payloads are
// valid — heartbeats are empty). Any other status means the connection is
// unusable and must be retired (kVersionMismatch additionally names the
// reason so the handshake can send a kReject first).
FabricRead ReadFabricFrame(int fd, FabricMsg* type, std::string* payload);

// --- Batch record framing ---------------------------------------------------
//
// kDispatchBatch / kResultBatch payloads are a sequence of length-prefixed
// records ("<decimal length>\n<bytes>"), so records may contain newlines,
// NULs, or anything else — the outer frame checksum already proves the bytes
// intact, the length prefix only delimits. An empty payload is a valid
// zero-record batch.

// Appends one record to a batch payload under construction.
void AppendBatchRecord(std::string* payload, const std::string& record);

// Splits a batch payload back into records. Returns false on a malformed
// payload (bad length prefix, truncated record, trailing junk); *records
// holds nothing useful on failure. The caller treats false exactly like a
// garbled frame: the peer is broken.
bool DecodeBatchRecords(const std::string& payload,
                        std::vector<std::string>* records);

// --- TCP plumbing -----------------------------------------------------------

// Binds and listens on host:port (port 0 = ephemeral; *bound_port receives
// the actual port). Returns the listening fd, or -1 on failure.
int ListenTcp(const std::string& host, uint16_t port, uint16_t* bound_port);

// Accepts one connection (EINTR-safe, TCP_NODELAY set — dispatch/result
// frames are latency-bound). Returns -1 on failure.
int AcceptTcp(int listen_fd);

// Connects to host:port, retrying until `timeout_seconds` elapses (an agent
// may race the coordinator's listen in --connect mode). Returns -1 on
// timeout or unresolvable address. TCP_NODELAY is set on success.
int ConnectTcp(const std::string& host, uint16_t port, double timeout_seconds);

// Disables Nagle on a connected TCP socket. Every live fabric socket —
// accepted and connected alike — must have this set: the protocol
// interleaves small latency-bound frames (heartbeats, nacks) with batches,
// and a 40 ms Nagle/delayed-ACK stall per dispatch would dwarf the per-frame
// cost the batching work removed. Returns false when setsockopt fails (e.g.
// the fd is not a TCP socket); callers on the fabric paths treat that as
// best-effort. Exposed so tests can assert the option on live fds.
bool SetTcpNoDelay(int fd);

// Parses "host:port" ("127.0.0.1:9009", ":9009" = INADDR_ANY — the empty
// host is the one meaningful empty field). Strict: an empty port, a
// non-numeric port, digits followed by trailing garbage, embedded
// whitespace, or a port outside [1, 65535] are all rejected, and *error (if
// non-null) receives a one-line reason naming the offending part.
bool ParseHostPort(const std::string& address, std::string* host,
                   uint16_t* port, std::string* error = nullptr);

}  // namespace zebra

#endif  // SRC_CORE_FABRIC_WIRE_H_
