// ReportWriter: renders a CampaignReport as human-readable markdown — the
// artifact an operator files alongside a reconfiguration plan ("which of my
// parameters must stay homogeneous?").

#ifndef SRC_CORE_REPORT_WRITER_H_
#define SRC_CORE_REPORT_WRITER_H_

#include <string>

#include "src/core/campaign.h"

namespace zebra {

struct ReportWriterOptions {
  // Annotate findings against the seeded ground truth (off for a real
  // deployment, where no ground truth exists).
  bool annotate_ground_truth = false;

  // Include the fleet cost estimate for this many machines x containers
  // (0 machines = omit).
  int fleet_machines = 0;
  int fleet_containers = 0;
};

// Renders the full report (stage counts per application, findings with
// witnesses and p-values, hypothesis-testing stats, cost accounting).
std::string RenderMarkdownReport(const CampaignReport& report,
                                 const ReportWriterOptions& options = {});

}  // namespace zebra

#endif  // SRC_CORE_REPORT_WRITER_H_
