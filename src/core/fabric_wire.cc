#include "src/core/fabric_wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "src/common/strings.h"
#include "src/core/worker_ipc.h"

namespace zebra {

namespace {

constexpr char kMagic[4] = {'Z', 'F', 'A', 'B'};
constexpr size_t kHeaderSize = 28;

void PutU32(char* out, uint32_t value) {
  out[0] = static_cast<char>(value & 0xff);
  out[1] = static_cast<char>((value >> 8) & 0xff);
  out[2] = static_cast<char>((value >> 16) & 0xff);
  out[3] = static_cast<char>((value >> 24) & 0xff);
}

void PutU64(char* out, uint64_t value) {
  PutU32(out, static_cast<uint32_t>(value & 0xffffffffull));
  PutU32(out + 4, static_cast<uint32_t>(value >> 32));
}

uint32_t GetU32(const char* in) {
  return static_cast<uint32_t>(static_cast<unsigned char>(in[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(in[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(in[3])) << 24;
}

uint64_t GetU64(const char* in) {
  return static_cast<uint64_t>(GetU32(in)) |
         static_cast<uint64_t>(GetU32(in + 4)) << 32;
}

// writev(2) with EINTR retry and short-write resumption. A short write
// advances through the iovec array in place; once the header vector drains
// the remaining payload bytes go out through WriteAll's plain-write loop.
bool WritevAll(int fd, struct iovec* iov, int iovcnt) {
  while (iovcnt > 0) {
    ssize_t n = ::writev(fd, iov, iovcnt);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    size_t left = static_cast<size_t>(n);
    while (iovcnt > 0 && left >= iov[0].iov_len) {
      left -= iov[0].iov_len;
      ++iov;
      --iovcnt;
    }
    if (iovcnt > 0) {
      iov[0].iov_base = static_cast<char*>(iov[0].iov_base) + left;
      iov[0].iov_len -= left;
    }
  }
  return true;
}

// ReadExact that distinguishes the three outcomes the frame reader needs:
// 1 = got every byte, 0 = clean EOF before the first byte, -1 = read error
// or EOF mid-buffer (a torn frame).
int ReadExactOrEof(int fd, char* out, size_t size) {
  size_t read_total = 0;
  while (read_total < size) {
    ssize_t n = ::read(fd, out + read_total, size - read_total);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return -1;
    }
    if (n == 0) {
      return read_total == 0 ? 0 : -1;
    }
    read_total += static_cast<size_t>(n);
  }
  return 1;
}

double MonotonicSeconds() {
  struct timespec now;
  ::clock_gettime(CLOCK_MONOTONIC, &now);
  return static_cast<double>(now.tv_sec) +
         static_cast<double>(now.tv_nsec) * 1e-9;
}

}  // namespace

bool WriteFabricFrame(int fd, FabricMsg type, const std::string& payload) {
  char header[kHeaderSize];
  std::memcpy(header, kMagic, sizeof(kMagic));
  PutU32(header + 4, kFabricProtocolVersion);
  PutU32(header + 8, static_cast<uint32_t>(type));
  PutU64(header + 12, payload.size());
  PutU64(header + 20, HashFnv64(payload));
  // One writev per frame: the header never hits the wire in its own TCP
  // segment, and a batched frame costs one syscall regardless of payload
  // size. payload.data() is only read, but iovec wants a non-const pointer.
  struct iovec iov[2];
  iov[0].iov_base = header;
  iov[0].iov_len = kHeaderSize;
  iov[1].iov_base = const_cast<char*>(payload.data());
  iov[1].iov_len = payload.size();
  return WritevAll(fd, iov, payload.empty() ? 1 : 2);
}

FabricRead ReadFabricFrame(int fd, FabricMsg* type, std::string* payload) {
  char header[kHeaderSize];
  int got = ReadExactOrEof(fd, header, kHeaderSize);
  if (got == 0) {
    return FabricRead::kEof;
  }
  if (got < 0) {
    // EOF mid-header is indistinguishable from corruption at the framing
    // layer; both retire the connection. A true read(2) error keeps errno.
    return errno != 0 && errno != ECONNRESET ? FabricRead::kError
                                             : FabricRead::kGarbled;
  }
  if (std::memcmp(header, kMagic, sizeof(kMagic)) != 0) {
    return FabricRead::kGarbled;
  }
  if (GetU32(header + 4) != kFabricProtocolVersion) {
    // Intact magic, wrong version: a real (old or future) peer rather than
    // line noise. Reported distinctly so the handshake can name the refusal;
    // the connection is equally unusable either way.
    return FabricRead::kVersionMismatch;
  }
  uint64_t size = GetU64(header + 12);
  if (size > kFabricMaxPayload) {
    return FabricRead::kGarbled;
  }
  uint64_t checksum = GetU64(header + 20);
  payload->assign(static_cast<size_t>(size), '\0');
  if (size > 0 && ReadExactOrEof(fd, payload->data(), payload->size()) != 1) {
    return FabricRead::kGarbled;
  }
  if (HashFnv64(*payload) != checksum) {
    return FabricRead::kGarbled;
  }
  *type = static_cast<FabricMsg>(GetU32(header + 8));
  return FabricRead::kOk;
}

void AppendBatchRecord(std::string* payload, const std::string& record) {
  payload->append(std::to_string(record.size()));
  payload->push_back('\n');
  payload->append(record);
}

bool DecodeBatchRecords(const std::string& payload,
                        std::vector<std::string>* records) {
  records->clear();
  size_t pos = 0;
  while (pos < payload.size()) {
    size_t newline = payload.find('\n', pos);
    if (newline == std::string::npos || newline == pos) {
      return false;
    }
    uint64_t length = 0;
    for (size_t i = pos; i < newline; ++i) {
      char c = payload[i];
      if (c < '0' || c > '9' || length > kFabricMaxPayload) {
        return false;
      }
      length = length * 10 + static_cast<uint64_t>(c - '0');
    }
    size_t body = newline + 1;
    if (length > payload.size() - body) {
      return false;
    }
    records->emplace_back(payload, body, static_cast<size_t>(length));
    pos = body + static_cast<size_t>(length);
  }
  return true;
}

int ListenTcp(const std::string& host, uint16_t port, uint16_t* bound_port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty()) {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return -1;
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0) {
    ::close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) != 0) {
      ::close(fd);
      return -1;
    }
    *bound_port = ntohs(addr.sin_port);
  }
  return fd;
}

bool SetTcpNoDelay(int fd) {
  int one = 1;
  return ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) == 0;
}

int AcceptTcp(int listen_fd) {
  int fd;
  do {
    fd = ::accept(listen_fd, nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd >= 0) {
    SetTcpNoDelay(fd);
  }
  return fd;
}

int ConnectTcp(const std::string& host, uint16_t port, double timeout_seconds) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string& target = host.empty() ? std::string("127.0.0.1") : host;
  if (::inet_pton(AF_INET, target.c_str(), &addr.sin_addr) != 1) {
    return -1;
  }
  double deadline = MonotonicSeconds() + timeout_seconds;
  for (;;) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return -1;
    }
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
    } while (rc < 0 && errno == EINTR);
    if (rc == 0) {
      SetTcpNoDelay(fd);
      return fd;
    }
    ::close(fd);
    if (MonotonicSeconds() >= deadline) {
      return -1;
    }
    // The coordinator may still be between bind and accept (or, in
    // --connect mode, not started yet): retry on a short tick.
    struct timespec delay = {0, 20 * 1000 * 1000};  // 20ms
    ::nanosleep(&delay, nullptr);
  }
}

bool ParseHostPort(const std::string& address, std::string* host,
                   uint16_t* port, std::string* error) {
  auto fail = [error](const std::string& why) {
    if (error != nullptr) {
      *error = why;
    }
    return false;
  };
  for (char c : address) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      return fail("whitespace in address \"" + address + "\"");
    }
  }
  size_t colon = address.rfind(':');
  if (colon == std::string::npos) {
    return fail("missing ':' in \"" + address + "\" (expected host:port)");
  }
  const std::string digits = address.substr(colon + 1);
  if (digits.empty()) {
    return fail("empty port in \"" + address + "\"");
  }
  // Digits only — no sign, no trim, no trailing garbage. ParseInt64 is
  // deliberately not reused here: its leading/trailing-whitespace trim and
  // '+'/'-' acceptance are exactly what a strict endpoint parser must refuse.
  uint32_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') {
      return fail("port \"" + digits + "\" is not a number");
    }
    value = value * 10 + static_cast<uint32_t>(c - '0');
    if (value > 65535) {
      return fail("port \"" + digits + "\" is out of range (1-65535)");
    }
  }
  if (value < 1) {
    return fail("port \"" + digits + "\" is out of range (1-65535)");
  }
  *host = address.substr(0, colon);
  *port = static_cast<uint16_t>(value);
  return true;
}

}  // namespace zebra
