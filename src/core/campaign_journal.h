// Crash-safe campaign journal: append-only log of folded unit results.
//
// A campaign over tens of thousands of unit-test executions runs for days; a
// parent crash (OOM kill, machine reboot, operator SIGKILL) must not lose the
// completed work. The work-stealing scheduler appends every unit result to
// this journal *in canonical fold order, at the moment it folds* — so at any
// instant the journal holds exactly the fold prefix, and a resumed campaign
// replays it through the same CampaignFolder before dispatching the remaining
// units. Replay and re-execution go through one code path (the canonical
// fold), which is why a resumed campaign's findings, Table-5 stage counts,
// and runs_to_first_detection are bitwise-identical to an uninterrupted one.
//
// File format (record framing from worker_ipc, payloads from report_io —
// the exact bytes the scheduler's response frames carry):
//
//   frame 0:  "zebra-journal-v1\n<campaign fingerprint>"
//   frame k:  "<fnv64 hex of body>\n<body>"   body = SerializeUnitResult(...)
//
// Appends are sequential, so only the tail can be torn by a crash. A short
// frame, a checksum mismatch, or an unparseable body ends recovery at the
// last good record and the file is truncated there — a torn tail is never
// trusted, and the next Append lands on a clean boundary. A fingerprint
// mismatch (different apps, corpus, or result-affecting options) throws:
// replaying another campaign's prefix would silently corrupt results.

#ifndef SRC_CORE_CAMPAIGN_JOURNAL_H_
#define SRC_CORE_CAMPAIGN_JOURNAL_H_

#include <string>
#include <utility>
#include <vector>

#include "src/core/campaign.h"

namespace zebra {

class UnitTestRegistry;

class CampaignJournal {
 public:
  // Durability policy for Append: how many records may ride in one
  // fdatasync. batch == 1 (the default, today's behavior) syncs every
  // record before Append returns; batch == N coalesces up to N records per
  // sync — group commit. Appends are still written (and framed, and
  // checksummed) immediately in either mode; only the fdatasync is
  // deferred, so a crash can lose at most the last batch-1 *synced-but-
  // unflushed* records, and the torn-tail truncation on resume recovers the
  // longest valid prefix exactly as before. Findings are unaffected either
  // way — the journal is a resume accelerator, not a result.
  struct SyncPolicy {
    int batch = 1;
  };

  // Opens (creating if needed) the journal at `path`. With resume=false the
  // file is truncated and started fresh; with resume=true the valid record
  // prefix is loaded into recovered() and the torn tail (if any) truncated.
  // Throws Error when the file cannot be opened or, on resume, when its
  // fingerprint does not match `fingerprint`.
  CampaignJournal(const std::string& path, const std::string& fingerprint,
                  bool resume, SyncPolicy sync = SyncPolicy{1});
  ~CampaignJournal();
  CampaignJournal(const CampaignJournal&) = delete;
  CampaignJournal& operator=(const CampaignJournal&) = delete;

  // Unit results recovered from a resumed journal, in fold order. The
  // scheduler replays records while they match the canonical cursor and
  // ignores the rest (a record out of canonical order means the file was
  // tampered with beyond what checksums can repair).
  const std::vector<std::pair<size_t, UnitWorkResult>>& recovered() const {
    return recovered_;
  }

  // Appends one folded unit result; syncs to the OS according to the
  // SyncPolicy (every record, or once per batch). Returns false on
  // write/sync failure, after which journaling is disabled for the rest of
  // the campaign (the campaign itself continues) and append_failures()
  // reflects the event.
  bool Append(size_t unit_index, const UnitWorkResult& unit);

  // Syncs any batched-but-unsynced records. Called by the destructor; the
  // schedulers also call it at campaign end so a clean exit never leaves an
  // unsynced tail regardless of policy.
  void Flush();

  // Write/fdatasync failures observed by Append/Flush. At most 1 in
  // practice (the first failure disables journaling), surfaced as
  // CampaignReport::journal_append_failures.
  int64_t append_failures() const { return append_failures_; }

  // Identity of a campaign for resume compatibility: the resolved app list,
  // every unit-test id in canonical order, and the options that can change
  // results (significance, trials, thresholds, pooling, ordering, parameter
  // filters, static-prior presence). Cache and watchdog settings are
  // deliberately excluded — they never change findings, so a resume may
  // tighten or relax them.
  static std::string Fingerprint(const CampaignOptions& options,
                                 const UnitTestRegistry& corpus);

 private:
  int fd_ = -1;
  SyncPolicy sync_;
  int pending_ = 0;  // records written since the last fdatasync
  int64_t append_failures_ = 0;
  std::vector<std::pair<size_t, UnitWorkResult>> recovered_;
};

}  // namespace zebra

#endif  // SRC_CORE_CAMPAIGN_JOURNAL_H_
