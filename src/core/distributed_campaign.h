// Distributed campaign coordinator: the fabric's folding, leasing, healing
// brain (docs/ROBUSTNESS.md, fabric section).
//
// Topology. One coordinator owns the canonical fold; A agents
// (campaign_agent.h), each running K worker threads, own the execution.
// Single-box operation forks the agents locally (spawn_agents, the
// full_campaign --engine=distributed default); real hosts run
// `full_campaign --connect` against a coordinator started with --listen.
// Either way the transport is the same checksummed, versioned TCP framing
// (fabric_wire.h), so every robustness path below is exercised identically
// in tests and production.
//
// Leases. A dispatched unit is a *lease*: (unit, attempt, snapshot,
// dispatch time, watchdog deadline) owned by one agent. An agent holds at
// most `pipeline_depth x threads` leases — the prefetch window that keeps
// its workers from idling between frames. A lease ends exactly one of
// these ways:
//   * a kResultBatch record with the matching (unit, attempt): the result
//     is buffered for canonical folding (speculative-snapshot staleness
//     rules unchanged from the single-box schedulers).
//   * a kSnapshotNack record with the matching (unit, attempt): the agent
//     refused to run it (epoch mismatch — it could not prove its
//     globally-unsafe set current). The unit re-enters the queue through
//     the same requeue/backoff policy and the agent is marked for a full
//     snapshot resend.
//   * Its agent is retired — EOF, garbled frame, write failure, heartbeat
//     silence past heartbeat_timeout_seconds, or any lease past its
//     watchdog deadline (a hung unit on a live, heartbeating host). Every
//     lease the agent held expires (++expired_leases) and re-enters the
//     queue through the PR 4 attempt/backoff/quarantine policy.
//   * A result record that matches no live lease — the duplicate a
//     reassigned or re-sent unit can produce — is dropped idempotently
//     (++duplicate_results). Folding is driven only by live leases, so a
//     unit can never fold twice no matter how the network replays.
// Agent retirement is all-or-nothing (a host is healthy or it is not);
// per-lease surgical recovery on a half-broken connection is exactly the
// "partially trusted peer" state the wire protocol refuses to have.
//
// Determinism. The fold is the same CampaignFolder in the same canonical
// order with the same staleness rule as every other backend, and journal/
// resume appends at fold time exactly as the single-box schedulers do — so
// findings, Table-5 stats, and runs_to_first_detection are bitwise-identical
// to `Campaign(...).Run()` at every fleet shape, under every injected
// network fault, and across a coordinator restart (CI-gated).

#ifndef SRC_CORE_DISTRIBUTED_CAMPAIGN_H_
#define SRC_CORE_DISTRIBUTED_CAMPAIGN_H_

#include <cstdint>
#include <string>

#include "src/core/campaign.h"
#include "src/core/fault_injection.h"

namespace zebra {

struct DistributedCampaignOptions {
  // Fleet shape: agents x agent_threads concurrent units.
  int agents = 1;
  int agent_threads = 1;

  // Lease pipelining: the coordinator keeps up to depth x agent_threads
  // leases in flight per agent, so a worker thread finishing a unit always
  // finds the next one already queued locally instead of stalling a network
  // round trip. 1 = the PR 9 lockstep behavior. Watchdog deadlines scale by
  // the same factor (a dispatched unit may legitimately wait behind depth-1
  // queued units per thread before it starts).
  int pipeline_depth = 2;

  // Fork local agent processes (single-box mode). When false the coordinator
  // only listens and waits for `agents` remote `full_campaign --connect`
  // processes to arrive within handshake_timeout_seconds.
  bool spawn_agents = true;

  // Endpoint to listen on, "host:port" ("" = loopback on an ephemeral port,
  // right for spawn mode; ":9009" = INADDR_ANY for real hosts).
  std::string listen_address;

  // Handshake patience: how long to wait for the full fleet to connect and
  // agree on protocol/schema before giving up.
  double handshake_timeout_seconds = 30.0;

  // Liveness cadence: agents heartbeat every interval (told to them in the
  // kWelcome); an agent silent past the timeout is retired and its leases
  // requeued. The timeout must comfortably exceed the interval — results do
  // not substitute for heartbeats, so a slow unit never trips this.
  double heartbeat_interval_seconds = 0.2;
  double heartbeat_timeout_seconds = 5.0;

  // Deterministic fault planes, forwarded to every spawned agent (connect-
  // mode agents carry their own via CLI). The FaultPlan's worker coordinate
  // is the agent index.
  FaultPlan faults;
  NetFaultPlan net_faults;

  // Directory for per-agent persistent run caches ("" = none), forwarded to
  // spawned agents (connect-mode agents pass --agent-cache-dir themselves).
  // Requires CampaignOptions::enable_run_cache; repeat campaigns over the
  // same schema/corpus then start warm (campaign_agent.h, "Warm starts").
  std::string agent_cache_dir;

  // Crash-safe journal + resume, same contract as the single-box dynamic
  // schedulers: append at fold time, replay the valid prefix on resume.
  std::string journal_path;
  bool resume = false;
  int journal_sync_batch = 1;

  // Test hook simulating a coordinator crash: stop dispatching and return
  // after this many *live* folds (journal replay does not count).
  int abort_after_folds = 0;
};

// Runs the campaign over the fabric. Throws Error when the fleet cannot be
// assembled (listen/handshake failure) or when every agent has died with
// undone work remaining. Findings, stage counts, and runs_to_first_detection
// are bitwise-identical to Campaign(...).Run() for every fleet shape.
CampaignReport RunDistributedCampaign(const ConfSchema& schema,
                                      const UnitTestRegistry& corpus,
                                      CampaignOptions options,
                                      const DistributedCampaignOptions& fabric);

}  // namespace zebra

#endif  // SRC_CORE_DISTRIBUTED_CAMPAIGN_H_
