#include "src/core/fleet_model.h"

#include <algorithm>
#include <queue>

#include "src/common/error.h"

namespace zebra {

FleetEstimate EstimateFleet(const std::vector<double>& run_durations_seconds,
                            int machines, int containers_per_machine) {
  if (machines < 1 || containers_per_machine < 1) {
    throw InternalError("fleet model requires at least one machine and container");
  }

  FleetEstimate estimate;
  estimate.machines = machines;
  estimate.containers_per_machine = containers_per_machine;
  estimate.runs = static_cast<int64_t>(run_durations_seconds.size());

  const int64_t slots = static_cast<int64_t>(machines) * containers_per_machine;

  // LPT: place each job (longest first) on the least-loaded slot.
  std::vector<double> sorted = run_durations_seconds;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  std::priority_queue<double, std::vector<double>, std::greater<double>> loads;
  for (int64_t i = 0; i < slots; ++i) {
    loads.push(0.0);
  }
  for (double duration : sorted) {
    estimate.total_cpu_seconds += duration;
    double least = loads.top();
    loads.pop();
    loads.push(least + duration);
  }
  double makespan = 0.0;
  while (!loads.empty()) {
    makespan = std::max(makespan, loads.top());
    loads.pop();
  }
  estimate.makespan_seconds = makespan;
  estimate.machine_seconds = makespan * machines;
  estimate.utilization =
      makespan > 0.0
          ? estimate.total_cpu_seconds / (makespan * static_cast<double>(slots))
          : 0.0;
  return estimate;
}

}  // namespace zebra
