// TestGenerator (paper §4): decides which unit tests to run with which
// heterogeneous configurations.
//
// Implements, in order:
//  * independent-parameter testing with developer dependency rules,
//  * candidate-value selection from the schema,
//  * representative value assignments (per-type-group uniform and
//    round-robin, both polarities),
//  * pre-running unit tests to record which node type reads which parameter
//    (instances targeting nodes that never read the parameter are never
//    generated),
//  * exclusion of parameters read through unmappable ("uncertain")
//    configuration objects.
//
// It also computes the stage-by-stage instance counts that reproduce the
// paper's Table 5.

#ifndef SRC_CORE_TEST_GENERATOR_H_
#define SRC_CORE_TEST_GENERATOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/analysis/static_prior.h"
#include "src/conf/conf_schema.h"
#include "src/conf/test_plan.h"
#include "src/testkit/test_execution.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

// One (unit test, single-parameter heterogeneous configuration) pair.
struct GeneratedInstance {
  const UnitTestDef* test = nullptr;
  ParamPlan plan;
};

// The pre-run of one unit test.
struct PreRunRecord {
  const UnitTestDef* test = nullptr;
  TestResult result;
};

// One pairwise coupled plan: two parameters the static prior placed in the
// same coupling set (they reach the same sink statement or wire path), made
// heterogeneous simultaneously. Exactly two ParamPlans — each the canonical
// representative instance the single-parameter phase runs first.
struct CoupledInstance {
  const UnitTestDef* test = nullptr;
  TestPlan plan;
  std::vector<std::string> params;  // the two member parameters, plan order
};

struct GeneratorOptions {
  // §4's second assignment strategy: round-robin values within a node-type
  // group. Disabling it (ablation) loses every unsafety that only manifests
  // *between nodes of the same type* — e.g. TaskManager-to-TaskManager SSL.
  bool enable_round_robin = true;

  // Pre-run read-set instance pruning (§4): only enumerate (parameter,
  // entity) targets the pre-run saw that entity read. Disabling it models a
  // user without pre-run knowledge — every started node group is targeted
  // for every parameter — and is the regime where the observational-
  // equivalence cache layer must recover the pruning dynamically
  // (bench_equiv_dedup).
  bool prune_unread_instances = true;

  // Optional zebralint prior (§8: static analysis shrinks the dynamic search
  // space). When set, schema parameters with zero static read sites are
  // dropped before enumeration (the "after_static" Table-5 stage) and every
  // generated ParamPlan carries the parameter's static priority so the
  // campaign can test wire-tainted parameters first. Not owned.
  const analysis::StaticPriorReport* static_prior = nullptr;

  // Coupling plans (flow-graph layer): parameters the static prior placed in
  // one coupling set are additionally tested as pairwise combinations after
  // the single-parameter phase. Requires static_prior; the campaign ablates
  // it via --no-coupling-plans. Coupled plans can only ever ADD findings —
  // the single-parameter phase is untouched (superset gate, CI-enforced).
  bool enable_coupling_plans = true;

  // Deterministic cap on coupled plans per unit test (the canonical prefix
  // of the coupling-set pair order).
  int max_coupling_plans_per_test = 8;
};

class TestGenerator {
 public:
  TestGenerator(const ConfSchema& schema, const UnitTestRegistry& corpus,
                GeneratorOptions options = {});

  const ConfSchema& schema() const { return schema_; }
  const UnitTestRegistry& corpus() const { return corpus_; }

  // Runs every unit test of `app` once with an empty plan, recording node
  // types started and parameter reads per entity. Increments *executions per
  // run.
  std::vector<PreRunRecord> PreRunApp(const std::string& app, int64_t* executions) const;

  // Pre-runs a single unit test (the per-work-unit variant used by parallel
  // scheduler workers). Pre-runs are deterministic, so a worker re-running
  // one reproduces exactly the record a whole-app pre-run would have built.
  PreRunRecord PreRunTest(const UnitTestDef& test, int64_t* executions) const;

  // Table 5 row 1: what a user with our expertise but no pre-run information
  // would enumerate — every test x every app parameter x every value pair x
  // every assignment over all of the app's node types.
  int64_t OriginalInstanceCount(const std::string& app) const;

  // The same enumeration after static pruning: parameters zebralint proves
  // are never read cannot influence behavior and are dropped. Equals
  // OriginalInstanceCount when no static prior is configured.
  int64_t StaticPrunedInstanceCount(const std::string& app) const;

  // Instances for one pre-run record. `*count_before_uncertainty` receives
  // the Table 5 row 2 contribution (instances before dropping parameters read
  // through uncertain configuration objects); the returned vector is the
  // row 3 set.
  std::vector<GeneratedInstance> Generate(const PreRunRecord& record,
                                          int64_t* count_before_uncertainty) const;

  // Pairwise coupled plans for one pre-run record, built from the instances
  // Generate produced for it: every unordered pair within a static coupling
  // set whose members both survived enumeration, capped at
  // max_coupling_plans_per_test. Empty when the prior is absent or coupling
  // plans are disabled. Deterministic: pair order follows the report's
  // coupling-set order.
  std::vector<CoupledInstance> GenerateCoupled(
      const PreRunRecord& record,
      const std::vector<GeneratedInstance>& instances) const;

  // All unordered pairs of a parameter's candidate values.
  static std::vector<std::pair<std::string, std::string>> ValuePairs(
      const ParamSpec& spec);

 private:
  // Assigners for one (group, pair): uniform both polarities, plus
  // round-robin both polarities when enabled and the group has at least two
  // nodes.
  std::vector<ValueAssigner> AssignersFor(const std::string& group, int group_count,
                                          const std::string& v1,
                                          const std::string& v2) const;

  std::vector<std::pair<std::string, std::string>> OverridesFor(
      const std::string& param, const std::string& v1, const std::string& v2) const;

  const ConfSchema& schema_;
  const UnitTestRegistry& corpus_;
  GeneratorOptions options_;
};

}  // namespace zebra

#endif  // SRC_CORE_TEST_GENERATOR_H_
