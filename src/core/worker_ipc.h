// Hardened pipe plumbing shared by the parallel campaign runners
// (core/sharded_campaign.cc and core/parallel_scheduler.cc).
//
// Every primitive is EINTR-safe and reports failure through its return value
// instead of throwing: both sides of the pipe use these — a forked worker
// cannot throw across _Exit, and the parent must keep going long enough to
// reap every child before surfacing an error (no zombie leaks).

#ifndef SRC_CORE_WORKER_IPC_H_
#define SRC_CORE_WORKER_IPC_H_

#include <signal.h>
#include <sys/types.h>

#include <string>
#include <vector>

namespace zebra {

// Writes the whole buffer, retrying on EINTR and short writes. Returns false
// on any other error (e.g. EPIPE after the peer died — on a half-closed
// socket the first write may succeed into the kernel buffer and only the
// *next* one surfaces EPIPE; callers must treat any false as "peer gone",
// not "retry"). size == 0 is a guaranteed no-op success: `data` may be null
// and the fd is never touched.
bool WriteAll(int fd, const void* data, size_t size);

// Reads exactly `size` bytes, retrying on EINTR. Returns false on error or
// premature EOF. size == 0 succeeds without touching `data` or the fd.
bool ReadExact(int fd, void* data, size_t size);

// Drains the fd to EOF, retrying on EINTR. Returns false on read error;
// *out holds whatever arrived either way.
bool ReadToEof(int fd, std::string* out);

// Length-prefixed message framing (16-byte zero-padded decimal header).
// A frame survives interleaving with nothing else on the pipe; ReadFrame
// returns false on EOF, short read, or a malformed header — all of which the
// schedulers treat as "this worker died".
bool WriteFrame(int fd, const std::string& payload);
bool ReadFrame(int fd, std::string* payload);

// waitpid (EINTR-safe) on every pid, in order. Returns true iff every child
// exited normally with status 0. Call this on *all* children before throwing
// for any of them — reaping must not be short-circuited by one failure.
bool ReapAll(const std::vector<pid_t>& pids);

// Scoped SIGPIPE suppression for the parent side of every runner: a write on
// a pipe whose worker died must surface as a WriteAll/WriteFrame return-value
// failure (EPIPE) the dispatch loop can retire-and-requeue on — never as
// parent process death. Restores the previous disposition on scope exit.
class ScopedIgnoreSigPipe {
 public:
  ScopedIgnoreSigPipe() {
    struct sigaction ignore {};
    ignore.sa_handler = SIG_IGN;
    sigemptyset(&ignore.sa_mask);
    ::sigaction(SIGPIPE, &ignore, &previous_);
  }
  ~ScopedIgnoreSigPipe() { ::sigaction(SIGPIPE, &previous_, nullptr); }
  ScopedIgnoreSigPipe(const ScopedIgnoreSigPipe&) = delete;
  ScopedIgnoreSigPipe& operator=(const ScopedIgnoreSigPipe&) = delete;

 private:
  struct sigaction previous_ {};
};

}  // namespace zebra

#endif  // SRC_CORE_WORKER_IPC_H_
