#include "src/core/campaign_executor.h"

#include <utility>

#include "src/common/error.h"
#include "src/core/distributed_campaign.h"
#include "src/core/parallel_scheduler.h"
#include "src/core/sharded_campaign.h"
#include "src/core/thread_pool_scheduler.h"

namespace zebra {

namespace {

// Shared option validation: reject what the backend would otherwise silently
// drop. `journal_ok`/`faults_ok` mirror the capability flags.
void RequireHonorable(const char* name, const ExecutorOptions& exec,
                      bool journal_ok, bool faults_ok) {
  if (!journal_ok &&
      (!exec.journal_path.empty() || exec.resume || exec.abort_after_folds > 0)) {
    throw Error(std::string(name) +
                " executor does not support journal/resume options");
  }
  if (!faults_ok && !exec.faults.empty()) {
    throw Error(std::string(name) + " executor does not support fault injection");
  }
  // Fabric-only controls: every single-box backend refuses them (the
  // distributed executor never calls this helper).
  if (exec.agent_threads != 1 || !exec.net_faults.empty() ||
      !exec.listen_address.empty() || exec.pipeline_depth != 0 ||
      !exec.agent_cache_dir.empty()) {
    throw Error(std::string(name) +
                " executor does not support distributed-fabric options");
  }
}

class SequentialExecutor : public CampaignExecutor {
 public:
  const char* name() const override { return "sequential"; }
  bool supports_process_faults() const override { return false; }
  bool supports_journal() const override { return false; }
  bool supports_fault_injection() const override { return false; }

  CampaignReport Run(const ConfSchema& schema, const UnitTestRegistry& corpus,
                     CampaignOptions options,
                     const ExecutorOptions& exec) override {
    RequireHonorable(name(), exec, /*journal_ok=*/false, /*faults_ok=*/false);
    if (exec.workers != 1) {
      throw Error("sequential executor requires workers == 1");
    }
    return Campaign(schema, corpus, std::move(options)).Run();
  }
};

class ShardedExecutor : public CampaignExecutor {
 public:
  const char* name() const override { return "sharded"; }
  bool supports_process_faults() const override { return true; }
  bool supports_journal() const override { return false; }
  bool supports_fault_injection() const override { return true; }

  CampaignReport Run(const ConfSchema& schema, const UnitTestRegistry& corpus,
                     CampaignOptions options,
                     const ExecutorOptions& exec) override {
    RequireHonorable(name(), exec, /*journal_ok=*/false, /*faults_ok=*/true);
    ShardedCampaignOptions sharded;
    sharded.workers = exec.workers;
    sharded.faults = exec.faults;
    return RunShardedCampaign(schema, corpus, std::move(options), sharded);
  }
};

class StealingExecutor : public CampaignExecutor {
 public:
  const char* name() const override { return "stealing"; }
  bool supports_process_faults() const override { return true; }
  bool supports_journal() const override { return true; }
  bool supports_fault_injection() const override { return true; }

  CampaignReport Run(const ConfSchema& schema, const UnitTestRegistry& corpus,
                     CampaignOptions options,
                     const ExecutorOptions& exec) override {
    RequireHonorable(name(), exec, /*journal_ok=*/true, /*faults_ok=*/true);
    ParallelCampaignOptions parallel;
    parallel.workers = exec.workers;
    parallel.faults = exec.faults;
    parallel.journal_path = exec.journal_path;
    parallel.resume = exec.resume;
    parallel.journal_sync_batch = exec.journal_sync_batch;
    parallel.abort_after_folds = exec.abort_after_folds;
    return RunWorkStealingCampaign(schema, corpus, std::move(options), parallel);
  }
};

class ThreadPoolExecutor : public CampaignExecutor {
 public:
  const char* name() const override { return "threadpool"; }
  bool supports_process_faults() const override { return false; }
  bool supports_journal() const override { return true; }
  bool supports_fault_injection() const override { return true; }

  CampaignReport Run(const ConfSchema& schema, const UnitTestRegistry& corpus,
                     CampaignOptions options,
                     const ExecutorOptions& exec) override {
    RequireHonorable(name(), exec, /*journal_ok=*/true, /*faults_ok=*/true);
    ThreadPoolCampaignOptions pool;
    pool.workers = exec.workers;
    pool.faults = exec.faults;
    pool.journal_path = exec.journal_path;
    pool.resume = exec.resume;
    pool.journal_sync_batch = exec.journal_sync_batch;
    pool.abort_after_folds = exec.abort_after_folds;
    pool.share_run_cache = exec.share_run_cache;
    return RunThreadPoolCampaign(schema, corpus, std::move(options), pool);
  }
};

class DistributedExecutor : public CampaignExecutor {
 public:
  const char* name() const override { return "distributed"; }
  bool supports_process_faults() const override { return true; }
  bool supports_journal() const override { return true; }
  bool supports_fault_injection() const override { return true; }

  CampaignReport Run(const ConfSchema& schema, const UnitTestRegistry& corpus,
                     CampaignOptions options,
                     const ExecutorOptions& exec) override {
    DistributedCampaignOptions fabric;
    fabric.agents = exec.workers;
    fabric.agent_threads = exec.agent_threads;
    fabric.spawn_agents = exec.spawn_agents;
    fabric.listen_address = exec.listen_address;
    if (exec.pipeline_depth > 0) {
      fabric.pipeline_depth = exec.pipeline_depth;
    }
    fabric.agent_cache_dir = exec.agent_cache_dir;
    fabric.faults = exec.faults;
    fabric.net_faults = exec.net_faults;
    fabric.journal_path = exec.journal_path;
    fabric.resume = exec.resume;
    fabric.journal_sync_batch = exec.journal_sync_batch;
    fabric.abort_after_folds = exec.abort_after_folds;
    return RunDistributedCampaign(schema, corpus, std::move(options), fabric);
  }
};

}  // namespace

std::unique_ptr<CampaignExecutor> MakeExecutor(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSequential:
      return std::make_unique<SequentialExecutor>();
    case ExecutorKind::kSharded:
      return std::make_unique<ShardedExecutor>();
    case ExecutorKind::kStealing:
      return std::make_unique<StealingExecutor>();
    case ExecutorKind::kThreadPool:
      return std::make_unique<ThreadPoolExecutor>();
    case ExecutorKind::kDistributed:
      return std::make_unique<DistributedExecutor>();
  }
  throw Error("unknown executor kind");
}

std::optional<ExecutorKind> ParseExecutorKind(const std::string& name) {
  if (name == "sequential") {
    return ExecutorKind::kSequential;
  }
  if (name == "sharded") {
    return ExecutorKind::kSharded;
  }
  if (name == "stealing") {
    return ExecutorKind::kStealing;
  }
  if (name == "threadpool") {
    return ExecutorKind::kThreadPool;
  }
  if (name == "distributed") {
    return ExecutorKind::kDistributed;
  }
  return std::nullopt;
}

const char* ExecutorKindName(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSequential:
      return "sequential";
    case ExecutorKind::kSharded:
      return "sharded";
    case ExecutorKind::kStealing:
      return "stealing";
    case ExecutorKind::kThreadPool:
      return "threadpool";
    case ExecutorKind::kDistributed:
      return "distributed";
  }
  return "unknown";
}

}  // namespace zebra
