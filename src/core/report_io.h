// Report serialization: persist campaign results (the findings knowledge
// base and stage counts) as properties text, reload them later, and merge
// reports produced by parallel workers.

#ifndef SRC_CORE_REPORT_IO_H_
#define SRC_CORE_REPORT_IO_H_

#include <string>
#include <vector>

#include "src/core/campaign.h"

namespace zebra {

// Serializes the report (stage counts, findings, hypothesis stats, run
// totals) to properties text. Run durations are summarized as their count
// and total seconds; newlines inside failure messages are escaped.
std::string SerializeReport(const CampaignReport& report);

// Parses text produced by SerializeReport. Throws Error on malformed input.
CampaignReport DeserializeReport(const std::string& text);

// Merges reports from disjoint application shards: per-app counts and
// findings are unioned (same-param findings merge witnesses and keep the
// best p-value), counters are summed.
CampaignReport MergeReports(const std::vector<CampaignReport>& reports);

}  // namespace zebra

#endif  // SRC_CORE_REPORT_IO_H_
