// Report serialization: persist campaign results (the findings knowledge
// base and stage counts) as properties text, reload them later, and merge
// reports produced by parallel workers.

#ifndef SRC_CORE_REPORT_IO_H_
#define SRC_CORE_REPORT_IO_H_

#include <string>
#include <vector>

#include "src/core/campaign.h"

namespace zebra {

// Serializes the report (stage counts, findings, sharing stats, hypothesis
// stats, run totals, cache counters, first-detection stats) to properties
// text. Run durations are summarized as their count and total seconds;
// newlines inside failure messages are escaped.
std::string SerializeReport(const CampaignReport& report);

// Parses text produced by SerializeReport. Throws Error on malformed input.
// Fields absent from older serializations default to zero/empty.
CampaignReport DeserializeReport(const std::string& text);

// Merges reports from disjoint application shards: per-app counts, sharing
// stats, and findings are unioned (same-param findings merge witnesses and
// keep the best p-value), counters are summed.
//
// runs_to_first_detection merges deterministically regardless of the order
// the shard reports arrive in: shards are ranked by their smallest app name
// (the canonical shard order), and the merged value counts every execution
// of canonically-earlier shards plus the detecting shard's own count — i.e.
// "as if the shards had run back-to-back in canonical order". The
// work-stealing scheduler (parallel_scheduler.h) does not use this
// approximation; it folds per-unit results and reproduces the sequential
// value exactly.
CampaignReport MergeReports(const std::vector<CampaignReport>& reports);

// Newline/backslash escaping for multi-line values (failure messages)
// embedded in single-line properties values. Shared with the scheduler's
// worker wire format.
std::string EscapeReportText(const std::string& text);
std::string UnescapeReportText(const std::string& text);

// One work unit's full contribution as properties text — the payload of the
// work-stealing scheduler's response frames and of campaign-journal records
// (both must fold to bitwise-identical reports, so they share one format).
// Doubles round-trip at full precision ("%.17g"); ParseUnitResult returns
// false on malformed input, which the scheduler treats as a dead worker and
// the journal as a torn tail.
std::string SerializeUnitResult(size_t unit_index, const UnitWorkResult& unit);
bool ParseUnitResult(const std::string& text, size_t* unit_index,
                     UnitWorkResult* unit);

}  // namespace zebra

#endif  // SRC_CORE_REPORT_IO_H_
