// Campaign: the end-to-end ZebraConf pipeline (Figure 1).
//
//   TestGenerator  ->  pooled testing  ->  TestRunner  ->  report
//
// Pooled testing (§4): all surviving parameters of a unit test are tested
// together; a failing pool is bisected recursively until the failing
// parameters are isolated, which then go through TestRunner verification.
// Parameters that keep failing across tests are marked unsafe early and
// excluded from further pools (the paper's frequent-failure rule).
//
// The campaign is structured as a fold over independent *work units* — one
// (app, unit test) pair each. Campaign::RunUnit executes a single unit given
// the set of globally-unsafe parameters a sequential campaign would know at
// that point; CampaignFolder merges unit results in the canonical order
// (options.apps order, then corpus registration order) and owns all
// cross-unit state (findings, the frequent-failure rule, Table-5 counters,
// runs_to_first_detection). Campaign::Run is the sequential fold; the
// parallel scheduler (core/parallel_scheduler.h) is the same fold fed by a
// work-stealing worker pool — which is why its results are bitwise-identical
// to the sequential run at every worker count.

#ifndef SRC_CORE_CAMPAIGN_H_
#define SRC_CORE_CAMPAIGN_H_

#include <csignal>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/core/test_generator.h"
#include "src/core/test_runner.h"
#include "src/testkit/run_cache.h"

namespace zebra {

struct CampaignOptions {
  // Applications to test; empty = every application in the corpus.
  std::vector<std::string> apps;

  double significance = 1e-4;

  // How many times each heterogeneous instance is tried before being
  // dismissed as passing (§5 false-negative mitigation; 1 = the paper's
  // time-saving mode).
  int first_trials = 1;

  // A parameter confirmed unsafe in this many distinct unit tests is marked
  // unsafe globally and removed from future pools.
  int frequent_failure_threshold = 3;

  // Pooled testing on/off (off = verify every instance individually; used by
  // the ablation bench).
  bool enable_pooling = true;

  // §4's round-robin-within-group assignment strategy on/off (ablation).
  bool enable_round_robin = true;

  // Pre-run read-set instance pruning on/off (see GeneratorOptions). Off
  // models a user without pre-run knowledge; with the equivalence cache the
  // unread-target instances are recovered at the cache layer instead
  // (bench_equiv_dedup's regime).
  bool prune_unread_instances = true;

  // Memoized execution cache (testkit/run_cache.h): serve bitwise-identical
  // re-runs (bisection re-probes, repeated homogeneous controls, trials of
  // deterministic tests, pre-run baselines) from cache instead of executing.
  // Findings and every stage counter are unchanged — only wall-clock and the
  // run-duration profile shrink. Hit/miss totals surface in CampaignReport.
  bool enable_run_cache = false;

  // Observational-equivalence layer on top of the run cache (plan_equiv.h):
  // each unit's dynamic phase installs the pre-run ReadSurface, so plans
  // that differ only in override entries no targeted conf ever reads — or
  // whose predicted read trace matches a stored execution — are served
  // without executing. Implies enable_run_cache. Findings, Table-5 stage
  // counts, and runs_to_first_detection are provably unchanged (CI-gated);
  // only executed runs and wall-clock shrink.
  bool enable_equiv_cache = false;

  // Run-cache growth budget, enforced by LRU eviction (0 = unbounded).
  // Eviction can only re-execute, never change a served result.
  int64_t cache_max_entries = 0;
  int64_t cache_max_bytes = 0;

  // When non-empty, only these parameters are tested (focused re-testing,
  // e.g. re-verifying a parameter after an application upgrade). Parameters
  // listed in `exclude_params` are skipped (e.g. already-triaged false
  // positives).
  std::set<std::string> only_params;
  std::set<std::string> exclude_params;

  // zebralint static prior: prunes never-read parameters before enumeration
  // and tests wire-tainted parameters first (see docs/ZEBRALINT.md). Not
  // owned; may be null (prior-less campaign, the paper's baseline).
  const analysis::StaticPriorReport* static_prior = nullptr;

  // Coupling add-on phase (flow-graph layer): after a unit's enumerative
  // phase, pairwise plans over the prior's coupling sets probe failures that
  // only manifest when two coupled parameters are heterogeneous at once.
  // Requires static_prior. The add-on runs strictly after — and never alters
  // — the enumerative phase, so it can only ADD findings (superset gate,
  // CI-enforced), and runs_to_first_detection is untouched by it. Ablatable
  // via full_campaign --no-coupling-plans.
  bool enable_coupling_plans = true;
  int max_coupling_plans_per_test = 8;

  // Impacted-only re-testing (`zebralint --diff` -> `full_campaign
  // --impacted-only`): when non-empty, a unit whose pre-run read set does not
  // intersect this set skips its dynamic phase entirely (the code change
  // cannot have altered its behavior through configuration). Pre-runs still
  // execute — they are the read-trace probes. Findings are identical to a
  // full campaign restricted to the impacted tests (CI-gated).
  std::set<std::string> impacted_params;

  // When non-empty, only these unit-test ids run a dynamic phase (pre-runs
  // still execute). The impacted-only identity gate uses this as its
  // reference restriction.
  std::set<std::string> only_tests;

  // Nonzero: deterministically shuffle the per-test parameter order with
  // this seed. Used by benchmarks as the honest "unprioritized" baseline
  // (plain map order is alphabetical, which happens to front-load several
  // unsafe dfs.* parameters).
  uint64_t shuffle_order_seed = 0;

  // --- Fault tolerance (docs/ROBUSTNESS.md) ---

  // Watchdog deadline for one in-flight work unit (or shard):
  //   deadline = watchdog_floor_seconds
  //            + watchdog_multiplier * p95(observed completion times)
  // A worker past its deadline is SIGKILLed, reaped, and its unit re-queued
  // to the survivors. The floor alone applies until the parent has observed
  // completions, so keep it comfortably above the slowest legitimate unit;
  // a floor <= 0 disables the watchdog entirely.
  double watchdog_floor_seconds = 60.0;
  double watchdog_multiplier = 8.0;

  // Dispatch attempts per unit before the scheduler stops re-queuing it and
  // records it in CampaignReport.poisoned_units instead (a unit that kills
  // every worker it touches must not loop forever).
  int unit_attempt_limit = 3;

  // Re-queue backoff after a worker death/hang: base * 2^(attempt-1), capped.
  double requeue_backoff_seconds = 0.05;
  double requeue_backoff_cap_seconds = 2.0;

  // When non-null, the campaign stops cleanly at the next unit boundary once
  // *cancel_flag becomes nonzero (set it from a SIGINT/SIGTERM handler): the
  // partial report is returned, caches can be saved, and a journaled
  // campaign resumes from where it stopped. Not owned.
  const volatile std::sig_atomic_t* cancel_flag = nullptr;
};

struct AppStageCounts {
  int64_t original = 0;           // Table 5 row 1
  int64_t after_static = 0;       // after zebralint pruning (== original
                                  // when no static prior is configured)
  int64_t after_prerun = 0;       // Table 5 row 2
  int64_t after_uncertainty = 0;  // Table 5 row 3
  int64_t executed_runs = 0;      // Table 5 row 4 (actual unit-test executions)
  int tests_total = 0;
  int tests_with_nodes = 0;
};

struct ParamFinding {
  std::string param;
  std::string owning_app;
  std::set<std::string> witness_tests;
  std::string example_failure;
  double best_p_value = 1.0;
};

struct SharingStats {
  int tests_with_conf_usage = 0;
  int tests_with_sharing = 0;
};

struct CampaignReport {
  std::map<std::string, AppStageCounts> per_app;
  std::map<std::string, ParamFinding> findings;  // reported unsafe parameters
  std::map<std::string, SharingStats> sharing;   // per app (§6.1 prevalence)
  int first_trial_candidates = 0;                // §7.2 hypothesis-testing stats
  int filtered_by_hypothesis = 0;
  int64_t total_unit_test_runs = 0;
  double wall_seconds = 0.0;

  // Run-cache accounting (0/0 when the cache is disabled). Hits are logical
  // unit-test runs served without execution; executed_runs counters include
  // them, the run-duration profile does not.
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;

  // Observational-equivalence accounting (all 0 when the layer is off).
  // equiv_hits are serves through the canonical-plan or read-trace index;
  // canonicalized_plans counts plans rewritten to a smaller canonical form;
  // mispredictions counts pre-run promises that did not survive validation
  // (each fell back to a real execution); cache_evictions counts LRU
  // evictions under the configured budget. Like cache_hits these depend on
  // scheduling (per-worker caches), so they are accounting, not part of the
  // bitwise determinism contract.
  int64_t equiv_hits = 0;
  int64_t canonicalized_plans = 0;
  int64_t mispredictions = 0;
  int64_t cache_evictions = 0;

  // Coupling add-on accounting (0/0 when the phase is off or no prior is
  // configured). coupling_runs counts pairwise plans plus their blame-
  // isolation and homogeneous-control executions; they are included in the
  // executed_runs totals but never in runs_to_first_detection (the add-on
  // must not perturb the enumerative prioritization metric).
  int64_t coupling_runs = 0;
  int64_t coupling_confirmations = 0;

  // Units whose dynamic phase was skipped by impacted-only / only-tests
  // restriction (their pre-runs still executed).
  int64_t units_skipped = 0;

  // Fault-tolerance accounting (all 0 on an undisturbed run; see
  // docs/ROBUSTNESS.md). Like the cache counters these depend on scheduling
  // and fault timing, so they are accounting, not part of the bitwise
  // determinism contract.
  int64_t hung_workers = 0;        // workers SIGKILLed past a watchdog deadline
  int64_t requeued_units = 0;      // units re-dispatched after a worker died
  int64_t resumed_units = 0;       // units replayed from a journal on --resume
  int64_t cache_load_failures = 0; // corrupt cache files degraded to empty
  int64_t journal_append_failures = 0;  // journal write/fdatasync failures
                                        // (journaling disables itself after
                                        // the first, the campaign continues)

  // Distributed-fabric accounting (all 0 outside --engine=distributed; see
  // docs/ROBUSTNESS.md fabric section). Scheduling/fault-timing dependent,
  // so accounting only — never part of the bitwise determinism contract.
  int64_t agent_disconnects = 0;   // agent connections retired (EOF, garbled
                                   // frame, write failure, heartbeat timeout)
  int64_t expired_leases = 0;      // unit leases revoked and requeued after
                                   // their agent crashed, hung, or vanished
  int64_t duplicate_results = 0;   // completion frames dropped idempotently
                                   // (stale lease: unit already reassigned
                                   // or already folded)

  // Units that exceeded CampaignOptions.unit_attempt_limit and were skipped
  // (their canonical slot folds an empty result). Non-empty means findings
  // are incomplete — a side note for triage, never silently dropped.
  std::vector<std::string> poisoned_units;

  // Unit-test executions (pre-runs included) up to and including the run
  // that confirmed the first unsafe parameter; 0 when nothing was detected.
  // The static-prior prioritization exists to shrink this number. Derived
  // from the canonical unit order, so it is identical however the campaign
  // was actually scheduled.
  int64_t runs_to_first_detection = 0;
  std::string first_detection_param;

  // Wall-clock duration of every unit-test execution, in canonical order —
  // the input to the fleet cost model (core/fleet_model.h). Cache hits do not
  // appear here (nothing was executed).
  std::vector<double> run_durations_seconds;

  int64_t TotalOriginal() const;
  int64_t TotalAfterStatic() const;
  int64_t TotalAfterPrerun() const;
  int64_t TotalAfterUncertainty() const;
  int64_t TotalExecuted() const;
};

// One parameter confirmed heterogeneous-unsafe within one work unit.
struct UnitConfirmation {
  std::string param;
  double p_value = 1.0;
  std::string witness_failure;
};

// Everything one (app, unit test) work unit contributes to the campaign
// report. Produced by Campaign::RunUnit (in-process or in a scheduler
// worker), consumed by CampaignFolder in canonical order.
struct UnitWorkResult {
  std::string app;
  std::string test_id;

  int64_t prerun_executions = 0;  // pre-run baselines executed (normally 1)
  int64_t after_prerun = 0;       // Table 5 row 2 contribution
  int64_t after_uncertainty = 0;  // Table 5 row 3 contribution
  int64_t executed_runs = 0;      // dynamic-phase executions (pre-run excluded)

  // Dynamic-phase executions up to and including the run that confirmed this
  // unit's first unsafe parameter (0 = unit confirmed nothing).
  int64_t runs_to_first_confirmation = 0;

  bool any_conf_usage = false;
  bool conf_sharing_detected = false;
  bool started_any_node = false;

  int first_trial_candidates = 0;
  int filtered_by_hypothesis = 0;

  // Parameters this unit pooled/verified (post only/exclude filtering). The
  // scheduler uses this to decide whether a stale globally-unsafe snapshot
  // could have influenced the unit (and must therefore be re-run).
  std::vector<std::string> params_tested;

  // In confirmation order (the order VerifyInstance confirmed them).
  std::vector<UnitConfirmation> confirmations;

  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t equiv_hits = 0;
  int64_t canonicalized_plans = 0;
  int64_t mispredictions = 0;
  int64_t cache_evictions = 0;

  // Coupling add-on (see CampaignReport). Confirmations found by the add-on
  // are appended after the enumerative ones, so confirmations.front() is
  // still the enumerative first when runs_to_first_confirmation > 0.
  int64_t coupling_runs = 0;
  int64_t coupling_confirmations = 0;

  // The dynamic phase was skipped (impacted-only / only-tests restriction).
  bool dynamic_phase_skipped = false;

  // Durations of this unit's real executions: pre-run first, then dynamic.
  std::vector<double> run_durations;
};

// Merges UnitWorkResults into a CampaignReport. Folding must happen in the
// canonical unit order — apps in options.apps order, units in corpus
// registration order — with BeginApp called before an app's first unit. The
// folder owns all cross-unit campaign state: findings, the frequent-failure
// set (globally_unsafe), hypothesis-testing counters, and the canonical
// runs_to_first_detection accounting (an app's pre-runs all precede its
// dynamic runs, exactly as the sequential campaign executes them).
class CampaignFolder {
 public:
  CampaignFolder(const ConfSchema& schema, const CampaignOptions& options);

  void BeginApp(const std::string& app, int64_t original_count,
                int64_t after_static_count, int tests_total);
  void Fold(const UnitWorkResult& unit);

  // Parameters the frequent-failure rule has excluded from future pools,
  // given everything folded so far. This is exactly the set a sequential
  // campaign would know when starting the next canonical unit.
  const std::set<std::string>& globally_unsafe() const { return globally_unsafe_; }

  // The in-progress report (e.g. to install a run-duration collector).
  CampaignReport& report() { return report_; }

  // Finalizes totals and returns the report. The folder is spent afterwards.
  CampaignReport Finish();

 private:
  const ConfSchema& schema_;
  int frequent_failure_threshold_;
  CampaignReport report_;
  int64_t executed_before_ = 0;  // canonical executions before the next unit
  std::map<std::string, std::set<std::string>> confirmed_tests_per_param_;
  std::set<std::string> globally_unsafe_;
};

class Campaign {
 public:
  Campaign(const ConfSchema& schema, const UnitTestRegistry& corpus,
           CampaignOptions options);

  CampaignReport Run();

  // Executes one (app, unit test) work unit: pre-run, instance generation,
  // pooled testing / bisection / verification. `globally_unsafe` must be the
  // frequent-failure set a sequential campaign would know when reaching this
  // unit (a stale subset yields a result the scheduler detects and re-runs).
  // Installs this campaign's run cache and a unit-local duration collector
  // for the duration of the call. Used by parallel-scheduler workers.
  UnitWorkResult RunUnit(const UnitTestDef& test,
                         const std::set<std::string>& globally_unsafe);

  // Options with `apps` resolved (empty -> every corpus app, sorted).
  const CampaignOptions& options() const { return options_; }
  const TestGenerator& generator() const { return generator_; }

  // The campaign's run cache (null unless a cache option is enabled). Exposed
  // for persistence: the CLI warm-starts it via LoadFromFile before Run() and
  // saves it after.
  RunCache* run_cache() { return run_cache_.get(); }

  // Routes this engine's executions through an externally owned, internally
  // synchronized cache instead of the campaign-owned one. The thread-pool
  // scheduler hands every worker engine the same cache, so any worker's
  // result is served to all. Per-unit cache-stat deltas are skipped in this
  // mode (concurrent workers' activity would pollute them); the scheduler
  // fills report totals once, from the shared cache, at the end. Pass
  // nullptr to restore the owned cache. The caller keeps ownership and must
  // outlive every RunUnit call.
  void UseSharedRunCache(RunCache* cache) { shared_run_cache_ = cache; }

  // The cache executions actually go through: shared if installed, else the
  // campaign-owned one (possibly null).
  RunCache* active_cache() const {
    return shared_run_cache_ != nullptr ? shared_run_cache_ : run_cache_.get();
  }

 private:
  // Per-test dynamic phase over one pre-run record. Fills everything in the
  // result except prerun_executions, run_durations, and cache counters
  // (owned by the callers, who know what else ran).
  UnitWorkResult RunUnitDynamic(const PreRunRecord& record,
                                const std::set<std::string>& globally_unsafe) const;

  // Per-test pooled phase over this test's instances, grouped by parameter.
  void RunPooledForTest(const UnitTestDef& test,
                        std::map<std::string, std::vector<GeneratedInstance>> by_param,
                        const std::set<std::string>& globally_unsafe,
                        UnitWorkResult* unit) const;

  // Recursive bisection of a failing pool (one instance per parameter).
  void BisectPool(const UnitTestDef& test, std::vector<GeneratedInstance> pool,
                  UnitWorkResult* unit, std::set<std::string>* confirmed_in_test) const;

  // Coupling add-on: runs each pairwise coupled plan once; a failing pair
  // whose members pass alone and whose homogeneous controls pass confirms
  // the (previously unconfirmed) members. Runs strictly after the
  // enumerative phase and only ever appends confirmations.
  void RunCouplingForTest(const UnitTestDef& test,
                          const std::vector<CoupledInstance>& coupled,
                          const std::set<std::string>& globally_unsafe,
                          UnitWorkResult* unit) const;

  // Verifies one instance through TestRunner and folds the verdict into the
  // unit result. Returns true if the parameter was confirmed unsafe.
  bool VerifyInstance(const GeneratedInstance& instance, UnitWorkResult* unit,
                      std::set<std::string>* confirmed_in_test) const;

  // Parameter visit order for one test: descending static priority
  // (wire-tainted first), name for ties; shuffled when the options ask for
  // the unprioritized baseline.
  std::vector<std::string> ParamOrder(
      const std::map<std::string, std::vector<GeneratedInstance>>& by_param) const;

  const ConfSchema& schema_;
  const UnitTestRegistry& corpus_;
  CampaignOptions options_;
  TestGenerator generator_;
  TestRunner runner_;
  std::unique_ptr<RunCache> run_cache_;  // null unless options.enable_run_cache
  RunCache* shared_run_cache_ = nullptr;  // not owned; see UseSharedRunCache
};

}  // namespace zebra

#endif  // SRC_CORE_CAMPAIGN_H_
