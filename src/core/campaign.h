// Campaign: the end-to-end ZebraConf pipeline (Figure 1).
//
//   TestGenerator  ->  pooled testing  ->  TestRunner  ->  report
//
// Pooled testing (§4): all surviving parameters of a unit test are tested
// together; a failing pool is bisected recursively until the failing
// parameters are isolated, which then go through TestRunner verification.
// Parameters that keep failing across tests are marked unsafe early and
// excluded from further pools (the paper's frequent-failure rule).

#ifndef SRC_CORE_CAMPAIGN_H_
#define SRC_CORE_CAMPAIGN_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/core/test_generator.h"
#include "src/core/test_runner.h"

namespace zebra {

struct CampaignOptions {
  // Applications to test; empty = every application in the corpus.
  std::vector<std::string> apps;

  double significance = 1e-4;

  // How many times each heterogeneous instance is tried before being
  // dismissed as passing (§5 false-negative mitigation; 1 = the paper's
  // time-saving mode).
  int first_trials = 1;

  // A parameter confirmed unsafe in this many distinct unit tests is marked
  // unsafe globally and removed from future pools.
  int frequent_failure_threshold = 3;

  // Pooled testing on/off (off = verify every instance individually; used by
  // the ablation bench).
  bool enable_pooling = true;

  // §4's round-robin-within-group assignment strategy on/off (ablation).
  bool enable_round_robin = true;

  // When non-empty, only these parameters are tested (focused re-testing,
  // e.g. re-verifying a parameter after an application upgrade). Parameters
  // listed in `exclude_params` are skipped (e.g. already-triaged false
  // positives).
  std::set<std::string> only_params;
  std::set<std::string> exclude_params;

  // zebralint static prior: prunes never-read parameters before enumeration
  // and tests wire-tainted parameters first (see docs/ZEBRALINT.md). Not
  // owned; may be null (prior-less campaign, the paper's baseline).
  const analysis::StaticPriorReport* static_prior = nullptr;

  // Nonzero: deterministically shuffle the per-test parameter order with
  // this seed. Used by benchmarks as the honest "unprioritized" baseline
  // (plain map order is alphabetical, which happens to front-load several
  // unsafe dfs.* parameters).
  uint64_t shuffle_order_seed = 0;
};

struct AppStageCounts {
  int64_t original = 0;           // Table 5 row 1
  int64_t after_static = 0;       // after zebralint pruning (== original
                                  // when no static prior is configured)
  int64_t after_prerun = 0;       // Table 5 row 2
  int64_t after_uncertainty = 0;  // Table 5 row 3
  int64_t executed_runs = 0;      // Table 5 row 4 (actual unit-test executions)
  int tests_total = 0;
  int tests_with_nodes = 0;
};

struct ParamFinding {
  std::string param;
  std::string owning_app;
  std::set<std::string> witness_tests;
  std::string example_failure;
  double best_p_value = 1.0;
};

struct SharingStats {
  int tests_with_conf_usage = 0;
  int tests_with_sharing = 0;
};

struct CampaignReport {
  std::map<std::string, AppStageCounts> per_app;
  std::map<std::string, ParamFinding> findings;  // reported unsafe parameters
  std::map<std::string, SharingStats> sharing;   // per app (§6.1 prevalence)
  int first_trial_candidates = 0;                // §7.2 hypothesis-testing stats
  int filtered_by_hypothesis = 0;
  int64_t total_unit_test_runs = 0;
  double wall_seconds = 0.0;

  // Unit-test executions (pre-runs included) up to and including the run
  // that confirmed the first unsafe parameter; 0 when nothing was detected.
  // The static-prior prioritization exists to shrink this number.
  int64_t runs_to_first_detection = 0;
  std::string first_detection_param;

  // Wall-clock duration of every unit-test execution, in order — the input
  // to the fleet cost model (core/fleet_model.h).
  std::vector<double> run_durations_seconds;

  int64_t TotalOriginal() const;
  int64_t TotalAfterStatic() const;
  int64_t TotalAfterPrerun() const;
  int64_t TotalAfterUncertainty() const;
  int64_t TotalExecuted() const;
};

class Campaign {
 public:
  Campaign(const ConfSchema& schema, const UnitTestRegistry& corpus,
           CampaignOptions options);

  CampaignReport Run();

 private:
  // Per-test pooled phase over this test's instances, grouped by parameter.
  void RunPooledForTest(const UnitTestDef& test,
                        std::map<std::string, std::vector<GeneratedInstance>> by_param,
                        AppStageCounts* counts, CampaignReport* report);

  // Recursive bisection of a failing pool (one instance per parameter).
  void BisectPool(const UnitTestDef& test, std::vector<GeneratedInstance> pool,
                  AppStageCounts* counts, CampaignReport* report,
                  std::set<std::string>* confirmed_in_test);

  // Verifies one instance through TestRunner and folds the verdict into the
  // report. Returns true if the parameter was confirmed unsafe.
  bool VerifyInstance(const GeneratedInstance& instance, AppStageCounts* counts,
                      CampaignReport* report, std::set<std::string>* confirmed_in_test);

  bool GloballyUnsafe(const std::string& param) const {
    return globally_unsafe_.count(param) > 0;
  }

  // Parameter visit order for one test: descending static priority
  // (wire-tainted first), name for ties; shuffled when the options ask for
  // the unprioritized baseline.
  std::vector<std::string> ParamOrder(
      const std::map<std::string, std::vector<GeneratedInstance>>& by_param) const;

  const ConfSchema& schema_;
  const UnitTestRegistry& corpus_;
  CampaignOptions options_;
  TestGenerator generator_;
  TestRunner runner_;
  std::map<std::string, std::set<std::string>> confirmed_tests_per_param_;
  std::set<std::string> globally_unsafe_;
};

}  // namespace zebra

#endif  // SRC_CORE_CAMPAIGN_H_
