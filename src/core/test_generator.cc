#include "src/core/test_generator.h"

#include <algorithm>
#include <set>

#include "src/runtime/node_types.h"

namespace zebra {

TestGenerator::TestGenerator(const ConfSchema& schema, const UnitTestRegistry& corpus,
                             GeneratorOptions options)
    : schema_(schema), corpus_(corpus), options_(options) {}

std::vector<PreRunRecord> TestGenerator::PreRunApp(const std::string& app,
                                                   int64_t* executions) const {
  std::vector<PreRunRecord> records;
  for (const UnitTestDef* test : corpus_.ForApp(app)) {
    records.push_back(PreRunTest(*test, executions));
  }
  return records;
}

PreRunRecord TestGenerator::PreRunTest(const UnitTestDef& test,
                                       int64_t* executions) const {
  PreRunRecord record;
  record.test = &test;
  record.result = RunUnitTest(test, TestPlan{}, /*trial=*/0);
  if (executions != nullptr) {
    ++*executions;
  }
  return record;
}

std::vector<std::pair<std::string, std::string>> TestGenerator::ValuePairs(
    const ParamSpec& spec) {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (size_t i = 0; i < spec.test_values.size(); ++i) {
    for (size_t j = i + 1; j < spec.test_values.size(); ++j) {
      pairs.emplace_back(spec.test_values[i], spec.test_values[j]);
    }
  }
  return pairs;
}

std::vector<ValueAssigner> TestGenerator::AssignersFor(const std::string& group,
                                                       int group_count,
                                                       const std::string& v1,
                                                       const std::string& v2) const {
  std::vector<ValueAssigner> assigners;
  assigners.push_back(ValueAssigner::UniformGroup(group, v1, v2));
  assigners.push_back(ValueAssigner::UniformGroup(group, v2, v1));
  if (options_.enable_round_robin && group_count >= 2) {
    assigners.push_back(ValueAssigner::RoundRobinGroup(group, v1, v2));
    assigners.push_back(ValueAssigner::RoundRobinGroup(group, v2, v1));
  }
  return assigners;
}

int64_t TestGenerator::OriginalInstanceCount(const std::string& app) const {
  int64_t tests = static_cast<int64_t>(corpus_.ForApp(app).size());
  int64_t node_types = static_cast<int64_t>(NodeTypesForApp(app).size());
  if (node_types == 0) {
    return 0;
  }
  int64_t per_test = 0;
  for (const ParamSpec* spec : schema_.ParamsForApp(app)) {
    // Without pre-run knowledge the user must assume every node type may use
    // the parameter and that every group may contain several nodes (so all
    // four assignment strategies apply).
    per_test += static_cast<int64_t>(ValuePairs(*spec).size()) * node_types * 4;
  }
  return tests * per_test;
}

int64_t TestGenerator::StaticPrunedInstanceCount(const std::string& app) const {
  if (options_.static_prior == nullptr) {
    return OriginalInstanceCount(app);
  }
  int64_t tests = static_cast<int64_t>(corpus_.ForApp(app).size());
  int64_t node_types = static_cast<int64_t>(NodeTypesForApp(app).size());
  if (node_types == 0) {
    return 0;
  }
  int64_t per_test = 0;
  for (const ParamSpec* spec : schema_.ParamsForApp(app)) {
    if (options_.static_prior->IsNeverRead(spec->name)) {
      continue;  // statically pruned: no read site anywhere in the sources
    }
    per_test += static_cast<int64_t>(ValuePairs(*spec).size()) * node_types * 4;
  }
  return tests * per_test;
}

std::vector<std::pair<std::string, std::string>> TestGenerator::OverridesFor(
    const std::string& param, const std::string& v1, const std::string& v2) const {
  std::vector<std::pair<std::string, std::string>> merged;
  std::set<std::string> seen;
  for (const std::string& value : {v1, v2}) {
    for (const auto& [dep_param, dep_value] : schema_.DependencyOverrides(param, value)) {
      if (seen.insert(dep_param + "=" + dep_value).second) {
        merged.emplace_back(dep_param, dep_value);
      }
    }
  }
  return merged;
}

std::vector<GeneratedInstance> TestGenerator::Generate(
    const PreRunRecord& record, int64_t* count_before_uncertainty) const {
  std::vector<GeneratedInstance> instances;
  int64_t before_uncertainty = 0;

  const SessionReport& report = record.result.report;
  if (!report.StartedAnyNode()) {
    // Function-level tests cannot exercise heterogeneous configurations.
    if (count_before_uncertainty != nullptr) {
      *count_before_uncertainty = 0;
    }
    return instances;
  }

  for (const ParamSpec* spec : schema_.ParamsForApp(record.test->app)) {
    if (options_.static_prior != nullptr &&
        options_.static_prior->IsNeverRead(spec->name)) {
      continue;  // statically pruned before enumeration
    }
    bool uncertain = report.uncertain_params.count(spec->name) > 0;
    auto pairs = ValuePairs(*spec);
    for (const auto& [entity, params_read] : report.reads) {
      if (options_.prune_unread_instances && params_read.count(spec->name) == 0) {
        continue;
      }
      int group_count = 1;
      auto count_it = report.node_counts.find(entity);
      if (count_it != report.node_counts.end()) {
        group_count = count_it->second;
      }
      for (const auto& [v1, v2] : pairs) {
        for (ValueAssigner& assigner : AssignersFor(entity, group_count, v1, v2)) {
          ++before_uncertainty;
          if (uncertain) {
            continue;  // excluded: reads through unmappable conf objects
          }
          GeneratedInstance instance;
          instance.test = record.test;
          instance.plan.param = spec->name;
          instance.plan.assigner = std::move(assigner);
          instance.plan.extra_overrides = OverridesFor(spec->name, v1, v2);
          if (options_.static_prior != nullptr) {
            instance.plan.static_priority =
                options_.static_prior->PriorityOf(spec->name);
          }
          instances.push_back(std::move(instance));
        }
      }
    }
  }

  if (count_before_uncertainty != nullptr) {
    *count_before_uncertainty = before_uncertainty;
  }
  return instances;
}

std::vector<CoupledInstance> TestGenerator::GenerateCoupled(
    const PreRunRecord& record,
    const std::vector<GeneratedInstance>& instances) const {
  std::vector<CoupledInstance> coupled;
  if (!options_.enable_coupling_plans || options_.static_prior == nullptr ||
      options_.max_coupling_plans_per_test <= 0) {
    return coupled;
  }

  // The first generated instance of each parameter is its canonical
  // representative: the first value pair under the uniform assignment — the
  // same ParamPlan the single-parameter phase runs first.
  std::map<std::string, const GeneratedInstance*> representative;
  std::set<std::string> surviving;
  for (const GeneratedInstance& instance : instances) {
    if (representative.emplace(instance.plan.param, &instance).second) {
      surviving.insert(instance.plan.param);
    }
  }

  std::set<std::pair<std::string, std::string>> seen;
  for (const std::vector<std::string>& group :
       options_.static_prior->CouplingSetsAmong(surviving)) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        if (static_cast<int>(coupled.size()) >=
            options_.max_coupling_plans_per_test) {
          return coupled;
        }
        if (!seen.emplace(group[i], group[j]).second) {
          continue;  // the pair already appeared through another set
        }
        CoupledInstance pair;
        pair.test = record.test;
        pair.plan.Add(representative.at(group[i])->plan);
        pair.plan.Add(representative.at(group[j])->plan);
        pair.params = {group[i], group[j]};
        coupled.push_back(std::move(pair));
      }
    }
  }
  return coupled;
}

}  // namespace zebra
