#include "src/core/campaign_agent.h"

#include <time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/conf/conf_agent.h"
#include "src/core/campaign_journal.h"
#include "src/core/fabric_wire.h"
#include "src/core/report_io.h"
#include "src/core/worker_ipc.h"

namespace zebra {

namespace {

struct AgentWorkItem {
  size_t unit_index = 0;
  int attempt = 0;
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepSeconds(double seconds) {
  struct timespec delay;
  delay.tv_sec = static_cast<time_t>(seconds);
  delay.tv_nsec =
      static_cast<long>((seconds - static_cast<double>(delay.tv_sec)) * 1e9);
  ::nanosleep(&delay, nullptr);
}

// True when an explicit kEpochDesync spec fires at this coordinate. Decided
// in the reader thread at dispatch receipt — the fault models the *snapshot
// bookkeeping* going wrong, not the execution — and kept kind-filtered so a
// mixed plan's crash/drop specs still reach the worker untouched.
bool EpochDesyncFires(const NetFaultPlan& plan, int agent_index,
                      const std::string& test_id, int attempt) {
  for (const NetFaultSpec& spec : plan.specs) {
    if (spec.kind != NetFaultKind::kEpochDesync) {
      continue;
    }
    if ((spec.test_id.empty() || spec.test_id == test_id) &&
        (spec.agent == -1 || spec.agent == agent_index) &&
        (spec.attempt == -1 || spec.attempt == attempt)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string FabricSchemaHash(const ConfSchema& schema,
                             const UnitTestRegistry& corpus,
                             const CampaignOptions& options) {
  // Resolve the options exactly as any executor would (apps expanded and
  // sorted) so both ends hash the same fingerprint regardless of whether the
  // caller passed an explicit app list.
  Campaign engine(schema, corpus, options);
  return HashToHex(
      HashFnv64(CampaignJournal::Fingerprint(engine.options(), corpus)));
}

int RunCampaignAgent(const ConfSchema& schema, const UnitTestRegistry& corpus,
                     CampaignOptions options,
                     const CampaignAgentOptions& agent) {
  if (agent.threads < 1) {
    ZLOG_WARN << "campaign agent " << agent.agent_index
              << ": threads must be >= 1";
    return 2;
  }
  ScopedIgnoreSigPipe sigpipe_guard;

  // Resolve options and the canonical unit order; the coordinator's dispatch
  // indices refer to exactly this vector (schema-hash agreement below proves
  // both sides built the same one).
  Campaign resolver(schema, corpus, std::move(options));
  const CampaignOptions& resolved = resolver.options();
  std::vector<const UnitTestDef*> units;
  for (const std::string& app : resolved.apps) {
    for (const UnitTestDef* test : corpus.ForApp(app)) {
      units.push_back(test);
    }
  }

  int fd = ConnectTcp(agent.host, agent.port, agent.connect_timeout_seconds);
  if (fd < 0) {
    ZLOG_WARN << "campaign agent " << agent.agent_index
              << ": cannot reach coordinator at " << agent.host << ":"
              << agent.port;
    return 3;
  }

  // Handshake. The protocol version travels in the frame header; the payload
  // carries what the header cannot: schema hash, capacity, identity.
  const std::string schema_hash =
      HashToHex(HashFnv64(CampaignJournal::Fingerprint(resolved, corpus)));
  std::string hello = schema_hash + "\n" + Int64ToString(agent.threads) +
                      "\n" + Int64ToString(agent.agent_index);
  FabricMsg type;
  std::string payload;
  if (!WriteFabricFrame(fd, FabricMsg::kHello, hello) ||
      ReadFabricFrame(fd, &type, &payload) != FabricRead::kOk ||
      type != FabricMsg::kWelcome) {
    ZLOG_WARN << "campaign agent " << agent.agent_index
              << ": handshake refused"
              << (type == FabricMsg::kReject ? " (" + payload + ")" : "");
    ::close(fd);
    return 4;
  }
  std::vector<std::string> welcome = StrSplit(payload, '\n');
  double heartbeat_interval = 0.2;
  if (welcome.size() >= 2) {
    ParseDouble(welcome[1], &heartbeat_interval);
  }

  // ---- Local thread pool ----------------------------------------------------

  std::unique_ptr<RunCache> shared_cache;
  std::string cache_path;
  RunCache::Stats cache_baseline;
  if (resolved.enable_run_cache) {
    shared_cache = std::make_unique<RunCache>(
        RunCache::Limits{resolved.cache_max_entries, resolved.cache_max_bytes});
    if (!agent.cache_dir.empty()) {
      // Keyed by schema hash (a stale campaign shape must never warm-start
      // this one) and agent index (SaveToFile is a plain rewrite, so spawned
      // siblings sharing one path would race at shutdown).
      cache_path = agent.cache_dir + "/fabric-" + schema_hash + "-agent" +
                   Int64ToString(agent.agent_index) + ".zc";
      if (shared_cache->LoadFromFile(cache_path)) {
        ZLOG_INFO << "campaign agent " << agent.agent_index
                  << ": warm run cache from " << cache_path;
      }
      // Corrupt files degrade to a cold start inside LoadFromFile (v2
      // fail-closed path) and leave Stats::load_failures set — reported in
      // the farewell below, absolute, so the coordinator surfaces it.
    }
    cache_baseline = shared_cache->stats();
  }

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<AgentWorkItem> queue;
  bool stop = false;

  // Globally-unsafe snapshot, shared under queue_mutex. The reader applies
  // every received snapshot section here; a worker copies the set at the
  // moment it *starts* a unit — not when the batch arrived — so a pipelined
  // unit that waited behind depth-1 peers runs under the freshest set this
  // agent has ever been told about, exactly as a thread-pool worker reads
  // the live set at execution start. Two epochs track it: the wire epoch is
  // the delta-validation ack (-1 = cannot prove currency, forces the nack /
  // full-resend path) and the run epoch names the held set itself (it
  // survives a desync, because the set does). Every result is stamped with
  // the run epoch it executed under; the coordinator judges staleness
  // against that epoch's set. Epoch 0 = the empty set both sides start from.
  int64_t snap_epoch_wire = -1;
  int64_t snap_epoch_run = 0;
  std::set<std::string> snap_unsafe;

  // All socket writes (result batches, heartbeats, nacks, injected junk)
  // serialize here so frames never interleave mid-stream.
  std::mutex write_mutex;

  // Completed-result outbox. A worker finishing a unit appends its record
  // here; whichever worker finds no sender active becomes the sender and
  // drains everything queued — under way, concurrent finishers just append
  // and return. A burst of completions thus leaves as one kResultBatch
  // frame, and no worker ever blocks on a peer's socket write.
  std::mutex outbox_mutex;
  std::vector<std::string> outbox;
  bool sender_active = false;

  auto flush_results = [&](std::vector<std::string> first) {
    std::vector<std::string> pending = std::move(first);
    for (;;) {
      std::string batch;
      for (const std::string& record : pending) {
        AppendBatchRecord(&batch, record);
      }
      {
        std::lock_guard<std::mutex> lock(write_mutex);
        if (!WriteFabricFrame(fd, FabricMsg::kResultBatch, batch)) {
          std::_Exit(5);  // coordinator went away; nothing left to report to
        }
      }
      std::lock_guard<std::mutex> lock(outbox_mutex);
      if (outbox.empty()) {
        sender_active = false;
        return;
      }
      pending.clear();
      pending.swap(outbox);
    }
  };

  // kDelayedHeartbeat: monotonic time before which the heartbeat thread
  // stays silent. Stored as a bit-cast-free integer of milliseconds to keep
  // it a plain atomic.
  std::atomic<int64_t> heartbeat_mute_until_ms{0};

  auto worker_main = [&]() {
    ScopedThreadConfAgent agent_scope;
    Campaign engine(schema, corpus, resolved);
    if (shared_cache != nullptr) {
      engine.UseSharedRunCache(shared_cache.get());
    }
    for (;;) {
      AgentWorkItem item;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (stop && queue.empty()) {
          return;
        }
        item = std::move(queue.front());
        queue.pop_front();
      }
      if (item.unit_index >= units.size()) {
        continue;  // corrupt dispatch survived checksums; drop it
      }
      const UnitTestDef& test = *units[item.unit_index];

      // Network faults first (they model the transport, which wraps the
      // execution), then process faults (they model the worker itself).
      NetFaultSpec net_fault;
      bool net_fires = !agent.net_faults.empty() &&
                       agent.net_faults.Decide(agent.agent_index, test.id,
                                               item.attempt, &net_fault);
      if (net_fires) {
        switch (net_fault.kind) {
          case NetFaultKind::kAgentCrash:
            std::_Exit(13);  // whole-host loss before any work happened
          case NetFaultKind::kGarbledFrame: {
            std::lock_guard<std::mutex> lock(write_mutex);
            WriteAll(fd, "!!!NOT-A-FABRIC-FRAME!!!", 24);
            std::_Exit(6);
          }
          case NetFaultKind::kDelayedHeartbeat: {
            int64_t until_ms = static_cast<int64_t>(
                (NowSeconds() + net_fault.delay_seconds) * 1000.0);
            heartbeat_mute_until_ms.store(until_ms, std::memory_order_relaxed);
            break;  // then execute and report normally
          }
          case NetFaultKind::kEpochDesync:
            // Decided (and acted on) in the reader thread at dispatch
            // receipt; a unit that reached the queue anyway runs normally.
            break;
          case NetFaultKind::kConnectionDrop:
          case NetFaultKind::kStaleDuplicateResult:
            break;  // both fire after execution
        }
      }
      FaultSpec fault;
      if (!agent.faults.empty() &&
          agent.faults.Decide(agent.agent_index, test.id, item.attempt,
                              &fault)) {
        switch (fault.kind) {
          case FaultKind::kCrash:
            std::_Exit(13);
          case FaultKind::kHang:
            // Block this worker thread forever. Heartbeats keep flowing from
            // their own thread, so only the coordinator's per-lease watchdog
            // can recognize the unit as stuck — which is the point.
            for (;;) {
              ::pause();
            }
          case FaultKind::kGarbledFrame: {
            std::lock_guard<std::mutex> lock(write_mutex);
            WriteAll(fd, "!GARBLED-FRAME!!", 16);
            std::_Exit(6);
          }
          case FaultKind::kSlowWorker:
            SleepSeconds(fault.slow_seconds);
            break;  // then execute normally
        }
      }

      // Execution-start snapshot read: whatever the reader has applied by
      // now, even if it landed after this unit's own dispatch batch.
      std::set<std::string> unsafe;
      int64_t run_epoch = 0;
      {
        std::lock_guard<std::mutex> lock(queue_mutex);
        unsafe = snap_unsafe;
        run_epoch = snap_epoch_run;
      }
      UnitWorkResult unit;
      try {
        unit = engine.RunUnit(test, unsafe);
      } catch (const std::exception& e) {
        // In-agent analog of a dead forked worker: take the whole agent down
        // so the coordinator's requeue path recovers the lease. One bad unit
        // costing a whole agent is the forked scheduler's economics too.
        ZLOG_WARN << "campaign agent " << agent.agent_index << ": unit "
                  << test.id << " failed (" << e.what() << ")";
        std::_Exit(14);
      }

      if (net_fires && net_fault.kind == NetFaultKind::kConnectionDrop) {
        // The unit ran to completion, then the host dropped off the network
        // before the result got out — the lease must expire and the work
        // must be redone elsewhere.
        std::_Exit(7);
      }

      std::string record =
          Int64ToString(static_cast<int64_t>(item.unit_index)) + " " +
          Int64ToString(item.attempt) + " " + Int64ToString(run_epoch) +
          "\n" + SerializeUnitResult(item.unit_index, unit);
      int copies =
          net_fires && net_fault.kind == NetFaultKind::kStaleDuplicateResult
              ? 2
              : 1;
      std::vector<std::string> to_send;
      {
        std::lock_guard<std::mutex> lock(outbox_mutex);
        for (int i = 0; i < copies; ++i) {
          outbox.push_back(record);
        }
        if (sender_active) {
          continue;  // the active sender drains the outbox, this record with it
        }
        sender_active = true;
        to_send.swap(outbox);
      }
      flush_results(std::move(to_send));
    }
  };

  std::atomic<bool> heartbeat_stop{false};
  std::mutex heartbeat_mutex;
  std::condition_variable heartbeat_cv;
  auto heartbeat_main = [&]() {
    // Tick at a fraction of the interval so un-muting is noticed promptly;
    // the condition variable lets shutdown interrupt the wait immediately
    // instead of draining the tail of a sleep (that tail used to dominate
    // the fleet's farewell latency).
    double last_sent = 0.0;
    std::unique_lock<std::mutex> wait_lock(heartbeat_mutex);
    while (!heartbeat_stop.load(std::memory_order_relaxed)) {
      double now = NowSeconds();
      bool muted = static_cast<int64_t>(now * 1000.0) <
                   heartbeat_mute_until_ms.load(std::memory_order_relaxed);
      if (!muted && now - last_sent >= heartbeat_interval) {
        std::lock_guard<std::mutex> lock(write_mutex);
        // A failed heartbeat means the coordinator is gone; the reader loop
        // will see EOF and wind the agent down — no need to act here.
        WriteFabricFrame(fd, FabricMsg::kHeartbeat, std::string());
        last_sent = now;
      }
      heartbeat_cv.wait_for(
          wait_lock,
          std::chrono::duration<double>(std::min(0.05, heartbeat_interval / 2.0)),
          [&]() { return heartbeat_stop.load(std::memory_order_relaxed); });
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(agent.threads));
  for (int i = 0; i < agent.threads; ++i) {
    workers.emplace_back(worker_main);
  }
  std::thread heartbeat_thread(heartbeat_main);

  // RAII teardown for every exit path below: stop and join the pool before
  // the lambdas' captures go out of scope.
  auto shutdown_pool = [&]() {
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      stop = true;
      queue.clear();  // undelivered dispatches die with the connection
    }
    queue_cv.notify_all();
    {
      std::lock_guard<std::mutex> lock(heartbeat_mutex);
      heartbeat_stop.store(true, std::memory_order_relaxed);
    }
    heartbeat_cv.notify_all();
    for (std::thread& worker : workers) {
      if (worker.joinable()) {
        worker.join();
      }
    }
    if (heartbeat_thread.joinable()) {
      heartbeat_thread.join();
    }
  };

  // ---- Reader loop ----------------------------------------------------------

  // The wire epoch is the agent's acknowledgement: a delta whose base is
  // anything else is refused with a nack, because executing under a set the
  // agent cannot prove current would silently break the staleness contract.

  int exit_code = 0;
  for (;;) {
    FabricRead status = ReadFabricFrame(fd, &type, &payload);
    if (status != FabricRead::kOk) {
      ZLOG_WARN << "campaign agent " << agent.agent_index
                << ": coordinator connection lost";
      exit_code = 8;
      break;
    }
    if (type == FabricMsg::kShutdown) {
      break;
    }
    if (type != FabricMsg::kDispatchBatch) {
      continue;  // heartbeat echoes etc. — nothing for an agent to do
    }
    std::vector<std::string> records;
    if (!DecodeBatchRecords(payload, &records) || records.empty()) {
      // Checksum-valid but structurally broken: a coordinator bug, not line
      // noise. The connection is not trustworthy; wind down like a loss.
      ZLOG_WARN << "campaign agent " << agent.agent_index
                << ": malformed dispatch batch";
      exit_code = 8;
      break;
    }

    // Record 0: the snapshot section. "<base_epoch> <new_epoch> <mode>" then
    // a CSV line — the full set for F(ull), "+param"/"-param" deltas against
    // base_epoch for D(elta), empty for K(eep, no change since base).
    bool snapshot_ok = false;
    {
      size_t newline = records[0].find('\n');
      std::vector<std::string> head =
          StrSplit(records[0].substr(0, newline), ' ');
      int64_t base = -1, next = -1;
      if (head.size() >= 3 && ParseInt64(head[0], &base) &&
          ParseInt64(head[1], &next)) {
        std::vector<std::string> entries;
        if (newline != std::string::npos) {
          entries = StrSplit(records[0].substr(newline + 1), ',');
        }
        std::lock_guard<std::mutex> lock(queue_mutex);
        if (head[2] == "F") {
          snap_unsafe.clear();
          for (const std::string& param : entries) {
            if (!param.empty()) {
              snap_unsafe.insert(param);
            }
          }
          snap_epoch_wire = next;
          snap_epoch_run = next;
          snapshot_ok = true;
        } else if (head[2] == "D" && snap_epoch_wire == base) {
          for (const std::string& entry : entries) {
            if (entry.size() < 2) {
              continue;
            }
            if (entry[0] == '+') {
              snap_unsafe.insert(entry.substr(1));
            } else if (entry[0] == '-') {
              snap_unsafe.erase(entry.substr(1));
            }
          }
          snap_epoch_wire = next;
          snap_epoch_run = next;
          snapshot_ok = true;
        } else if (head[2] == "K" && snap_epoch_wire == base) {
          snapshot_ok = true;
        }
      }
    }

    // Records 1..n: "<unit> <attempt>". An unappliable snapshot refuses the
    // whole batch; an injected epoch desync refuses one unit and forgets the
    // epoch, so the *next* delta mismatches and forces the full-resend path.
    std::vector<std::string> nacked;
    std::vector<AgentWorkItem> accepted;
    for (size_t r = 1; r < records.size(); ++r) {
      std::vector<std::string> head = StrSplit(records[r], ' ');
      int64_t unit_index = -1;
      int64_t attempt = 0;
      if (head.size() < 2 || !ParseInt64(head[0], &unit_index) ||
          !ParseInt64(head[1], &attempt) || unit_index < 0 ||
          static_cast<size_t>(unit_index) >= units.size()) {
        ZLOG_WARN << "campaign agent " << agent.agent_index
                  << ": malformed dispatch record; ignoring";
        continue;
      }
      if (!snapshot_ok) {
        nacked.push_back(records[r]);
        continue;
      }
      if (EpochDesyncFires(agent.net_faults, agent.agent_index,
                           units[static_cast<size_t>(unit_index)]->id,
                           static_cast<int>(attempt))) {
        nacked.push_back(records[r]);
        // The set survives (so does its run epoch); the proof of currency
        // does not.
        std::lock_guard<std::mutex> lock(queue_mutex);
        snap_epoch_wire = -1;
        continue;
      }
      AgentWorkItem item;
      item.unit_index = static_cast<size_t>(unit_index);
      item.attempt = static_cast<int>(attempt);
      accepted.push_back(std::move(item));
    }
    // A failed snapshot on a unit-less batch (a pure broadcast) still nacks
    // — zero refused units, but the coordinator must learn its optimistic
    // epoch bookkeeping is wrong and fall back to a full resend.
    if (!nacked.empty() || !snapshot_ok) {
      int64_t nack_epoch;
      {
        std::lock_guard<std::mutex> lock(queue_mutex);
        if (!snapshot_ok) {
          ZLOG_WARN << "campaign agent " << agent.agent_index
                    << ": snapshot epoch mismatch; nacking "
                    << nacked.size() << " units for redispatch";
          snap_epoch_wire = -1;
        }
        nack_epoch = snap_epoch_wire;
      }
      std::string nack = Int64ToString(nack_epoch);
      for (const std::string& line : nacked) {
        nack += "\n" + line;
      }
      std::lock_guard<std::mutex> lock(write_mutex);
      WriteFabricFrame(fd, FabricMsg::kSnapshotNack, nack);
    }
    if (!accepted.empty()) {
      {
        std::lock_guard<std::mutex> lock(queue_mutex);
        for (AgentWorkItem& item : accepted) {
          queue.push_back(std::move(item));
        }
      }
      queue_cv.notify_all();
    }
  }

  shutdown_pool();

  if (exit_code == 0 && !cache_path.empty() && shared_cache != nullptr) {
    // Persist before the farewell so a coordinator that reaps promptly never
    // races a half-written file into the next campaign.
    if (!shared_cache->SaveToFile(cache_path)) {
      ZLOG_WARN << "campaign agent " << agent.agent_index
                << ": cannot persist run cache to " << cache_path;
    }
  }

  if (exit_code == 0) {
    // Farewell stats: per-campaign deltas against the post-load baseline (a
    // warm start must not re-report last campaign's hits), except
    // load_failures, which is absolute by design — it is the health signal
    // that says "a cache file was corrupt", and it must survive into the
    // coordinator's report even though the failure predates the baseline.
    std::string stats;
    if (shared_cache != nullptr) {
      RunCache::Stats s = shared_cache->stats();
      stats =
          "cache_hits=" + Int64ToString(s.hits - cache_baseline.hits) + "\n" +
          "cache_misses=" + Int64ToString(s.misses - cache_baseline.misses) +
          "\n" + "equiv_hits=" +
          Int64ToString(s.equiv_hits - cache_baseline.equiv_hits) + "\n" +
          "canonicalized_plans=" +
          Int64ToString(s.canonicalized_plans -
                        cache_baseline.canonicalized_plans) +
          "\n" + "mispredictions=" +
          Int64ToString(s.mispredictions - cache_baseline.mispredictions) +
          "\n" + "cache_evictions=" +
          Int64ToString(s.evictions - cache_baseline.evictions) + "\n" +
          "cache_load_failures=" + Int64ToString(s.load_failures);
    }
    std::lock_guard<std::mutex> lock(write_mutex);
    WriteFabricFrame(fd, FabricMsg::kStats, stats);
  }
  ::close(fd);
  return exit_code;
}

}  // namespace zebra
