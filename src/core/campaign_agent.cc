#include "src/core/campaign_agent.h"

#include <time.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/conf/conf_agent.h"
#include "src/core/campaign_journal.h"
#include "src/core/fabric_wire.h"
#include "src/core/report_io.h"
#include "src/core/worker_ipc.h"

namespace zebra {

namespace {

struct AgentWorkItem {
  size_t unit_index = 0;
  int attempt = 0;
  std::set<std::string> unsafe;
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SleepSeconds(double seconds) {
  struct timespec delay;
  delay.tv_sec = static_cast<time_t>(seconds);
  delay.tv_nsec =
      static_cast<long>((seconds - static_cast<double>(delay.tv_sec)) * 1e9);
  ::nanosleep(&delay, nullptr);
}

}  // namespace

std::string FabricSchemaHash(const ConfSchema& schema,
                             const UnitTestRegistry& corpus,
                             const CampaignOptions& options) {
  // Resolve the options exactly as any executor would (apps expanded and
  // sorted) so both ends hash the same fingerprint regardless of whether the
  // caller passed an explicit app list.
  Campaign engine(schema, corpus, options);
  return HashToHex(
      HashFnv64(CampaignJournal::Fingerprint(engine.options(), corpus)));
}

int RunCampaignAgent(const ConfSchema& schema, const UnitTestRegistry& corpus,
                     CampaignOptions options,
                     const CampaignAgentOptions& agent) {
  if (agent.threads < 1) {
    ZLOG_WARN << "campaign agent " << agent.agent_index
              << ": threads must be >= 1";
    return 2;
  }
  ScopedIgnoreSigPipe sigpipe_guard;

  // Resolve options and the canonical unit order; the coordinator's dispatch
  // indices refer to exactly this vector (schema-hash agreement below proves
  // both sides built the same one).
  Campaign resolver(schema, corpus, std::move(options));
  const CampaignOptions& resolved = resolver.options();
  std::vector<const UnitTestDef*> units;
  for (const std::string& app : resolved.apps) {
    for (const UnitTestDef* test : corpus.ForApp(app)) {
      units.push_back(test);
    }
  }

  int fd = ConnectTcp(agent.host, agent.port, agent.connect_timeout_seconds);
  if (fd < 0) {
    ZLOG_WARN << "campaign agent " << agent.agent_index
              << ": cannot reach coordinator at " << agent.host << ":"
              << agent.port;
    return 3;
  }

  // Handshake. The protocol version travels in the frame header; the payload
  // carries what the header cannot: schema hash, capacity, identity.
  std::string hello =
      HashToHex(HashFnv64(CampaignJournal::Fingerprint(resolved, corpus))) +
      "\n" + Int64ToString(agent.threads) + "\n" +
      Int64ToString(agent.agent_index);
  FabricMsg type;
  std::string payload;
  if (!WriteFabricFrame(fd, FabricMsg::kHello, hello) ||
      ReadFabricFrame(fd, &type, &payload) != FabricRead::kOk ||
      type != FabricMsg::kWelcome) {
    ZLOG_WARN << "campaign agent " << agent.agent_index
              << ": handshake refused"
              << (type == FabricMsg::kReject ? " (" + payload + ")" : "");
    ::close(fd);
    return 4;
  }
  std::vector<std::string> welcome = StrSplit(payload, '\n');
  double heartbeat_interval = 0.2;
  if (welcome.size() >= 2) {
    ParseDouble(welcome[1], &heartbeat_interval);
  }

  // ---- Local thread pool ----------------------------------------------------

  std::unique_ptr<RunCache> shared_cache;
  if (resolved.enable_run_cache) {
    shared_cache = std::make_unique<RunCache>(
        RunCache::Limits{resolved.cache_max_entries, resolved.cache_max_bytes});
  }

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<AgentWorkItem> queue;
  bool stop = false;

  // All socket writes (results, heartbeats, injected junk) serialize here so
  // frames never interleave mid-stream.
  std::mutex write_mutex;

  // kDelayedHeartbeat: monotonic time before which the heartbeat thread
  // stays silent. Stored as a bit-cast-free integer of milliseconds to keep
  // it a plain atomic.
  std::atomic<int64_t> heartbeat_mute_until_ms{0};

  auto worker_main = [&]() {
    ScopedThreadConfAgent agent_scope;
    Campaign engine(schema, corpus, resolved);
    if (shared_cache != nullptr) {
      engine.UseSharedRunCache(shared_cache.get());
    }
    for (;;) {
      AgentWorkItem item;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (stop && queue.empty()) {
          return;
        }
        item = std::move(queue.front());
        queue.pop_front();
      }
      if (item.unit_index >= units.size()) {
        continue;  // corrupt dispatch survived checksums; drop it
      }
      const UnitTestDef& test = *units[item.unit_index];

      // Network faults first (they model the transport, which wraps the
      // execution), then process faults (they model the worker itself).
      NetFaultSpec net_fault;
      bool net_fires = !agent.net_faults.empty() &&
                       agent.net_faults.Decide(agent.agent_index, test.id,
                                               item.attempt, &net_fault);
      if (net_fires) {
        switch (net_fault.kind) {
          case NetFaultKind::kAgentCrash:
            std::_Exit(13);  // whole-host loss before any work happened
          case NetFaultKind::kGarbledFrame: {
            std::lock_guard<std::mutex> lock(write_mutex);
            WriteAll(fd, "!!!NOT-A-FABRIC-FRAME!!!", 24);
            std::_Exit(6);
          }
          case NetFaultKind::kDelayedHeartbeat: {
            int64_t until_ms = static_cast<int64_t>(
                (NowSeconds() + net_fault.delay_seconds) * 1000.0);
            heartbeat_mute_until_ms.store(until_ms, std::memory_order_relaxed);
            break;  // then execute and report normally
          }
          case NetFaultKind::kConnectionDrop:
          case NetFaultKind::kStaleDuplicateResult:
            break;  // both fire after execution
        }
      }
      FaultSpec fault;
      if (!agent.faults.empty() &&
          agent.faults.Decide(agent.agent_index, test.id, item.attempt,
                              &fault)) {
        switch (fault.kind) {
          case FaultKind::kCrash:
            std::_Exit(13);
          case FaultKind::kHang:
            // Block this worker thread forever. Heartbeats keep flowing from
            // their own thread, so only the coordinator's per-lease watchdog
            // can recognize the unit as stuck — which is the point.
            for (;;) {
              ::pause();
            }
          case FaultKind::kGarbledFrame: {
            std::lock_guard<std::mutex> lock(write_mutex);
            WriteAll(fd, "!GARBLED-FRAME!!", 16);
            std::_Exit(6);
          }
          case FaultKind::kSlowWorker:
            SleepSeconds(fault.slow_seconds);
            break;  // then execute normally
        }
      }

      UnitWorkResult unit;
      try {
        unit = engine.RunUnit(test, item.unsafe);
      } catch (const std::exception& e) {
        // In-agent analog of a dead forked worker: take the whole agent down
        // so the coordinator's requeue path recovers the lease. One bad unit
        // costing a whole agent is the forked scheduler's economics too.
        ZLOG_WARN << "campaign agent " << agent.agent_index << ": unit "
                  << test.id << " failed (" << e.what() << ")";
        std::_Exit(14);
      }

      if (net_fires && net_fault.kind == NetFaultKind::kConnectionDrop) {
        // The unit ran to completion, then the host dropped off the network
        // before the result got out — the lease must expire and the work
        // must be redone elsewhere.
        std::_Exit(7);
      }

      std::string result =
          Int64ToString(static_cast<int64_t>(item.unit_index)) + " " +
          Int64ToString(item.attempt) + "\n" +
          SerializeUnitResult(item.unit_index, unit);
      int copies =
          net_fires && net_fault.kind == NetFaultKind::kStaleDuplicateResult
              ? 2
              : 1;
      std::lock_guard<std::mutex> lock(write_mutex);
      for (int i = 0; i < copies; ++i) {
        if (!WriteFabricFrame(fd, FabricMsg::kResult, result)) {
          std::_Exit(5);  // coordinator went away; nothing left to report to
        }
      }
    }
  };

  std::atomic<bool> heartbeat_stop{false};
  auto heartbeat_main = [&]() {
    // Tick at a fraction of the interval so shutdown and un-muting are
    // noticed promptly without a condition variable.
    double last_sent = 0.0;
    while (!heartbeat_stop.load(std::memory_order_relaxed)) {
      double now = NowSeconds();
      bool muted = static_cast<int64_t>(now * 1000.0) <
                   heartbeat_mute_until_ms.load(std::memory_order_relaxed);
      if (!muted && now - last_sent >= heartbeat_interval) {
        std::lock_guard<std::mutex> lock(write_mutex);
        // A failed heartbeat means the coordinator is gone; the reader loop
        // will see EOF and wind the agent down — no need to act here.
        WriteFabricFrame(fd, FabricMsg::kHeartbeat, std::string());
        last_sent = now;
      }
      SleepSeconds(std::min(0.05, heartbeat_interval / 2.0));
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(agent.threads));
  for (int i = 0; i < agent.threads; ++i) {
    workers.emplace_back(worker_main);
  }
  std::thread heartbeat_thread(heartbeat_main);

  // RAII teardown for every exit path below: stop and join the pool before
  // the lambdas' captures go out of scope.
  auto shutdown_pool = [&]() {
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      stop = true;
      queue.clear();  // undelivered dispatches die with the connection
    }
    queue_cv.notify_all();
    heartbeat_stop.store(true, std::memory_order_relaxed);
    for (std::thread& worker : workers) {
      if (worker.joinable()) {
        worker.join();
      }
    }
    if (heartbeat_thread.joinable()) {
      heartbeat_thread.join();
    }
  };

  // ---- Reader loop ----------------------------------------------------------

  int exit_code = 0;
  for (;;) {
    FabricRead status = ReadFabricFrame(fd, &type, &payload);
    if (status != FabricRead::kOk) {
      ZLOG_WARN << "campaign agent " << agent.agent_index
                << ": coordinator connection lost";
      exit_code = 8;
      break;
    }
    if (type == FabricMsg::kShutdown) {
      break;
    }
    if (type != FabricMsg::kDispatch) {
      continue;  // heartbeat echoes etc. — nothing for an agent to do
    }
    size_t newline = payload.find('\n');
    std::vector<std::string> head = StrSplit(payload.substr(0, newline), ' ');
    int64_t unit_index = -1;
    int64_t attempt = 0;
    if (head.size() < 2 || !ParseInt64(head[0], &unit_index) ||
        !ParseInt64(head[1], &attempt) || unit_index < 0 ||
        static_cast<size_t>(unit_index) >= units.size()) {
      ZLOG_WARN << "campaign agent " << agent.agent_index
                << ": malformed dispatch; ignoring";
      continue;
    }
    AgentWorkItem item;
    item.unit_index = static_cast<size_t>(unit_index);
    item.attempt = static_cast<int>(attempt);
    if (newline != std::string::npos) {
      for (const std::string& param :
           StrSplit(payload.substr(newline + 1), ',')) {
        if (!param.empty()) {
          item.unsafe.insert(param);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      queue.push_back(std::move(item));
    }
    queue_cv.notify_one();
  }

  shutdown_pool();

  if (exit_code == 0) {
    // Farewell stats: the shared cache's totals, so the coordinator can fill
    // report accounting the same way the thread-pool scheduler does.
    std::string stats;
    if (shared_cache != nullptr) {
      RunCache::Stats s = shared_cache->stats();
      stats = "cache_hits=" + Int64ToString(s.hits) + "\n" +
              "cache_misses=" + Int64ToString(s.misses) + "\n" +
              "equiv_hits=" + Int64ToString(s.equiv_hits) + "\n" +
              "canonicalized_plans=" + Int64ToString(s.canonicalized_plans) +
              "\n" + "mispredictions=" + Int64ToString(s.mispredictions) +
              "\n" + "cache_evictions=" + Int64ToString(s.evictions) + "\n" +
              "cache_load_failures=" + Int64ToString(s.load_failures);
    }
    std::lock_guard<std::mutex> lock(write_mutex);
    WriteFabricFrame(fd, FabricMsg::kStats, stats);
  }
  ::close(fd);
  return exit_code;
}

}  // namespace zebra
