// DependencyMiner — an implementation of the paper's §4 future-work item:
// "Future work could extract the relationship between different parameters
// automatically, by relying on parameter dependence analysis."
//
// The miner discovers value-conditional dependencies dynamically: for every
// enum parameter it re-runs each unit test homogeneously under each candidate
// value and diffs the parameter-read sets. A parameter read *only* under a
// particular value is a dependency of that value — e.g. the HTTPS address
// parameter is only read when the http policy is HTTPS_ONLY, which is
// exactly the manual rule the paper's authors wrote by hand.

#ifndef SRC_CORE_DEPENDENCY_MINER_H_
#define SRC_CORE_DEPENDENCY_MINER_H_

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "src/conf/conf_schema.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

struct MinedRule {
  std::string param;      // parameter whose value gates the dependency
  std::string value;      // gating value
  std::string dep_param;  // parameter read only under that value

  bool operator==(const MinedRule& other) const {
    return param == other.param && value == other.value &&
           dep_param == other.dep_param;
  }
  bool operator<(const MinedRule& other) const {
    return std::tie(param, value, dep_param) <
           std::tie(other.param, other.value, other.dep_param);
  }
};

class DependencyMiner {
 public:
  DependencyMiner(const ConfSchema& schema, const UnitTestRegistry& corpus);

  // Mines rules for every enum parameter testable in `app`. Each unit test
  // of the app is executed once per (enum param, candidate value);
  // *executions counts the runs.
  std::vector<MinedRule> MineApp(const std::string& app, int64_t* executions) const;

  // Mines rules for a single parameter across the app's unit tests.
  std::vector<MinedRule> MineParam(const std::string& app, const ParamSpec& spec,
                                   int64_t* executions) const;

  // Installs mined rules into a schema as dependency overrides, using each
  // dependency parameter's default value.
  static void InstallRules(const std::vector<MinedRule>& rules, ConfSchema& schema);

 private:
  const ConfSchema& schema_;
  const UnitTestRegistry& corpus_;
};

}  // namespace zebra

#endif  // SRC_CORE_DEPENDENCY_MINER_H_
