#include "src/core/campaign_journal.h"

#include <fcntl.h>
#include <unistd.h>

#include "src/common/error.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/core/report_io.h"
#include "src/core/worker_ipc.h"
#include "src/testkit/unit_test_registry.h"

namespace zebra {

namespace {
constexpr char kJournalMagic[] = "zebra-journal-v1";
}  // namespace

CampaignJournal::CampaignJournal(const std::string& path,
                                 const std::string& fingerprint, bool resume,
                                 SyncPolicy sync)
    : sync_(sync) {
  if (sync_.batch < 1) {
    sync_.batch = 1;
  }
  fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw Error("campaign journal: cannot open " + path);
  }
  // Constructor throws must not leak the fd.
  auto fail = [this](const std::string& message) -> Error {
    ::close(fd_);
    fd_ = -1;
    return Error(message);
  };

  off_t size = ::lseek(fd_, 0, SEEK_END);
  ::lseek(fd_, 0, SEEK_SET);
  if (!resume || size <= 0) {
    // Fresh journal (resume over a missing/empty file degenerates to fresh:
    // there is nothing to replay, which is exactly what a first run wants).
    if (::ftruncate(fd_, 0) != 0 ||
        !WriteFrame(fd_, std::string(kJournalMagic) + "\n" + fingerprint)) {
      throw fail("campaign journal: cannot initialize " + path);
    }
    ::fdatasync(fd_);
    return;
  }

  std::string header;
  if (!ReadFrame(fd_, &header)) {
    throw fail("campaign journal: unreadable header in " + path +
               " (not a journal?)");
  }
  size_t newline = header.find('\n');
  if (newline == std::string::npos ||
      header.substr(0, newline) != kJournalMagic) {
    throw fail("campaign journal: " + path + " is not a campaign journal");
  }
  if (header.substr(newline + 1) != fingerprint) {
    throw fail(
        "campaign journal: " + path +
        " was written by a different campaign (apps, corpus, or "
        "result-affecting options changed); refusing to resume from it");
  }

  // Replay the valid record prefix; stop at the first torn or corrupt record
  // and truncate the file there so the next append lands on a clean boundary.
  off_t valid_end = ::lseek(fd_, 0, SEEK_CUR);
  std::string payload;
  while (ReadFrame(fd_, &payload)) {
    size_t body_start = payload.find('\n');
    if (body_start == std::string::npos) {
      break;
    }
    std::string body = payload.substr(body_start + 1);
    if (payload.substr(0, body_start) != HashToHex(HashFnv64(body))) {
      break;
    }
    size_t unit_index = 0;
    UnitWorkResult unit;
    if (!ParseUnitResult(body, &unit_index, &unit)) {
      break;
    }
    recovered_.emplace_back(unit_index, std::move(unit));
    valid_end = ::lseek(fd_, 0, SEEK_CUR);
  }
  if (::lseek(fd_, 0, SEEK_END) != valid_end) {
    ZLOG_WARN << "campaign journal: truncating torn tail of " << path << " at "
              << valid_end << " bytes (" << recovered_.size()
              << " records recovered)";
    if (::ftruncate(fd_, valid_end) != 0) {
      throw fail("campaign journal: cannot truncate torn tail of " + path);
    }
    ::lseek(fd_, valid_end, SEEK_SET);
  }
}

CampaignJournal::~CampaignJournal() {
  Flush();
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

bool CampaignJournal::Append(size_t unit_index, const UnitWorkResult& unit) {
  if (fd_ < 0) {
    return false;
  }
  std::string body = SerializeUnitResult(unit_index, unit);
  if (!WriteFrame(fd_, HashToHex(HashFnv64(body)) + "\n" + body)) {
    // Disk full / fd revoked: the campaign is worth more than its journal.
    // Keep running un-journaled rather than aborting paid-for work.
    ZLOG_WARN << "campaign journal: append failed; journaling disabled for "
                 "the rest of this campaign";
    ++append_failures_;
    ::close(fd_);
    fd_ = -1;
    return false;
  }
  if (++pending_ >= sync_.batch) {
    Flush();
  }
  return fd_ >= 0;
}

void CampaignJournal::Flush() {
  if (fd_ < 0 || pending_ == 0) {
    return;
  }
  if (::fdatasync(fd_) != 0) {
    // Same policy as a failed write: the records may not be durable, so stop
    // pretending the journal is trustworthy past this point.
    ZLOG_WARN << "campaign journal: fdatasync failed; journaling disabled for "
                 "the rest of this campaign";
    ++append_failures_;
    ::close(fd_);
    fd_ = -1;
    return;
  }
  pending_ = 0;
}

std::string CampaignJournal::Fingerprint(const CampaignOptions& options,
                                         const UnitTestRegistry& corpus) {
  std::string desc = "apps=" + StrJoin(options.apps, ",") + "\n";
  for (const std::string& app : options.apps) {
    for (const UnitTestDef* test : corpus.ForApp(app)) {
      desc += test->id;
      desc += '\n';
    }
  }
  desc += "significance=" + DoubleToString(options.significance) + "\n";
  desc += "first_trials=" + Int64ToString(options.first_trials) + "\n";
  desc += "frequent_failure_threshold=" +
          Int64ToString(options.frequent_failure_threshold) + "\n";
  desc += "enable_pooling=" + BoolToString(options.enable_pooling) + "\n";
  desc += "enable_round_robin=" + BoolToString(options.enable_round_robin) + "\n";
  desc += "prune_unread_instances=" +
          BoolToString(options.prune_unread_instances) + "\n";
  desc += "only_params=" +
          StrJoin(std::vector<std::string>(options.only_params.begin(),
                                           options.only_params.end()),
                  ",") +
          "\n";
  desc += "exclude_params=" +
          StrJoin(std::vector<std::string>(options.exclude_params.begin(),
                                           options.exclude_params.end()),
                  ",") +
          "\n";
  desc += "static_prior=" + BoolToString(options.static_prior != nullptr) + "\n";
  desc += "shuffle_order_seed=" +
          Int64ToString(static_cast<int64_t>(options.shuffle_order_seed)) + "\n";
  return HashToHex(HashFnv64(desc));
}

}  // namespace zebra
