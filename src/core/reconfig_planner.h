// ReconfigPlanner: turns the paper's per-category guidance (§7.1 workarounds,
// §7.3 lessons) into an executable rolling-reconfiguration plan.
//
// The paper's categories of heterogeneous-unsafe parameters admit different
// online-reconfiguration strategies:
//
//  * heartbeat-like   — order matters: when DECREASING the interval update the
//                       sender(s) first; when INCREASING it update the
//                       receiver(s) first, so the sender's interval never
//                       exceeds the receiver's tolerance (§7.1 workaround).
//  * max-limit-like   — increases are safe in any order; decreases are
//                       rejected ("the administrator should simply not try to
//                       reconfigure a node to decrease the max limit").
//  * wire-format-like — no per-node order is safe (encryption, compression,
//                       checksums, protocols); requires a stop-the-world
//                       restart or per-channel format versioning (§7.3).
//  * count-like       — task/slot counts must stay consistent; same as wire.
//  * consistency-like — user-visible-only inconsistency; any order works but
//                       clients may observe stale semantics until convergence.
//  * safe             — any order.

#ifndef SRC_CORE_RECONFIG_PLANNER_H_
#define SRC_CORE_RECONFIG_PLANNER_H_

#include <map>
#include <string>
#include <vector>

namespace zebra {

enum class ReconfigCategory {
  kSafe,
  kHeartbeatLike,
  kMaxLimitLike,
  kWireFormatLike,
  kCountLike,
  kConsistencyLike,
};

const char* ReconfigCategoryName(ReconfigCategory category);

struct ParamGuidance {
  ReconfigCategory category = ReconfigCategory::kSafe;
  // For heartbeat-like parameters: which node types send/receive.
  std::vector<std::string> sender_types;
  std::vector<std::string> receiver_types;
  std::string note;
};

// Curated guidance for the Table 3 parameters (anything absent is kSafe).
const std::map<std::string, ParamGuidance>& ReconfigGuidance();

struct NodeRef {
  std::string name;  // e.g. "dn-3"
  std::string type;  // e.g. "DataNode"
};

struct ReconfigStep {
  std::string node_name;
  std::string node_type;
};

struct ReconfigPlan {
  bool feasible = false;
  ReconfigCategory category = ReconfigCategory::kSafe;
  std::vector<ReconfigStep> steps;  // node-by-node order to apply the change
  std::string rationale;            // why this order / why refused
};

// Plans a rolling reconfiguration of `param` from `old_value` to `new_value`
// across `nodes`. For numeric heartbeat-like parameters the direction of
// change picks the §7.1 ordering. Refuses (feasible=false) for categories
// with no safe incremental order, and for max-limit decreases.
ReconfigPlan PlanReconfiguration(const std::string& param, const std::string& old_value,
                                 const std::string& new_value,
                                 const std::vector<NodeRef>& nodes);

}  // namespace zebra

#endif  // SRC_CORE_RECONFIG_PLANNER_H_
