#include "src/core/sharded_campaign.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <set>

#include "src/common/error.h"
#include "src/core/report_io.h"
#include "src/core/worker_ipc.h"

namespace zebra {

CampaignReport RunShardedCampaign(const ConfSchema& schema,
                                  const UnitTestRegistry& corpus,
                                  CampaignOptions options, int workers) {
  if (workers < 1) {
    throw Error("sharded campaign requires at least one worker");
  }

  // Resolve the app list exactly as Campaign would.
  std::vector<std::string> apps = options.apps;
  if (apps.empty()) {
    std::set<std::string> discovered;
    for (const UnitTestDef& test : corpus.tests()) {
      discovered.insert(test.app);
    }
    apps.assign(discovered.begin(), discovered.end());
  }
  if (workers > static_cast<int>(apps.size())) {
    workers = static_cast<int>(apps.size());
  }

  // Round-robin partition of apps over workers.
  std::vector<std::vector<std::string>> shards(static_cast<size_t>(workers));
  for (size_t i = 0; i < apps.size(); ++i) {
    shards[i % static_cast<size_t>(workers)].push_back(apps[i]);
  }

  struct Worker {
    pid_t pid = -1;
    int read_fd = -1;
  };
  std::vector<Worker> children;

  for (const std::vector<std::string>& shard : shards) {
    int fds[2];
    if (::pipe(fds) != 0) {
      // Children forked so far are healthy: let them finish, then reap,
      // before surfacing the error. No zombies on any path.
      std::vector<pid_t> started;
      for (const Worker& worker : children) {
        std::string discard;
        ReadToEof(worker.read_fd, &discard);
        ::close(worker.read_fd);
        started.push_back(worker.pid);
      }
      ReapAll(started);
      throw Error("sharded campaign: pipe() failed");
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<pid_t> started;
      for (const Worker& worker : children) {
        std::string discard;
        ReadToEof(worker.read_fd, &discard);
        ::close(worker.read_fd);
        started.push_back(worker.pid);
      }
      ReapAll(started);
      throw Error("sharded campaign: fork() failed");
    }
    if (pid == 0) {
      // Child: run the shard in this (isolated) address space and stream the
      // serialized report back. _Exit avoids running the parent's atexit
      // hooks twice.
      ::close(fds[0]);
      CampaignOptions shard_options = options;
      shard_options.apps = shard;
      Campaign campaign(schema, corpus, shard_options);
      CampaignReport report = campaign.Run();
      std::string text = SerializeReport(report);
      if (!WriteAll(fds[1], text.data(), text.size())) {
        std::_Exit(3);  // cannot report; fail hard
      }
      ::close(fds[1]);
      std::_Exit(0);
    }
    ::close(fds[1]);
    children.push_back(Worker{pid, fds[0]});
  }

  // Parent: drain every shard pipe (EINTR-safe; a failed read marks the
  // worker bad but never aborts the loop), close all fds, then reap ALL
  // children before deciding whether to throw — an error in one shard must
  // not leak the others as zombies.
  std::vector<std::string> texts(children.size());
  std::vector<bool> read_ok(children.size(), false);
  std::vector<pid_t> pids;
  for (size_t i = 0; i < children.size(); ++i) {
    read_ok[i] = ReadToEof(children[i].read_fd, &texts[i]);
    ::close(children[i].read_fd);
    pids.push_back(children[i].pid);
  }

  std::vector<int> statuses(children.size(), -1);
  for (size_t i = 0; i < children.size(); ++i) {
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(pids[i], &status, 0);
    } while (reaped < 0 && errno == EINTR);
    statuses[i] = reaped == pids[i] ? status : -1;
  }

  std::vector<CampaignReport> reports;
  std::string first_error;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!read_ok[i]) {
      if (first_error.empty()) {
        first_error = "sharded campaign: pipe read failed";
      }
      continue;
    }
    int status = statuses[i];
    if (status < 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      if (first_error.empty()) {
        first_error = "sharded campaign: worker exited abnormally (status " +
                      std::to_string(status) + ")";
      }
      continue;
    }
    reports.push_back(DeserializeReport(texts[i]));
  }
  if (!first_error.empty()) {
    throw Error(first_error);
  }
  return MergeReports(reports);
}

}  // namespace zebra
