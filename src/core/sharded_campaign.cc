#include "src/core/sharded_campaign.h"

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <set>

#include "src/common/error.h"
#include "src/core/report_io.h"

namespace zebra {

namespace {

// Writes the whole buffer to fd, retrying on short writes.
void WriteAll(int fd, const std::string& text) {
  size_t written = 0;
  while (written < text.size()) {
    ssize_t n = ::write(fd, text.data() + written, text.size() - written);
    if (n <= 0) {
      std::_Exit(3);  // child: cannot report; fail hard
    }
    written += static_cast<size_t>(n);
  }
}

std::string ReadAll(int fd) {
  std::string text;
  char buffer[4096];
  while (true) {
    ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      throw Error("sharded campaign: pipe read failed");
    }
    if (n == 0) {
      return text;
    }
    text.append(buffer, static_cast<size_t>(n));
  }
}

}  // namespace

CampaignReport RunShardedCampaign(const ConfSchema& schema,
                                  const UnitTestRegistry& corpus,
                                  CampaignOptions options, int workers) {
  if (workers < 1) {
    throw Error("sharded campaign requires at least one worker");
  }

  // Resolve the app list exactly as Campaign would.
  std::vector<std::string> apps = options.apps;
  if (apps.empty()) {
    std::set<std::string> discovered;
    for (const UnitTestDef& test : corpus.tests()) {
      discovered.insert(test.app);
    }
    apps.assign(discovered.begin(), discovered.end());
  }
  if (workers > static_cast<int>(apps.size())) {
    workers = static_cast<int>(apps.size());
  }

  // Round-robin partition of apps over workers.
  std::vector<std::vector<std::string>> shards(static_cast<size_t>(workers));
  for (size_t i = 0; i < apps.size(); ++i) {
    shards[i % static_cast<size_t>(workers)].push_back(apps[i]);
  }

  struct Worker {
    pid_t pid = -1;
    int read_fd = -1;
  };
  std::vector<Worker> children;

  for (const std::vector<std::string>& shard : shards) {
    int fds[2];
    if (::pipe(fds) != 0) {
      throw Error("sharded campaign: pipe() failed");
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      throw Error("sharded campaign: fork() failed");
    }
    if (pid == 0) {
      // Child: run the shard in this (isolated) address space and stream the
      // serialized report back. _Exit avoids running the parent's atexit
      // hooks twice.
      ::close(fds[0]);
      CampaignOptions shard_options = options;
      shard_options.apps = shard;
      Campaign campaign(schema, corpus, shard_options);
      CampaignReport report = campaign.Run();
      WriteAll(fds[1], SerializeReport(report));
      ::close(fds[1]);
      std::_Exit(0);
    }
    ::close(fds[1]);
    children.push_back(Worker{pid, fds[0]});
  }

  // Parent: collect every shard, then reap.
  std::vector<CampaignReport> reports;
  std::string first_error;
  for (Worker& worker : children) {
    std::string text = ReadAll(worker.read_fd);
    ::close(worker.read_fd);
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      if (first_error.empty()) {
        first_error = "sharded campaign: worker exited abnormally (status " +
                      std::to_string(status) + ")";
      }
      continue;
    }
    reports.push_back(DeserializeReport(text));
  }
  if (!first_error.empty()) {
    throw Error(first_error);
  }
  return MergeReports(reports);
}

}  // namespace zebra
