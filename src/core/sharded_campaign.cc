#include "src/core/sharded_campaign.h"

#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <set>

#include "src/common/error.h"
#include "src/common/logging.h"
#include "src/core/report_io.h"
#include "src/core/watchdog.h"
#include "src/core/worker_ipc.h"

namespace zebra {

namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Evaluates the fault plan inside a freshly forked shard child, before the
// shard campaign runs. Coordinates are (shard index, test id, attempt 0):
// the sharded runner has no per-unit dispatch, so the first matching unit
// test in the shard decides. Crash and hang take the child down (the parent
// recovers the whole shard); a garbled report exercises the parent's
// deserialize-failure path; slow just delays the shard.
void MaybeInjectShardFault(const FaultPlan& faults, int shard_index,
                           const std::vector<std::string>& shard,
                           const UnitTestRegistry& corpus, int report_fd) {
  if (faults.empty()) {
    return;
  }
  for (const std::string& app : shard) {
    for (const UnitTestDef* test : corpus.ForApp(app)) {
      FaultSpec fault;
      if (!faults.Decide(shard_index, test->id, 0, &fault)) {
        continue;
      }
      switch (fault.kind) {
        case FaultKind::kCrash:
          std::_Exit(13);  // simulated worker crash
        case FaultKind::kHang:
          for (;;) {
            ::pause();  // simulated deadlock; only SIGKILL gets us out
          }
        case FaultKind::kGarbledFrame:
          // A clean exit with a report DeserializeReport must reject.
          WriteAll(report_fd, "!!not-a-report!!", 16);
          std::_Exit(0);
        case FaultKind::kSlowWorker: {
          struct timespec delay;
          delay.tv_sec = static_cast<time_t>(fault.slow_seconds);
          delay.tv_nsec = static_cast<long>(
              (fault.slow_seconds - static_cast<double>(delay.tv_sec)) * 1e9);
          ::nanosleep(&delay, nullptr);
          return;  // then run the shard normally
        }
      }
    }
  }
}

}  // namespace

CampaignReport RunShardedCampaign(const ConfSchema& schema,
                                  const UnitTestRegistry& corpus,
                                  CampaignOptions options, int workers) {
  ShardedCampaignOptions sharded;
  sharded.workers = workers;
  return RunShardedCampaign(schema, corpus, std::move(options), sharded);
}

CampaignReport RunShardedCampaign(const ConfSchema& schema,
                                  const UnitTestRegistry& corpus,
                                  CampaignOptions options,
                                  const ShardedCampaignOptions& sharded) {
  int workers = sharded.workers;
  if (workers < 1) {
    throw Error("sharded campaign requires at least one worker");
  }

  // Resolve the app list exactly as Campaign would.
  std::vector<std::string> apps = options.apps;
  if (apps.empty()) {
    std::set<std::string> discovered;
    for (const UnitTestDef& test : corpus.tests()) {
      discovered.insert(test.app);
    }
    apps.assign(discovered.begin(), discovered.end());
  }
  if (workers > static_cast<int>(apps.size())) {
    workers = static_cast<int>(apps.size());
  }

  // Round-robin partition of apps over workers.
  std::vector<std::vector<std::string>> shards(static_cast<size_t>(workers));
  for (size_t i = 0; i < apps.size(); ++i) {
    shards[i % static_cast<size_t>(workers)].push_back(apps[i]);
  }

  struct Child {
    pid_t pid = -1;
    int read_fd = -1;
    double start_seconds = 0.0;
    std::string text;
    bool read_ok = true;
    bool done = false;
    bool killed = false;  // watchdog SIGKILL already delivered
  };
  std::vector<Child> children;

  // Writes to a log fd (or anywhere else) while a shard pipe's reader is
  // gone must surface as errors, not parent death.
  ScopedIgnoreSigPipe sigpipe_guard;

  for (size_t shard_index = 0; shard_index < shards.size(); ++shard_index) {
    const std::vector<std::string>& shard = shards[shard_index];
    int fds[2];
    if (::pipe(fds) != 0) {
      // Children forked so far are healthy: let them finish, then reap,
      // before surfacing the error. No zombies on any path.
      std::vector<pid_t> started;
      for (const Child& child : children) {
        std::string discard;
        ReadToEof(child.read_fd, &discard);
        ::close(child.read_fd);
        started.push_back(child.pid);
      }
      ReapAll(started);
      throw Error("sharded campaign: pipe() failed");
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      ::close(fds[0]);
      ::close(fds[1]);
      std::vector<pid_t> started;
      for (const Child& child : children) {
        std::string discard;
        ReadToEof(child.read_fd, &discard);
        ::close(child.read_fd);
        started.push_back(child.pid);
      }
      ReapAll(started);
      throw Error("sharded campaign: fork() failed");
    }
    if (pid == 0) {
      // Child: run the shard in this (isolated) address space and stream the
      // serialized report back. _Exit avoids running the parent's atexit
      // hooks twice.
      ::close(fds[0]);
      for (const Child& sibling : children) {
        ::close(sibling.read_fd);
      }
      MaybeInjectShardFault(sharded.faults, static_cast<int>(shard_index),
                            shard, corpus, fds[1]);
      CampaignOptions shard_options = options;
      shard_options.apps = shard;
      Campaign campaign(schema, corpus, shard_options);
      CampaignReport report = campaign.Run();
      std::string text = SerializeReport(report);
      if (!WriteAll(fds[1], text.data(), text.size())) {
        std::_Exit(3);  // cannot report; fail hard
      }
      ::close(fds[1]);
      std::_Exit(0);
    }
    ::close(fds[1]);
    Child child;
    child.pid = pid;
    child.read_fd = fds[0];
    child.start_seconds = NowSeconds();
    children.push_back(child);
  }

  // Parent: poll-drain every shard pipe under a watchdog deadline (floor +
  // multiplier * p95 of completed shard durations, adapting as shards
  // finish). A hung shard is SIGKILLed — its EOF then arrives like any
  // crashed worker's — so one deadlock delays the campaign by at most one
  // deadline, never forever. A failed read marks the worker bad but never
  // aborts the loop.
  int64_t hung_workers = 0;
  std::vector<double> shard_durations;
  size_t open_children = children.size();
  while (open_children > 0) {
    std::vector<struct pollfd> poll_fds;
    std::vector<size_t> poll_children;
    for (size_t i = 0; i < children.size(); ++i) {
      if (!children[i].done) {
        poll_fds.push_back({children[i].read_fd, POLLIN, 0});
        poll_children.push_back(i);
      }
    }

    double deadline = WatchdogDeadlineSeconds(options.watchdog_floor_seconds,
                                              options.watchdog_multiplier,
                                              shard_durations);
    int timeout_ms = -1;
    double t = NowSeconds();
    if (deadline > 0) {
      double earliest = -1.0;
      for (size_t i : poll_children) {
        double until = children[i].start_seconds + deadline;
        earliest = earliest < 0 ? until : std::min(earliest, until);
      }
      timeout_ms = static_cast<int>(
          std::ceil(std::max(0.0, earliest - t) * 1000.0));
      timeout_ms = std::max(timeout_ms, 1);
    }

    int ready;
    do {
      ready = ::poll(poll_fds.data(), poll_fds.size(), timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready < 0) {
      // Keep draining with blocking reads rather than abandoning children.
      for (size_t i : poll_children) {
        Child& child = children[i];
        child.read_ok = ReadToEof(child.read_fd, &child.text) && child.read_ok;
        ::close(child.read_fd);
        child.done = true;
        --open_children;
      }
      break;
    }

    for (size_t slot = 0; slot < poll_fds.size(); ++slot) {
      if (poll_fds[slot].revents == 0) {
        continue;
      }
      Child& child = children[poll_children[slot]];
      char buffer[65536];
      ssize_t n;
      do {
        n = ::read(child.read_fd, buffer, sizeof(buffer));
      } while (n < 0 && errno == EINTR);
      if (n > 0) {
        child.text.append(buffer, static_cast<size_t>(n));
      } else {
        if (n < 0) {
          child.read_ok = false;
        } else if (!child.killed) {
          shard_durations.push_back(NowSeconds() - child.start_seconds);
        }
        ::close(child.read_fd);
        child.done = true;
        --open_children;
      }
    }

    if (deadline > 0) {
      double after = NowSeconds();
      for (size_t i : poll_children) {
        Child& child = children[i];
        if (child.done || child.killed ||
            after - child.start_seconds < deadline) {
          continue;
        }
        ZLOG_WARN << "sharded campaign: watchdog SIGKILL — shard " << i
                  << " exceeded " << deadline << "s deadline";
        ::kill(child.pid, SIGKILL);
        child.killed = true;  // EOF arrives on the next poll round
        ++hung_workers;
      }
    }
  }

  // Reap ALL children before deciding anything — an error in one shard must
  // not leak the others as zombies.
  std::vector<int> statuses(children.size(), -1);
  for (size_t i = 0; i < children.size(); ++i) {
    int status = 0;
    pid_t reaped;
    do {
      reaped = ::waitpid(children[i].pid, &status, 0);
    } while (reaped < 0 && errno == EINTR);
    statuses[i] = reaped == children[i].pid ? status : -1;
  }

  // A shard is healthy only if its pipe drained cleanly, the child exited 0,
  // and its report parses. Everything else — crash, watchdog kill, torn or
  // garbled report — is recovered by re-running the shard's apps
  // sequentially in this process: shard campaigns are deterministic, so the
  // recovered report is exactly what the lost worker would have produced.
  std::vector<CampaignReport> reports;
  int64_t requeued_units = 0;
  for (size_t i = 0; i < children.size(); ++i) {
    bool healthy = children[i].read_ok && !children[i].killed &&
                   statuses[i] >= 0 && WIFEXITED(statuses[i]) &&
                   WEXITSTATUS(statuses[i]) == 0;
    if (healthy) {
      try {
        reports.push_back(DeserializeReport(children[i].text));
        continue;
      } catch (const Error&) {
        healthy = false;  // garbled report: fall through to recovery
      }
    }
    ZLOG_WARN << "sharded campaign: shard " << i
              << " failed (status " << statuses[i]
              << "); re-running its apps in the parent";
    CampaignOptions shard_options = options;
    shard_options.apps = shards[i];
    Campaign campaign(schema, corpus, shard_options);
    reports.push_back(campaign.Run());
    ++requeued_units;
  }

  CampaignReport merged = MergeReports(reports);
  merged.hung_workers += hung_workers;
  merged.requeued_units += requeued_units;
  return merged;
}

}  // namespace zebra
