#include "src/core/distributed_campaign.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#if defined(__GLIBC__)
#include <malloc.h>  // malloc_trim before forking the fleet
#endif

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/common/error.h"
#include "src/common/logging.h"
#include "src/conf/conf_agent.h"
#include "src/common/strings.h"
#include "src/core/campaign_agent.h"
#include "src/core/campaign_journal.h"
#include "src/core/fabric_wire.h"
#include "src/core/report_io.h"
#include "src/core/watchdog.h"
#include "src/core/worker_ipc.h"

namespace zebra {

namespace {

struct WorkUnit {
  size_t app_index = 0;
  const UnitTestDef* test = nullptr;
};

// One unit of in-flight ownership. The lease — not the connection, not the
// agent — is what folding waits on; everything the requeue path needs to
// redo the work travels with it.
struct Lease {
  int attempt = 0;
  double dispatch_seconds = 0.0;
  double deadline_seconds = 0.0;  // watchdog budget (0 = no deadline)
};

struct AgentConn {
  int fd = -1;
  pid_t pid = -1;  // spawned agents only; -1 for remote --connect agents
  int index = -1;
  int threads = 1;  // from the agent's kHello; capacity = threads x depth
  double last_heartbeat = 0.0;
  bool alive = false;
  std::map<size_t, Lease> leases;

  // Snapshot-delta bookkeeping: the epoch (and set) this agent holds, as
  // far as the coordinator knows. -1 = holds nothing (fresh connection, or
  // a nack told us its state is unprovable) — the next dispatch is a full
  // send. Updated optimistically after a successful batch write; a wrong
  // guess is harmless because the agent nacks anything it cannot apply.
  int64_t snap_epoch = -1;
  std::set<std::string> snap_set;
};

// RAII over the whole fleet: every exit path (including exceptions mid-
// handshake) closes every fd and kills + reaps every spawned agent still
// owned here. Graceful shutdown hands pids over (sets them -1) before this
// runs, so the destructor is a no-op on the happy path.
struct Fleet {
  int listen_fd = -1;
  std::vector<pid_t> spawned;  // not yet adopted into an AgentConn
  std::vector<AgentConn> agents;

  ~Fleet() {
    if (listen_fd >= 0) {
      ::close(listen_fd);
    }
    std::vector<pid_t> pending;
    for (AgentConn& agent : agents) {
      if (agent.fd >= 0) {
        ::close(agent.fd);
      }
      if (agent.pid > 0) {
        ::kill(agent.pid, SIGKILL);
        pending.push_back(agent.pid);
      }
    }
    for (pid_t pid : spawned) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        pending.push_back(pid);
      }
    }
    ReapAll(pending);  // best effort; exit status no longer matters here
  }
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t ParseStatLine(const std::string& line, const char* key) {
  std::string prefix = std::string(key) + "=";
  if (line.rfind(prefix, 0) != 0) {
    return -1;
  }
  int64_t value = 0;
  return ParseInt64(line.substr(prefix.size()), &value) ? value : -1;
}

}  // namespace

CampaignReport RunDistributedCampaign(
    const ConfSchema& schema, const UnitTestRegistry& corpus,
    CampaignOptions options, const DistributedCampaignOptions& fabric) {
  if (fabric.agents < 1 || fabric.agent_threads < 1) {
    throw Error("distributed campaign requires agents >= 1 and threads >= 1");
  }
  if (fabric.pipeline_depth < 1) {
    throw Error("distributed campaign requires pipeline_depth >= 1");
  }
  auto start = std::chrono::steady_clock::now();

  // Coordinator-side engine: canonical app order and enumeration-stage
  // counts only; no unit executes in this process.
  Campaign engine(schema, corpus, std::move(options));
  const std::vector<std::string>& apps = engine.options().apps;
  const CampaignOptions& resolved = engine.options();
  const std::string schema_hash =
      HashToHex(HashFnv64(CampaignJournal::Fingerprint(resolved, corpus)));

  std::vector<WorkUnit> units;
  std::vector<int> units_per_app(apps.size(), 0);
  for (size_t app_index = 0; app_index < apps.size(); ++app_index) {
    for (const UnitTestDef* test : corpus.ForApp(apps[app_index])) {
      units.push_back(WorkUnit{app_index, test});
      ++units_per_app[app_index];
    }
  }

  CampaignFolder folder(schema, resolved);
  size_t apps_begun = 0;
  auto begin_apps_through = [&](size_t app_index_exclusive) {
    while (apps_begun < app_index_exclusive) {
      const std::string& app = apps[apps_begun];
      folder.BeginApp(app, engine.generator().OriginalInstanceCount(app),
                      engine.generator().StaticPrunedInstanceCount(app),
                      units_per_app[apps_begun]);
      ++apps_begun;
    }
  };

  size_t cursor = 0;
  int64_t hung_workers = 0;
  int64_t requeued_units = 0;
  int64_t resumed_units = 0;
  int64_t agent_disconnects = 0;
  int64_t expired_leases = 0;
  int64_t duplicate_results = 0;

  // Journal replay before the fleet exists, so the remaining dispatch is
  // exactly the uninterrupted campaign's suffix (same shape as the
  // single-box schedulers; replay and live results share one fold).
  std::unique_ptr<CampaignJournal> journal;
  if (!fabric.journal_path.empty()) {
    journal = std::make_unique<CampaignJournal>(
        fabric.journal_path, CampaignJournal::Fingerprint(resolved, corpus),
        fabric.resume, CampaignJournal::SyncPolicy{fabric.journal_sync_batch});
    for (const auto& [index, unit] : journal->recovered()) {
      if (index != cursor || cursor >= units.size()) {
        ZLOG_WARN << "campaign journal: record out of canonical order; "
                     "ignoring the rest of the recovered prefix";
        break;
      }
      begin_apps_through(units[cursor].app_index + 1);
      folder.Fold(unit);
      ++cursor;
      ++resumed_units;
    }
    if (resumed_units > 0) {
      ZLOG_INFO << "campaign journal: resumed " << resumed_units << " of "
                << units.size() << " units from " << fabric.journal_path;
    }
  }

  size_t remaining = units.size() - cursor;
  bool stopped = false;  // abort_after_folds hook or cancel_flag
  std::set<size_t> poisoned;

  // Per-agent cache stats summed from kStats farewells (shared-cache mode
  // skips per-unit deltas, exactly like the thread-pool scheduler).
  int64_t cache_hits = 0, cache_misses = 0, equiv_hits = 0;
  int64_t canonicalized_plans = 0, mispredictions = 0, cache_evictions = 0;
  int64_t cache_load_failures = 0;

  ScopedIgnoreSigPipe sigpipe_guard;
  Fleet fleet;

  if (remaining > 0) {
    int agent_count =
        std::min<int>(fabric.agents, static_cast<int>(remaining));

    std::string listen_host = "127.0.0.1";
    uint16_t listen_port = 0;
    if (!fabric.listen_address.empty() &&
        !ParseHostPort(fabric.listen_address, &listen_host, &listen_port)) {
      throw Error("distributed campaign: malformed --listen address '" +
                  fabric.listen_address + "'");
    }
    uint16_t bound_port = 0;
    fleet.listen_fd = ListenTcp(listen_host, listen_port, &bound_port);
    if (fleet.listen_fd < 0) {
      throw Error("distributed campaign: cannot listen on " + listen_host +
                  ":" + Int64ToString(listen_port));
    }

    if (fabric.spawn_agents) {
#if defined(__GLIBC__)
      // Return free heap pages to the OS before forking. A long-lived
      // coordinator process accumulates freed-but-dirty allocator pages;
      // every agent child that reuses them pays a copy-on-write fault per
      // page, a per-agent tax that scales with the parent's heap history,
      // not with the campaign. Trimming makes the fork cost depend only on
      // live state.
      ::malloc_trim(0);
#endif
      // Fork before any coordinator thread or poll state exists; each child
      // becomes a full agent process and never returns here.
      fleet.spawned.assign(static_cast<size_t>(agent_count), -1);
      for (int i = 0; i < agent_count; ++i) {
        pid_t pid = ::fork();
        if (pid < 0) {
          throw Error("distributed campaign: fork() failed");
        }
        if (pid == 0) {
          ::close(fleet.listen_fd);
          fleet.listen_fd = -1;
          fleet.spawned.clear();  // the child owns no siblings
          CampaignAgentOptions agent_options;
          agent_options.host = "127.0.0.1";
          agent_options.port = bound_port;
          agent_options.agent_index = i;
          agent_options.threads = fabric.agent_threads;
          agent_options.faults = fabric.faults;
          agent_options.net_faults = fabric.net_faults;
          agent_options.cache_dir = fabric.agent_cache_dir;
          std::_Exit(
              RunCampaignAgent(schema, corpus, resolved, agent_options));
        }
        fleet.spawned[static_cast<size_t>(i)] = pid;
      }
    }

    // ---- Handshake: assemble the fleet --------------------------------------
    double handshake_deadline = NowSeconds() + fabric.handshake_timeout_seconds;
    std::set<int> seen_indices;
    while (static_cast<int>(fleet.agents.size()) < agent_count) {
      double left = handshake_deadline - NowSeconds();
      if (left <= 0) {
        throw Error("distributed campaign: only " +
                    Int64ToString(static_cast<int64_t>(fleet.agents.size())) +
                    " of " + Int64ToString(agent_count) +
                    " agents completed the handshake in time");
      }
      struct pollfd listen_poll = {fleet.listen_fd, POLLIN, 0};
      int ready;
      do {
        ready = ::poll(&listen_poll, 1,
                       static_cast<int>(std::ceil(left * 1000.0)));
      } while (ready < 0 && errno == EINTR);
      if (ready <= 0) {
        continue;  // loop re-checks the deadline
      }
      int fd = AcceptTcp(fleet.listen_fd);
      if (fd < 0) {
        continue;
      }
      // One frame of patience for the hello; a connector that stalls or
      // garbles it is dropped, not waited on.
      struct pollfd hello_poll = {fd, POLLIN, 0};
      do {
        ready = ::poll(&hello_poll, 1, 5000);
      } while (ready < 0 && errno == EINTR);
      FabricMsg type;
      std::string payload;
      FabricRead hello_status =
          ready <= 0 ? FabricRead::kError
                     : ReadFabricFrame(fd, &type, &payload);
      if (hello_status == FabricRead::kVersionMismatch) {
        // An intact frame from another protocol era — refuse it by name. An
        // older peer cannot parse a v2 reject frame, but it does see the
        // close and gives up; a future peer reads the reason verbatim.
        ZLOG_WARN << "distributed campaign: connector speaks a different "
                     "wire protocol version; rejecting";
        WriteFabricFrame(fd, FabricMsg::kReject, "protocol version mismatch");
        ::close(fd);
        continue;
      }
      if (hello_status != FabricRead::kOk || type != FabricMsg::kHello) {
        ::close(fd);
        continue;
      }
      std::vector<std::string> hello = StrSplit(payload, '\n');
      int64_t threads = 0;
      int64_t index = -1;
      if (hello.size() < 3 || !ParseInt64(hello[1], &threads) ||
          !ParseInt64(hello[2], &index) || threads < 1 || index < 0) {
        WriteFabricFrame(fd, FabricMsg::kReject, "malformed hello");
        ::close(fd);
        continue;
      }
      if (hello[0] != schema_hash) {
        // An agent over a different corpus/options would return results that
        // parse but corrupt the fold — refuse at the door.
        ZLOG_WARN << "distributed campaign: agent " << index
                  << " schema hash mismatch; rejecting";
        WriteFabricFrame(fd, FabricMsg::kReject, "schema hash mismatch");
        ::close(fd);
        continue;
      }
      if (!seen_indices.insert(static_cast<int>(index)).second) {
        WriteFabricFrame(fd, FabricMsg::kReject, "duplicate agent index");
        ::close(fd);
        continue;
      }
      if (!WriteFabricFrame(fd, FabricMsg::kWelcome,
                            Int64ToString(index) + "\n" +
                                DoubleToString(
                                    fabric.heartbeat_interval_seconds))) {
        ::close(fd);
        continue;
      }
      AgentConn conn;
      conn.fd = fd;
      conn.index = static_cast<int>(index);
      conn.threads = static_cast<int>(threads);
      conn.last_heartbeat = NowSeconds();
      conn.alive = true;
      if (fabric.spawn_agents && index >= 0 &&
          static_cast<size_t>(index) < fleet.spawned.size()) {
        conn.pid = fleet.spawned[static_cast<size_t>(index)];
        fleet.spawned[static_cast<size_t>(index)] = -1;  // adopted
      }
      fleet.agents.push_back(conn);
    }
    ZLOG_INFO << "distributed campaign: fleet assembled — " << agent_count
              << " agents x " << fabric.agent_threads << " threads on port "
              << bound_port;

    // ---- Dispatch / fold loop -----------------------------------------------

    std::deque<size_t> queue;
    for (size_t i = cursor; i < units.size(); ++i) {
      queue.push_back(i);
    }

    // Every result arrives stamped with the epoch of the snapshot it
    // actually executed under (the agent reads the freshest applied set at
    // execution start, not at dispatch); staleness is judged against that
    // epoch's set, looked up in epoch_sets below.
    struct BufferedResult {
      UnitWorkResult unit;
      int64_t epoch = 0;
    };
    std::map<size_t, BufferedResult> buffered;

    // Snapshot delta state. The coordinator-side epoch ticks whenever the
    // globally-unsafe set changes (it only ever grows today, but the delta
    // encoding carries removals too); each AgentConn remembers the epoch it
    // last successfully sent, so steady-state dispatches carry a few bytes
    // of delta instead of the whole set. epoch_sets keeps every epoch's set
    // for the staleness check — one entry per distinct set the campaign ever
    // produced, never pruned (bounded by the number of unsafe params found).
    int64_t coord_epoch = 0;
    std::set<std::string> coord_set;
    std::map<int64_t, std::set<std::string>> epoch_sets;
    epoch_sets[0] = {};
    std::vector<int> attempts(units.size(), 0);
    std::vector<double> not_before(units.size(), 0.0);
    std::vector<double> completion_seconds;
    int live_folds = 0;

    auto alive_agents = [&]() {
      int alive = 0;
      for (const AgentConn& agent : fleet.agents) {
        alive += agent.alive ? 1 : 0;
      }
      return alive;
    };

    // Requeue one expired lease through the PR 4 policy: bump the attempt,
    // quarantine past the limit, otherwise back off and head-queue.
    auto requeue_lease = [&](size_t unit_index) {
      ++expired_leases;
      ++attempts[unit_index];
      if (attempts[unit_index] >= resolved.unit_attempt_limit) {
        ZLOG_WARN << "distributed campaign: unit "
                  << units[unit_index].test->id << " failed "
                  << attempts[unit_index]
                  << " attempts; quarantining as poisoned";
        poisoned.insert(unit_index);
        return;
      }
      double backoff = std::min(resolved.requeue_backoff_cap_seconds,
                                resolved.requeue_backoff_seconds *
                                    std::pow(2.0, attempts[unit_index] - 1));
      not_before[unit_index] = NowSeconds() + std::max(0.0, backoff);
      queue.push_front(unit_index);
      ++requeued_units;
    };

    // Retiring an agent is all-or-nothing: every lease it held expires, the
    // connection closes, and a spawned process is SIGKILLed (it may be
    // merely silent, not dead — a kill on an already-dead pid is free) and
    // reaped so nothing zombies.
    auto retire_agent = [&](AgentConn& agent, const char* reason) {
      ++agent_disconnects;
      std::vector<size_t> held;
      for (const auto& [unit_index, lease] : agent.leases) {
        held.push_back(unit_index);
      }
      agent.leases.clear();
      // Descending push_front keeps the expired wave in canonical order at
      // the head of the queue (the fold waits on the smallest index).
      std::sort(held.rbegin(), held.rend());
      for (size_t unit_index : held) {
        requeue_lease(unit_index);
      }
      if (agent.fd >= 0) {
        ::close(agent.fd);
        agent.fd = -1;
      }
      if (agent.pid > 0) {
        ::kill(agent.pid, SIGKILL);
        ReapAll({agent.pid});
        agent.pid = -1;
      }
      agent.alive = false;
      ZLOG_INFO << "distributed campaign: agent " << agent.index << " "
                << reason << ", " << alive_agents() << " remaining";
    };

    auto is_stale = [&](const BufferedResult& result) {
      // The epoch is guaranteed present: the read pass retires any agent
      // that stamps a result with an epoch this coordinator never issued.
      const std::set<std::string>& snapshot = epoch_sets.at(result.epoch);
      for (const std::string& param : result.unit.params_tested) {
        if (folder.globally_unsafe().count(param) > 0 &&
            snapshot.count(param) == 0) {
          return true;
        }
      }
      return false;
    };

    // Local exact re-run for stale cursor units. When the fold reaches a
    // buffered result whose stamped snapshot missed a now-unsafe parameter,
    // the unit must re-run — but at the cursor the fold has already folded
    // every predecessor, so folder.globally_unsafe() IS the exact set a
    // sequential campaign would hand this unit. Re-running it right here,
    // in-process, under that set is therefore final (never stale again) and
    // skips the redispatch round-trip that would otherwise stall the fold —
    // the dominant tax of speculative execution over a real wire. The
    // engine is built lazily (most campaigns at depth 1 never need it) and
    // uncached, so the folded cache counters stay zero as in every
    // shared-cache scheduler (the agents' farewells own those totals).
    std::unique_ptr<ScopedThreadConfAgent> local_scope;
    std::unique_ptr<Campaign> local_engine;
    auto rerun_exact = [&](size_t unit_index) {
      if (!local_engine) {
        CampaignOptions local_options = resolved;
        local_options.enable_run_cache = false;
        local_scope = std::make_unique<ScopedThreadConfAgent>();
        local_engine =
            std::make_unique<Campaign>(schema, corpus, local_options);
      }
      return local_engine->RunUnit(*units[unit_index].test,
                                   folder.globally_unsafe());
    };

    // Identical fold/staleness contract to the single-box dynamic
    // schedulers — a stale buffered result never folds (staleness is
    // monotone; see parallel_scheduler.cc for the full argument) — but the
    // remedy differs: stale results stay buffered until the cursor reaches
    // them and are then re-run locally under the exact fold-point set,
    // instead of being re-queued to agents for another speculative (and
    // possibly again-stale) round-trip.
    auto advance_fold = [&]() {
      while (cursor < units.size()) {
        if (poisoned.count(cursor) > 0) {
          begin_apps_through(units[cursor].app_index + 1);
          UnitWorkResult stub;
          stub.app = apps[units[cursor].app_index];
          stub.test_id = units[cursor].test->id;
          folder.Fold(stub);
          if (journal) {
            journal->Append(cursor, stub);
          }
          ++cursor;
          continue;
        }
        auto it = buffered.find(cursor);
        if (it == buffered.end()) {
          break;
        }
        if (is_stale(it->second)) {
          ZLOG_INFO << "distributed campaign: re-running unit "
                    << it->second.unit.test_id
                    << " locally (stale globally-unsafe snapshot)";
          it->second.unit = rerun_exact(cursor);
        }
        begin_apps_through(units[cursor].app_index + 1);
        folder.Fold(it->second.unit);
        if (journal) {
          journal->Append(cursor, it->second.unit);
        }
        buffered.erase(it);
        ++cursor;
        ++live_folds;
        if (fabric.abort_after_folds > 0 &&
            live_folds >= fabric.abort_after_folds) {
          stopped = true;  // simulated coordinator crash (test hook)
          return;
        }
      }
    };

    while (cursor < units.size() && !stopped) {
      if (resolved.cancel_flag != nullptr && *resolved.cancel_flag != 0) {
        ZLOG_WARN << "distributed campaign: cancellation requested; stopping "
                     "after "
                  << cursor << " of " << units.size() << " units";
        stopped = true;
        break;
      }
      if (alive_agents() == 0) {
        throw Error("distributed campaign: all agents died");
      }

      // Refresh the epoch before dispatching. An agent applies whatever
      // snapshot it last received and its workers read it at execution
      // start, so any epoch a result can carry names a set the coordinator
      // folded at some earlier point — always a subset of the current
      // globally-unsafe set (the fold only grows it). That is exactly the
      // validity class of the PR 9 per-lease snapshot; the staleness check
      // in advance_fold re-runs anything that missed a param, so findings
      // stay bitwise-identical while far fewer units *are* stale.
      if (folder.globally_unsafe() != coord_set) {
        coord_set = folder.globally_unsafe();
        ++coord_epoch;
        epoch_sets[coord_epoch] = coord_set;
      }

      // Dispatch: fill every agent up to its pipelined lease capacity
      // (pipeline_depth x threads — the prefetch window that keeps workers
      // busy while results fly back) with the first dispatchable units
      // (queue order preserved, backoff-held units skipped) — all in ONE
      // kDispatchBatch frame per agent: a snapshot section (full, delta, or
      // keep against the agent's last applied epoch), then the unit records.
      for (AgentConn& agent : fleet.agents) {
        if (!agent.alive) {
          continue;
        }
        const int capacity = agent.threads * fabric.pipeline_depth;
        std::vector<size_t> picked;
        while (static_cast<int>(agent.leases.size() + picked.size()) <
                   capacity &&
               !queue.empty()) {
          double t = NowSeconds();
          auto next = queue.begin();
          while (next != queue.end() && not_before[*next] > t) {
            ++next;
          }
          if (next == queue.end()) {
            break;  // every queued unit is backing off
          }
          picked.push_back(*next);
          queue.erase(next);
        }
        if (picked.empty() &&
            (agent.snap_epoch == coord_epoch || agent.leases.empty())) {
          // Nothing to send and nothing in flight that an epoch bump could
          // freshen — an idle agent learns the new set with its next unit.
          continue;
        }
        // picked may be empty here: a full agent whose snapshot fell behind
        // gets a unit-less broadcast batch, so the leases already queued on
        // it execute under the newer set instead of re-running as stale.
        std::string snapshot_record;
        if (agent.snap_epoch < 0) {
          // Fresh connection (or a nack voided its state): full send.
          snapshot_record =
              "-1 " + Int64ToString(coord_epoch) + " F\n" +
              StrJoin(
                  std::vector<std::string>(coord_set.begin(), coord_set.end()),
                  ",");
        } else if (agent.snap_epoch == coord_epoch) {
          snapshot_record = Int64ToString(coord_epoch) + " " +
                            Int64ToString(coord_epoch) + " K\n";
        } else {
          std::vector<std::string> delta;
          for (const std::string& param : coord_set) {
            if (agent.snap_set.count(param) == 0) {
              delta.push_back("+" + param);
            }
          }
          for (const std::string& param : agent.snap_set) {
            if (coord_set.count(param) == 0) {
              delta.push_back("-" + param);
            }
          }
          snapshot_record = Int64ToString(agent.snap_epoch) + " " +
                            Int64ToString(coord_epoch) + " D\n" +
                            StrJoin(delta, ",");
        }
        std::string batch;
        AppendBatchRecord(&batch, snapshot_record);
        double t = NowSeconds();
        double deadline = WatchdogDeadlineSeconds(
            resolved.watchdog_floor_seconds, resolved.watchdog_multiplier,
            completion_seconds);
        // A pipelined unit legitimately waits behind up to depth-1 queued
        // units per thread before it starts; its watchdog budget scales to
        // match. (Completion samples include that wait, so the p95 term is
        // self-correcting; the scale protects the floor-dominated regime.)
        deadline *= fabric.pipeline_depth;
        for (size_t unit_index : picked) {
          AppendBatchRecord(
              &batch, Int64ToString(static_cast<int64_t>(unit_index)) + " " +
                          Int64ToString(attempts[unit_index]));
          Lease lease;
          lease.attempt = attempts[unit_index];
          lease.dispatch_seconds = t;
          lease.deadline_seconds = deadline;
          agent.leases[unit_index] = lease;
        }
        if (!WriteFabricFrame(agent.fd, FabricMsg::kDispatchBatch, batch)) {
          // None of the leases took effect; retirement expires every one of
          // them into the requeue path.
          retire_agent(agent, "died at dispatch");
          continue;
        }
        agent.snap_epoch = coord_epoch;
        agent.snap_set = coord_set;
      }
      if (alive_agents() == 0) {
        continue;  // top of loop throws with the precise error
      }

      // Bounded poll keeps the cancel flag, watchdog, and heartbeat checks
      // responsive even when no frame arrives.
      std::vector<struct pollfd> poll_fds;
      std::vector<size_t> poll_agents;
      for (size_t i = 0; i < fleet.agents.size(); ++i) {
        if (fleet.agents[i].alive) {
          poll_fds.push_back({fleet.agents[i].fd, POLLIN, 0});
          poll_agents.push_back(i);
        }
      }
      int ready;
      do {
        ready = ::poll(poll_fds.data(), poll_fds.size(), 100);
      } while (ready < 0 && errno == EINTR);
      if (ready < 0) {
        throw Error("distributed campaign: poll() failed");
      }

      for (size_t i = 0; i < poll_fds.size(); ++i) {
        if (poll_fds[i].revents == 0) {
          continue;
        }
        AgentConn& agent = fleet.agents[poll_agents[i]];
        if (!agent.alive) {
          continue;  // retired earlier in this very pass
        }
        FabricMsg type;
        std::string payload;
        FabricRead status = ReadFabricFrame(agent.fd, &type, &payload);
        if (status == FabricRead::kEof) {
          retire_agent(agent, "disconnected");
          continue;
        }
        if (status != FabricRead::kOk) {
          retire_agent(agent, "sent a garbled frame");
          continue;
        }
        if (type == FabricMsg::kHeartbeat) {
          agent.last_heartbeat = NowSeconds();
          continue;
        }
        if (type == FabricMsg::kSnapshotNack) {
          // The agent refused units it could not prove a current snapshot
          // for (epoch mismatch — injected or real). Each refused lease
          // re-enters the queue through the requeue/backoff policy (the
          // bump-an-attempt economics every fault path shares), and the
          // agent's snapshot state is voided so its next dispatch is a full
          // resend — after which deltas resume. Line 0 is the agent's
          // epoch (log flavor only); matching is by live lease, so a stale
          // nack is as idempotent as a stale result.
          std::vector<std::string> lines = StrSplit(payload, '\n');
          std::vector<size_t> refused;
          for (size_t line = 1; line < lines.size(); ++line) {
            std::vector<std::string> head = StrSplit(lines[line], ' ');
            int64_t unit_index = -1;
            int64_t attempt = -1;
            if (head.size() < 2 || !ParseInt64(head[0], &unit_index) ||
                !ParseInt64(head[1], &attempt) || unit_index < 0) {
              continue;
            }
            auto lease_it = agent.leases.find(static_cast<size_t>(unit_index));
            if (lease_it == agent.leases.end() ||
                lease_it->second.attempt != static_cast<int>(attempt)) {
              continue;
            }
            agent.leases.erase(lease_it);
            refused.push_back(static_cast<size_t>(unit_index));
          }
          agent.snap_epoch = -1;
          // Descending push_front keeps the refused wave in canonical order
          // at the head of the queue, as in retirement.
          std::sort(refused.rbegin(), refused.rend());
          for (size_t unit_index : refused) {
            requeue_lease(unit_index);
          }
          continue;
        }
        if (type != FabricMsg::kResultBatch) {
          continue;  // stats before shutdown etc. — ignore
        }
        std::vector<std::string> batch_records;
        if (!DecodeBatchRecords(payload, &batch_records)) {
          retire_agent(agent, "sent a malformed result batch");
          continue;
        }
        for (const std::string& record : batch_records) {
          size_t newline = record.find('\n');
          std::vector<std::string> head =
              StrSplit(record.substr(0, newline), ' ');
          int64_t unit_index = -1;
          int64_t attempt = -1;
          int64_t result_epoch = -1;
          if (head.size() < 3 || !ParseInt64(head[0], &unit_index) ||
              !ParseInt64(head[1], &attempt) ||
              !ParseInt64(head[2], &result_epoch) ||
              newline == std::string::npos) {
            // Retirement clears the lease map; break so the remaining
            // records of this batch cannot miscount as duplicates.
            retire_agent(agent, "sent a malformed result");
            break;
          }
          auto lease_it = agent.leases.find(static_cast<size_t>(unit_index));
          if (lease_it == agent.leases.end() ||
              lease_it->second.attempt != static_cast<int>(attempt)) {
            // No live lease behind this completion: the stale duplicate a
            // re-sent or reassigned unit produces. Folding is driven only by
            // live leases, so dropping it here is what makes completion
            // idempotent.
            ++duplicate_results;
            continue;
          }
          size_t parsed_index = 0;
          UnitWorkResult unit;
          if (!ParseUnitResult(record.substr(newline + 1), &parsed_index,
                               &unit) ||
              parsed_index != static_cast<size_t>(unit_index)) {
            retire_agent(agent, "sent an unparseable result");
            break;
          }
          if (epoch_sets.count(result_epoch) == 0) {
            // An epoch this coordinator never issued cannot name a valid
            // snapshot — the peer is provably broken, not merely stale.
            retire_agent(agent, "reported an unknown snapshot epoch");
            break;
          }
          completion_seconds.push_back(NowSeconds() -
                                       lease_it->second.dispatch_seconds);
          buffered[parsed_index] = BufferedResult{std::move(unit), result_epoch};
          agent.leases.erase(lease_it);
        }
      }

      // Watchdog: any lease past its deadline means a unit is stuck on a
      // live, heartbeating host (an in-agent hang blocks one worker thread,
      // not the heartbeat thread) — the whole agent is retired, as the
      // forked scheduler SIGKILLs a hung worker.
      double now = NowSeconds();
      for (AgentConn& agent : fleet.agents) {
        if (!agent.alive) {
          continue;
        }
        bool hung = false;
        for (const auto& [unit_index, lease] : agent.leases) {
          if (lease.deadline_seconds > 0 &&
              now - lease.dispatch_seconds >= lease.deadline_seconds) {
            ZLOG_WARN << "distributed campaign: watchdog — agent "
                      << agent.index << " exceeded "
                      << DoubleToString(lease.deadline_seconds)
                      << "s deadline on unit " << units[unit_index].test->id;
            hung = true;
            break;
          }
        }
        if (hung) {
          ++hung_workers;
          retire_agent(agent, "hung (watchdog)");
          continue;
        }
        if (fabric.heartbeat_timeout_seconds > 0 &&
            now - agent.last_heartbeat > fabric.heartbeat_timeout_seconds) {
          retire_agent(agent, "went silent (heartbeat timeout)");
        }
      }

      advance_fold();
    }

    // ---- Graceful shutdown --------------------------------------------------
    for (AgentConn& agent : fleet.agents) {
      if (agent.alive) {
        WriteFabricFrame(agent.fd, FabricMsg::kShutdown, std::string());
      }
    }
    // Drain each surviving agent to its kStats farewell (skipping any
    // results its workers finished after the stop) and reap it cleanly.
    for (AgentConn& agent : fleet.agents) {
      if (!agent.alive) {
        continue;
      }
      bool got_farewell = false;
      double drain_deadline = NowSeconds() + 10.0;
      while (NowSeconds() < drain_deadline) {
        struct pollfd pfd = {agent.fd, POLLIN, 0};
        int ready;
        do {
          ready = ::poll(&pfd, 1, 200);
        } while (ready < 0 && errno == EINTR);
        if (ready <= 0) {
          continue;
        }
        FabricMsg type;
        std::string payload;
        if (ReadFabricFrame(agent.fd, &type, &payload) != FabricRead::kOk) {
          break;
        }
        if (type != FabricMsg::kStats) {
          continue;
        }
        for (const std::string& line : StrSplit(payload, '\n')) {
          int64_t value;
          if ((value = ParseStatLine(line, "cache_hits")) >= 0) {
            cache_hits += value;
          } else if ((value = ParseStatLine(line, "cache_misses")) >= 0) {
            cache_misses += value;
          } else if ((value = ParseStatLine(line, "equiv_hits")) >= 0) {
            equiv_hits += value;
          } else if ((value = ParseStatLine(line, "canonicalized_plans")) >=
                     0) {
            canonicalized_plans += value;
          } else if ((value = ParseStatLine(line, "mispredictions")) >= 0) {
            mispredictions += value;
          } else if ((value = ParseStatLine(line, "cache_evictions")) >= 0) {
            cache_evictions += value;
          } else if ((value = ParseStatLine(line, "cache_load_failures")) >=
                     0) {
            cache_load_failures += value;
          }
        }
        got_farewell = true;
        break;
      }
      ::close(agent.fd);
      agent.fd = -1;
      if (agent.pid > 0) {
        if (!got_farewell) {
          // The agent never said goodbye (a wedged worker thread blocks its
          // clean exit); reaping an immortal child would block forever.
          ::kill(agent.pid, SIGKILL);
        }
        ReapAll({agent.pid});
        agent.pid = -1;
      }
      agent.alive = false;
    }
  }

  if (!stopped) {
    // Apps with zero units (or nothing at all to run) still appear in the
    // report with their enumeration-stage counts, as in the sequential run.
    begin_apps_through(apps.size());
  }

  folder.report().hung_workers = hung_workers;
  folder.report().requeued_units = requeued_units;
  folder.report().resumed_units = resumed_units;
  folder.report().agent_disconnects = agent_disconnects;
  folder.report().expired_leases = expired_leases;
  folder.report().duplicate_results = duplicate_results;
  if (journal) {
    journal->Flush();
    folder.report().journal_append_failures = journal->append_failures();
  }
  for (size_t unit_index : poisoned) {
    folder.report().poisoned_units.push_back(units[unit_index].test->id);
  }
  if (resolved.enable_run_cache) {
    // Shared-cache mode skips per-unit deltas, so the folded counters are
    // zero; fill totals from the agents' farewells. Agents that died before
    // shutdown never reported — accounting, not a determinism surface.
    folder.report().cache_hits = cache_hits;
    folder.report().cache_misses = cache_misses;
    folder.report().equiv_hits = equiv_hits;
    folder.report().canonicalized_plans = canonicalized_plans;
    folder.report().mispredictions = mispredictions;
    folder.report().cache_evictions = cache_evictions;
    folder.report().cache_load_failures = cache_load_failures;
  }
  folder.report().wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return folder.Finish();
}

}  // namespace zebra
