#include "src/core/distributed_campaign.h"

#include <poll.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "src/common/error.h"
#include "src/common/logging.h"
#include "src/common/strings.h"
#include "src/core/campaign_agent.h"
#include "src/core/campaign_journal.h"
#include "src/core/fabric_wire.h"
#include "src/core/report_io.h"
#include "src/core/watchdog.h"
#include "src/core/worker_ipc.h"

namespace zebra {

namespace {

struct WorkUnit {
  size_t app_index = 0;
  const UnitTestDef* test = nullptr;
};

// One unit of in-flight ownership. The lease — not the connection, not the
// agent — is what folding waits on; everything the requeue path needs to
// redo the work travels with it.
struct Lease {
  int attempt = 0;
  std::set<std::string> snapshot;  // globally-unsafe set the unit ran under
  double dispatch_seconds = 0.0;
  double deadline_seconds = 0.0;  // watchdog budget (0 = no deadline)
};

struct AgentConn {
  int fd = -1;
  pid_t pid = -1;  // spawned agents only; -1 for remote --connect agents
  int index = -1;
  int threads = 1;  // lease capacity, from the agent's kHello
  double last_heartbeat = 0.0;
  bool alive = false;
  std::map<size_t, Lease> leases;
};

// RAII over the whole fleet: every exit path (including exceptions mid-
// handshake) closes every fd and kills + reaps every spawned agent still
// owned here. Graceful shutdown hands pids over (sets them -1) before this
// runs, so the destructor is a no-op on the happy path.
struct Fleet {
  int listen_fd = -1;
  std::vector<pid_t> spawned;  // not yet adopted into an AgentConn
  std::vector<AgentConn> agents;

  ~Fleet() {
    if (listen_fd >= 0) {
      ::close(listen_fd);
    }
    std::vector<pid_t> pending;
    for (AgentConn& agent : agents) {
      if (agent.fd >= 0) {
        ::close(agent.fd);
      }
      if (agent.pid > 0) {
        ::kill(agent.pid, SIGKILL);
        pending.push_back(agent.pid);
      }
    }
    for (pid_t pid : spawned) {
      if (pid > 0) {
        ::kill(pid, SIGKILL);
        pending.push_back(pid);
      }
    }
    ReapAll(pending);  // best effort; exit status no longer matters here
  }
};

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int64_t ParseStatLine(const std::string& line, const char* key) {
  std::string prefix = std::string(key) + "=";
  if (line.rfind(prefix, 0) != 0) {
    return -1;
  }
  int64_t value = 0;
  return ParseInt64(line.substr(prefix.size()), &value) ? value : -1;
}

}  // namespace

CampaignReport RunDistributedCampaign(
    const ConfSchema& schema, const UnitTestRegistry& corpus,
    CampaignOptions options, const DistributedCampaignOptions& fabric) {
  if (fabric.agents < 1 || fabric.agent_threads < 1) {
    throw Error("distributed campaign requires agents >= 1 and threads >= 1");
  }
  auto start = std::chrono::steady_clock::now();

  // Coordinator-side engine: canonical app order and enumeration-stage
  // counts only; no unit executes in this process.
  Campaign engine(schema, corpus, std::move(options));
  const std::vector<std::string>& apps = engine.options().apps;
  const CampaignOptions& resolved = engine.options();
  const std::string schema_hash =
      HashToHex(HashFnv64(CampaignJournal::Fingerprint(resolved, corpus)));

  std::vector<WorkUnit> units;
  std::vector<int> units_per_app(apps.size(), 0);
  for (size_t app_index = 0; app_index < apps.size(); ++app_index) {
    for (const UnitTestDef* test : corpus.ForApp(apps[app_index])) {
      units.push_back(WorkUnit{app_index, test});
      ++units_per_app[app_index];
    }
  }

  CampaignFolder folder(schema, resolved);
  size_t apps_begun = 0;
  auto begin_apps_through = [&](size_t app_index_exclusive) {
    while (apps_begun < app_index_exclusive) {
      const std::string& app = apps[apps_begun];
      folder.BeginApp(app, engine.generator().OriginalInstanceCount(app),
                      engine.generator().StaticPrunedInstanceCount(app),
                      units_per_app[apps_begun]);
      ++apps_begun;
    }
  };

  size_t cursor = 0;
  int64_t hung_workers = 0;
  int64_t requeued_units = 0;
  int64_t resumed_units = 0;
  int64_t agent_disconnects = 0;
  int64_t expired_leases = 0;
  int64_t duplicate_results = 0;

  // Journal replay before the fleet exists, so the remaining dispatch is
  // exactly the uninterrupted campaign's suffix (same shape as the
  // single-box schedulers; replay and live results share one fold).
  std::unique_ptr<CampaignJournal> journal;
  if (!fabric.journal_path.empty()) {
    journal = std::make_unique<CampaignJournal>(
        fabric.journal_path, CampaignJournal::Fingerprint(resolved, corpus),
        fabric.resume, CampaignJournal::SyncPolicy{fabric.journal_sync_batch});
    for (const auto& [index, unit] : journal->recovered()) {
      if (index != cursor || cursor >= units.size()) {
        ZLOG_WARN << "campaign journal: record out of canonical order; "
                     "ignoring the rest of the recovered prefix";
        break;
      }
      begin_apps_through(units[cursor].app_index + 1);
      folder.Fold(unit);
      ++cursor;
      ++resumed_units;
    }
    if (resumed_units > 0) {
      ZLOG_INFO << "campaign journal: resumed " << resumed_units << " of "
                << units.size() << " units from " << fabric.journal_path;
    }
  }

  size_t remaining = units.size() - cursor;
  bool stopped = false;  // abort_after_folds hook or cancel_flag
  std::set<size_t> poisoned;

  // Per-agent cache stats summed from kStats farewells (shared-cache mode
  // skips per-unit deltas, exactly like the thread-pool scheduler).
  int64_t cache_hits = 0, cache_misses = 0, equiv_hits = 0;
  int64_t canonicalized_plans = 0, mispredictions = 0, cache_evictions = 0;
  int64_t cache_load_failures = 0;

  ScopedIgnoreSigPipe sigpipe_guard;
  Fleet fleet;

  if (remaining > 0) {
    int agent_count =
        std::min<int>(fabric.agents, static_cast<int>(remaining));

    std::string listen_host = "127.0.0.1";
    uint16_t listen_port = 0;
    if (!fabric.listen_address.empty() &&
        !ParseHostPort(fabric.listen_address, &listen_host, &listen_port)) {
      throw Error("distributed campaign: malformed --listen address '" +
                  fabric.listen_address + "'");
    }
    uint16_t bound_port = 0;
    fleet.listen_fd = ListenTcp(listen_host, listen_port, &bound_port);
    if (fleet.listen_fd < 0) {
      throw Error("distributed campaign: cannot listen on " + listen_host +
                  ":" + Int64ToString(listen_port));
    }

    if (fabric.spawn_agents) {
      // Fork before any coordinator thread or poll state exists; each child
      // becomes a full agent process and never returns here.
      fleet.spawned.assign(static_cast<size_t>(agent_count), -1);
      for (int i = 0; i < agent_count; ++i) {
        pid_t pid = ::fork();
        if (pid < 0) {
          throw Error("distributed campaign: fork() failed");
        }
        if (pid == 0) {
          ::close(fleet.listen_fd);
          fleet.listen_fd = -1;
          fleet.spawned.clear();  // the child owns no siblings
          CampaignAgentOptions agent_options;
          agent_options.host = "127.0.0.1";
          agent_options.port = bound_port;
          agent_options.agent_index = i;
          agent_options.threads = fabric.agent_threads;
          agent_options.faults = fabric.faults;
          agent_options.net_faults = fabric.net_faults;
          std::_Exit(
              RunCampaignAgent(schema, corpus, resolved, agent_options));
        }
        fleet.spawned[static_cast<size_t>(i)] = pid;
      }
    }

    // ---- Handshake: assemble the fleet --------------------------------------
    double handshake_deadline = NowSeconds() + fabric.handshake_timeout_seconds;
    std::set<int> seen_indices;
    while (static_cast<int>(fleet.agents.size()) < agent_count) {
      double left = handshake_deadline - NowSeconds();
      if (left <= 0) {
        throw Error("distributed campaign: only " +
                    Int64ToString(static_cast<int64_t>(fleet.agents.size())) +
                    " of " + Int64ToString(agent_count) +
                    " agents completed the handshake in time");
      }
      struct pollfd listen_poll = {fleet.listen_fd, POLLIN, 0};
      int ready;
      do {
        ready = ::poll(&listen_poll, 1,
                       static_cast<int>(std::ceil(left * 1000.0)));
      } while (ready < 0 && errno == EINTR);
      if (ready <= 0) {
        continue;  // loop re-checks the deadline
      }
      int fd = AcceptTcp(fleet.listen_fd);
      if (fd < 0) {
        continue;
      }
      // One frame of patience for the hello; a connector that stalls or
      // garbles it is dropped, not waited on.
      struct pollfd hello_poll = {fd, POLLIN, 0};
      do {
        ready = ::poll(&hello_poll, 1, 5000);
      } while (ready < 0 && errno == EINTR);
      FabricMsg type;
      std::string payload;
      if (ready <= 0 ||
          ReadFabricFrame(fd, &type, &payload) != FabricRead::kOk ||
          type != FabricMsg::kHello) {
        ::close(fd);
        continue;
      }
      std::vector<std::string> hello = StrSplit(payload, '\n');
      int64_t threads = 0;
      int64_t index = -1;
      if (hello.size() < 3 || !ParseInt64(hello[1], &threads) ||
          !ParseInt64(hello[2], &index) || threads < 1 || index < 0) {
        WriteFabricFrame(fd, FabricMsg::kReject, "malformed hello");
        ::close(fd);
        continue;
      }
      if (hello[0] != schema_hash) {
        // An agent over a different corpus/options would return results that
        // parse but corrupt the fold — refuse at the door.
        ZLOG_WARN << "distributed campaign: agent " << index
                  << " schema hash mismatch; rejecting";
        WriteFabricFrame(fd, FabricMsg::kReject, "schema hash mismatch");
        ::close(fd);
        continue;
      }
      if (!seen_indices.insert(static_cast<int>(index)).second) {
        WriteFabricFrame(fd, FabricMsg::kReject, "duplicate agent index");
        ::close(fd);
        continue;
      }
      if (!WriteFabricFrame(fd, FabricMsg::kWelcome,
                            Int64ToString(index) + "\n" +
                                DoubleToString(
                                    fabric.heartbeat_interval_seconds))) {
        ::close(fd);
        continue;
      }
      AgentConn conn;
      conn.fd = fd;
      conn.index = static_cast<int>(index);
      conn.threads = static_cast<int>(threads);
      conn.last_heartbeat = NowSeconds();
      conn.alive = true;
      if (fabric.spawn_agents && index >= 0 &&
          static_cast<size_t>(index) < fleet.spawned.size()) {
        conn.pid = fleet.spawned[static_cast<size_t>(index)];
        fleet.spawned[static_cast<size_t>(index)] = -1;  // adopted
      }
      fleet.agents.push_back(conn);
    }
    ZLOG_INFO << "distributed campaign: fleet assembled — " << agent_count
              << " agents x " << fabric.agent_threads << " threads on port "
              << bound_port;

    // ---- Dispatch / fold loop -----------------------------------------------

    std::deque<size_t> queue;
    for (size_t i = cursor; i < units.size(); ++i) {
      queue.push_back(i);
    }

    struct BufferedResult {
      UnitWorkResult unit;
      std::set<std::string> snapshot;
    };
    std::map<size_t, BufferedResult> buffered;
    std::vector<int> attempts(units.size(), 0);
    std::vector<double> not_before(units.size(), 0.0);
    std::vector<double> completion_seconds;
    int live_folds = 0;

    auto alive_agents = [&]() {
      int alive = 0;
      for (const AgentConn& agent : fleet.agents) {
        alive += agent.alive ? 1 : 0;
      }
      return alive;
    };

    // Requeue one expired lease through the PR 4 policy: bump the attempt,
    // quarantine past the limit, otherwise back off and head-queue.
    auto requeue_lease = [&](size_t unit_index) {
      ++expired_leases;
      ++attempts[unit_index];
      if (attempts[unit_index] >= resolved.unit_attempt_limit) {
        ZLOG_WARN << "distributed campaign: unit "
                  << units[unit_index].test->id << " failed "
                  << attempts[unit_index]
                  << " attempts; quarantining as poisoned";
        poisoned.insert(unit_index);
        return;
      }
      double backoff = std::min(resolved.requeue_backoff_cap_seconds,
                                resolved.requeue_backoff_seconds *
                                    std::pow(2.0, attempts[unit_index] - 1));
      not_before[unit_index] = NowSeconds() + std::max(0.0, backoff);
      queue.push_front(unit_index);
      ++requeued_units;
    };

    // Retiring an agent is all-or-nothing: every lease it held expires, the
    // connection closes, and a spawned process is SIGKILLed (it may be
    // merely silent, not dead — a kill on an already-dead pid is free) and
    // reaped so nothing zombies.
    auto retire_agent = [&](AgentConn& agent, const char* reason) {
      ++agent_disconnects;
      std::vector<size_t> held;
      for (const auto& [unit_index, lease] : agent.leases) {
        held.push_back(unit_index);
      }
      agent.leases.clear();
      // Descending push_front keeps the expired wave in canonical order at
      // the head of the queue (the fold waits on the smallest index).
      std::sort(held.rbegin(), held.rend());
      for (size_t unit_index : held) {
        requeue_lease(unit_index);
      }
      if (agent.fd >= 0) {
        ::close(agent.fd);
        agent.fd = -1;
      }
      if (agent.pid > 0) {
        ::kill(agent.pid, SIGKILL);
        ReapAll({agent.pid});
        agent.pid = -1;
      }
      agent.alive = false;
      ZLOG_INFO << "distributed campaign: agent " << agent.index << " "
                << reason << ", " << alive_agents() << " remaining";
    };

    auto is_stale = [&](const BufferedResult& result) {
      for (const std::string& param : result.unit.params_tested) {
        if (folder.globally_unsafe().count(param) > 0 &&
            result.snapshot.count(param) == 0) {
          return true;
        }
      }
      return false;
    };

    // Identical fold/staleness logic to the single-box dynamic schedulers:
    // fold everything the canonical order allows (poisoned units as empty
    // stubs, journaled at fold time), then eagerly requeue every stale
    // buffered result (staleness is monotone — see parallel_scheduler.cc
    // for the full argument).
    auto advance_fold = [&]() {
      while (cursor < units.size()) {
        if (poisoned.count(cursor) > 0) {
          begin_apps_through(units[cursor].app_index + 1);
          UnitWorkResult stub;
          stub.app = apps[units[cursor].app_index];
          stub.test_id = units[cursor].test->id;
          folder.Fold(stub);
          if (journal) {
            journal->Append(cursor, stub);
          }
          ++cursor;
          continue;
        }
        auto it = buffered.find(cursor);
        if (it == buffered.end() || is_stale(it->second)) {
          break;
        }
        begin_apps_through(units[cursor].app_index + 1);
        folder.Fold(it->second.unit);
        if (journal) {
          journal->Append(cursor, it->second.unit);
        }
        buffered.erase(it);
        ++cursor;
        ++live_folds;
        if (fabric.abort_after_folds > 0 &&
            live_folds >= fabric.abort_after_folds) {
          stopped = true;  // simulated coordinator crash (test hook)
          return;
        }
      }
      std::vector<size_t> stale_units;
      for (const auto& [index, result] : buffered) {
        if (is_stale(result)) {
          stale_units.push_back(index);
        }
      }
      for (auto it = stale_units.rbegin(); it != stale_units.rend(); ++it) {
        ZLOG_INFO << "distributed campaign: re-running unit "
                  << buffered.at(*it).unit.test_id
                  << " (stale globally-unsafe snapshot)";
        buffered.erase(*it);
        queue.push_front(*it);
      }
    };

    while (cursor < units.size() && !stopped) {
      if (resolved.cancel_flag != nullptr && *resolved.cancel_flag != 0) {
        ZLOG_WARN << "distributed campaign: cancellation requested; stopping "
                     "after "
                  << cursor << " of " << units.size() << " units";
        stopped = true;
        break;
      }
      if (alive_agents() == 0) {
        throw Error("distributed campaign: all agents died");
      }

      // Dispatch: fill every agent up to its lease capacity with the first
      // dispatchable units (queue order preserved, backoff-held units
      // skipped). Each dispatch carries the freshest globally-unsafe
      // snapshot — a subset of the exact sequential set for any unit still
      // queued, the invariant the staleness rule leans on.
      for (AgentConn& agent : fleet.agents) {
        while (agent.alive &&
               static_cast<int>(agent.leases.size()) < agent.threads &&
               !queue.empty()) {
          double t = NowSeconds();
          auto next = queue.begin();
          while (next != queue.end() && not_before[*next] > t) {
            ++next;
          }
          if (next == queue.end()) {
            break;  // every queued unit is backing off
          }
          size_t unit_index = *next;
          queue.erase(next);
          const std::set<std::string>& unsafe = folder.globally_unsafe();
          std::string request =
              Int64ToString(static_cast<int64_t>(unit_index)) + " " +
              Int64ToString(attempts[unit_index]) + "\n" +
              StrJoin(std::vector<std::string>(unsafe.begin(), unsafe.end()),
                      ",");
          Lease lease;
          lease.attempt = attempts[unit_index];
          lease.snapshot = unsafe;
          lease.dispatch_seconds = t;
          lease.deadline_seconds = WatchdogDeadlineSeconds(
              resolved.watchdog_floor_seconds, resolved.watchdog_multiplier,
              completion_seconds);
          if (!WriteFabricFrame(agent.fd, FabricMsg::kDispatch, request)) {
            // The lease never took effect; requeue the unit through the
            // failure path via a one-entry lease map.
            agent.leases[unit_index] = lease;
            retire_agent(agent, "died at dispatch");
            break;
          }
          agent.leases[unit_index] = lease;
        }
      }
      if (alive_agents() == 0) {
        continue;  // top of loop throws with the precise error
      }

      // Bounded poll keeps the cancel flag, watchdog, and heartbeat checks
      // responsive even when no frame arrives.
      std::vector<struct pollfd> poll_fds;
      std::vector<size_t> poll_agents;
      for (size_t i = 0; i < fleet.agents.size(); ++i) {
        if (fleet.agents[i].alive) {
          poll_fds.push_back({fleet.agents[i].fd, POLLIN, 0});
          poll_agents.push_back(i);
        }
      }
      int ready;
      do {
        ready = ::poll(poll_fds.data(), poll_fds.size(), 100);
      } while (ready < 0 && errno == EINTR);
      if (ready < 0) {
        throw Error("distributed campaign: poll() failed");
      }

      for (size_t i = 0; i < poll_fds.size(); ++i) {
        if (poll_fds[i].revents == 0) {
          continue;
        }
        AgentConn& agent = fleet.agents[poll_agents[i]];
        if (!agent.alive) {
          continue;  // retired earlier in this very pass
        }
        FabricMsg type;
        std::string payload;
        FabricRead status = ReadFabricFrame(agent.fd, &type, &payload);
        if (status == FabricRead::kEof) {
          retire_agent(agent, "disconnected");
          continue;
        }
        if (status != FabricRead::kOk) {
          retire_agent(agent, "sent a garbled frame");
          continue;
        }
        if (type == FabricMsg::kHeartbeat) {
          agent.last_heartbeat = NowSeconds();
          continue;
        }
        if (type != FabricMsg::kResult) {
          continue;  // stats before shutdown etc. — ignore
        }
        size_t newline = payload.find('\n');
        std::vector<std::string> head =
            StrSplit(payload.substr(0, newline), ' ');
        int64_t unit_index = -1;
        int64_t attempt = -1;
        if (head.size() < 2 || !ParseInt64(head[0], &unit_index) ||
            !ParseInt64(head[1], &attempt) || newline == std::string::npos) {
          retire_agent(agent, "sent a malformed result");
          continue;
        }
        auto lease_it = agent.leases.find(static_cast<size_t>(unit_index));
        if (lease_it == agent.leases.end() ||
            lease_it->second.attempt != static_cast<int>(attempt)) {
          // No live lease behind this completion: the stale duplicate a
          // re-sent or reassigned unit produces. Folding is driven only by
          // live leases, so dropping it here is what makes completion
          // idempotent.
          ++duplicate_results;
          continue;
        }
        size_t parsed_index = 0;
        UnitWorkResult unit;
        if (!ParseUnitResult(payload.substr(newline + 1), &parsed_index,
                             &unit) ||
            parsed_index != static_cast<size_t>(unit_index)) {
          retire_agent(agent, "sent an unparseable result");
          continue;
        }
        completion_seconds.push_back(NowSeconds() -
                                     lease_it->second.dispatch_seconds);
        buffered[parsed_index] =
            BufferedResult{std::move(unit), lease_it->second.snapshot};
        agent.leases.erase(lease_it);
      }

      // Watchdog: any lease past its deadline means a unit is stuck on a
      // live, heartbeating host (an in-agent hang blocks one worker thread,
      // not the heartbeat thread) — the whole agent is retired, as the
      // forked scheduler SIGKILLs a hung worker.
      double now = NowSeconds();
      for (AgentConn& agent : fleet.agents) {
        if (!agent.alive) {
          continue;
        }
        bool hung = false;
        for (const auto& [unit_index, lease] : agent.leases) {
          if (lease.deadline_seconds > 0 &&
              now - lease.dispatch_seconds >= lease.deadline_seconds) {
            ZLOG_WARN << "distributed campaign: watchdog — agent "
                      << agent.index << " exceeded "
                      << DoubleToString(lease.deadline_seconds)
                      << "s deadline on unit " << units[unit_index].test->id;
            hung = true;
            break;
          }
        }
        if (hung) {
          ++hung_workers;
          retire_agent(agent, "hung (watchdog)");
          continue;
        }
        if (fabric.heartbeat_timeout_seconds > 0 &&
            now - agent.last_heartbeat > fabric.heartbeat_timeout_seconds) {
          retire_agent(agent, "went silent (heartbeat timeout)");
        }
      }

      advance_fold();
    }

    // ---- Graceful shutdown --------------------------------------------------
    for (AgentConn& agent : fleet.agents) {
      if (agent.alive) {
        WriteFabricFrame(agent.fd, FabricMsg::kShutdown, std::string());
      }
    }
    // Drain each surviving agent to its kStats farewell (skipping any
    // results its workers finished after the stop) and reap it cleanly.
    for (AgentConn& agent : fleet.agents) {
      if (!agent.alive) {
        continue;
      }
      bool got_farewell = false;
      double drain_deadline = NowSeconds() + 10.0;
      while (NowSeconds() < drain_deadline) {
        struct pollfd pfd = {agent.fd, POLLIN, 0};
        int ready;
        do {
          ready = ::poll(&pfd, 1, 200);
        } while (ready < 0 && errno == EINTR);
        if (ready <= 0) {
          continue;
        }
        FabricMsg type;
        std::string payload;
        if (ReadFabricFrame(agent.fd, &type, &payload) != FabricRead::kOk) {
          break;
        }
        if (type != FabricMsg::kStats) {
          continue;
        }
        for (const std::string& line : StrSplit(payload, '\n')) {
          int64_t value;
          if ((value = ParseStatLine(line, "cache_hits")) >= 0) {
            cache_hits += value;
          } else if ((value = ParseStatLine(line, "cache_misses")) >= 0) {
            cache_misses += value;
          } else if ((value = ParseStatLine(line, "equiv_hits")) >= 0) {
            equiv_hits += value;
          } else if ((value = ParseStatLine(line, "canonicalized_plans")) >=
                     0) {
            canonicalized_plans += value;
          } else if ((value = ParseStatLine(line, "mispredictions")) >= 0) {
            mispredictions += value;
          } else if ((value = ParseStatLine(line, "cache_evictions")) >= 0) {
            cache_evictions += value;
          } else if ((value = ParseStatLine(line, "cache_load_failures")) >=
                     0) {
            cache_load_failures += value;
          }
        }
        got_farewell = true;
        break;
      }
      ::close(agent.fd);
      agent.fd = -1;
      if (agent.pid > 0) {
        if (!got_farewell) {
          // The agent never said goodbye (a wedged worker thread blocks its
          // clean exit); reaping an immortal child would block forever.
          ::kill(agent.pid, SIGKILL);
        }
        ReapAll({agent.pid});
        agent.pid = -1;
      }
      agent.alive = false;
    }
  }

  if (!stopped) {
    // Apps with zero units (or nothing at all to run) still appear in the
    // report with their enumeration-stage counts, as in the sequential run.
    begin_apps_through(apps.size());
  }

  folder.report().hung_workers = hung_workers;
  folder.report().requeued_units = requeued_units;
  folder.report().resumed_units = resumed_units;
  folder.report().agent_disconnects = agent_disconnects;
  folder.report().expired_leases = expired_leases;
  folder.report().duplicate_results = duplicate_results;
  if (journal) {
    journal->Flush();
    folder.report().journal_append_failures = journal->append_failures();
  }
  for (size_t unit_index : poisoned) {
    folder.report().poisoned_units.push_back(units[unit_index].test->id);
  }
  if (resolved.enable_run_cache) {
    // Shared-cache mode skips per-unit deltas, so the folded counters are
    // zero; fill totals from the agents' farewells. Agents that died before
    // shutdown never reported — accounting, not a determinism surface.
    folder.report().cache_hits = cache_hits;
    folder.report().cache_misses = cache_misses;
    folder.report().equiv_hits = equiv_hits;
    folder.report().canonicalized_plans = canonicalized_plans;
    folder.report().mispredictions = mispredictions;
    folder.report().cache_evictions = cache_evictions;
    folder.report().cache_load_failures = cache_load_failures;
  }
  folder.report().wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return folder.Finish();
}

}  // namespace zebra
