#include "src/core/report_writer.h"

#include <cstdio>
#include <sstream>

#include "src/common/strings.h"
#include "src/core/fleet_model.h"
#include "src/testkit/ground_truth.h"

namespace zebra {

namespace {

std::string Scientific(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2e", value);
  return buffer;
}

const char* Classify(const std::string& param) {
  if (ExpectedUnsafeParams().count(param) > 0) {
    return "true-unsafe";
  }
  if (ProbabilisticUnsafeParams().count(param) > 0) {
    return "true-unsafe (probabilistic)";
  }
  if (KnownFalsePositiveSources().count(param) > 0) {
    return "false-positive source";
  }
  return "unclassified";
}

}  // namespace

std::string RenderMarkdownReport(const CampaignReport& report,
                                 const ReportWriterOptions& options) {
  std::ostringstream out;
  out << "# ZebraConf campaign report\n\n";

  out << "## Test-instance stages\n\n";
  out << "| application | original | after pre-run | after uncertainty | executed "
         "runs |\n";
  out << "|---|---|---|---|---|\n";
  for (const auto& [app, counts] : report.per_app) {
    out << "| " << app << " | " << counts.original << " | " << counts.after_prerun
        << " | " << counts.after_uncertainty << " | " << counts.executed_runs
        << " |\n";
  }
  out << "| **total** | " << report.TotalOriginal() << " | "
      << report.TotalAfterPrerun() << " | " << report.TotalAfterUncertainty()
      << " | " << report.TotalExecuted() << " |\n\n";

  out << "## Heterogeneous-unsafe parameters (" << report.findings.size() << ")\n\n";
  for (const auto& [param, finding] : report.findings) {
    out << "### `" << param << "`\n\n";
    out << "* owning application: " << finding.owning_app << "\n";
    out << "* best p-value: " << Scientific(finding.best_p_value) << "\n";
    if (options.annotate_ground_truth) {
      out << "* ground truth: " << Classify(param) << "\n";
    }
    out << "* witness tests:";
    for (const std::string& test : finding.witness_tests) {
      out << " `" << test << "`";
    }
    out << "\n* example failure: " << finding.example_failure << "\n\n";
  }

  out << "## Nondeterminism filtering\n\n";
  out << "* first-trial candidates: " << report.first_trial_candidates << "\n";
  out << "* filtered by hypothesis testing: " << report.filtered_by_hypothesis
      << "\n\n";

  out << "## Cost\n\n";
  out << "* unit-test executions: " << report.total_unit_test_runs << "\n";
  out << "* sequential wall-clock: " << report.wall_seconds << " s\n";
  if (report.runs_to_first_detection > 0) {
    out << "* runs to first detection: " << report.runs_to_first_detection
        << " (`" << report.first_detection_param << "`)\n";
  }
  if (report.cache_hits > 0 || report.cache_misses > 0) {
    double hit_rate = 100.0 * static_cast<double>(report.cache_hits) /
                      static_cast<double>(report.cache_hits + report.cache_misses);
    out << "* run cache: " << report.cache_hits << " hits / "
        << report.cache_misses << " misses ("
        << static_cast<int>(hit_rate) << "% hit rate)\n";
  }
  if (report.equiv_hits > 0 || report.canonicalized_plans > 0 ||
      report.mispredictions > 0) {
    out << "* observational equivalence: " << report.equiv_hits
        << " cross-plan hits, " << report.canonicalized_plans
        << " plans canonicalized, " << report.mispredictions
        << " mispredictions (fell back to execution)\n";
  }
  if (report.cache_evictions > 0) {
    out << "* run-cache evictions (LRU budget): " << report.cache_evictions << "\n";
  }
  if (report.hung_workers > 0 || report.requeued_units > 0 ||
      report.resumed_units > 0) {
    out << "* fault tolerance: " << report.hung_workers
        << " workers SIGKILLed by watchdog, " << report.requeued_units
        << " units re-queued after worker failure, " << report.resumed_units
        << " units replayed from journal\n";
  }
  if (report.agent_disconnects > 0 || report.expired_leases > 0 ||
      report.duplicate_results > 0) {
    out << "* distributed fabric: " << report.agent_disconnects
        << " agents retired, " << report.expired_leases
        << " leases expired and re-queued, " << report.duplicate_results
        << " duplicate results dropped idempotently\n";
  }
  if (report.cache_load_failures > 0) {
    out << "* run-cache load failures (corrupt file, started cold): "
        << report.cache_load_failures << "\n";
  }
  if (report.journal_append_failures > 0) {
    out << "* journal append failures (journaling disabled mid-campaign; "
           "resume coverage ends at the last synced record): "
        << report.journal_append_failures << "\n";
  }
  if (!report.poisoned_units.empty()) {
    out << "* poisoned units (hit the attempt limit; contributed no runs): "
        << StrJoin(report.poisoned_units, ", ") << "\n";
  }
  if (options.fleet_machines > 0 && options.fleet_containers > 0 &&
      !report.run_durations_seconds.empty()) {
    FleetEstimate fleet = EstimateFleet(report.run_durations_seconds,
                                        options.fleet_machines,
                                        options.fleet_containers);
    out << "* fleet (" << fleet.machines << " x " << fleet.containers_per_machine
        << " slots): makespan " << fleet.makespan_seconds << " s, "
        << fleet.machine_seconds << " machine-seconds, utilization "
        << static_cast<int>(100.0 * fleet.utilization) << "%\n";
  }
  return out.str();
}

}  // namespace zebra
