#include "src/core/test_runner.h"

#include "src/common/stats.h"

namespace zebra {

TestRunner::TestRunner(double significance, int first_trials)
    : significance_(significance),
      first_trials_(first_trials < 1 ? 1 : first_trials),
      max_rounds_(static_cast<int>(MinTrialsForSignificance(significance)) + 3) {}

TestPlan TestRunner::HeteroPlan(const GeneratedInstance& instance) const {
  TestPlan plan;
  plan.Add(instance.plan);
  return plan;
}

TestPlan TestRunner::HomoPlan(const GeneratedInstance& instance,
                              const std::string& value) const {
  TestPlan plan;
  ParamPlan homo = instance.plan;
  homo.assigner = ValueAssigner::Homogeneous(value);
  plan.Add(std::move(homo));
  return plan;
}

Verdict TestRunner::Verify(const GeneratedInstance& instance,
                           int64_t* executions) const {
  Verdict verdict;
  const std::vector<std::string> values = instance.plan.assigner.DistinctValues();

  // Plans are built once and reused across every trial below, so the
  // memoized fingerprint/seed on each plan is computed exactly once per
  // verification instead of once per run.
  const TestPlan hetero_plan = HeteroPlan(instance);
  std::vector<TestPlan> homo_plans;
  homo_plans.reserve(values.size());
  for (const std::string& value : values) {
    homo_plans.push_back(HomoPlan(instance, value));
  }

  auto run = [&](const TestPlan& plan, uint64_t trial) {
    ++*executions;
    return RunUnitTestShared(*instance.test, plan, trial);
  };

  // First trial(s): heterogeneous runs. With first_trials_ > 1 a
  // nondeterministic heterogeneous failure gets several chances to manifest
  // (the §5 false-negative mitigation).
  bool hetero_failed_once = false;
  for (int attempt = 0; attempt < first_trials_; ++attempt) {
    std::shared_ptr<const TestResult> hetero =
        run(hetero_plan, static_cast<uint64_t>(attempt));
    ++verdict.hetero_trials;
    if (!hetero->passed) {
      hetero_failed_once = true;
      ++verdict.hetero_failures;
      verdict.witness_failure = hetero->failure;
      break;
    }
  }
  if (!hetero_failed_once) {
    return verdict;  // kNotCandidate
  }

  // First trial: every corresponding homogeneous configuration must pass,
  // otherwise the failure cannot be attributed to heterogeneity.
  for (const TestPlan& homo_plan : homo_plans) {
    std::shared_ptr<const TestResult> homo = run(homo_plan, 0);
    ++verdict.homo_trials;
    if (!homo->passed) {
      ++verdict.homo_failures;
      return verdict;  // kNotCandidate
    }
  }

  // Candidate: multi-trial hypothesis testing. Runs stop as soon as the
  // Fisher exact test reaches significance.
  for (int round = 1; round <= max_rounds_; ++round) {
    // Trial numbers continue past the first-trial attempts so every run rolls
    // fresh nondeterminism.
    uint64_t trial = static_cast<uint64_t>(first_trials_ + round);
    std::shared_ptr<const TestResult> extra_hetero = run(hetero_plan, trial);
    ++verdict.hetero_trials;
    if (!extra_hetero->passed) {
      ++verdict.hetero_failures;
      if (verdict.witness_failure.empty()) {
        verdict.witness_failure = extra_hetero->failure;
      }
    }
    for (const TestPlan& homo_plan : homo_plans) {
      std::shared_ptr<const TestResult> extra_homo = run(homo_plan, trial);
      ++verdict.homo_trials;
      if (!extra_homo->passed) {
        ++verdict.homo_failures;
      }
    }
    verdict.p_value =
        FisherExactOneSided(verdict.hetero_failures, verdict.hetero_trials,
                            verdict.homo_failures, verdict.homo_trials);
    if (verdict.p_value < significance_) {
      verdict.kind = Verdict::Kind::kConfirmedUnsafe;
      return verdict;
    }
    // Early abort: if even a perfect remainder (every future hetero trial
    // failing, every future homo trial passing) cannot reach significance,
    // the candidate is already filtered — no need to burn more trials.
    int64_t remaining = max_rounds_ - round;
    double optimistic = FisherExactOneSided(
        verdict.hetero_failures + remaining, verdict.hetero_trials + remaining,
        verdict.homo_failures,
        verdict.homo_trials + remaining * static_cast<int64_t>(values.size()));
    if (optimistic >= significance_) {
      break;
    }
  }

  verdict.kind = Verdict::Kind::kFilteredFlaky;
  return verdict;
}

}  // namespace zebra
