// DeploymentChecker: the operator-facing payoff of a ZebraConf campaign.
//
// Given a proposed deployment — one configuration file per node
// (HeteroConf(F1..Fn) of Definition 3.1) — and a knowledge base of
// heterogeneous-unsafe parameters (from a campaign report, or any curated
// list), the checker flags every parameter that is about to be deployed with
// different values on different nodes even though it is known to be unsafe.

#ifndef SRC_CORE_DEPLOYMENT_CHECKER_H_
#define SRC_CORE_DEPLOYMENT_CHECKER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "src/conf/conf_file.h"
#include "src/core/campaign.h"

namespace zebra {

struct DeploymentWarning {
  std::string param;
  std::string reason;                          // why the parameter is unsafe
  std::map<std::string, std::string> values;   // node -> proposed value
};

struct DeploymentVerdict {
  bool safe = true;
  std::vector<DeploymentWarning> warnings;     // unsafe heterogeneous params
  std::set<std::string> unknown_heterogeneous; // heterogeneous but not in the KB
};

class DeploymentChecker {
 public:
  // Builds the knowledge base from a campaign report (parameter -> witness).
  explicit DeploymentChecker(const CampaignReport& report);

  // Or from an explicit parameter -> reason table.
  explicit DeploymentChecker(std::map<std::string, std::string> unsafe_params);

  // Checks a proposed per-node file set. `safe` is false iff a known-unsafe
  // parameter is heterogeneous in the proposal. Parameters heterogeneous in
  // the proposal but absent from the knowledge base are listed separately —
  // the operator must judge them (or run a campaign that covers them).
  DeploymentVerdict Check(const ConfFileSet& proposal) const;

  int knowledge_base_size() const { return static_cast<int>(unsafe_params_.size()); }

 private:
  std::map<std::string, std::string> unsafe_params_;  // param -> reason
};

}  // namespace zebra

#endif  // SRC_CORE_DEPLOYMENT_CHECKER_H_
