// Campaign agent: the per-host worker process of the distributed fabric.
//
// One agent owns one machine's share of the fleet: it connects to the
// coordinator (distributed_campaign.h) over the fabric wire protocol
// (fabric_wire.h), proves compatibility in a handshake, and then runs the
// PR 6 thread pool locally — `threads` worker threads, each with a private
// ConfAgent and Campaign engine, sharing one internally synchronized run
// cache — so a fleet of A agents x K threads executes A*K units
// concurrently while the coordinator folds canonically.
//
// Handshake. The agent opens with kHello carrying its schema hash
// (FabricSchemaHash — a digest of the campaign-journal fingerprint, i.e. the
// resolved app list, canonical unit order, and every result-affecting
// option), its thread count, and its agent index. The coordinator admits it
// with kWelcome (echoed index + heartbeat interval) or refuses with kReject:
// an agent built from a different corpus or options would return results
// that *parse* but silently corrupt the fold, so mismatches must die at the
// door. The protocol version rides in every frame header and is checked
// before the payload is even trusted.
//
// Steady state (wire v2). The main thread reads kDispatchBatch frames — a
// snapshot section carrying the globally-unsafe set as an epoch-numbered
// full send or a delta against the agent's acknowledged epoch, followed by
// any number of "<unit> <attempt>" records — into a local queue; worker
// threads pull, execute Campaign::RunUnit under the dispatched snapshot,
// and push "<unit> <attempt>\n" + SerializeUnitResult records into a shared
// outbox that one worker at a time drains into kResultBatch frames (socket
// writes serialized by a mutex), so a burst of completions costs one frame,
// not one frame each. A delta against an epoch the agent does not hold is
// *refused*: the units are returned in a kSnapshotNack (never executed
// under a set the agent cannot prove current) and the coordinator falls
// back to a full snapshot resend. A heartbeat thread sends an empty
// kHeartbeat frame every interval the coordinator chose; heartbeats are the
// agent's liveness proof, separate from results, so a long-running unit
// does not look like a dead host. On kShutdown the agent drains its
// workers, persists the run cache (when cache_dir is set), answers kStats,
// and exits 0.
//
// Warm starts. With cache_dir set and the run cache enabled, the agent
// loads `<cache_dir>/fabric-<schema hash>-agent<index>.zc` before taking
// work and saves it back on clean shutdown, so a repeat campaign over the
// same schema/corpus starts warm. The file rides the RunCache v2 checksummed
// format: corruption degrades to a cold start and shows up in the farewell's
// cache_load_failures. The farewell's other counters are *per-campaign
// deltas* against the post-load baseline — a warm start must not re-report
// last campaign's hits.
//
// Fault injection. Both fault planes run *inside* the agent, decided
// deterministically at (agent, unit, attempt):
//   * FaultPlan (process faults, fault_injection.h) with the agent index as
//     the worker coordinate: kCrash/_Exit, kHang/pause() (the worker thread
//     blocks; heartbeats continue — exactly the shape the coordinator's
//     lease watchdog exists for), kGarbledFrame (junk bytes then exit),
//     kSlowWorker (sleep then run).
//   * NetFaultPlan (network faults): kAgentCrash exits before executing;
//     kConnectionDrop executes the unit then exits without sending the
//     result (work done but lost — the lease expiry must recover it);
//     kGarbledFrame writes junk where a frame belongs; kDelayedHeartbeat
//     suppresses heartbeats for delay_seconds; kStaleDuplicateResult sends
//     the result record twice (the coordinator must drop the second copy
//     idempotently); kEpochDesync discards the acknowledged snapshot epoch
//     at dispatch receipt and nacks the unit, forcing the coordinator
//     through the full-resend recovery path.
// Every plan must leave the folded report bitwise-identical to sequential
// (tests/distributed_campaign_test.cc).

#ifndef SRC_CORE_CAMPAIGN_AGENT_H_
#define SRC_CORE_CAMPAIGN_AGENT_H_

#include <cstdint>
#include <string>

#include "src/core/campaign.h"
#include "src/core/fault_injection.h"

namespace zebra {

struct CampaignAgentOptions {
  // Coordinator endpoint. ConnectTcp retries until connect_timeout_seconds
  // (the agent may race the coordinator's listen).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double connect_timeout_seconds = 10.0;

  // This agent's stable identity in the fleet (fault-plan coordinate and
  // log label). Spawned agents get it from the coordinator's fork loop;
  // real hosts pass --agent-index.
  int agent_index = 0;

  // Local worker threads (the PR 6 thread pool); the coordinator keeps this
  // many leases in flight on this agent.
  int threads = 1;

  // Deterministic fault planes, evaluated in-agent. Empty = undisturbed.
  FaultPlan faults;
  NetFaultPlan net_faults;

  // Directory for the persistent run cache ("" = no persistence). Only
  // meaningful with CampaignOptions::enable_run_cache; the file is keyed by
  // schema hash and agent index, so agents never race on one file and a
  // different campaign shape never poisons a warm start.
  std::string cache_dir;
};

// Identity both ends must agree on before any unit is dispatched: a hex
// digest of CampaignJournal::Fingerprint over the *resolved* options and the
// corpus. `options` are resolved through a Campaign engine internally, so
// callers pass the same CampaignOptions they would hand any executor.
std::string FabricSchemaHash(const ConfSchema& schema,
                             const UnitTestRegistry& corpus,
                             const CampaignOptions& options);

// Runs one agent to completion. Returns the process exit code: 0 after a
// clean kShutdown, nonzero when the coordinator vanished or refused the
// handshake. Blocks until shutdown; spawned agents call this straight from
// the forked child and _Exit with its return value.
int RunCampaignAgent(const ConfSchema& schema, const UnitTestRegistry& corpus,
                     CampaignOptions options,
                     const CampaignAgentOptions& agent);

}  // namespace zebra

#endif  // SRC_CORE_CAMPAIGN_AGENT_H_
