// Campaign agent: the per-host worker process of the distributed fabric.
//
// One agent owns one machine's share of the fleet: it connects to the
// coordinator (distributed_campaign.h) over the fabric wire protocol
// (fabric_wire.h), proves compatibility in a handshake, and then runs the
// PR 6 thread pool locally — `threads` worker threads, each with a private
// ConfAgent and Campaign engine, sharing one internally synchronized run
// cache — so a fleet of A agents x K threads executes A*K units
// concurrently while the coordinator folds canonically.
//
// Handshake. The agent opens with kHello carrying its schema hash
// (FabricSchemaHash — a digest of the campaign-journal fingerprint, i.e. the
// resolved app list, canonical unit order, and every result-affecting
// option), its thread count, and its agent index. The coordinator admits it
// with kWelcome (echoed index + heartbeat interval) or refuses with kReject:
// an agent built from a different corpus or options would return results
// that *parse* but silently corrupt the fold, so mismatches must die at the
// door. The protocol version rides in every frame header and is checked
// before the payload is even trusted.
//
// Steady state. The main thread reads kDispatch frames ("<unit> <attempt>\n
// <globally-unsafe csv>") into a local queue; worker threads pull, execute
// Campaign::RunUnit under the dispatched snapshot, and answer with kResult
// ("<unit> <attempt>\n" + SerializeUnitResult) — socket writes serialized by
// a mutex. A heartbeat thread sends an empty kHeartbeat frame every interval
// the coordinator chose; heartbeats are the agent's liveness proof, separate
// from results, so a long-running unit does not look like a dead host.
// On kShutdown the agent drains its workers, answers kStats (the shared
// cache's counters), and exits 0.
//
// Fault injection. Both fault planes run *inside* the agent, decided
// deterministically at (agent, unit, attempt):
//   * FaultPlan (process faults, fault_injection.h) with the agent index as
//     the worker coordinate: kCrash/_Exit, kHang/pause() (the worker thread
//     blocks; heartbeats continue — exactly the shape the coordinator's
//     lease watchdog exists for), kGarbledFrame (junk bytes then exit),
//     kSlowWorker (sleep then run).
//   * NetFaultPlan (network faults): kAgentCrash exits before executing;
//     kConnectionDrop executes the unit then exits without sending the
//     result (work done but lost — the lease expiry must recover it);
//     kGarbledFrame writes junk where a frame belongs; kDelayedHeartbeat
//     suppresses heartbeats for delay_seconds; kStaleDuplicateResult sends
//     the result frame twice (the coordinator must drop the second copy
//     idempotently).
// Every plan must leave the folded report bitwise-identical to sequential
// (tests/distributed_campaign_test.cc).

#ifndef SRC_CORE_CAMPAIGN_AGENT_H_
#define SRC_CORE_CAMPAIGN_AGENT_H_

#include <cstdint>
#include <string>

#include "src/core/campaign.h"
#include "src/core/fault_injection.h"

namespace zebra {

struct CampaignAgentOptions {
  // Coordinator endpoint. ConnectTcp retries until connect_timeout_seconds
  // (the agent may race the coordinator's listen).
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  double connect_timeout_seconds = 10.0;

  // This agent's stable identity in the fleet (fault-plan coordinate and
  // log label). Spawned agents get it from the coordinator's fork loop;
  // real hosts pass --agent-index.
  int agent_index = 0;

  // Local worker threads (the PR 6 thread pool); the coordinator keeps this
  // many leases in flight on this agent.
  int threads = 1;

  // Deterministic fault planes, evaluated in-agent. Empty = undisturbed.
  FaultPlan faults;
  NetFaultPlan net_faults;
};

// Identity both ends must agree on before any unit is dispatched: a hex
// digest of CampaignJournal::Fingerprint over the *resolved* options and the
// corpus. `options` are resolved through a Campaign engine internally, so
// callers pass the same CampaignOptions they would hand any executor.
std::string FabricSchemaHash(const ConfSchema& schema,
                             const UnitTestRegistry& corpus,
                             const CampaignOptions& options);

// Runs one agent to completion. Returns the process exit code: 0 after a
// clean kShutdown, nonzero when the coordinator vanished or refused the
// handshake. Blocks until shutdown; spawned agents call this straight from
// the forked child and _Exit with its return value.
int RunCampaignAgent(const ConfSchema& schema, const UnitTestRegistry& corpus,
                     CampaignOptions options,
                     const CampaignAgentOptions& agent);

}  // namespace zebra

#endif  // SRC_CORE_CAMPAIGN_AGENT_H_
