#include "src/core/dependency_miner.h"

#include <map>
#include <set>

#include "src/testkit/test_execution.h"

namespace zebra {

DependencyMiner::DependencyMiner(const ConfSchema& schema,
                                 const UnitTestRegistry& corpus)
    : schema_(schema), corpus_(corpus) {}

std::vector<MinedRule> DependencyMiner::MineParam(const std::string& app,
                                                  const ParamSpec& spec,
                                                  int64_t* executions) const {
  // For each candidate value, the union of parameters read across the app's
  // unit tests when the value is applied homogeneously.
  std::map<std::string, std::set<std::string>> reads_by_value;
  for (const std::string& value : spec.test_values) {
    TestPlan plan;
    ParamPlan param_plan;
    param_plan.param = spec.name;
    param_plan.assigner = ValueAssigner::Homogeneous(value);
    plan.Add(param_plan);

    std::set<std::string>& reads = reads_by_value[value];
    for (const UnitTestDef* test : corpus_.ForApp(app)) {
      std::shared_ptr<const TestResult> result =
          RunUnitTestShared(*test, plan, /*trial=*/0);
      if (executions != nullptr) {
        ++*executions;
      }
      for (const std::string& read : result->report.AllParamsRead()) {
        reads.insert(read);
      }
    }
  }

  // A parameter read under exactly one value is that value's dependency.
  std::vector<MinedRule> rules;
  for (const auto& [value, reads] : reads_by_value) {
    for (const std::string& candidate : reads) {
      if (candidate == spec.name) {
        continue;
      }
      bool exclusive = true;
      for (const auto& [other_value, other_reads] : reads_by_value) {
        if (other_value != value && other_reads.count(candidate) > 0) {
          exclusive = false;
          break;
        }
      }
      if (exclusive) {
        rules.push_back(MinedRule{spec.name, value, candidate});
      }
    }
  }
  return rules;
}

std::vector<MinedRule> DependencyMiner::MineApp(const std::string& app,
                                                int64_t* executions) const {
  std::vector<MinedRule> rules;
  for (const ParamSpec* spec : schema_.ParamsForApp(app)) {
    if (spec->type != ParamType::kEnum) {
      continue;  // value-conditional reads are an enum phenomenon
    }
    std::vector<MinedRule> mined = MineParam(app, *spec, executions);
    rules.insert(rules.end(), mined.begin(), mined.end());
  }
  return rules;
}

void DependencyMiner::InstallRules(const std::vector<MinedRule>& rules,
                                   ConfSchema& schema) {
  for (const MinedRule& rule : rules) {
    const ParamSpec* dep = schema.Find(rule.dep_param);
    if (dep != nullptr) {
      schema.AddDependencyRule(rule.param, rule.value, rule.dep_param,
                               dep->default_value);
    }
  }
}

}  // namespace zebra
