#include "src/core/campaign.h"

#include <algorithm>
#include <chrono>
#include <random>

#include "src/common/logging.h"

namespace zebra {

namespace {

int64_t SumField(const std::map<std::string, AppStageCounts>& per_app,
                 int64_t AppStageCounts::*field) {
  int64_t total = 0;
  for (const auto& [app, counts] : per_app) {
    total += counts.*field;
  }
  return total;
}

}  // namespace

int64_t CampaignReport::TotalOriginal() const {
  return SumField(per_app, &AppStageCounts::original);
}
int64_t CampaignReport::TotalAfterStatic() const {
  return SumField(per_app, &AppStageCounts::after_static);
}
int64_t CampaignReport::TotalAfterPrerun() const {
  return SumField(per_app, &AppStageCounts::after_prerun);
}
int64_t CampaignReport::TotalAfterUncertainty() const {
  return SumField(per_app, &AppStageCounts::after_uncertainty);
}
int64_t CampaignReport::TotalExecuted() const {
  return SumField(per_app, &AppStageCounts::executed_runs);
}

Campaign::Campaign(const ConfSchema& schema, const UnitTestRegistry& corpus,
                   CampaignOptions options)
    : schema_(schema),
      corpus_(corpus),
      options_(std::move(options)),
      generator_(schema, corpus,
                 GeneratorOptions{options_.enable_round_robin, options_.static_prior}),
      runner_(options_.significance, options_.first_trials) {
  if (options_.apps.empty()) {
    std::set<std::string> apps;
    for (const UnitTestDef& test : corpus_.tests()) {
      apps.insert(test.app);
    }
    options_.apps.assign(apps.begin(), apps.end());
  }
}

bool Campaign::VerifyInstance(const GeneratedInstance& instance, AppStageCounts* counts,
                              CampaignReport* report,
                              std::set<std::string>* confirmed_in_test) {
  Verdict verdict = runner_.Verify(instance, &counts->executed_runs);
  if (verdict.kind == Verdict::Kind::kNotCandidate) {
    return false;
  }
  ++report->first_trial_candidates;
  if (verdict.kind == Verdict::Kind::kFilteredFlaky) {
    ++report->filtered_by_hypothesis;
    return false;
  }

  // Confirmed unsafe.
  if (report->runs_to_first_detection == 0) {
    report->runs_to_first_detection = report->TotalExecuted();
    report->first_detection_param = instance.plan.param;
  }
  const std::string& param = instance.plan.param;
  confirmed_in_test->insert(param);
  ParamFinding& finding = report->findings[param];
  if (finding.param.empty()) {
    finding.param = param;
    const ParamSpec* spec = schema_.Find(param);
    finding.owning_app = spec != nullptr ? spec->app : "unknown";
  }
  finding.witness_tests.insert(instance.test->id);
  if (finding.example_failure.empty()) {
    finding.example_failure = verdict.witness_failure;
  }
  finding.best_p_value = std::min(finding.best_p_value, verdict.p_value);

  confirmed_tests_per_param_[param].insert(instance.test->id);
  if (static_cast<int>(confirmed_tests_per_param_[param].size()) >=
      options_.frequent_failure_threshold) {
    globally_unsafe_.insert(param);
  }
  return true;
}

void Campaign::BisectPool(const UnitTestDef& test, std::vector<GeneratedInstance> pool,
                          AppStageCounts* counts, CampaignReport* report,
                          std::set<std::string>* confirmed_in_test) {
  if (pool.empty()) {
    return;
  }
  if (pool.size() == 1) {
    VerifyInstance(pool.front(), counts, report, confirmed_in_test);
    return;
  }
  size_t half = pool.size() / 2;
  std::vector<GeneratedInstance> left(pool.begin(), pool.begin() + half);
  std::vector<GeneratedInstance> right(pool.begin() + half, pool.end());
  for (auto* side : {&left, &right}) {
    TestPlan plan;
    for (const GeneratedInstance& instance : *side) {
      plan.params.push_back(instance.plan);
    }
    ++counts->executed_runs;
    TestResult result = RunUnitTest(test, plan, /*trial=*/0);
    if (!result.passed) {
      BisectPool(test, *side, counts, report, confirmed_in_test);
    }
  }
}

std::vector<std::string> Campaign::ParamOrder(
    const std::map<std::string, std::vector<GeneratedInstance>>& by_param) const {
  std::vector<std::string> order;
  order.reserve(by_param.size());
  for (const auto& [param, instances] : by_param) {
    order.push_back(param);
  }
  // Map iteration is name-sorted; a stable sort on priority keeps name order
  // within each band.
  std::stable_sort(order.begin(), order.end(),
                   [&](const std::string& a, const std::string& b) {
                     return by_param.at(a).front().plan.static_priority >
                            by_param.at(b).front().plan.static_priority;
                   });
  if (options_.shuffle_order_seed != 0) {
    std::mt19937_64 rng(options_.shuffle_order_seed);
    std::shuffle(order.begin(), order.end(), rng);
  }
  return order;
}

void Campaign::RunPooledForTest(
    const UnitTestDef& test,
    std::map<std::string, std::vector<GeneratedInstance>> by_param,
    AppStageCounts* counts, CampaignReport* report) {
  std::set<std::string> confirmed_in_test;
  std::vector<std::string> order = ParamOrder(by_param);
  size_t max_rounds = 0;
  for (const auto& [param, instances] : by_param) {
    max_rounds = std::max(max_rounds, instances.size());
  }

  for (size_t round = 0; round < max_rounds; ++round) {
    // Pool the round-th instance of every parameter that still has one and
    // is not already settled. Pool order follows the static prior, so
    // bisection descends into the wire-tainted half first.
    std::vector<GeneratedInstance> pool;
    for (const std::string& param : order) {
      const std::vector<GeneratedInstance>& instances = by_param.at(param);
      if (round >= instances.size() || GloballyUnsafe(param) ||
          confirmed_in_test.count(param) > 0) {
        continue;
      }
      pool.push_back(instances[round]);
    }
    if (pool.empty()) {
      continue;
    }
    TestPlan plan;
    for (const GeneratedInstance& instance : pool) {
      plan.params.push_back(instance.plan);
    }
    ++counts->executed_runs;
    TestResult result = RunUnitTest(test, plan, /*trial=*/0);
    if (result.passed) {
      continue;  // every pooled parameter assumed safe for this instance
    }
    BisectPool(test, std::move(pool), counts, report, &confirmed_in_test);
  }
}

CampaignReport Campaign::Run() {
  CampaignReport report;
  SetRunDurationCollector(&report.run_durations_seconds);
  auto start = std::chrono::steady_clock::now();

  for (const std::string& app : options_.apps) {
    AppStageCounts& counts = report.per_app[app];
    SharingStats& sharing = report.sharing[app];
    counts.original = generator_.OriginalInstanceCount(app);
    counts.after_static = generator_.StaticPrunedInstanceCount(app);

    std::vector<PreRunRecord> records = generator_.PreRunApp(app, &counts.executed_runs);
    counts.tests_total = static_cast<int>(records.size());

    for (const PreRunRecord& record : records) {
      const SessionReport& session = record.result.report;
      if (session.any_conf_usage) {
        ++sharing.tests_with_conf_usage;
        if (session.conf_sharing_detected) {
          ++sharing.tests_with_sharing;
        }
      }
      if (session.StartedAnyNode()) {
        ++counts.tests_with_nodes;
      }

      int64_t before_uncertainty = 0;
      std::vector<GeneratedInstance> instances =
          generator_.Generate(record, &before_uncertainty);
      counts.after_prerun += before_uncertainty;
      counts.after_uncertainty += static_cast<int64_t>(instances.size());
      if (instances.empty()) {
        continue;
      }

      std::map<std::string, std::vector<GeneratedInstance>> by_param;
      for (GeneratedInstance& instance : instances) {
        const std::string& param = instance.plan.param;
        if (!options_.only_params.empty() && options_.only_params.count(param) == 0) {
          continue;
        }
        if (options_.exclude_params.count(param) > 0) {
          continue;
        }
        by_param[param].push_back(std::move(instance));
      }

      if (options_.enable_pooling) {
        RunPooledForTest(*record.test, std::move(by_param), &counts, &report);
      } else {
        // Ablation: verify every instance individually (stop per parameter
        // once confirmed in this test).
        std::set<std::string> confirmed_in_test;
        for (const std::string& param : ParamOrder(by_param)) {
          const std::vector<GeneratedInstance>& param_instances = by_param.at(param);
          for (const GeneratedInstance& instance : param_instances) {
            if (GloballyUnsafe(param) || confirmed_in_test.count(param) > 0) {
              break;
            }
            VerifyInstance(instance, &counts, &report, &confirmed_in_test);
          }
        }
      }
    }

    report.total_unit_test_runs += counts.executed_runs;
    ZLOG_INFO << "campaign: app " << app << " done, runs so far "
              << report.total_unit_test_runs;
  }

  auto end = std::chrono::steady_clock::now();
  SetRunDurationCollector(nullptr);
  report.wall_seconds = std::chrono::duration<double>(end - start).count();
  return report;
}

}  // namespace zebra
